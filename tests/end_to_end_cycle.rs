//! End-to-end integration: the full BDA cycle through the public API.
//!
//! Exercises the complete chain — nature run → radar scan → forward operator
//! → QC → LETKF → analysis → forecast → verification — at reduced scale, and
//! asserts the paper's qualitative results hold: assimilation reduces error
//! and the forecast beats persistence once the field evolves.

use bda::core::osse::{Osse, OsseConfig};
use bda::verify::{ContingencyTable, PersistenceForecast};

#[test]
fn cycling_assimilation_tracks_the_truth() {
    // Same configuration the quickstart example demonstrates: storms are
    // mature after the spin-up, so the filter has something to correct.
    let mut osse = Osse::<f32>::new(OsseConfig::reduced(16, 10, 10, 3, 42));
    osse.spinup_system(840.0);
    assert!(
        osse.truth_max_dbz() > 20.0,
        "truth never developed storms: {:.1} dBZ",
        osse.truth_max_dbz()
    );

    let outcomes = osse.run_cycles(3);
    for o in &outcomes {
        assert!(o.n_obs_used > 0, "no observations assimilated");
        assert!(o.analysis.points_analyzed > 0);
        // Analysis must not make the mean worse (beyond noise).
        assert!(
            o.posterior_rmse_dbz <= o.prior_rmse_dbz + 0.3,
            "analysis degraded the mean: {} -> {}",
            o.prior_rmse_dbz,
            o.posterior_rmse_dbz
        );
        // Filter health: innovation consistency ratio in a sane band (an
        // order of magnitude each way; exact unity needs a tuned system).
        let ratio = o.innovation_reflectivity.consistency_ratio();
        assert!(
            (0.05..100.0).contains(&ratio),
            "pathological consistency ratio {ratio}"
        );
    }
    // At least one cycle must show a strict improvement.
    assert!(
        outcomes
            .iter()
            .any(|o| o.posterior_rmse_dbz < o.prior_rmse_dbz - 1e-6),
        "the filter never improved anything"
    );
}

#[test]
fn qc_rejections_are_bounded() {
    let mut osse = Osse::<f32>::new(OsseConfig::reduced(10, 8, 6, 2, 78));
    osse.spinup_system(480.0);
    let o = osse.cycle();
    // With a spun-up ensemble, the gross error check should keep the bulk
    // of the observations (Table 2's thresholds are loose: 10 dBZ / 15 m/s).
    let keep_fraction = o.n_obs_used as f64 / o.n_obs_scanned as f64;
    assert!(
        keep_fraction > 0.6,
        "QC rejected too much: kept {:.0}%",
        keep_fraction * 100.0
    );
}

#[test]
fn forecast_case_is_verifiable_and_persistence_degrades() {
    let mut osse = Osse::<f32>::new(OsseConfig::reduced(12, 8, 6, 3, 79));
    osse.spinup_system(600.0);
    osse.run_cycles(2);

    let leads = [0.0, 120.0, 240.0];
    let case = osse.run_forecast_case(&leads, 2);
    let persistence = PersistenceForecast::new(&case.observed_dbz_init);

    // Persistence at lead 0 against the truth must be at least as good as
    // at the last lead (the field evolves away from the frozen map). Use a
    // low threshold so events exist.
    let t0 = ContingencyTable::from_fields(
        persistence.at_lead(0.0),
        &case.truth_dbz[0],
        15.0,
        Some(&case.mask),
    );
    let t_last = ContingencyTable::from_fields(
        persistence.at_lead(240.0),
        &case.truth_dbz[2],
        15.0,
        Some(&case.mask),
    );
    if let (Some(a), Some(b)) = (t0.threat_score(), t_last.threat_score()) {
        assert!(
            b <= a + 0.05,
            "persistence got better with lead time: {a} -> {b}"
        );
    }

    // The BDA forecast maps must stay in a physical dBZ range.
    for map in case.forecast_dbz.iter().chain(case.truth_dbz.iter()) {
        for &v in map {
            assert!((-35.0..=80.0).contains(&v), "unphysical dBZ {v}");
        }
    }
}

#[test]
fn ensemble_spread_survives_cycling() {
    // RTPP (0.95) exists precisely to keep spread alive under dense obs;
    // after several cycles the ensemble must not have collapsed.
    let mut osse = Osse::<f32>::new(OsseConfig::reduced(10, 8, 6, 2, 80));
    osse.spinup_system(480.0);
    osse.run_cycles(3);
    let spread = osse.ensemble.spread(bda::scale::PrognosticVar::Theta);
    assert!(spread > 1e-4, "ensemble collapsed: theta spread = {spread}");
}
