//! Shard-federation correctness, anchored the hard way.
//!
//! 1. **Bit-parity**: a seeded OSSE produces a bit-identical analysis
//!    single-process vs S=2 and S=4 shards when no faults are injected —
//!    member states compared by bit pattern, outcome tables by bytes.
//! 2. **Kill/resume**: a virtually SIGKILLed shard resumes from its own
//!    scoped checkpoint mid-campaign and the federation's final tables
//!    and states still match the unfaulted run exactly.
//! 3. **Ladder determinism**: `halodrop`/`shardstall` scenarios land on
//!    exact expected outcome tables (the affected cycle degrades to
//!    `halo-reuse` on every *peer*, the faulty shard itself completes).

use bda::core::osse::{Osse, OsseConfig};
use bda::shard::federation::NetTuning;
use bda::shard::{FederationConfig, LocalFederation, NetFederation};
use bda::workflow::FaultPlan;
use std::path::PathBuf;

const CYCLES: usize = 3;

fn config() -> OsseConfig {
    OsseConfig::reduced(10, 8, 6, 2, 11)
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bda-shard-parity-{tag}-{}", std::process::id()))
}

fn member_bits(flats: &[Vec<f32>]) -> Vec<Vec<u32>> {
    flats
        .iter()
        .map(|f| f.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// The single-process reference: same OSSE, same cycles, plus the
/// campaign-style outcome table for byte comparison.
fn reference() -> (Vec<Vec<u32>>, String, Vec<f64>) {
    let mut osse = Osse::<f32>::new(config());
    let mut records = Vec::new();
    let mut posteriors = Vec::new();
    for c in 0..CYCLES {
        let out = osse.cycle();
        posteriors.push(out.posterior_rmse_dbz);
        // Reuse the shard worker's record grammar via the same fields the
        // single-process campaign logs (bda_core::resume::record_of).
        let label = if out.below_quorum {
            "below-quorum"
        } else if out.n_obs_used == 0 {
            "forecast-only"
        } else if out.ensemble_degraded() {
            "degraded"
        } else {
            "completed"
        };
        let mut detail = format!(
            "alive {}, obs {}/{}, {}, rmse {:.9e}->{:.9e}",
            out.n_alive,
            out.n_obs_used,
            out.n_obs_scanned,
            out.qc.summary(),
            out.prior_rmse_dbz,
            out.posterior_rmse_dbz
        );
        if !out.respawned.is_empty() {
            detail.push_str(&format!(", respawned {:?}", out.respawned));
        }
        for e in &out.member_errors {
            detail.push_str(&format!(", {e}"));
        }
        records.push(bda::io::checkpoint::OutcomeRecord {
            cycle: c as u64,
            label: label.into(),
            detail,
            retries: 0,
        });
    }
    (
        member_bits(&osse.analyzed_flats()),
        bda::shard::outcome_table(&records),
        posteriors,
    )
}

fn run_federation(n_shards: usize, plan: FaultPlan, tag: &str) -> LocalFederation<f32> {
    let dir = tmp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FederationConfig::new(config(), n_shards, CYCLES, dir);
    cfg.plan = plan;
    let mut fed = LocalFederation::start(cfg).expect("federation start");
    fed.run().expect("federation run");
    fed
}

#[test]
fn sharded_analysis_is_bit_identical_to_single_process() {
    let (ref_bits, ref_table, ref_posteriors) = reference();
    for n_shards in [2usize, 4] {
        let fed = run_federation(n_shards, FaultPlan::none(), &format!("clean{n_shards}"));
        for (s, w) in fed.workers.iter().enumerate() {
            assert_eq!(
                member_bits(&w.osse.analyzed_flats()),
                ref_bits,
                "S={n_shards} shard {s}: assembled ensemble diverged from single-process"
            );
            assert_eq!(
                w.table(),
                ref_table,
                "S={n_shards} shard {s}: outcome table diverged"
            );
            for (c, out) in w.outcomes.iter().enumerate() {
                assert_eq!(
                    out.posterior_rmse_dbz.to_bits(),
                    ref_posteriors[c].to_bits(),
                    "S={n_shards} shard {s} cycle {c}: posterior RMSE diverged"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&fed.cfg.dir);
    }
}

#[test]
fn sigkilled_shard_resumes_from_its_own_checkpoint() {
    let (ref_bits, ref_table, _) = reference();
    // Kill shard 1 at the start of cycle 2: its in-memory state vanishes,
    // it must rebuild from its scoped checkpoint (written before cycle 1)
    // and replay cycle 1 from the halos still spooled on the bus.
    let fed = run_federation(2, FaultPlan::none().shard_kill(2, 1), "kill");
    for (s, w) in fed.workers.iter().enumerate() {
        assert_eq!(
            member_bits(&w.osse.analyzed_flats()),
            ref_bits,
            "shard {s} diverged after the kill/resume"
        );
        assert_eq!(w.table(), ref_table, "shard {s} table diverged");
    }
    // The checkpoint directory is shared: both shards' scoped snapshots
    // coexist and neither scan crossed over (a cross-resume would have
    // broken the bit-parity asserted above). Both scopes must be present.
    let ckpt = fed.cfg.dir.join("ckpt");
    for scope in ["s000", "s001"] {
        assert!(
            bda::io::latest_checkpoint_scoped::<f32>(&ckpt, Some(scope))
                .expect("scan")
                .is_some(),
            "no scoped checkpoint for {scope}"
        );
    }
    let _ = std::fs::remove_dir_all(&fed.cfg.dir);
}

fn run_net_federation(n_shards: usize, plan: FaultPlan, tag: &str) -> NetFederation<f32> {
    let dir = tmp_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FederationConfig::new(config(), n_shards, CYCLES, dir);
    cfg.plan = plan;
    let mut fed = NetFederation::start(cfg, NetTuning::default()).expect("net federation start");
    fed.run().expect("net federation run");
    fed
}

#[test]
fn socket_federation_is_bit_identical_to_single_process() {
    // The same parity anchor as the file bus, but every halo crossed a
    // real loopback socket (sealed BDAN frames, push + REQ-pull): the
    // transport seam must be invisible to the analysis.
    let (ref_bits, ref_table, ref_posteriors) = reference();
    for n_shards in [2usize, 4] {
        let fed = run_net_federation(n_shards, FaultPlan::none(), &format!("net{n_shards}"));
        for (s, w) in fed.workers.iter().enumerate() {
            assert_eq!(
                member_bits(&w.osse.analyzed_flats()),
                ref_bits,
                "S={n_shards} shard {s}: socket-federated ensemble diverged"
            );
            assert_eq!(
                w.table(),
                ref_table,
                "S={n_shards} shard {s}: outcome table diverged over sockets"
            );
            for (c, out) in w.outcomes.iter().enumerate() {
                assert_eq!(
                    out.posterior_rmse_dbz.to_bits(),
                    ref_posteriors[c].to_bits(),
                    "S={n_shards} shard {s} cycle {c}: posterior RMSE diverged over sockets"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&fed.cfg.dir);
    }
}

#[test]
fn sigkilled_shard_resumes_over_sockets_with_bit_parity() {
    // Kill shard 1 at the start of cycle 2 in a *socket* federation: the
    // respawn bumps its fenced epoch, and the replayed cycles pull every
    // missed halo from peer history via REQ — no file spool involved.
    let (ref_bits, ref_table, _) = reference();
    let fed = run_net_federation(2, FaultPlan::none().shard_kill(2, 1), "netkill");
    for (s, w) in fed.workers.iter().enumerate() {
        assert_eq!(
            member_bits(&w.osse.analyzed_flats()),
            ref_bits,
            "shard {s} diverged after the socket kill/resume"
        );
        assert_eq!(w.table(), ref_table, "shard {s} table diverged");
        assert!(
            w.bus().epoch() >= 1,
            "shard {s} should be running under a fenced epoch"
        );
    }
    // The respawned shard runs under a bumped epoch; its peer fenced the
    // pre-kill instance out.
    assert_eq!(fed.workers[1].bus().epoch(), 2);
    let _ = std::fs::remove_dir_all(&fed.cfg.dir);
}

#[test]
fn halodrop_lands_on_the_exact_expected_table() {
    // Shard 0's halo for cycle 1 is dropped in transit: shard 1 reuses
    // shard 0's cycle-0 halo (flagged), shard 0 itself is unaffected.
    let fed = run_federation(2, FaultPlan::none().halo_drop(1, 0), "halodrop");
    let labels = |s: usize| -> Vec<String> {
        fed.workers[s]
            .records
            .iter()
            .map(|r| r.label.clone())
            .collect()
    };
    assert_eq!(labels(0), ["completed", "completed", "completed"]);
    assert_eq!(labels(1), ["completed", "halo-reuse", "completed"]);
    assert!(fed.workers[1].records[1]
        .detail
        .contains("reused halo of [0]"));
    let _ = std::fs::remove_dir_all(&fed.cfg.dir);
}

#[test]
fn shardstall_degrades_peers_not_the_laggard() {
    // Shard 1 misses its halo deadline on cycle 1 (publishes a stall
    // marker): both peers step to halo-reuse; shard 1 completes its own
    // cycle late but intact.
    let fed = run_federation(3, FaultPlan::none().shard_stall(1, 1), "stall");
    let labels = |s: usize| -> Vec<String> {
        fed.workers[s]
            .records
            .iter()
            .map(|r| r.label.clone())
            .collect()
    };
    assert_eq!(labels(0), ["completed", "halo-reuse", "completed"]);
    assert_eq!(labels(1), ["completed", "completed", "completed"]);
    assert_eq!(labels(2), ["completed", "halo-reuse", "completed"]);
    for s in [0, 2] {
        assert!(fed.workers[s].records[1]
            .detail
            .contains("reused halo of [1]"));
    }
    let _ = std::fs::remove_dir_all(&fed.cfg.dir);
}
