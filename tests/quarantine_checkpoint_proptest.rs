//! Property-based guarantees for the member-fault-tolerance layer:
//!
//! * a NaN/Inf-poisoned ensemble member must never leak non-finite values
//!   into the analysis of the surviving quorum — at the LETKF level and
//!   through the full OSSE cycle (quarantine + respawn);
//! * campaign checkpoints round-trip exactly, and any truncation or
//!   bit-flip is rejected by the CRC rather than silently resuming from a
//!   corrupt state.

use bda::core::osse::{Osse, OsseConfig};
use bda::io::checkpoint::{decode_snapshot, encode_snapshot, CampaignSnapshot, OutcomeRecord};
use bda::letkf::{analyze_quorum, LetkfConfig, ObsEnsemble, ObsKind, Observation, StateLayout};
use bda::num::SplitMix64;
use proptest::prelude::*;

fn layout() -> StateLayout {
    StateLayout {
        nx: 6,
        ny: 6,
        nz: 3,
        nvar: 1,
        dx: 500.0,
        z_center: vec![500.0, 1000.0, 1500.0],
    }
}

/// One central observation of variable 0, with forward-operator rows for
/// the alive members only (the quarantine contract).
fn center_obs(members: &[Vec<f64>], alive: &[bool], layout: &StateLayout) -> ObsEnsemble<f64> {
    let (x, y) = layout.xy(3, 3);
    let o = Observation {
        kind: ObsKind::Reflectivity,
        x,
        y,
        z: layout.z_center[1],
        value: 8.0,
        error_sd: 0.5,
    };
    let src = layout.member_index(0, 3, 3, 1);
    let hx: Vec<Vec<f64>> = members
        .iter()
        .zip(alive)
        .filter(|(_, &a)| a)
        .map(|(m, _)| vec![m[src]])
        .collect();
    ObsEnsemble::new(vec![o], hx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LETKF level: whatever member is poisoned and however (NaN or Inf),
    /// the quorum analysis leaves every surviving member fully finite and
    /// never touches the dead slot.
    #[test]
    fn poisoned_member_never_pollutes_quorum_analysis(
        seed in any::<u64>(),
        dead in 0usize..6,
        poison_inf in any::<bool>(),
        stride in 1usize..9,
    ) {
        let layout = layout();
        let k = 6;
        let mut rng = SplitMix64::new(seed);
        let mut members: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..layout.n_elements()).map(|_| rng.gaussian(5.0, 1.0)).collect())
            .collect();
        let bad = if poison_inf { f64::INFINITY } else { f64::NAN };
        for v in members[dead].iter_mut().step_by(stride) {
            *v = bad;
        }
        let poisoned_copy = members[dead].clone();
        let alive: Vec<bool> = (0..k).map(|m| m != dead).collect();
        let obs = center_obs(&members, &alive, &layout);
        let cfg = LetkfConfig::reduced(k - 1);
        let q = analyze_quorum(&mut members, &alive, layout, &obs, &cfg, 2).unwrap();
        prop_assert_eq!(q.k_alive, k - 1);
        prop_assert!(q.degraded());
        prop_assert!(q.stats.points_analyzed > 0);
        for (m, flat) in members.iter().enumerate() {
            if m == dead {
                continue;
            }
            for (i, &v) in flat.iter().enumerate() {
                prop_assert!(v.is_finite(), "member {m} element {i} = {v}");
            }
        }
        // The dead slot is quarantined, not "repaired" in place.
        let dead_bits: Vec<u64> = members[dead].iter().map(|v| v.to_bits()).collect();
        let copy_bits: Vec<u64> = poisoned_copy.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(dead_bits, copy_bits);
    }

    /// Checkpoint snapshots round-trip bit-exactly in both precisions,
    /// including extreme magnitudes and empty outcome logs.
    #[test]
    fn checkpoint_roundtrip_is_identity(
        seed in any::<u64>(),
        k in 1usize..5,
        n in 1usize..48,
        next_cycle in any::<u64>(),
        n_outcomes in 0usize..4,
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut draw = |scale: f64| rng.gaussian(0.0, 1.0) * scale;
        let members: Vec<Vec<f64>> = (0..k)
            .map(|_| {
                (0..n)
                    .map(|i| match i % 4 {
                        0 => draw(1.0),
                        1 => draw(1e30),
                        2 => draw(1e-30),
                        _ => 0.0,
                    })
                    .collect()
            })
            .collect();
        let snap = CampaignSnapshot {
            next_cycle,
            time: draw(1e4),
            rng_states: (0..3).map(|i| next_cycle.wrapping_mul(i + 1)).collect(),
            member_times: (0..k).map(|i| i as f64 * 30.0).collect(),
            members,
            outcomes: (0..n_outcomes)
                .map(|c| OutcomeRecord {
                    cycle: c as u64,
                    label: "completed".into(),
                    detail: format!("alive {k}, rmse {:.9e}", draw(10.0)),
                    retries: c as u32,
                })
                .collect(),
        };
        let bytes = encode_snapshot(&snap).unwrap();
        let back = decode_snapshot::<f64>(&bytes).unwrap();
        prop_assert_eq!(&back, &snap);

        // Single-precision path: f32 payloads survive the f32->f64->f32 trip.
        let snap32 = CampaignSnapshot {
            next_cycle: snap.next_cycle,
            time: snap.time,
            rng_states: snap.rng_states.clone(),
            members: snap
                .members
                .iter()
                .map(|m| m.iter().map(|&v| v as f32).collect())
                .collect::<Vec<Vec<f32>>>(),
            member_times: snap.member_times.clone(),
            outcomes: snap.outcomes.clone(),
        };
        let bytes32 = encode_snapshot(&snap32).unwrap();
        let back32 = decode_snapshot::<f32>(&bytes32).unwrap();
        prop_assert_eq!(&back32, &snap32);
    }

    /// Any truncation or bit-flip of an encoded snapshot must be rejected —
    /// resuming from a half-written or corrupted file is never an option.
    #[test]
    fn corrupted_checkpoint_is_rejected(
        seed in any::<u64>(),
        cut_seed in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let snap = CampaignSnapshot {
            next_cycle: 5,
            time: 150.0,
            rng_states: vec![rng.next_u64(), rng.next_u64()],
            members: vec![(0..24).map(|_| rng.gaussian(0.0, 1.0)).collect::<Vec<f64>>(); 3],
            member_times: vec![150.0; 3],
            outcomes: vec![OutcomeRecord {
                cycle: 4,
                label: "completed".into(),
                detail: "alive 3".into(),
                retries: 0,
            }],
        };
        let bytes = encode_snapshot(&snap).unwrap().to_vec();

        let cut_len = (cut_seed as usize) % bytes.len(); // always a strict prefix
        prop_assert!(decode_snapshot::<f64>(&bytes[..cut_len]).is_err(),
            "truncation to {cut_len}/{} accepted", bytes.len());

        let mut flipped = bytes.clone();
        let pos = (flip_seed as usize) % flipped.len();
        flipped[pos] ^= 1 << (pos % 8);
        prop_assert!(decode_snapshot::<f64>(&flipped).is_err(),
            "bit flip at byte {pos} accepted");
    }
}

proptest! {
    // The full-cycle property is expensive (real model integrations), so
    // fewer cases — each one still covers poison -> quarantine -> analysis
    // -> respawn end to end.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full OSSE cycle: a poisoned member is quarantined, the surviving
    /// quorum still produces a finite analysis, and the respawned ensemble
    /// is fully finite again.
    #[test]
    fn osse_cycle_survives_any_poisoned_member(
        member in 0usize..6,
        poison_inf in any::<bool>(),
    ) {
        let mut osse = Osse::<f32>::new(OsseConfig::reduced(10, 8, 6, 2, 11));
        osse.cycle();
        if poison_inf {
            osse.ensemble.inject_blowup(member);
        } else {
            osse.ensemble.inject_nan(member);
        }
        let out = osse.cycle();
        prop_assert_eq!(out.n_alive, 5);
        prop_assert_eq!(out.respawned.clone(), vec![member]);
        prop_assert!(out.analysis.points_analyzed > 0);
        prop_assert!(out.prior_rmse_dbz.is_finite());
        prop_assert!(out.posterior_rmse_dbz.is_finite());
        for m in &osse.ensemble.members {
            prop_assert!(m.all_finite());
        }
    }
}
