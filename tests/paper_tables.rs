//! Integration: the paper's tables, asserted row by row through the public
//! API (E-T1, E-T2, E-T3 in DESIGN.md).

use bda::core::systems;
use bda::letkf::LetkfConfig;
use bda::pawr::RadarConfig;
use bda::scale::ModelConfig;
use bda::workflow::NodeAllocation;

#[test]
fn table2_letkf_settings() {
    let c = LetkfConfig::bda2021();
    assert_eq!(c.ensemble_size, 1000, "Ensemble size");
    assert_eq!(
        (c.analysis_z_min, c.analysis_z_max),
        (500.0, 11_000.0),
        "Height range for analysis 0.5 - 11 km"
    );
    assert_eq!(c.obs_resolution, 500.0, "Regridded observation resolution");
    assert_eq!(
        (c.obs_err_reflectivity_dbz, c.obs_err_doppler_ms),
        (5.0, 3.0),
        "Observation error standard deviation"
    );
    assert_eq!(
        c.max_obs_per_grid, 1000,
        "Maximum observation number per grid"
    );
    assert_eq!(
        (c.gross_err_reflectivity_dbz, c.gross_err_doppler_ms),
        (10.0, 15.0),
        "Gross error check threshold"
    );
    assert_eq!(
        (c.loc_horizontal, c.loc_vertical),
        (2000.0, 2000.0),
        "Localization scale horizontal/vertical 2 km"
    );
    assert_eq!(c.rtpp, 0.95, "Relaxation to prior perturbation factor");
}

#[test]
fn table3_scale_settings() {
    let c = ModelConfig::inner_bda2021();
    assert_eq!(
        (c.grid.nx, c.grid.ny, c.grid.nz()),
        (256, 256, 60),
        "256 x 256 x 60"
    );
    assert_eq!(c.grid.dx, 500.0, "Horizontal grid spacing 500 m");
    assert!(
        (c.grid.lx() - 128_000.0).abs() < 1.0 && (c.grid.ly() - 128_000.0).abs() < 1.0,
        "Domain 128 km x 128 km"
    );
    assert!(
        (c.grid.vertical.z_top() - 16_400.0).abs() < 1.0,
        "vertical 16.4 km"
    );
    assert_eq!(c.dt, 0.4, "Time integration step 0.4 s");
    // "Hybrid (explicit in the horizontal, implicit in the vertical)" is
    // structural: the HEVI core's dt must beat the horizontal acoustic CFL
    // but is far beyond the vertical one (dz_min << dx).
    assert!(c.dt < c.acoustic_dt_limit());
    let dz0 = c.grid.vertical.dz(0);
    assert!(
        c.dt > 0.9 * dz0 / 340.0_f64.max(1.0),
        "dt = {} would not need a vertically implicit solver (dz0 = {dz0})",
        c.dt
    );
    // Full physics suite on.
    assert!(c.physics.microphysics, "single-moment 6-category");
    assert!(c.physics.radiation, "TRaNsfer code X stand-in");
    assert!(c.physics.surface_flux, "Beljaars-type");
    assert!(c.physics.boundary_layer, "MYNN level 2.5 class");
    assert!(c.physics.turbulence, "Smagorinsky-type");
}

#[test]
fn table1_bottom_row_and_ratios() {
    let bda = systems::bda2021();
    assert_eq!(bda.refresh_s, 30.0, "30 s / 30 s initialization");
    assert_eq!(bda.ens_forecast_members, 11, "11-member ensemble forecast");
    // 120x faster than the hourly operational systems (§8).
    assert_eq!(bda.refresh_speedup_vs(&systems::TABLE1[0]), 120.0);
    // Two orders of magnitude problem-size increase (§5).
    let best = systems::TABLE1
        .iter()
        .map(|s| s.problem_size_rate())
        .fold(0.0, f64::max);
    let ratio = bda.problem_size_rate() / best;
    assert!(ratio >= 100.0, "problem-size ratio only {ratio:.0}x");
}

#[test]
fn section6_resources() {
    let a = NodeAllocation::bda2021();
    assert_eq!(a.total, 11_580, "exclusive access to 11,580 nodes");
    assert_eq!(a.inner_total(), 8_888, "SCALE-LETKF on 8888 nodes");
    assert_eq!(a.inner_cores(), 426_624, "426,624 CPU cores");
    assert_eq!(a.inner_part1, 8_008, "8008 for part <1>");
    assert_eq!(a.inner_part2, 880, "880 for part <2>");
    assert_eq!(a.outer_domain, 2_002, "outer domain 2002 nodes");
    assert_eq!(NodeAllocation::bda2021_enlarged().total, 13_854);
    // "~7% of the full system".
    assert!((a.fugaku_fraction() - 0.0728).abs() < 0.005);
}

#[test]
fn section5_radar_and_transfer_figures() {
    let r = RadarConfig::mp_pawr_bda2021();
    assert_eq!(r.scan_interval, 30.0, "volume scan every 30 s");
    assert_eq!(r.range_max, 60_000.0, "60-km range");
    assert_eq!(r.raw_scan_bytes, 100 * 1024 * 1024, "~100 MB per scan");
    let jit = bda::jitdt::JitDt::bda2021();
    let t = jit.link.ideal_seconds(r.raw_scan_bytes);
    assert!((2.5..3.5).contains(&t), "100 MB in ~3 s (got {t:.2})");
}
