//! Corruption-fuzz harness for the observation ingest path.
//!
//! Drives ≥10k deterministically mutated PAWR volumes — bit flips,
//! truncations, length-field forgeries, NaN scribbles, checksum-consistent
//! forgeries — through the full ingest stack: strict decode, salvage decode,
//! and the LETKF QC pipeline. Asserts the two properties the hardening work
//! guarantees:
//!
//! 1. **No panic, ever.** Every corruption produces either a decoded volume
//!    or a typed `DecodeError` — never an abort, OOM, or unwind.
//! 2. **No out-of-bounds observation reaches the analysis.** Whatever
//!    survives decode + QC is finite and inside the physical bounds the
//!    LETKF assumes.
//!
//! Every case is replayable from `(SEED, case index)` alone.

use bda::letkf::{LetkfConfig, ObsEnsemble, ObsKind, Observation, QcPipeline};
use bda::num::SplitMix64;
use bda::pawr::codec::{decode_volume, decode_volume_salvage, encode_volume, ValueBounds};
use bda::pawr::fuzz::VolumeMutator;
use bda::pawr::scan::ScanResult;
use std::panic::{catch_unwind, AssertUnwindSafe};

const SEED: u64 = 0xBDA_FACE;
const CASES: u64 = 12_000;

fn clean_volume() -> Vec<u8> {
    let mut rng = SplitMix64::new(SEED);
    let obs: Vec<Observation<f32>> = (0..48)
        .map(|i| Observation {
            kind: if i % 3 == 0 {
                ObsKind::DopplerVelocity
            } else {
                ObsKind::Reflectivity
            },
            x: rng.uniform_in(0.0, 128_000.0),
            y: rng.uniform_in(0.0, 128_000.0),
            z: rng.uniform_in(100.0, 16_000.0),
            value: rng.uniform_in(-10.0, 40.0) as f32,
            error_sd: 5.0,
        })
        .collect();
    let scan = ScanResult {
        time: 30.0,
        obs,
        n_reflectivity: 0,
        n_doppler: 0,
        n_clear_air: 0,
        raw_bytes: 0,
    };
    encode_volume(&scan).to_vec()
}

fn assert_obs_in_bounds(obs: &[Observation<f32>], b: &ValueBounds, ctx: &str) {
    for (i, o) in obs.iter().enumerate() {
        let v = o.value as f64;
        assert!(v.is_finite(), "{ctx}: obs {i} non-finite value");
        match o.kind {
            ObsKind::Reflectivity => assert!(
                (b.dbz_min..=b.dbz_max).contains(&v),
                "{ctx}: obs {i} reflectivity {v} out of bounds"
            ),
            ObsKind::DopplerVelocity => assert!(
                v.abs() <= b.doppler_abs_max,
                "{ctx}: obs {i} doppler {v} out of bounds"
            ),
        }
        assert!(
            o.x.is_finite() && o.y.is_finite() && o.z.is_finite(),
            "{ctx}: obs {i} non-finite position"
        );
        let sd = o.error_sd as f64;
        assert!(
            sd.is_finite() && sd > 0.0 && sd <= b.error_sd_max,
            "{ctx}: obs {i} bad error sd {sd}"
        );
    }
}

/// The headline acceptance test: ≥10k mutated volumes, zero panics, zero
/// out-of-bounds survivors.
#[test]
fn fuzz_corpus_never_panics_and_never_leaks_bad_obs() {
    let clean = clean_volume();
    let mutator = VolumeMutator::new(&clean, SEED);
    let bounds = ValueBounds::default();
    let cfg = LetkfConfig::reduced(2);

    let mut decoded_ok = 0u64;
    let mut rejected = 0u64;
    let mut salvaged_nonempty = 0u64;
    for mutant in mutator.corpus(CASES) {
        let case = mutant.case;
        let class = mutant.class;

        // Strict decode: typed result, never a panic.
        let strict = catch_unwind(AssertUnwindSafe(|| decode_volume::<f32>(&mutant.bytes)))
            .unwrap_or_else(|_| panic!("case {case} ({class:?}): strict decode panicked"));
        match &strict {
            Ok(vol) => {
                decoded_ok += 1;
                assert_obs_in_bounds(&vol.obs, &bounds, &format!("case {case} strict"));
            }
            Err(_) => rejected += 1,
        }

        // Salvage decode: same no-panic guarantee, and everything it keeps
        // is in bounds by construction.
        let salvage = catch_unwind(AssertUnwindSafe(|| {
            decode_volume_salvage::<f32>(&mutant.bytes, &bounds)
        }))
        .unwrap_or_else(|_| panic!("case {case} ({class:?}): salvage decode panicked"));
        let survivors = match salvage {
            Ok((vol, report)) => {
                assert!(
                    report.kept <= report.parseable && report.parseable as u64 <= report.declared,
                    "case {case}: inconsistent salvage report {report:?}"
                );
                assert_obs_in_bounds(&vol.obs, &bounds, &format!("case {case} salvage"));
                vol.obs
            }
            Err(_) => Vec::new(),
        };
        if survivors.is_empty() {
            continue;
        }
        salvaged_nonempty += 1;

        // QC: whatever decode let through must pass the pipeline without
        // panicking, and its output — the set that would be handed to
        // `analyze_quorum` — stays finite and in bounds.
        let hx: Vec<Vec<f32>> = vec![
            survivors.iter().map(|o| o.value).collect(),
            survivors.iter().map(|o| o.value + 0.5).collect(),
        ];
        let ens = ObsEnsemble::new(survivors, hx);
        let (kept, report) = catch_unwind(AssertUnwindSafe(|| QcPipeline::new(&cfg).run(&ens)))
            .unwrap_or_else(|_| panic!("case {case} ({class:?}): QC panicked"));
        assert_eq!(report.accepted(), kept.len());
        assert_obs_in_bounds(&kept.obs, &bounds, &format!("case {case} post-QC"));
    }

    // The corpus must actually exercise both sides: many volumes die with a
    // typed error, and a meaningful number survive into QC.
    assert!(rejected > CASES / 4, "only {rejected}/{CASES} rejected");
    assert!(decoded_ok > 0, "no mutant decoded cleanly");
    assert!(
        salvaged_nonempty > CASES / 10,
        "only {salvaged_nonempty}/{CASES} salvaged anything"
    );
}

/// Defense in depth: even if a hostile volume somehow bypassed decode-time
/// validation, the QC gross stage rejects every out-of-bounds or non-finite
/// observation before the analysis, and the report says so.
#[test]
fn qc_is_a_second_wall_behind_the_decoder() {
    let cfg = LetkfConfig::reduced(2);
    let mut rng = SplitMix64::new(SEED ^ 0xDEAD);
    let mut obs: Vec<Observation<f32>> = Vec::new();
    let mut n_bad = 0usize;
    for i in 0..2_000 {
        let kind = if i % 2 == 0 {
            ObsKind::Reflectivity
        } else {
            ObsKind::DopplerVelocity
        };
        let bad = rng.next_u64().is_multiple_of(3);
        let value = if bad {
            n_bad += 1;
            match rng.next_u64() % 4 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => 1.0e20,
                _ => -1.0e20,
            }
        } else {
            rng.uniform_in(-5.0, 30.0) as f32
        };
        obs.push(Observation {
            kind,
            x: rng.uniform_in(0.0, 128_000.0),
            y: rng.uniform_in(0.0, 128_000.0),
            z: rng.uniform_in(100.0, 16_000.0),
            value,
            error_sd: if kind == ObsKind::Reflectivity {
                5.0
            } else {
                3.0
            },
        });
    }
    let hx: Vec<Vec<f32>> = vec![
        obs.iter()
            .map(|o| {
                if o.value.is_finite() {
                    o.value.clamp(-60.0, 100.0)
                } else {
                    0.0
                }
            })
            .collect(),
        obs.iter()
            .map(|o| {
                if o.value.is_finite() {
                    o.value.clamp(-60.0, 100.0) + 1.0
                } else {
                    1.0
                }
            })
            .collect(),
    ];
    let ens = ObsEnsemble::new(obs, hx);
    let (kept, report) = QcPipeline::new(&cfg).run(&ens);
    assert!(n_bad > 0);
    assert!(
        report.rejected_gross.total() >= n_bad,
        "gross stage caught {} of {} planted bad obs",
        report.rejected_gross.total(),
        n_bad
    );
    assert_obs_in_bounds(&kept.obs, &ValueBounds::default(), "post-QC");
}
