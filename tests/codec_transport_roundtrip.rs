//! Integration: data moves losslessly through every transport layer.
//!
//! The production chain serializes a radar volume at Saitama, ships it over
//! SINET, and hands ensemble states between SCALE and the LETKF. These tests
//! drive scan → codec → pipe → decode end to end and verify the analysis is
//! identical whichever SCALE↔LETKF transport carried the states.

use bda::io::{EnsembleTransport, FileTransport, MemoryTransport};
use bda::jitdt::pipe::pipe;
use bda::pawr::{decode_volume, encode_volume, PawrSimulator, RadarConfig};
use bda::scale::base::Sounding;
use bda::scale::{BaseState, ModelState};
use bda_grid::GridSpec;

fn scan_setup() -> (GridSpec, BaseState<f32>, ModelState<f32>, PawrSimulator) {
    let grid = GridSpec::reduced(12, 12, 8);
    let base = BaseState::from_sounding(&Sounding::convective(), &grid.vertical, 340.0);
    let mut state = ModelState::init_from_base(&grid, &base);
    // Some rain so the volume has structure — placed away from the radar's
    // cone of silence and below its maximum elevation.
    for k in 0..2 {
        state.qr.set(9, 6, k, 2e-3);
        state.qs.set(9, 7, k, 1e-3);
    }
    let sim = PawrSimulator::new(RadarConfig::reduced(grid.lx(), grid.ly()));
    (grid, base, state, sim)
}

#[test]
fn scan_survives_codec_and_pipe_bit_exact() {
    let (grid, base, state, sim) = scan_setup();
    let scan = sim.scan(&state, &base, &grid, 30.0, 5);
    assert!(scan.n_doppler > 0, "need Doppler obs for a meaningful test");

    let encoded = encode_volume(&scan);

    // Ship through the JIT-DT pipe on a separate thread.
    let (tx, rx) = pipe(1024, 16);
    let payload = encoded.clone();
    let h = std::thread::spawn(move || tx.send(payload).unwrap());
    let received = rx.recv().unwrap();
    h.join().unwrap();
    assert_eq!(&received[..], &encoded[..], "pipe corrupted the volume");

    let decoded = decode_volume::<f32>(&received).unwrap();
    assert_eq!(decoded.time, scan.time);
    assert_eq!(decoded.obs.len(), scan.obs.len());
    for (a, b) in decoded.obs.iter().zip(&scan.obs) {
        assert_eq!(a.kind, b.kind);
        // Codec stores f32; values were f32 already, so exact.
        assert_eq!(a.value, b.value);
        assert_eq!(a.error_sd, b.error_sd);
    }
}

#[test]
fn file_and_memory_transport_deliver_identical_states() {
    let (grid, base, state, _) = scan_setup();
    let _ = base;
    let members: Vec<Vec<f32>> = (0..4)
        .map(|m| {
            let mut s = state.clone();
            s.theta.set(m as isize, m as isize, 0, m as f32);
            s.to_flat(&bda::scale::ANALYZED_VARS)
        })
        .collect();
    let _ = grid;

    let dir = std::env::temp_dir().join(format!("bda_it_transport_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut file_t = FileTransport::new(&dir).unwrap();
    let mut mem_t = MemoryTransport::<f32>::new();

    file_t.send(&members).unwrap();
    mem_t.send(&members).unwrap();
    let via_file: Vec<Vec<f32>> = file_t.recv().unwrap();
    let via_mem: Vec<Vec<f32>> = mem_t.recv().unwrap();

    assert_eq!(via_file, members, "file path altered the states");
    assert_eq!(via_mem, members, "memory path altered the states");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analysis_is_transport_invariant() {
    use bda::letkf::{analyze, EnsembleMatrix, LetkfConfig, ObsEnsemble, StateLayout};
    use bda::pawr::operator::ensemble_equivalents;

    let (grid, base, truth, sim) = scan_setup();
    let members: Vec<ModelState<f32>> = (0..4)
        .map(|m| {
            let mut s = ModelState::init_from_base(&grid, &base);
            s.qr.set(6, 6, 3, 1e-3 * (m as f32 + 1.0));
            s
        })
        .collect();
    let scan = sim.scan(&truth, &base, &grid, 30.0, 9);
    let hx = ensemble_equivalents(&scan.obs, &members, &base, &grid, &sim.cfg, 5.0);
    let obs = ObsEnsemble::new(scan.obs, hx);

    let layout = StateLayout {
        nx: grid.nx,
        ny: grid.ny,
        nz: grid.nz(),
        nvar: bda::scale::ANALYZED_VARS.len(),
        dx: grid.dx,
        z_center: grid.vertical.z_center.clone(),
    };
    let flats: Vec<Vec<f32>> = members
        .iter()
        .map(|m| m.to_flat(&bda::scale::ANALYZED_VARS))
        .collect();

    // Route A: direct (memory).
    let mut flats_a = flats.clone();
    let mut mat = EnsembleMatrix::from_members(&flats_a, layout.clone());
    analyze(&mut mat, &obs, &LetkfConfig::reduced(4)).unwrap();
    mat.to_members(&mut flats_a);

    // Route B: states pass through the file transport first.
    let dir = std::env::temp_dir().join(format!("bda_it_inv_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut t = FileTransport::new(&dir).unwrap();
    t.send(&flats).unwrap();
    let mut flats_b: Vec<Vec<f32>> = t.recv().unwrap();
    let mut mat_b = EnsembleMatrix::from_members(&flats_b, layout);
    analyze(&mut mat_b, &obs, &LetkfConfig::reduced(4)).unwrap();
    mat_b.to_members(&mut flats_b);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(flats_a, flats_b, "analysis depended on the transport path");
}
