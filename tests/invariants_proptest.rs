//! Property-based invariants across the workspace (proptest).

use bda::letkf::localization::gaspari_cohn;
use bda::letkf::{gross_error_check, LetkfConfig, ObsEnsemble, ObsKind, Observation};
use bda::num::eigen::{QlEigen, SymEigSolver};
use bda::num::tridiag::{solve_thomas_alloc, tridiag_matvec};
use bda::num::MatrixS;
use bda::pawr::reflectivity::{to_dbz, z_total};
use bda::verify::ContingencyTable;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Symmetric eigendecomposition: residual and orthonormality for random
    /// symmetric matrices of modest size.
    #[test]
    fn eigensolver_residual_small(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = bda::num::SplitMix64::new(seed);
        let mut a = MatrixS::<f64>::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = rng.gaussian(0.0, 1.0);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let dec = QlEigen.decompose(&a);
        prop_assert!(dec.max_residual(&a) < 1e-8, "residual {}", dec.max_residual(&a));
        // Eigenvalues sorted ascending.
        for w in dec.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        // Trace preserved.
        let tr: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = dec.values.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-8);
    }

    /// Thomas solver: A x = d within tolerance for diagonally dominant
    /// random systems.
    #[test]
    fn thomas_solves_dominant_systems(
        n in 2usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = bda::num::SplitMix64::new(seed);
        let sub: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let sup: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| {
                let dom = sub[i].abs() + sup[i].abs() + 1.0;
                if rng.next_uniform() < 0.5 { dom } else { -dom }
            })
            .collect();
        let rhs: Vec<f64> = (0..n).map(|_| rng.gaussian(0.0, 2.0)).collect();
        let x = solve_thomas_alloc(&sub, &diag, &sup, &rhs);
        let back = tridiag_matvec(&sub, &diag, &sup, &x);
        for (a, b) in back.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// Gaspari-Cohn: bounded in [0, 1], compactly supported, monotone.
    #[test]
    fn gaspari_cohn_is_a_valid_taper(
        r in 0.0f64..20_000.0,
        c in 100.0f64..5_000.0,
    ) {
        let g = gaspari_cohn(r, c);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&g), "g = {g}");
        if r >= 2.0 * c {
            prop_assert_eq!(g, 0.0);
        }
        // Monotone: slightly larger r never increases the weight.
        let g2 = gaspari_cohn(r * 1.01 + 1.0, c);
        prop_assert!(g2 <= g + 1e-9);
    }

    /// Reflectivity: monotone in each species' content and bounded by the
    /// floor.
    #[test]
    fn reflectivity_monotone_and_floored(
        rain in 0.0f64..10.0,
        snow in 0.0f64..10.0,
        graupel in 0.0f64..10.0,
        floor in -30.0f64..10.0,
    ) {
        let dbz = to_dbz(z_total(rain, snow, graupel), floor);
        prop_assert!(dbz >= floor);
        let dbz_more = to_dbz(z_total(rain + 0.1, snow, graupel), floor);
        prop_assert!(dbz_more >= dbz);
    }

    /// Contingency tables: merge is commutative/associative in effect and
    /// the threat score is bounded in [0, 1].
    #[test]
    fn contingency_scores_bounded(
        hits in 0u64..1000,
        misses in 0u64..1000,
        fa in 0u64..1000,
        cn in 0u64..1000,
    ) {
        let t = ContingencyTable { hits, misses, false_alarms: fa, correct_negatives: cn };
        if let Some(ts) = t.threat_score() {
            prop_assert!((0.0..=1.0).contains(&ts));
        }
        if let Some(pod) = t.pod() {
            prop_assert!((0.0..=1.0).contains(&pod));
        }
        let mut a = t;
        a.merge(&t);
        prop_assert_eq!(a.total(), 2 * t.total());
        // Merging equal tables does not change any ratio score.
        prop_assert_eq!(a.threat_score(), t.threat_score());
        prop_assert_eq!(a.bias(), t.bias());
    }

    /// QC: the filtered set never contains an innovation beyond threshold,
    /// and QC is idempotent.
    #[test]
    fn gross_error_check_is_sound_and_idempotent(
        values in prop::collection::vec(-30.0f64..90.0, 1..40),
    ) {
        let cfg = LetkfConfig::reduced(2);
        let obs: Vec<Observation<f64>> = values
            .iter()
            .map(|&v| Observation {
                kind: ObsKind::Reflectivity,
                x: 0.0,
                y: 0.0,
                z: 1000.0,
                value: v,
                error_sd: 5.0,
            })
            .collect();
        let n = obs.len();
        let hx = vec![vec![20.0; n], vec![24.0; n]];
        let ens = ObsEnsemble::new(obs, hx);
        let (filtered, stats) = gross_error_check(&ens, &cfg);
        prop_assert_eq!(stats.total, n);
        prop_assert_eq!(filtered.len(), stats.accepted());
        for i in 0..filtered.len() {
            prop_assert!(filtered.innovation(i).abs() <= cfg.gross_err_reflectivity_dbz + 1e-12);
        }
        let (again, stats2) = gross_error_check(&filtered, &cfg);
        prop_assert_eq!(again.len(), filtered.len(), "QC not idempotent");
        prop_assert_eq!(stats2.accepted(), filtered.len());
    }

    /// PAWR codec: any observation set roundtrips (f32-exact values).
    #[test]
    fn volume_codec_roundtrips(
        vals in prop::collection::vec((-20.0f32..70.0, 0.0f32..60_000.0), 0..50),
    ) {
        use bda::pawr::scan::ScanResult;
        let obs: Vec<Observation<f32>> = vals
            .iter()
            .enumerate()
            .map(|(i, &(v, x))| Observation {
                kind: if i % 2 == 0 { ObsKind::Reflectivity } else { ObsKind::DopplerVelocity },
                x: x as f64,
                y: (x / 2.0) as f64,
                z: 1000.0,
                value: v,
                error_sd: 5.0,
            })
            .collect();
        let scan = ScanResult {
            time: 42.0,
            obs,
            n_reflectivity: 0,
            n_doppler: 0,
            n_clear_air: 0,
            raw_bytes: 0,
        };
        let decoded = bda::pawr::decode_volume::<f32>(&bda::pawr::encode_volume(&scan)).unwrap();
        prop_assert_eq!(decoded.obs.len(), scan.obs.len());
        for (a, b) in decoded.obs.iter().zip(&scan.obs) {
            prop_assert_eq!(a.value, b.value);
            prop_assert_eq!(a.kind, b.kind);
        }
    }

    /// State format: random ensembles roundtrip bit-exactly at f32.
    #[test]
    fn state_format_roundtrips(
        k in 1usize..5,
        n in 0usize..200,
        seed in any::<u64>(),
    ) {
        let mut rng = bda::num::SplitMix64::new(seed);
        let members: Vec<Vec<f32>> = (0..k)
            .map(|_| (0..n).map(|_| rng.gaussian(0.0f32, 10.0)).collect())
            .collect();
        let decoded: Vec<Vec<f32>> =
            bda::io::decode_states(&bda::io::encode_states(&members).unwrap()).unwrap();
        prop_assert_eq!(decoded, members);
    }
}
