//! Property-based proof of the thread pool's determinism contract
//! (DESIGN.md "Threading model"): for arbitrary inputs and any worker
//! count, parallel execution is indistinguishable from sequential
//! execution.
//!
//! * integer `fold + reduce` chains equal the plain sequential fold
//!   exactly (associative ops — thread and chunk structure invisible);
//! * floating-point `fold + reduce` chains are **bit-identical** across
//!   thread counts, because chunk boundaries are a pure function of input
//!   length and per-chunk partials combine in chunk order;
//! * `map`/`collect` preserves input order and matches the serial map;
//! * in-place `par_chunks_mut` mutation is slot-addressed, so the final
//!   buffer is bitwise the same at any thread count;
//! * the real LETKF analysis hot path inherits all of the above: same
//!   analysis ensemble, bit for bit, at 1 and at N threads;
//! * the egress tile pipeline (`bda-serve`) encodes its per-cycle delta
//!   frames on the same pool, so the broadcast byte stream — and its
//!   digest — is identical under `BDA_THREADS=1` and `BDA_THREADS=4`.

use bda::letkf::{
    analyze, EnsembleMatrix, LetkfConfig, ObsEnsemble, ObsKind, Observation, StateLayout,
};
use bda::num::SplitMix64;
use bda::serve::tile::{stream_digest, synthetic_reflectivity, TileConfig, Tiler};
use proptest::prelude::*;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool build is infallible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Integer fold+reduce == plain sequential fold, any input, any
    /// thread count (wrapping arithmetic is associative).
    #[test]
    fn int_fold_reduce_equals_sequential_fold(
        seed in any::<u64>(),
        len in 0usize..500,
        threads in 1usize..10,
    ) {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let expect = data
            .iter()
            .fold(0u64, |a, &x| a.wrapping_add(x.rotate_left(11) ^ 0x9e37)) ;
        let got = pool(threads).install(|| {
            data.par_iter()
                .fold(|| 0u64, |a, &x| a.wrapping_add(x.rotate_left(11) ^ 0x9e37))
                .reduce(|| 0u64, u64::wrapping_add)
        });
        prop_assert_eq!(got, expect);
    }

    /// Floating-point fold+reduce: bit-identical across thread counts.
    #[test]
    fn float_fold_reduce_parity_across_threads(
        seed in any::<u64>(),
        len in 0usize..400,
        threads in 2usize..10,
    ) {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<f64> = (0..len).map(|_| rng.gaussian(0.0f64, 3.0)).collect();
        let run = |t: usize| {
            pool(t).install(|| {
                data.par_iter()
                    .fold(|| 0.0f64, |a, &x| a + x * x + x.sin())
                    .reduce(|| 0.0f64, |a, b| a + b)
                    .to_bits()
            })
        };
        prop_assert_eq!(run(threads), run(1));
    }

    /// map/collect preserves order and equals the serial map.
    #[test]
    fn map_collect_matches_serial(
        seed in any::<u64>(),
        len in 0usize..600,
        threads in 1usize..10,
    ) {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<f32> = (0..len).map(|_| rng.gaussian(0.0f32, 5.0)).collect();
        let expect: Vec<f32> = data.iter().map(|&x| x.mul_add(1.5, -0.25).tanh()).collect();
        let got: Vec<f32> = pool(threads).install(|| {
            data.par_iter().map(|&x| x.mul_add(1.5, -0.25).tanh()).collect()
        });
        prop_assert_eq!(got, expect);
    }

    /// The egress tile stream is a pure function of the field sequence:
    /// for arbitrary grid shapes and fields, the concatenated delta
    /// frames (and their digest) are byte-identical whether the tiler
    /// encodes on 1 worker or 4.
    #[test]
    fn tile_stream_parity_across_threads(
        seed in any::<u64>(),
        w in 1usize..80,
        h in 1usize..80,
    ) {
        let mut rng = SplitMix64::new(seed);
        let fields: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..w * h).map(|_| rng.uniform_in(-30.0, 75.0)).collect())
            .collect();
        let run = |t: usize| {
            pool(t).install(|| {
                let mut tiler = Tiler::new(TileConfig { tile: 16, max_zoom: 2 });
                let mut bytes = Vec::new();
                let mut digests = Vec::new();
                for (cycle, field) in fields.iter().enumerate() {
                    let tiles = tiler
                        .encode_cycle(cycle as u64, field, w, h, false)
                        .expect("encode");
                    digests.push(stream_digest(&tiles));
                    for frame in &tiles.deltas {
                        bytes.extend_from_slice(frame);
                    }
                }
                (bytes, digests)
            })
        };
        let (bytes_1, digests_1) = run(1);
        let (bytes_4, digests_4) = run(4);
        prop_assert_eq!(digests_1, digests_4);
        prop_assert_eq!(bytes_1, bytes_4);
    }

    /// The pinned 1 / 2 / 8 thread triple of the determinism contract, on
    /// arbitrary input lengths: the float reduction and the mapped vector
    /// are bit-identical across all three pool widths.
    #[test]
    fn one_two_eight_thread_bitwise_parity(
        seed in any::<u64>(),
        len in 0usize..1500,
    ) {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<f64> = (0..len).map(|_| rng.gaussian(0.0f64, 2.0)).collect();
        let run = |t: usize| {
            pool(t).install(|| {
                let total = data
                    .par_iter()
                    .fold(|| 0.0f64, |a, &x| a + x.mul_add(x, -x.cos()))
                    .reduce(|| 0.0f64, |a, b| a + b)
                    .to_bits();
                let mapped: Vec<u64> = data
                    .par_iter()
                    .map(|&x| (x * 1.0001 + 0.5).to_bits())
                    .collect();
                (total, mapped)
            })
        };
        let base = run(1);
        prop_assert_eq!(run(2), base.clone());
        prop_assert_eq!(run(8), base);
    }

    /// Inputs small enough to take the sequential fast path (work below
    /// the calibrated dispatch threshold — a few elements of trivial
    /// arithmetic is always under it) must still be bit-identical to the
    /// dispatched path at every thread count: the fast path is a latency
    /// optimization, never a different reduction shape.
    #[test]
    fn below_fast_path_threshold_inputs_stay_bit_identical(
        seed in any::<u64>(),
        len in 0usize..8,
        threads in 2usize..10,
    ) {
        let mut rng = SplitMix64::new(seed);
        let data: Vec<f32> = (0..len).map(|_| rng.gaussian(0.0f32, 1.0)).collect();
        let run = |t: usize| {
            pool(t).install(|| {
                data.par_iter()
                    .fold(|| 0.0f32, |a, &x| a + x * x)
                    .reduce(|| 0.0f32, |a, b| a + b)
                    .to_bits()
            })
        };
        prop_assert_eq!(run(threads), run(1));
    }

    /// In-place chunked mutation is slot-addressed: bitwise-identical
    /// buffers at any thread count.
    #[test]
    fn par_chunks_mut_parity_across_threads(
        seed in any::<u64>(),
        len in 1usize..800,
        chunk in 1usize..64,
        threads in 2usize..10,
    ) {
        let mut rng = SplitMix64::new(seed);
        let init: Vec<f64> = (0..len).map(|_| rng.gaussian(1.0f64, 0.5)).collect();
        let run = |t: usize| {
            let mut v = init.clone();
            pool(t).install(|| {
                v.par_chunks_mut(chunk).enumerate().for_each(|(c, block)| {
                    for (k, x) in block.iter_mut().enumerate() {
                        *x = x.abs().sqrt() + (c as f64) * 1e-3 + (k as f64) * 1e-6;
                    }
                });
            });
            v
        };
        let a = run(1);
        let b = run(threads);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// The production egress path: the exact broadcast byte stream served to
/// subscribers (synthetic reflectivity → quantize → pyramid → delta → RLE
/// → sealed frames) is byte-identical when encoded under a 1-worker pool
/// and a 4-worker pool — the `BDA_THREADS=1` vs `BDA_THREADS=4` contract,
/// pinned with explicit pools so the test is hermetic.
#[test]
fn serve_tile_stream_parity_one_vs_four_workers() {
    const W: usize = 96;
    const H: usize = 96;
    let run = |threads: usize| {
        pool(threads).install(|| {
            let mut tiler = Tiler::new(TileConfig::default());
            let mut digests = Vec::new();
            let mut stream = Vec::new();
            for cycle in 0..6u64 {
                let field = synthetic_reflectivity(cycle, W, H);
                let tiles = tiler
                    .encode_cycle(cycle, &field, W, H, cycle == 4)
                    .expect("encode");
                digests.push(stream_digest(&tiles));
                for frame in &tiles.deltas {
                    stream.extend_from_slice(frame);
                }
            }
            (digests, stream)
        })
    };
    let (digests_1, stream_1) = run(1);
    let (digests_4, stream_4) = run(4);
    assert_eq!(digests_1, digests_4, "per-cycle digests diverged");
    assert_eq!(
        stream_1, stream_4,
        "egress byte stream diverged between 1 and 4 workers"
    );
}

/// The production hot path: a full LETKF analysis over random ensembles is
/// bit-identical at 1 thread and at 8 threads.
#[test]
fn letkf_analysis_bitwise_parity_across_threads() {
    let layout = StateLayout {
        nx: 8,
        ny: 8,
        nz: 4,
        nvar: 2,
        dx: 500.0,
        z_center: vec![500.0, 1000.0, 1500.0, 2000.0],
    };
    for seed in [3u64, 71, 2024] {
        let k = 10;
        let mut rng = SplitMix64::new(seed);
        let members: Vec<Vec<f32>> = (0..k)
            .map(|_| {
                (0..layout.n_elements())
                    .map(|_| rng.gaussian(10.0f32, 4.0))
                    .collect()
            })
            .collect();
        // Reflectivity observations on a coarse sub-grid, forward-operator
        // rows sampled straight from the members.
        let mut obs = Vec::new();
        let mut hx: Vec<Vec<f32>> = vec![Vec::new(); k];
        for i in (0..layout.nx).step_by(2) {
            for j in (0..layout.ny).step_by(2) {
                let (x, y) = layout.xy(i, j);
                obs.push(Observation {
                    kind: ObsKind::Reflectivity,
                    x,
                    y,
                    z: layout.z_center[1],
                    value: rng.gaussian(15.0f32, 5.0),
                    error_sd: 5.0,
                });
                let src = layout.member_index(0, i, j, 1);
                for (m, member) in members.iter().enumerate() {
                    hx[m].push(member[src]);
                }
            }
        }
        let obs = ObsEnsemble::new(obs, hx);
        let cfg = LetkfConfig::reduced(k);

        let run = |threads: usize| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut mat = EnsembleMatrix::from_members(&members, layout.clone());
                    let stats = analyze(&mut mat, &obs, &cfg).expect("analysis runs");
                    let mut out = members.clone();
                    mat.to_members(&mut out);
                    (stats, out)
                })
        };
        let (stats_1, state_1) = run(1);
        let (stats_8, state_8) = run(8);
        assert_eq!(stats_1, stats_8, "seed {seed}: analysis stats diverged");
        assert_eq!(state_1.len(), state_8.len());
        for (m, (a, b)) in state_1.iter().zip(&state_8).enumerate() {
            for (idx, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "seed {seed}: member {m} element {idx} diverged between 1 and 8 threads"
                );
            }
        }
    }
}
