//! Integration: single precision tracks double precision.
//!
//! The paper's f32 conversion is only admissible because the forecasts and
//! analyses stay statistically equivalent to f64 — these tests check that
//! property on the reproduced system at reduced scale.

use bda::letkf::weights::{apply_transform, compute_transform, LocalObs, TransformScratch};
use bda::num::{BatchedEigen, MatrixS, SplitMix64};
use bda::scale::base::Sounding;
use bda::scale::{Model, ModelConfig};

fn model_of<T: bda::num::Real>() -> Model<T> {
    let mut cfg = ModelConfig::reduced(10, 10, 10);
    cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
    cfg.davies_width = 0;
    let mut m = Model::<T>::new(cfg, &Sounding::convective());
    let g = m.cfg.grid.clone();
    m.state
        .add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 2000.0, 1200.0, 2.0);
    m
}

#[test]
fn short_forecasts_agree_across_precision() {
    let mut m32 = model_of::<f32>();
    let mut m64 = model_of::<f64>();
    m32.integrate(60.0).unwrap();
    m64.integrate(60.0).unwrap();

    // Compare domain-integrated diagnostics rather than pointwise values
    // (trajectories diverge chaotically; statistics must agree).
    let w32 = m32.state.w.interior_max_abs() as f64;
    let w64 = m64.state.w.interior_max_abs();
    assert!(
        (w32 - w64).abs() < 0.25 * w64.max(0.1),
        "updraft strength diverged: f32 {w32}, f64 {w64}"
    );

    let t32 = m32.state.theta.interior_mean() as f64;
    let t64 = m64.state.theta.interior_mean();
    assert!(
        (t32 - t64).abs() < 0.05,
        "mean theta' diverged: f32 {t32}, f64 {t64}"
    );
}

#[test]
fn letkf_posterior_mean_agrees_across_precision() {
    let k = 60;
    let mut rng = SplitMix64::new(4);
    let xs64: Vec<f64> = (0..k).map(|_| rng.gaussian(10.0, 2.0)).collect();
    let xs32: Vec<f32> = xs64.iter().map(|&x| x as f32).collect();

    let run64 = {
        let mean: f64 = xs64.iter().sum::<f64>() / k as f64;
        let yb: Vec<f64> = xs64.iter().map(|&x| x - mean).collect();
        let mut local = LocalObs::<f64>::new(k);
        local.push(15.0 - mean, 0.5 / 4.0, &yb);
        let mut solver = BatchedEigen::new();
        let mut scratch = TransformScratch::new();
        let mut trans = MatrixS::zeros(k);
        compute_transform(&local, 0.95, 1.0, &mut solver, &mut scratch, &mut trans);
        let mut vals = xs64.clone();
        let mut pert = vec![0.0; k];
        apply_transform(&mut vals, &trans, &mut pert);
        vals.iter().sum::<f64>() / k as f64
    };
    let run32 = {
        let mean: f32 = xs32.iter().sum::<f32>() / k as f32;
        let yb: Vec<f32> = xs32.iter().map(|&x| x - mean).collect();
        let mut local = LocalObs::<f32>::new(k);
        local.push(15.0 - mean, 0.5 / 4.0, &yb);
        let mut solver = BatchedEigen::new();
        let mut scratch = TransformScratch::new();
        let mut trans = MatrixS::zeros(k);
        compute_transform(&local, 0.95, 1.0, &mut solver, &mut scratch, &mut trans);
        let mut vals = xs32.clone();
        let mut pert = vec![0.0f32; k];
        apply_transform(&mut vals, &trans, &mut pert);
        (vals.iter().sum::<f32>() / k as f32) as f64
    };

    assert!(
        (run64 - run32).abs() < 5e-3,
        "posterior means diverged: f64 {run64}, f32 {run32}"
    );
}

#[test]
fn state_size_halves_in_single_precision() {
    // The memory/transfer argument behind the f32 conversion.
    let members64 = vec![vec![0.0_f64; 1000]; 8];
    let members32 = vec![vec![0.0_f32; 1000]; 8];
    let b64 = bda::io::encode_states(&members64).unwrap().len();
    let b32 = bda::io::encode_states(&members32).unwrap().len();
    assert_eq!(b64 - b32, 8 * 1000 * 4, "payload must shrink by half");
}
