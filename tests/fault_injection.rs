//! Integration: deterministic fault injection through the supervised
//! real-time pipeline.
//!
//! The acceptance scenarios of the fault-tolerance layer, run cross-crate:
//! real MP-PAWR volumes (bda-pawr codec) travel through the JIT-DT pipe
//! (bda-jitdt) under the cycle supervisor (bda-workflow), and every injected
//! fault — stage panics, corrupted payloads, transfer stalls, dropped
//! scans — must land in the documented disposition without disturbing the
//! neighboring cycles. Everything here is deterministic: same fault plan,
//! same outcome table.

use bda::jitdt::Bytes;
use bda::letkf::{ObsKind, Observation};
use bda::pawr::codec::{decode_volume, encode_volume};
use bda::pawr::scan::ScanResult;
use bda::workflow::{
    CycleDisposition, CycleSupervisor, DegradedMode, FaultPlan, FaultRates, ForecastInput,
    StageError, SupervisorReport,
};
use std::sync::mpsc;
use std::time::Duration;

/// A small synthetic volume whose mean reflectivity encodes the cycle
/// number, so the analysis product is checkable downstream.
fn volume_for(cycle: usize) -> Bytes {
    let obs: Vec<Observation<f32>> = (0..16)
        .map(|i| Observation {
            kind: if i % 4 == 0 {
                ObsKind::DopplerVelocity
            } else {
                ObsKind::Reflectivity
            },
            x: 1000.0 * i as f64,
            y: 500.0 * i as f64,
            z: 2000.0,
            value: cycle as f32 + i as f32 * 0.25,
            error_sd: 5.0,
        })
        .collect();
    let scan = ScanResult {
        time: (cycle as f64 + 1.0) * 30.0,
        obs,
        n_reflectivity: 12,
        n_doppler: 4,
        n_clear_air: 0,
        raw_bytes: 0,
    };
    encode_volume(&scan)
}

/// Forecast provenance per cycle, as the forecast stage saw it.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Provenance {
    Fresh(usize),
    Previous(usize),
    Persistence,
}

/// Run the supervised pipeline over real encoded volumes. The "analysis"
/// decodes the volume and extracts the cycle tag baked into the values;
/// the forecast stage records where its input came from.
fn run_supervised(
    supervisor: &CycleSupervisor,
    n_cycles: usize,
) -> (SupervisorReport, Vec<(usize, Provenance)>) {
    let (log_tx, log_rx) = mpsc::channel();
    let report = supervisor.run(
        n_cycles,
        |cycle| Ok(volume_for(cycle)),
        |_cycle, bytes| {
            let vol = decode_volume::<f32>(&bytes).map_err(|e| format!("{e:?}"))?;
            // The first observation's value is `cycle as f32`.
            let tag = vol
                .obs
                .first()
                .map(|o| o.value as usize)
                .ok_or("empty volume")?;
            Ok(tag)
        },
        move |cycle, input: ForecastInput<'_, usize>| {
            let p = match input {
                ForecastInput::Analysis(&tag) => Provenance::Fresh(tag),
                ForecastInput::PreviousAnalysis(&tag) => Provenance::Previous(tag),
                ForecastInput::Persistence => Provenance::Persistence,
            };
            log_tx.send((cycle, p)).unwrap();
            Ok(())
        },
    );
    let mut log: Vec<(usize, Provenance)> = log_rx.try_iter().collect();
    log.sort_by_key(|(c, _)| *c);
    (report, log)
}

fn supervisor_with(faults: FaultPlan) -> CycleSupervisor {
    CycleSupervisor {
        stall_timeout: Duration::from_millis(40),
        max_restarts: 3,
        backoff_base: Duration::from_millis(2),
        faults,
        ..CycleSupervisor::default()
    }
}

#[test]
fn assimilation_panic_degrades_one_cycle_and_spares_neighbors() {
    let plan = FaultPlan::parse("panic:assim@2", 5).unwrap();
    let sup = supervisor_with(plan);
    let (report, log) = run_supervised(&sup, 5);

    assert_eq!(report.cycles.len(), 5);
    for k in [0, 1, 3, 4] {
        assert_eq!(
            report.cycles[k].disposition,
            CycleDisposition::Completed,
            "cycle {k} must be untouched by the cycle-2 panic"
        );
    }
    match &report.cycles[2].disposition {
        CycleDisposition::Degraded {
            mode: DegradedMode::PreviousAnalysis,
            cause: StageError::Panicked { message, .. },
        } => assert!(message.contains("injected"), "cause: {message}"),
        other => panic!("cycle 2 should degrade to previous analysis, got {other:?}"),
    }
    // The forecast for cycle 2 ran from cycle 1's analysis.
    assert_eq!(log[2], (2, Provenance::Previous(1)));
    assert_eq!(log[3], (3, Provenance::Fresh(3)));
    // Degraded cycles still deliver: availability stays 1.0.
    assert!((report.availability() - 1.0).abs() < 1e-12);
}

#[test]
fn corrupt_volume_is_rejected_by_checksum_and_falls_to_persistence() {
    let plan = FaultPlan::parse("corrupt@1", 4).unwrap();
    let sup = supervisor_with(plan);
    let (report, log) = run_supervised(&sup, 4);

    match &report.cycles[1].disposition {
        CycleDisposition::Degraded {
            mode: DegradedMode::Persistence,
            cause: StageError::CorruptVolume { expected, got },
        } => assert_ne!(expected, got),
        other => panic!("corrupt volume should degrade to persistence, got {other:?}"),
    }
    assert_eq!(log[1], (1, Provenance::Persistence));
    // The corruption never reaches the decoder's assimilation product and
    // the next cycle's fresh volume is unaffected.
    assert_eq!(report.cycles[2].disposition, CycleDisposition::Completed);
    assert_eq!(log[2], (2, Provenance::Fresh(2)));
}

#[test]
fn stalled_transfer_retries_with_backoff_and_completes() {
    // Two watchdog windows stall, the budget allows three: the volume
    // arrives on the retry and the cycle completes normally.
    let plan = FaultPlan::parse("stall@1x2", 4).unwrap();
    let sup = supervisor_with(plan);
    let (report, log) = run_supervised(&sup, 4);

    assert_eq!(report.cycles[1].disposition, CycleDisposition::Completed);
    assert_eq!(
        report.cycles[1].transfer_retries, 2,
        "both injected watchdog windows must be counted"
    );
    assert_eq!(report.cycles[0].transfer_retries, 0);
    assert_eq!(log[1], (1, Provenance::Fresh(1)));
    assert_eq!(report.completed(), 4);
}

#[test]
fn exhausted_transfer_budget_becomes_a_degraded_cycle() {
    // Five stalled windows against a budget of three: the watchdog gives
    // up, the cycle degrades, and the pipeline keeps running.
    let plan = FaultPlan::parse("stall@1x5", 3).unwrap();
    let sup = supervisor_with(plan);
    let (report, log) = run_supervised(&sup, 3);

    match &report.cycles[1].disposition {
        CycleDisposition::Degraded {
            cause: StageError::TransferTimeout { attempts },
            ..
        } => assert_eq!(*attempts, sup.max_restarts + 1),
        other => panic!("exhausted retries should degrade, got {other:?}"),
    }
    assert!(report.cycles[1].disposition.delivered_forecast());
    assert_eq!(report.cycles[2].disposition, CycleDisposition::Completed);
    assert_eq!(log[2], (2, Provenance::Fresh(2)));
}

#[test]
fn dropped_scan_forecasts_from_persistence_on_first_cycle() {
    let plan = FaultPlan::parse("drop@0", 3).unwrap();
    let sup = supervisor_with(plan);
    let (report, log) = run_supervised(&sup, 3);

    match &report.cycles[0].disposition {
        CycleDisposition::Degraded {
            mode: DegradedMode::Persistence,
            cause: StageError::ScanDropped,
        } => {}
        other => panic!("dropped scan should degrade to persistence, got {other:?}"),
    }
    assert_eq!(log[0], (0, Provenance::Persistence));
    assert_eq!(report.completed(), 2);
}

#[test]
fn combined_fault_storm_is_deterministic() {
    let spec = "panic:assim@1,corrupt@2,stall@3x2,drop@4,panic:fcst@5";
    let run = || {
        let plan = FaultPlan::parse(spec, 7).unwrap();
        let sup = supervisor_with(plan);
        run_supervised(&sup, 7)
    };
    let (a, log_a) = run();
    let (b, log_b) = run();

    let labels: Vec<&str> = a.cycles.iter().map(|c| c.disposition.label()).collect();
    assert_eq!(
        labels,
        [
            "completed",
            "degraded",
            "degraded",
            "completed",
            "degraded",
            "failed",
            "completed"
        ]
    );
    // Same plan, same everything: dispositions, retries, and forecast
    // provenance are bit-identical across runs.
    for (ca, cb) in a.cycles.iter().zip(&b.cycles) {
        assert_eq!(ca.disposition, cb.disposition);
        assert_eq!(ca.transfer_retries, cb.transfer_retries);
    }
    assert_eq!(log_a, log_b);
    // The forecast-stage panic at cycle 5 is the only non-delivery.
    assert!((a.availability() - 6.0 / 7.0).abs() < 1e-12);
}

#[test]
fn random_fault_plans_are_reproducible_end_to_end() {
    let run = |seed: u64| {
        let plan = FaultPlan::random(seed, 24, FaultRates::default());
        let sup = supervisor_with(plan);
        run_supervised(&sup, 24)
    };
    let (a, log_a) = run(7);
    let (b, log_b) = run(7);
    for (ca, cb) in a.cycles.iter().zip(&b.cycles) {
        assert_eq!(ca.disposition, cb.disposition);
    }
    assert_eq!(log_a, log_b);

    // A different seed gives a different storm (overwhelmingly likely with
    // 24 cycles of independent fault draws).
    let (c, _) = run(8);
    let dispositions = |r: &SupervisorReport| -> Vec<String> {
        r.cycles
            .iter()
            .map(|c| format!("{:?}", c.disposition))
            .collect()
    };
    assert_ne!(dispositions(&a), dispositions(&c));
    // Whatever the seed injects, every cycle ends in exactly one
    // disposition and the report stays internally consistent.
    assert_eq!(
        a.completed() + a.degraded() + a.skipped() + a.failed(),
        a.cycles.len()
    );
}

#[test]
fn fault_free_supervision_is_transparent() {
    let sup = supervisor_with(FaultPlan::none());
    let (report, log) = run_supervised(&sup, 6);
    assert_eq!(report.completed(), 6);
    assert!((report.availability() - 1.0).abs() < 1e-12);
    for (k, entry) in log.iter().enumerate() {
        assert_eq!(*entry, (k, Provenance::Fresh(k)));
    }
    let table = report.table();
    assert!(table.contains("availability 100.0%"), "table:\n{table}");
}
