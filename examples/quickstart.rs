//! Quickstart: the whole BDA system in one minute.
//!
//! Prints the paper's configuration tables, runs a few 30-second
//! assimilation cycles of a reduced-scale OSSE, launches one short ensemble
//! forecast and verifies it against the simulated truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bda_core::osse::{Osse, OsseConfig};
use bda_core::systems;
use bda_letkf::LetkfConfig;
use bda_scale::ModelConfig;
use bda_verify::{ContingencyTable, PersistenceForecast};

fn main() {
    println!("=== BDA quickstart ===\n");

    // --- Table 2: the LETKF settings (full-scale defaults) ---
    let letkf = LetkfConfig::bda2021();
    println!("LETKF (Table 2): {} members, localization {:.0} m / {:.0} m, RTPP {}, obs errors {} dBZ / {} m/s",
        letkf.ensemble_size, letkf.loc_horizontal, letkf.loc_vertical, letkf.rtpp,
        letkf.obs_err_reflectivity_dbz, letkf.obs_err_doppler_ms);

    // --- Table 3: the SCALE settings ---
    let model = ModelConfig::inner_bda2021();
    println!(
        "SCALE (Table 3): {}x{}x{} at {:.0} m, dt = {} s, domain {:.0} x {:.0} x {:.1} km",
        model.grid.nx,
        model.grid.ny,
        model.grid.nz(),
        model.grid.dx,
        model.dt,
        model.grid.lx() / 1000.0,
        model.grid.ly() / 1000.0,
        model.grid.vertical.z_top() / 1000.0
    );

    // --- Table 1: problem size vs operational systems ---
    let bda = systems::bda2021();
    let best_other = systems::TABLE1
        .iter()
        .map(|s| s.problem_size_rate())
        .fold(0.0, f64::max);
    println!(
        "problem size: {:.2e} grid-point-members/s, {:.0}x the largest operational system\n",
        bda.problem_size_rate(),
        bda.problem_size_rate() / best_other
    );

    // --- A reduced-scale live system: same code path, laptop numbers ---
    println!("running a reduced OSSE (16x16x10 grid, 10 members, 30-s cycles)...");
    let cfg = OsseConfig::reduced(16, 10, 10, 3, 42);
    let mut osse = Osse::<f32>::new(cfg);
    println!("spinning up truth and ensemble until convection matures...");
    osse.spinup_system(840.0);
    println!("truth max reflectivity: {:.1} dBZ\n", osse.truth_max_dbz());

    for outcome in osse.run_cycles(4) {
        println!(
            "  t={:>4.0}s  obs scanned {:>5}  used {:>5}  analyzed points {:>5}  RMSE {:.2} -> {:.2} dBZ",
            outcome.time,
            outcome.n_obs_scanned,
            outcome.n_obs_used,
            outcome.analysis.points_analyzed,
            outcome.prior_rmse_dbz,
            outcome.posterior_rmse_dbz
        );
    }

    // Ensemble calibration after cycling (flat rank histogram = healthy).
    let rank = osse.rank_histogram(2000.0);
    println!(
        "\nensemble calibration: envelope-outlier fraction {:.2} (calibrated target {:.2})",
        rank.outlier_fraction(),
        rank.calibrated_outlier_fraction()
    );

    // --- One short ensemble forecast (part <2>), verified vs truth ---
    println!("\nlaunching a 5-minute ensemble forecast (mean + 3 members)...");
    let leads = [0.0, 60.0, 180.0, 300.0];
    let case = osse.run_forecast_case(&leads, 3);
    let persistence = PersistenceForecast::new(&case.observed_dbz_init);
    println!("  lead (s)   BDA threat   persistence threat   (30 dBZ threshold)");
    for (li, &lead) in case.leads.iter().enumerate() {
        let bda_t = ContingencyTable::from_fields(
            &case.forecast_dbz[li],
            &case.truth_dbz[li],
            30.0,
            Some(&case.mask),
        );
        let per_t = ContingencyTable::from_fields(
            persistence.at_lead(lead),
            &case.truth_dbz[li],
            30.0,
            Some(&case.mask),
        );
        let fmt = |s: Option<f64>| s.map(|v| format!("{v:.3}")).unwrap_or("  --".into());
        println!(
            "  {:>8.0}   {:>10}   {:>18}",
            lead,
            fmt(bda_t.threat_score()),
            fmt(per_t.threat_score())
        );
    }

    println!(
        "\ndone. Try `cargo run --release --example heavy_rain_osse` for the full Fig. 6/7 study."
    );
}
