//! 30-second vs slow refresh — the headline claim (§3, §8).
//!
//! "The typical 1-hour-refresh NWP is not designed to make precise
//! prediction of extreme rains ... the hourly refresh rate is too slow."
//! This study runs two OSSEs from the same seed over the same window: one
//! assimilates every 30 seconds (BDA), the other only every `slow` interval
//! (operational-style), then compares analysis error and forecast skill.
//!
//! ```text
//! cargo run --release --example refresh_rate_study [-- --window 600 --slow 300]
//! ```

use bda_core::osse::{Osse, OsseConfig};
use bda_verify::ContingencyTable;

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: f64| -> f64 {
        argv.iter()
            .position(|a| a == flag)
            .map(|i| argv[i + 1].parse().expect("number"))
            .unwrap_or(default)
    };
    let window = get("--window", 600.0); // total cycling window, s
    let slow = get("--slow", 300.0); // slow-refresh interval, s

    println!("=== refresh-rate study: 30 s vs {slow:.0} s assimilation ===\n");

    let make = || OsseConfig::reduced(16, 10, 10, 3, 42);

    // --- fast system: assimilate every 30 s ---
    let mut fast = Osse::<f32>::new(make());
    fast.spinup_system(720.0);
    let fast_cycles = (window / 30.0) as usize;
    let mut fast_last_rmse = f64::NAN;
    for out in fast.run_cycles(fast_cycles) {
        fast_last_rmse = out.posterior_rmse_dbz;
    }

    // --- slow system: same truth evolution, assimilation only every `slow` ---
    let mut slow_sys = Osse::<f32>::new(make());
    slow_sys.spinup_system(720.0);
    slow_sys.cfg.cycle_interval = slow;
    let slow_cycles = (window / slow).max(1.0) as usize;
    let mut slow_last_rmse = f64::NAN;
    for out in slow_sys.run_cycles(slow_cycles) {
        slow_last_rmse = out.posterior_rmse_dbz;
    }

    println!("analysis 2-km reflectivity RMSE after {window:.0} s of cycling:");
    println!("  30-s refresh:   {fast_last_rmse:.3} dBZ ({fast_cycles} analyses)");
    println!("  {slow:.0}-s refresh:  {slow_last_rmse:.3} dBZ ({slow_cycles} analyses)");

    // --- forecast skill comparison from the final analyses ---
    let leads = [0.0, 120.0, 300.0];
    let fast_case = fast.run_forecast_case(&leads, 3);
    let slow_case = slow_sys.run_forecast_case(&leads, 3);
    println!("\nforecast threat score (30 dBZ) from the final analysis:");
    println!(
        "{:>9} {:>12} {:>12}",
        "lead (s)", "30-s system", "slow system"
    );
    for (li, &lead) in leads.iter().enumerate() {
        let f = ContingencyTable::from_fields(
            &fast_case.forecast_dbz[li],
            &fast_case.truth_dbz[li],
            30.0,
            Some(&fast_case.mask),
        );
        let s = ContingencyTable::from_fields(
            &slow_case.forecast_dbz[li],
            &slow_case.truth_dbz[li],
            30.0,
            Some(&slow_case.mask),
        );
        let fmt = |x: Option<f64>| x.map(|v| format!("{v:.3}")).unwrap_or("--".into());
        println!(
            "{:>9.0} {:>12} {:>12}",
            lead,
            fmt(f.threat_score()),
            fmt(s.threat_score())
        );
    }

    if fast_last_rmse < slow_last_rmse {
        println!(
            "\nthe 30-s refresh tracks the rapidly evolving convection more closely \
             ({:.1}% lower analysis RMSE), the paper's core argument.",
            (1.0 - fast_last_rmse / slow_last_rmse) * 100.0
        );
    } else {
        println!(
            "\nat this reduced scale/seed the slow system kept up; rerun with a longer --window."
        );
    }
}
