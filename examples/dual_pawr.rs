//! Dual-PAWR federation — two MP-PAWRs assimilated across shard processes.
//!
//! "We have new MP-PAWRs installed in Osaka and Kobe, and the dual coverage
//! is available. Our recent simulation study ... suggested that multiple
//! PAWR coverage be beneficial for disastrous heavy rain prediction"
//! (Maejima et al. 2022, the paper's §8 outlook). The default mode makes
//! that outlook *operational*: the two-radar network drives a sharded
//! federation ([`bda::shard::LocalFederation`], S=2) — every shard
//! assimilates both radars' observations over its own x-strip and
//! assembles the rest from peer halos — and the example verifies the
//! federated analysis is **bit-identical** to the single-process dual-radar
//! run, failing (non-zero exit) otherwise. Coverage and analysis-quality
//! numbers against a single radar are reported alongside.
//!
//! ```text
//! cargo run --release --example dual_pawr [-- --cycles N] [--shards S]
//! cargo run --release --example dual_pawr -- --legacy   # original study
//! ```
//!
//! `--legacy` keeps the original single-process coverage study (single vs
//! dual radar, no federation).

use bda::core::osse::{Osse, OsseConfig};
use bda::shard::{FederationConfig, LocalFederation};

const SPINUP_S: f64 = 840.0;

fn dual_config() -> OsseConfig {
    OsseConfig::reduced(18, 10, 10, 3, 515).with_dual_radar()
}

/// Default mode: the dual-radar OSSE federated over `shards` shard
/// workers, bit-audited against the identical single-process run.
fn federated_main(cycles: usize, shards: usize) -> i32 {
    println!("=== dual-PAWR federation: 2 radars x {shards} shards x {cycles} cycles ===\n");

    // Single-process reference, same seed, same network, same spin-up —
    // every shard repeats the identical deterministic spin-up, which is
    // what lets the strips line up bit-for-bit afterwards.
    let mut reference = Osse::<f32>::new(dual_config());
    reference.spinup_system(SPINUP_S);
    let coverage = reference
        .coverage_mask(2000.0)
        .iter()
        .filter(|&&v| v)
        .count();
    let mut obs_used = 0;
    let mut last_rmse = f64::NAN;
    for out in reference.run_cycles(cycles) {
        obs_used = out.n_obs_used;
        last_rmse = out.posterior_rmse_dbz;
    }
    let ref_bits: Vec<Vec<u32>> = reference
        .analyzed_flats()
        .iter()
        .map(|f| f.iter().map(|v| v.to_bits()).collect())
        .collect();

    // The same campaign, sharded: each worker analyzes its x-strip of the
    // dual-coverage domain and assembles the peers' strips from halos.
    let dir = std::env::temp_dir().join(format!("bda-dual-pawr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = FederationConfig::new(dual_config(), shards, cycles, dir.clone());
    cfg.spinup_seconds = SPINUP_S;
    let mut fed = match LocalFederation::<f32>::start(cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("federation start: {e}");
            return 1;
        }
    };
    if let Err(e) = fed.run() {
        eprintln!("federation run: {e}");
        return 1;
    }

    let mut failures = 0;
    for (s, w) in fed.workers.iter().enumerate() {
        let bits: Vec<Vec<u32>> = w
            .osse
            .analyzed_flats()
            .iter()
            .map(|f| f.iter().map(|v| v.to_bits()).collect())
            .collect();
        if bits == ref_bits {
            println!("shard {s}: assembled dual-radar ensemble bit-identical to single-process");
        } else {
            eprintln!("shard {s}: FAIL — assembled ensemble diverged from reference");
            failures += 1;
        }
    }
    println!("\n{}", fed.table(0));
    println!(
        "dual coverage: {coverage} cells at 2 km, {obs_used} obs/cycle, final posterior RMSE {last_rmse:.3} dBZ"
    );
    let _ = std::fs::remove_dir_all(&dir);
    if failures == 0 {
        println!(
            "\ndual-PAWR federation OK: both radars, {shards} shards, one analysis — bit for bit"
        );
        0
    } else {
        eprintln!("\ndual-PAWR federation FAILED: {failures} shard(s) diverged");
        1
    }
}

/// `--legacy`: the original single-vs-dual coverage study.
fn legacy_run(label: &str, dual: bool, cycles: usize) -> (f64, usize, usize) {
    let mut cfg = OsseConfig::reduced(18, 10, 10, 3, 515);
    if dual {
        cfg = cfg.with_dual_radar();
    } else {
        // Match the dual setup's per-radar range so the comparison is about
        // geometry, not raw reach.
        cfg.radar.range_max = cfg.model.grid.lx() * 0.75;
        cfg.radar.x = cfg.model.grid.lx() * 0.3;
        cfg.radar.y = cfg.model.grid.ly() * 0.35;
    }
    let grid = cfg.model.grid.clone();
    let mut osse = Osse::<f32>::new(cfg);
    osse.spinup_system(840.0);

    let covered = osse.coverage_mask(2000.0).iter().filter(|&&v| v).count();
    let mut last_rmse = f64::NAN;
    let mut obs_used = 0;
    for out in osse.run_cycles(cycles) {
        last_rmse = out.posterior_rmse_dbz;
        obs_used = out.n_obs_used;
    }
    println!(
        "{label:<14} coverage {covered:>4}/{} cells  obs/cycle {obs_used:>6}  final posterior RMSE {last_rmse:.3} dBZ",
        grid.nx * grid.ny
    );
    (last_rmse, covered, obs_used)
}

fn legacy_main(cycles: usize) -> i32 {
    println!("=== dual-PAWR coverage study (§8 / Maejima et al. 2022) ===\n");
    let (single_rmse, single_cov, single_obs) = legacy_run("single radar", false, cycles);
    let (dual_rmse, dual_cov, dual_obs) = legacy_run("dual network", true, cycles);

    println!("\nsummary:");
    println!(
        "  coverage gain: {:+.0}% of the domain",
        (dual_cov as f64 - single_cov as f64) / (18.0 * 18.0) * 100.0
    );
    println!(
        "  observation gain: {:.1}x per cycle",
        dual_obs as f64 / single_obs.max(1) as f64
    );
    if dual_rmse < single_rmse {
        println!(
            "  analysis RMSE: {single_rmse:.3} -> {dual_rmse:.3} dBZ ({:.0}% better with dual coverage)",
            (1.0 - dual_rmse / single_rmse) * 100.0
        );
        println!("\nthe dual network fills the single radar's blind spots and adds a second");
        println!("Doppler look angle over the overlap — the benefit §8 anticipates for Expo 2025.");
    } else {
        println!(
            "  analysis RMSE: {single_rmse:.3} vs {dual_rmse:.3} dBZ (no gain at this scale/seed; try more --cycles)"
        );
    }
    0
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let num = |flag: &str, default: usize| -> usize {
        argv.iter()
            .position(|a| a == flag)
            .map(|i| argv[i + 1].parse().unwrap_or_else(|_| panic!("{flag} N")))
            .unwrap_or(default)
    };
    let cycles = num("--cycles", 4);
    let code = if argv.iter().any(|a| a == "--legacy") {
        legacy_main(cycles)
    } else {
        federated_main(cycles, num("--shards", 2))
    };
    std::process::exit(code);
}
