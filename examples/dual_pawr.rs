//! Dual-PAWR coverage study — the paper's §8 outlook, quantified.
//!
//! "We have new MP-PAWRs installed in Osaka and Kobe, and the dual coverage
//! is available. Our recent simulation study ... suggested that multiple
//! PAWR coverage be beneficial for disastrous heavy rain prediction"
//! (Maejima et al. 2022). This example runs the *same* OSSE twice — once
//! with a single radar, once with a two-radar network — and compares
//! coverage, observation counts and analysis quality.
//!
//! ```text
//! cargo run --release --example dual_pawr [-- --cycles N]
//! ```

use bda_core::osse::{Osse, OsseConfig};

fn run(label: &str, dual: bool, cycles: usize) -> (f64, usize, usize) {
    let mut cfg = OsseConfig::reduced(18, 10, 10, 3, 515);
    if dual {
        cfg = cfg.with_dual_radar();
    } else {
        // Match the dual setup's per-radar range so the comparison is about
        // geometry, not raw reach.
        cfg.radar.range_max = cfg.model.grid.lx() * 0.75;
        cfg.radar.x = cfg.model.grid.lx() * 0.3;
        cfg.radar.y = cfg.model.grid.ly() * 0.35;
    }
    let grid = cfg.model.grid.clone();
    let mut osse = Osse::<f32>::new(cfg);
    osse.spinup_system(840.0);

    let covered = osse.coverage_mask(2000.0).iter().filter(|&&v| v).count();
    let mut last_rmse = f64::NAN;
    let mut obs_used = 0;
    for out in osse.run_cycles(cycles) {
        last_rmse = out.posterior_rmse_dbz;
        obs_used = out.n_obs_used;
    }
    println!(
        "{label:<14} coverage {covered:>4}/{} cells  obs/cycle {obs_used:>6}  final posterior RMSE {last_rmse:.3} dBZ",
        grid.nx * grid.ny
    );
    (last_rmse, covered, obs_used)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let cycles: usize = argv
        .iter()
        .position(|a| a == "--cycles")
        .map(|i| argv[i + 1].parse().expect("--cycles N"))
        .unwrap_or(4);

    println!("=== dual-PAWR coverage study (§8 / Maejima et al. 2022) ===\n");
    let (single_rmse, single_cov, single_obs) = run("single radar", false, cycles);
    let (dual_rmse, dual_cov, dual_obs) = run("dual network", true, cycles);

    println!("\nsummary:");
    println!(
        "  coverage gain: {:+.0}% of the domain",
        (dual_cov as f64 - single_cov as f64) / (18.0 * 18.0) * 100.0
    );
    println!(
        "  observation gain: {:.1}x per cycle",
        dual_obs as f64 / single_obs.max(1) as f64
    );
    if dual_rmse < single_rmse {
        println!(
            "  analysis RMSE: {single_rmse:.3} -> {dual_rmse:.3} dBZ ({:.0}% better with dual coverage)",
            (1.0 - dual_rmse / single_rmse) * 100.0
        );
        println!("\nthe dual network fills the single radar's blind spots and adds a second");
        println!("Doppler look angle over the overlap — the benefit §8 anticipates for Expo 2025.");
    } else {
        println!(
            "  analysis RMSE: {single_rmse:.3} vs {dual_rmse:.3} dBZ (no gain at this scale/seed; try more --cycles)"
        );
    }
}
