//! Configuration sensitivity sweep — §5 / Taylor et al. (2023).
//!
//! Sweeps ensemble size and localization scale over short reduced OSSEs and
//! prints the skill/cost trade-off table the paper's production
//! configuration (1000 members, 2-km localization) was chosen from.
//!
//! ```text
//! cargo run --release --example sensitivity_sweep
//! ```

use bda_core::sensitivity::{render_sweep, run_sweep, SweepSpec};

fn main() {
    println!("=== SCALE-LETKF configuration sensitivity (reduced scale) ===\n");
    let mut spec = SweepSpec::quick(42);
    // The quickstart's storm-producing configuration, swept over the
    // paper's two key knobs.
    spec.base = bda_core::osse::OsseConfig::reduced(16, 10, 8, 3, 42);
    spec.ensemble_sizes = vec![4, 8, 16];
    spec.localization_scales_m = vec![1000.0, 2000.0, 4000.0];
    spec.cycles = 3;
    spec.spinup_s = 840.0;
    println!(
        "sweeping k in {:?} x localization in {:?} m, {} cycles each...\n",
        spec.ensemble_sizes, spec.localization_scales_m, spec.cycles
    );

    let points = run_sweep(&spec);
    print!("{}", render_sweep(&points));

    // Which configuration wins on skill; what it costs.
    let best = points
        .iter()
        .max_by(|a, b| a.improvement().total_cmp(&b.improvement()))
        .unwrap();
    println!(
        "\nbest skill: {} (improvement {:.3} dBZ at {:.2} s/cycle)",
        best.label,
        best.improvement(),
        best.seconds_per_cycle
    );
    println!(
        "the paper settled on 1000 members / 2-km localization as the accuracy-vs-time sweet spot\n\
         on 8008 Fugaku nodes; the same trade-off structure appears at this scale."
    );
}
