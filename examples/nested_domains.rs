//! One-way nesting: JMA forcing → outer 1.5-km domain → inner 500-m domain.
//!
//! Reproduces the domain chain of Fig. 3b at reduced scale: synthetic
//! 3-hourly large-scale profiles drive the outer domain through its Davies
//! rim; the outer state is interpolated to the inner domain's boundary
//! every cycle; convection is triggered inside the inner domain.
//!
//! ```text
//! cargo run --release --example nested_domains [-- --minutes 10]
//! ```

use bda_grid::{GridSpec, VerticalCoord};
use bda_scale::base::Sounding;
use bda_scale::forcing::{LargeScaleForcing, TriggerSchedule};
use bda_scale::model::Boundary;
use bda_scale::nesting::outer_to_inner_boundary;
use bda_scale::{Model, ModelConfig, PhysicsSwitches};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let minutes: f64 = argv
        .iter()
        .position(|a| a == "--minutes")
        .map(|i| argv[i + 1].parse().expect("--minutes N"))
        .unwrap_or(10.0);

    println!("=== one-way nesting (Fig. 3b at reduced scale) ===\n");

    // Shared vertical column (nesting requires matching levels).
    let vertical = VerticalCoord::stretched(10, 16_400.0, 1.08);

    // Outer domain: 27 km at 1.5-km spacing, full rim, JMA-style forcing.
    let mut outer_cfg = ModelConfig::outer_bda2021();
    outer_cfg.grid = GridSpec::new(18, 18, 1500.0, vertical.clone());
    outer_cfg.sound_speed = 150.0;
    outer_cfg.dt = 3.0;
    outer_cfg.davies_width = 3;
    outer_cfg.physics = PhysicsSwitches::default();
    outer_cfg.validate();

    // Inner domain: 12 km at 500-m spacing, nested inside with a margin.
    let mut inner_cfg = ModelConfig::reduced(24, 24, 10);
    inner_cfg.grid = GridSpec::new(24, 24, 500.0, vertical);
    inner_cfg.davies_width = 3;
    inner_cfg.halo = bda_grid::halo::HaloPolicy::Clamp;
    inner_cfg.validate();
    let offset = (7_500.0, 7_500.0); // inner origin inside the outer domain

    let sounding = Sounding::convective();
    let mut outer = Model::<f32>::new(outer_cfg.clone(), &sounding);
    outer.boundary = Boundary::Profiles(LargeScaleForcing::new(
        sounding.clone(),
        outer_cfg.grid.vertical.z_center.clone(),
        7,
    ));

    let mut inner = Model::<f32>::new(inner_cfg.clone(), &sounding);
    inner.triggers = TriggerSchedule::random_multicell(
        inner_cfg.grid.lx(),
        inner_cfg.grid.ly(),
        60.0,
        240.0,
        2,
        11,
    );

    println!(
        "outer: {}x{} at {:.1} km; inner: {}x{} at {:.1} km, offset ({:.1}, {:.1}) km\n",
        outer_cfg.grid.nx,
        outer_cfg.grid.ny,
        outer_cfg.grid.dx / 1000.0,
        inner_cfg.grid.nx,
        inner_cfg.grid.ny,
        inner_cfg.grid.dx / 1000.0,
        offset.0 / 1000.0,
        offset.1 / 1000.0
    );

    let coupling_interval = 30.0; // boundary refresh, like the 30-s cycle
    let n_couplings = (minutes * 60.0 / coupling_interval) as usize;
    for step in 0..n_couplings {
        outer.integrate(coupling_interval).expect("outer blew up");
        let bf = outer_to_inner_boundary(&outer.state, &outer_cfg.grid, &inner_cfg.grid, offset);
        inner.boundary = Boundary::Fields(Box::new(bf));
        inner.integrate(coupling_interval).expect("inner blew up");

        if step % 4 == 3 {
            // Compare inner rim wind with the outer field it relaxes toward.
            let rim_u = inner.state.u.at(0, 12, 1);
            let outer_u = match &inner.boundary {
                Boundary::Fields(bf) => bf.u.at(0, 12, 1),
                _ => unreachable!(),
            };
            println!(
                "t={:>5.0}s  outer u_max {:>5.2}  inner rim u {:>6.2} (target {:>6.2})  inner w_max {:>5.2}",
                inner.state.time,
                outer.state.u.interior_max_abs(),
                rim_u,
                outer_u,
                inner.state.w.interior_max_abs()
            );
        }
    }

    // Final check: the rim tracks the driving field.
    let mut err = 0.0f64;
    let mut n = 0;
    if let Boundary::Fields(bf) = &inner.boundary {
        for j in 0..inner_cfg.grid.ny {
            for k in 0..inner_cfg.grid.nz() {
                err +=
                    (inner.state.u.at(0, j as isize, k) - bf.u.at(0, j as isize, k)).abs() as f64;
                n += 1;
            }
        }
    }
    println!(
        "\nmean |inner rim u - outer target| = {:.3} m/s over {n} rim points",
        err / n as f64
    );
    println!("the inner domain receives its large-scale environment from the outer ensemble,");
    println!("exactly the Fig. 3b data dependency (JMA -> outer 1.5 km -> inner 500 m).");
}
