//! federation — the multi-process shard federation, supervised for real.
//!
//! The paper's analysis was spread over 11,580 Fugaku nodes; one process
//! owning every member and every radar is a single fault domain around the
//! whole forecast. This example runs the `bda-shard` federation the way
//! production would: `S` *separate OS processes* (this same binary,
//! re-invoked with `--shard i`), each analyzing its own x-strip of the
//! LETKF domain, exchanging analyzed-strip halos over the file-flavoured
//! JIT-DT bus, and checkpointing independently under shard-scoped
//! filenames in one shared directory.
//!
//! A [`bda::workflow::ShardSupervisor`] watches per-cycle readiness
//! records on the bus, injects scheduled `shardkill:S@C` faults as real
//! SIGKILLs, respawns killed workers (which resume from their own scoped
//! CRC-guarded checkpoint and replay forward from the halos still spooled
//! on the bus), marks shards dead past the respawn budget, and posts the
//! federation-wide forecast-only directive on quorum loss.
//!
//! ```text
//! cargo run --release --example federation -- \
//!     [--shards 2] [--cycles 4] [--seed 11] [--dual] \
//!     [--faults "shardkill:1@2"] [--parity] [--dir PATH] \
//!     [--net] [--chaos] [--expect "halo-reuse:0@2,halo-reuse:1@2"]
//! ```
//!
//! `--dual` federates two simulated MP-PAWRs (the Osaka/Kobe dual
//! coverage of §8). `--parity` additionally runs the identical OSSE
//! single-process inside the supervisor and **fails (non-zero exit)**
//! unless every shard's final checkpointed ensemble is bit-identical to
//! the reference and every bus outcome record matches byte-for-byte —
//! SIGKILLs and all.
//!
//! `--net` moves the halo path onto loopback TCP (`bda::shard::NetBus`:
//! sealed `BDAN` frames, epoch fencing, `REQ`-pull recovery); the file
//! bus stays underneath as the control plane. `--chaos` (implies
//! `--net`) additionally puts a deterministic in-path `ChaosProxy` in
//! front of every shard's listener and routes the fault plan's network
//! faults (`partition:A-B@C`, `netstall:S@C`, `wiregarbage:S@C`)
//! through it. `--expect "label:S@C,..."` then asserts the outcome
//! table: every listed (shard, cycle) record must carry exactly that
//! label and **every other record must read `completed`** — the typed
//! degradation ladder, pinned from outside the process tree.

use bda::core::osse::{Osse, OsseConfig};
use bda::shard::{
    ChaosProxy, HaloBus, HaloTransport, NetBus, NetBusConfig, ShardConfig, ShardWorker,
};
use bda::workflow::{FaultPlan, FederationBus, LinkHealth, ShardSupervisor, ShardSupervisorConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

#[derive(Clone)]
struct Opts {
    shards: usize,
    cycles: usize,
    seed: u64,
    dual: bool,
    faults: String,
    parity: bool,
    /// Socket transport: halos over loopback TCP instead of the file bus.
    net: bool,
    /// In-path chaos proxies (implies `net`).
    chaos: bool,
    /// Expected outcome-label overrides, `"label:S@C,..."` — all other
    /// records must be `completed`. Empty string disables the audit.
    expect: String,
    dir: PathBuf,
    /// Worker mode: which shard this process is.
    shard: Option<usize>,
}

fn parse_opts() -> Opts {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<&str> {
        argv.iter()
            .position(|a| a == flag)
            .map(|i| argv[i + 1].as_str())
    };
    let num = |flag: &str, default: usize| -> usize {
        get(flag)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("{flag} N")))
            .unwrap_or(default)
    };
    let chaos = argv.iter().any(|a| a == "--chaos");
    Opts {
        shards: num("--shards", 2),
        cycles: num("--cycles", 4),
        seed: get("--seed")
            .map(|v| v.parse().expect("--seed S"))
            .unwrap_or(11),
        dual: argv.iter().any(|a| a == "--dual"),
        faults: get("--faults").unwrap_or("shardkill:1@2").to_string(),
        parity: argv.iter().any(|a| a == "--parity"),
        net: chaos || argv.iter().any(|a| a == "--net"),
        chaos,
        expect: get("--expect").unwrap_or("").to_string(),
        dir: get("--dir").map(PathBuf::from).unwrap_or_else(|| {
            std::env::temp_dir().join(format!("bda-federation-{}", std::process::id()))
        }),
        shard: get("--shard").map(|v| v.parse().expect("--shard I")),
    }
}

fn osse_config(o: &Opts) -> OsseConfig {
    let cfg = OsseConfig::reduced(10, 8, 6, 2, o.seed);
    if o.dual {
        cfg.with_dual_radar()
    } else {
        cfg
    }
}

/// How long a peer's collect waits for a halo before stepping onto the
/// ladder. Generous by default: a killed peer needs time to respawn and
/// replay, and a false degradation would wreck the parity audit. Chaos
/// mode shortens it — injected partitions/stalls must *expire* onto the
/// ladder within smoke-test time — while still leaving a respawned
/// worker room to replay.
fn halo_deadline(o: &Opts) -> Duration {
    if o.chaos {
        Duration::from_secs(8)
    } else {
        Duration::from_secs(120)
    }
}

/// How long the in-path proxy holds a `netstall`ed message: past the
/// halo deadline, so stalled peers degrade instead of racing the clock.
fn stall_delay(o: &Opts) -> Duration {
    halo_deadline(o) + Duration::from_secs(12)
}

fn shard_config(o: &Opts, shard: usize) -> ShardConfig {
    let mut cfg = ShardConfig::new(osse_config(o), o.shards, shard, o.cycles);
    cfg.bus_dir = o.dir.join("bus");
    cfg.ckpt_dir = o.dir.join("ckpt");
    cfg.plan = FaultPlan::parse(&o.faults, o.cycles).expect("--faults SPEC");
    cfg.halo_deadline = halo_deadline(o);
    cfg
}

/// The scope tag under which a finished worker checkpoints its *final*
/// state (distinct from the mid-campaign `sNNN` resume checkpoints) so
/// the supervisor can audit bit-parity across process boundaries.
fn final_scope(shard: usize) -> String {
    format!("f{shard:03}")
}

/// Worker mode: run one shard to completion, then persist the final
/// ensemble for the supervisor's parity audit. With `--net` the halos
/// ride a fresh [`NetBus`] (respawns bump the durable epoch, fencing any
/// zombie predecessor); the transport is the *only* difference between
/// the two paths — [`drive_worker`] is the same cycle code either way.
fn worker_main(o: &Opts, shard: usize) -> i32 {
    let cfg = shard_config(o, shard);
    if o.net {
        let mut bc = NetBusConfig::new(shard, o.shards);
        // In chaos mode the proxy owns the advertised registry slot; the
        // real listener hides under the raw registry.
        bc.raw_registry = o.chaos;
        match NetBus::start(bc, cfg.bus_dir.clone()) {
            Ok(bus) => drive_worker(o, shard, cfg, bus),
            Err(e) => {
                eprintln!("shard {shard}: netbus start failed: {e}");
                1
            }
        }
    } else {
        match HaloBus::new(&cfg.bus_dir) {
            Ok(bus) => drive_worker(o, shard, cfg, bus),
            Err(e) => {
                eprintln!("shard {shard}: open bus: {e}");
                1
            }
        }
    }
}

fn drive_worker<B: HaloTransport>(o: &Opts, shard: usize, cfg: ShardConfig, bus: B) -> i32 {
    let ckpt_dir = cfg.ckpt_dir.clone();
    let (mut w, resumed) = match ShardWorker::<f32, B>::start_or_resume_on(cfg, bus) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("shard {shard}: start failed: {e}");
            return 1;
        }
    };
    if resumed {
        eprintln!(
            "shard {shard}: resumed from scoped checkpoint at cycle {}",
            w.next_cycle()
        );
    }
    if let Err(e) = w.run_to_completion() {
        eprintln!("shard {shard}: {e}");
        return 1;
    }
    let mut snap = w.osse.snapshot_state();
    snap.next_cycle = o.cycles as u64;
    snap.outcomes = w.records.clone();
    if let Err(e) = bda::io::write_checkpoint_scoped(&ckpt_dir, Some(&final_scope(shard)), &snap) {
        eprintln!("shard {shard}: final checkpoint: {e}");
        return 1;
    }
    0
}

/// `HaloBus` as the supervisor's control plane.
struct BusCtl(HaloBus);

impl FederationBus for BusCtl {
    fn shard_ready(&self, cycle: u64, shard: usize) -> bool {
        self.0.has_record(cycle, shard)
    }
    fn mark_dead(&self, shard: usize) {
        let _ = self.0.mark_dead(shard);
    }
    fn mark_alive(&self, shard: usize) {
        let _ = self.0.mark_alive(shard);
    }
    fn set_forecast_only_from(&self, cycle: u64) {
        let _ = self.0.set_forecast_only_from(cycle);
    }
    fn link_health(&self, shard: usize) -> Vec<LinkHealth> {
        // Socket transports publish their per-peer link view here every
        // heartbeat; file federations never write one, so this stays
        // empty (and costs nothing) without --net.
        self.0.read_link_states(shard)
    }
}

/// The reference record line for one unfaulted single-process cycle, in
/// the exact grammar shard workers write to the bus.
fn reference_lines(o: &Opts) -> (Vec<String>, Vec<Vec<u32>>) {
    let mut osse = Osse::<f32>::new(osse_config(o));
    let mut lines = Vec::with_capacity(o.cycles);
    for _ in 0..o.cycles {
        let out = osse.cycle();
        let label = if out.below_quorum {
            "below-quorum"
        } else if out.n_obs_used == 0 {
            "forecast-only"
        } else if out.ensemble_degraded() {
            "degraded"
        } else {
            "completed"
        };
        let mut detail = format!(
            "alive {}, obs {}/{}, {}, rmse {:.9e}->{:.9e}",
            out.n_alive,
            out.n_obs_used,
            out.n_obs_scanned,
            out.qc.summary(),
            out.prior_rmse_dbz,
            out.posterior_rmse_dbz
        );
        if !out.respawned.is_empty() {
            detail.push_str(&format!(", respawned {:?}", out.respawned));
        }
        for e in &out.member_errors {
            detail.push_str(&format!(", {e}"));
        }
        lines.push(format!("{label} {detail}"));
    }
    let bits = osse
        .analyzed_flats()
        .iter()
        .map(|f| f.iter().map(|v| v.to_bits()).collect())
        .collect();
    (lines, bits)
}

fn supervisor_main(o: &Opts) -> i32 {
    let _ = std::fs::remove_dir_all(&o.dir);
    let bus = match HaloBus::new(o.dir.join("bus")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("open bus: {e}");
            return 1;
        }
    };
    let plan = FaultPlan::parse(&o.faults, o.cycles).expect("--faults SPEC");
    let exe = std::env::current_exe().expect("current_exe");
    let opts = o.clone();
    let spawn = move |shard: usize, respawn: bool| -> std::io::Result<Child> {
        if respawn {
            eprintln!("supervisor: respawning shard {shard}");
        }
        let mut cmd = Command::new(&exe);
        cmd.arg("--shard")
            .arg(shard.to_string())
            .arg("--shards")
            .arg(opts.shards.to_string())
            .arg("--cycles")
            .arg(opts.cycles.to_string())
            .arg("--seed")
            .arg(opts.seed.to_string())
            .arg("--faults")
            .arg(&opts.faults)
            .arg("--dir")
            .arg(&opts.dir)
            .stdout(Stdio::null());
        if opts.dual {
            cmd.arg("--dual");
        }
        if opts.chaos {
            cmd.arg("--chaos");
        } else if opts.net {
            cmd.arg("--net");
        }
        cmd.spawn()
    };

    // Chaos mode: one in-path proxy per shard, started before any worker
    // so the advertised registry slots are the proxies' from the first
    // dial. Held for the whole campaign — a respawned worker re-registers
    // its raw port and reappears behind the same stable proxy.
    let mut proxies = Vec::new();
    if o.chaos {
        for s in 0..o.shards {
            match ChaosProxy::start(
                s,
                plan.clone(),
                o.dir.join("bus"),
                stall_delay(o),
                o.seed ^ 0x9E37,
            ) {
                Ok(p) => proxies.push(p),
                Err(e) => {
                    eprintln!("chaos proxy for shard {s}: {e}");
                    return 1;
                }
            }
        }
    }

    let mut cfg = ShardSupervisorConfig::new(o.shards, o.cycles);
    cfg.cycle_deadline = Duration::from_secs(120);
    cfg.poll = Duration::from_millis(25);
    cfg.plan = plan.clone();
    let mut sup = match ShardSupervisor::start(cfg, BusCtl(bus.clone()), spawn) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("spawn federation: {e}");
            return 1;
        }
    };
    println!(
        "=== federation: {} shards x {} cycles{}{} | faults: {} ===\n",
        o.shards,
        o.cycles,
        if o.dual { ", dual MP-PAWR" } else { "" },
        if o.chaos {
            ", socket bus + chaos proxies"
        } else if o.net {
            ", socket bus"
        } else {
            ""
        },
        if o.faults.is_empty() {
            "none"
        } else {
            &o.faults
        }
    );
    let report = sup.run();
    println!("{}", report.table());

    let mut failures = 0usize;
    // Every (cycle, shard) must have produced an outcome record — a hole
    // means a cycle was lost, which the federation never allows short of
    // a dead shard.
    for s in 0..o.shards {
        if report.dead[s] {
            eprintln!("FAIL: shard {s} died (respawn budget exhausted)");
            failures += 1;
            continue;
        }
        for c in 0..o.cycles as u64 {
            if !bus.has_record(c, s) {
                eprintln!("FAIL: shard {s} has no outcome record for cycle {c}");
                failures += 1;
            }
        }
    }
    let scheduled_kills: usize = (0..o.cycles).map(|c| plan.shard_kills(c).len()).sum();
    let total_respawns: usize = report.respawns.iter().sum();
    if scheduled_kills > 0 && total_respawns == 0 {
        eprintln!("FAIL: {scheduled_kills} kills scheduled but no shard was ever respawned");
        failures += 1;
    }
    println!(
        "kills injected: {scheduled_kills}, respawns: {total_respawns}, dead: {}",
        report.dead.iter().filter(|&&d| d).count()
    );

    if !o.expect.is_empty() {
        let mut expected: HashMap<(usize, u64), String> = HashMap::new();
        for item in o.expect.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (label, at) = item.split_once(':').expect("--expect label:S@C,...");
            let (s, c) = at.split_once('@').expect("--expect label:S@C,...");
            expected.insert(
                (
                    s.parse().expect("--expect shard index"),
                    c.parse().expect("--expect cycle"),
                ),
                label.to_string(),
            );
        }
        println!(
            "\nexpectation audit: {} pinned record(s), all others must be `completed`:",
            expected.len()
        );
        for s in 0..o.shards {
            for c in 0..o.cycles as u64 {
                let want = expected
                    .get(&(s, c))
                    .map(String::as_str)
                    .unwrap_or("completed");
                match bus.read_record(c, s) {
                    Some(line) => {
                        let got = line.split_whitespace().next().unwrap_or("");
                        if got == want {
                            if want != "completed" {
                                println!("  shard {s} cycle {c}: {got} (as scheduled)");
                            }
                        } else {
                            eprintln!("FAIL: shard {s} cycle {c}: expected `{want}`, got `{got}`");
                            failures += 1;
                        }
                    }
                    None => {
                        eprintln!("FAIL: shard {s} cycle {c}: expected `{want}`, no record");
                        failures += 1;
                    }
                }
            }
        }
    }

    if o.parity {
        println!("\nparity audit vs single-process reference:");
        let (ref_lines, ref_bits) = reference_lines(o);
        let ckpt = o.dir.join("ckpt");
        for s in 0..o.shards {
            for (c, want) in ref_lines.iter().enumerate() {
                match bus.read_record(c as u64, s) {
                    Some(got) if &got == want => {}
                    Some(got) => {
                        eprintln!("FAIL: shard {s} cycle {c} record diverged:\n  want: {want}\n  got:  {got}");
                        failures += 1;
                    }
                    None => {
                        eprintln!("FAIL: shard {s} cycle {c} record missing");
                        failures += 1;
                    }
                }
            }
            match bda::io::latest_checkpoint_scoped::<f32>(&ckpt, Some(&final_scope(s))) {
                Ok(Some((_, snap))) => {
                    let mut replica = Osse::<f32>::new(osse_config(o));
                    replica.restore_state(&snap);
                    let bits: Vec<Vec<u32>> = replica
                        .analyzed_flats()
                        .iter()
                        .map(|f| f.iter().map(|v| v.to_bits()).collect())
                        .collect();
                    if bits == ref_bits {
                        println!(
                            "  shard {s}: final ensemble bit-identical, {} records match",
                            ref_lines.len()
                        );
                    } else {
                        eprintln!("FAIL: shard {s} final ensemble diverged from reference bits");
                        failures += 1;
                    }
                }
                other => {
                    eprintln!("FAIL: shard {s} final checkpoint unreadable: {other:?}");
                    failures += 1;
                }
            }
        }
    }

    if failures == 0 {
        println!("\nfederation OK: every cycle accounted for, every kill survived");
        0
    } else {
        eprintln!("\nfederation FAILED: {failures} check(s)");
        1
    }
}

fn main() {
    let o = parse_opts();
    let code = match o.shard {
        Some(shard) => worker_main(&o, shard),
        None => supervisor_main(&o),
    };
    std::process::exit(code);
}
