//! The live three-thread pipeline — Figs. 2 and 4 with real computation.
//!
//! A radar thread scans the (advancing) nature run and encodes each volume;
//! the bytes travel through the JIT-DT pipe to the assimilation thread,
//! which decodes, applies QC and runs the LETKF; the analysis mean is handed
//! to the forecast thread, which integrates it forward. Per-cycle stage
//! timings are reported with the Fig. 4 segmentation.
//!
//! With `--inject` the pipeline runs under the fault-tolerant cycle
//! supervisor and the requested faults are injected deterministically; the
//! per-cycle outcome table and availability (the Fig. 5 accounting) are
//! printed at the end.
//!
//! With `--checkpoint-dir` (or `--resume`) the run switches to the
//! sequential checkpointed campaign: atomic CRC-checked snapshots are
//! written every `--every` cycles, member faults (`nan:M@C`, `blowup:M@C`)
//! exercise quarantine/respawn, and an injected `crash@C` kills the process
//! abruptly (exit 137, the `kill -9` stand-in) — re-running the same
//! command resumes from the newest valid snapshot bit-for-bit. The
//! deterministic outcome table can be diffed across runs via `--table-file`.
//!
//! ```text
//! cargo run --release --example realtime_pipeline [-- --cycles N] \
//!     [--inject "panic:assim@2,corrupt@3,stall@1x2,drop@4,dup@2,stale@3,nan:1@2,crash@3,random:SEED"] \
//!     [--checkpoint-dir DIR] [--every N] [--resume CKPT] [--table-file PATH]
//! ```
//!
//! The assimilation thread decodes each volume in salvage mode (keeping the
//! intact records of a corrupted transfer) and runs the multi-stage QC
//! pipeline; each cycle's QC accounting — accepted/total plus per-stage
//! rejections — is printed alongside the analysis.

use bda_core::osse::{Osse, OsseConfig};
use bda_core::resume::OsseCampaign;
use bda_letkf::{analyze, EnsembleMatrix, ObsEnsemble, QcPipeline, StateLayout};
use bda_pawr::codec::{decode_volume_salvage, encode_volume, ValueBounds};
use bda_pawr::operator::ensemble_equivalents;
use bda_pawr::PawrSimulator;
use bda_scale::model::Boundary;
use bda_scale::{Ensemble, Model, ModelState, ANALYZED_VARS};
use bda_verify::maps::area_fraction;
use bda_workflow::{
    CampaignTermination, CycleSupervisor, FaultPlan, ForecastInput, RealtimePipeline,
    ResumableCampaign,
};
use std::path::PathBuf;

/// The sequential checkpointed campaign: survives `kill -9`, resumes
/// bit-for-bit, and proves it through a timing-free outcome table.
fn run_checkpointed_campaign(
    n_cycles: usize,
    inject: Option<&str>,
    checkpoint_dir: Option<PathBuf>,
    every: usize,
    resume_from: Option<PathBuf>,
    table_file: Option<PathBuf>,
) {
    let faults = match inject {
        Some(spec) => FaultPlan::parse(spec, n_cycles).unwrap_or_else(|e| {
            eprintln!("bad --inject spec: {e}");
            std::process::exit(2);
        }),
        None => FaultPlan::none(),
    };
    let mut osse = Osse::<f32>::new(OsseConfig::reduced(10, 8, 6, 2, 11));
    // Spin convection up before the campaign so every cycle assimilates a
    // live reflectivity field: the RMSE columns in the outcome table then
    // carry real float content, which is what makes the byte-level table
    // diffs (kill-and-resume, 1-vs-N-thread determinism parity) meaningful.
    // 1080 s is mid-storm for this config's 0-300 s trigger window; earlier
    // the field is below the detectability floor, later the cells decay.
    osse.spinup_system(1080.0);
    let mut app = OsseCampaign::new(osse, faults.clone());
    let campaign = ResumableCampaign {
        n_cycles,
        checkpoint_dir,
        checkpoint_every: every,
        faults,
    };
    let run = match &resume_from {
        Some(path) => campaign.resume(&mut app, path),
        None => campaign.run(&mut app),
    }
    .unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        std::process::exit(1);
    });
    if let CampaignTermination::Crashed { at_cycle } = run.termination {
        // A killed process writes no table and no farewell checkpoint.
        eprintln!("injected crash at cycle {at_cycle}: dying abruptly (kill -9 stand-in)");
        std::process::exit(137);
    }
    if let Some(from) = &run.resumed_from {
        println!(
            "resumed from {} at cycle {}",
            from.display(),
            run.start_cycle
        );
    }
    let table = run.table();
    if let Some(path) = &table_file {
        std::fs::write(path, &table).expect("write --table-file");
    }
    println!(
        "{} checkpoint(s) written\n\n{table}",
        run.checkpoints_written
    );
}

fn main() {
    let mut n_cycles = 5usize;
    let mut inject: Option<String> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut every = 1usize;
    let mut resume_from: Option<PathBuf> = None;
    let mut table_file: Option<PathBuf> = None;
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--cycles") {
        n_cycles = argv[i + 1].parse().expect("--cycles N");
    }
    if let Some(i) = argv.iter().position(|a| a == "--inject") {
        match argv.get(i + 1) {
            Some(spec) => inject = Some(spec.clone()),
            None => {
                eprintln!("--inject requires a fault spec, e.g. --inject \"panic:assim@2\"");
                std::process::exit(2);
            }
        }
    }
    if let Some(i) = argv.iter().position(|a| a == "--checkpoint-dir") {
        checkpoint_dir = Some(PathBuf::from(
            argv.get(i + 1).expect("--checkpoint-dir DIR"),
        ));
    }
    if let Some(i) = argv.iter().position(|a| a == "--every") {
        every = argv[i + 1].parse().expect("--every N");
    }
    if let Some(i) = argv.iter().position(|a| a == "--resume") {
        resume_from = Some(PathBuf::from(argv.get(i + 1).expect("--resume CKPT")));
    }
    if let Some(i) = argv.iter().position(|a| a == "--table-file") {
        table_file = Some(PathBuf::from(argv.get(i + 1).expect("--table-file PATH")));
    }

    if checkpoint_dir.is_some() || resume_from.is_some() {
        println!("=== checkpointed campaign ({n_cycles} cycles of 30 model-seconds) ===\n");
        run_checkpointed_campaign(
            n_cycles,
            inject.as_deref(),
            checkpoint_dir,
            every,
            resume_from,
            table_file,
        );
        return;
    }

    println!("=== live real-time pipeline ({n_cycles} cycles of 30 model-seconds) ===\n");

    let cfg = OsseConfig::reduced(14, 10, 8, 3, 99);
    let grid = cfg.model.grid.clone();
    let model_cfg = cfg.model.clone();
    let letkf_cfg = cfg.letkf.clone();
    let radar_cfg = cfg.radar.clone();
    let base = bda_scale::BaseState::<f32>::from_sounding(
        &cfg.sounding,
        &grid.vertical,
        model_cfg.sound_speed,
    );

    // Radar-side: the truth and the scanner.
    let mut nature = Model::from_parts(model_cfg.clone(), base.clone());
    nature.triggers = cfg.nature_triggers.clone();
    println!("spinning up convection before going live...");
    nature.integrate(720.0).expect("nature blew up");
    let sim = PawrSimulator::new(radar_cfg.clone());
    let sim_scan = sim.clone();
    let base_scan = base.clone();
    let grid_scan = grid.clone();

    // Assimilation-side: the ensemble.
    let init = ModelState::init_from_base(&grid, &base);
    let mut ensemble = Ensemble::from_perturbations(
        &init,
        &model_cfg,
        letkf_cfg.ensemble_size,
        cfg.seed,
        cfg.init_theta_sd,
        cfg.init_qv_sd,
    );
    // Spin the ensemble up alongside the truth so members carry storms too.
    let spin_triggers = cfg.nature_triggers.clone();
    ensemble
        .forecast_with(&model_cfg, &base, 720.0, |_, engine| {
            engine.triggers = spin_triggers.clone();
        })
        .expect("ensemble spin-up failed");
    let layout = StateLayout {
        nx: grid.nx,
        ny: grid.ny,
        nz: grid.nz(),
        nvar: ANALYZED_VARS.len(),
        dx: grid.dx,
        z_center: grid.vertical.z_center.clone(),
    };
    let model_cfg_a = model_cfg.clone();
    let base_a = base.clone();
    let grid_a = grid.clone();
    let radar_a = radar_cfg.clone();

    // Forecast-side engine.
    let mut fc_engine = Model::from_parts(model_cfg.clone(), base.clone());
    let base_f = base.clone();
    let grid_f = grid.clone();

    if let Some(spec) = inject {
        let plan = FaultPlan::parse(&spec, n_cycles).unwrap_or_else(|e| {
            eprintln!("bad --inject spec: {e}");
            std::process::exit(2);
        });
        println!(
            "running under the cycle supervisor, {} fault(s) injected\n",
            plan.len()
        );
        let supervisor = CycleSupervisor {
            faults: plan,
            ..CycleSupervisor::default()
        };
        let report = supervisor.run(
            n_cycles,
            // --- radar thread (supervised): scan faults become errors ---
            move |cycle: usize| {
                nature
                    .integrate(30.0)
                    .map_err(|e| format!("nature blew up: {e:?}"))?;
                let scan = sim_scan.scan(
                    &nature.state,
                    &base_scan,
                    &grid_scan,
                    (cycle as f64 + 1.0) * 30.0,
                    7,
                );
                Ok(encode_volume(&scan))
            },
            // --- assimilation thread: salvage decode + QC + LETKF ---
            move |_cycle: usize, bytes| {
                let (vol, salvage) = decode_volume_salvage::<f32>(&bytes, &ValueBounds::default())
                    .map_err(|e| format!("unusable volume: {e:?}"))?;
                ensemble
                    .forecast(&model_cfg_a, &base_a, 30.0, |_| Boundary::BaseState)
                    .map_err(|e| format!("member blew up: {e:?}"))?;
                let hx = ensemble_equivalents(
                    &vol.obs,
                    &ensemble.members,
                    &base_a,
                    &grid_a,
                    &radar_a,
                    radar_a.min_detectable_dbz,
                );
                let obs = ObsEnsemble::new(vol.obs, hx);
                let (obs, qc) = QcPipeline::new(&letkf_cfg).run(&obs);
                let mut qc_note = qc.summary();
                if !salvage.clean() {
                    qc_note.push_str(&format!(
                        ", salvaged {}/{} records",
                        salvage.kept, salvage.declared
                    ));
                }
                let flats: Vec<Vec<f32>> = ensemble
                    .members
                    .iter()
                    .map(|m| m.to_flat(&ANALYZED_VARS))
                    .collect();
                let mut mat = EnsembleMatrix::from_members(&flats, layout.clone());
                let stats =
                    analyze(&mut mat, &obs, &letkf_cfg).map_err(|e| format!("analysis: {e}"))?;
                let mut flats = flats;
                mat.to_members(&mut flats);
                for (m, f) in ensemble.members.iter_mut().zip(&flats) {
                    m.from_flat(&ANALYZED_VARS, f);
                    m.clamp_physical();
                }
                Ok((ensemble.mean(), stats.points_analyzed, qc_note))
            },
            // --- forecast thread: honors the degradation ladder ---
            move |cycle: usize, input: ForecastInput<'_, (ModelState<f32>, usize, String)>| {
                let (mean, provenance) = match input {
                    ForecastInput::Analysis((mean, _, qc)) => {
                        println!("cycle {cycle}: {qc}");
                        (mean.clone(), "fresh analysis")
                    }
                    ForecastInput::PreviousAnalysis((mean, _, _)) => {
                        (mean.clone(), "previous analysis (degraded)")
                    }
                    ForecastInput::Persistence => {
                        println!("cycle {cycle}: persistence product (no analysis available)");
                        return Ok(());
                    }
                };
                let _ = fc_engine.swap_state(mean);
                fc_engine
                    .integrate(120.0)
                    .map_err(|e| format!("forecast blew up: {e:?}"))?;
                let map = bda_core::products::reflectivity_map(
                    &fc_engine.state,
                    &base_f,
                    &grid_f,
                    2000.0,
                    5.0,
                );
                let rain = area_fraction(&map, 30.0, None);
                println!(
                    "cycle {cycle}: forecast from {provenance}, rain area {:.1}%",
                    rain * 100.0
                );
                Ok(())
            },
        );
        println!("\n{}", report.table());
        return;
    }

    let pipeline = RealtimePipeline::default();
    let timings = pipeline.run(
        n_cycles,
        // --- radar thread: advance truth 30 s, scan, encode ---
        move |cycle| {
            nature.integrate(30.0).expect("nature blew up");
            let scan = sim_scan.scan(
                &nature.state,
                &base_scan,
                &grid_scan,
                (cycle as f64 + 1.0) * 30.0,
                7,
            );
            encode_volume(&scan)
        },
        // --- assimilation thread: decode, 30-s ensemble forecast, LETKF ---
        move |_cycle, bytes| {
            let (vol, _salvage) = decode_volume_salvage::<f32>(&bytes, &ValueBounds::default())
                .expect("unusable volume");
            ensemble
                .forecast(&model_cfg_a, &base_a, 30.0, |_| Boundary::BaseState)
                .expect("member blew up");
            let hx = ensemble_equivalents(
                &vol.obs,
                &ensemble.members,
                &base_a,
                &grid_a,
                &radar_a,
                radar_a.min_detectable_dbz,
            );
            let obs = ObsEnsemble::new(vol.obs, hx);
            let (obs, qc) = QcPipeline::new(&letkf_cfg).run(&obs);
            let flats: Vec<Vec<f32>> = ensemble
                .members
                .iter()
                .map(|m| m.to_flat(&ANALYZED_VARS))
                .collect();
            let mut mat = EnsembleMatrix::from_members(&flats, layout.clone());
            let stats = analyze(&mut mat, &obs, &letkf_cfg).expect("analysis failed");
            let mut flats = flats;
            mat.to_members(&mut flats);
            for (m, f) in ensemble.members.iter_mut().zip(&flats) {
                m.from_flat(&ANALYZED_VARS, f);
                m.clamp_physical();
            }
            let mean = ensemble.mean();
            (mean, stats.points_analyzed, qc.summary())
        },
        // --- forecast thread: 2-minute forecast from the analysis mean ---
        move |cycle, (mean, points, qc_summary)| {
            let _ = fc_engine.swap_state(mean);
            fc_engine.integrate(120.0).expect("forecast blew up");
            let map = bda_core::products::reflectivity_map(
                &fc_engine.state,
                &base_f,
                &grid_f,
                2000.0,
                5.0,
            );
            let rain = area_fraction(&map, 30.0, None);
            println!(
                "cycle {cycle}: {qc_summary}, {points} points analyzed, forecast rain area {:.1}%",
                rain * 100.0
            );
        },
    );

    println!("\nFig. 4 anatomy (wall-clock, reduced scale):");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10} {:>18}",
        "cycle", "scan (s)", "xfer (s)", "assim (s)", "fcst (s)", "time-to-soln (s)"
    );
    for t in &timings {
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>12.3} {:>10.3} {:>18.3}",
            t.cycle, t.scan_s, t.transfer_s, t.assimilation_s, t.forecast_s, t.time_to_solution_s
        );
    }
    let mean_tts =
        timings.iter().map(|t| t.time_to_solution_s).sum::<f64>() / timings.len().max(1) as f64;
    println!("\nmean time-to-solution {mean_tts:.3} s (the full-scale Fugaku equivalent is Fig. 5's ~2.5 min)");
}
