//! serve_storm — the egress layer under deterministic adversarial load.
//!
//! Drives a full supervised 30-second campaign with a [`NowcastServer`]
//! attached as the egress stage and a seeded [`StormSwarm`] of subscriber
//! clients on the other side of real loopback TCP — a configurable slice
//! of them hostile: slow readers that stop draining mid-campaign,
//! never-ACK clients, abrupt mid-frame disconnects, and reconnect storms,
//! all scheduled by the same `FaultPlan` grammar as the ingest faults
//! (`slowclient:N@C`, `connstorm:N@C` compose with `drop@C` etc.).
//!
//! The claim under test: **no client behaviour can stall a cycle.** The
//! example fails (non-zero exit) if any publish exceeds the egress
//! deadline budget, if any verified client saw a corrupt frame, or if
//! any supervised cycle failed outright.
//!
//!     cargo run --release --example serve_storm -- \
//!         --clients 1000 --cycles 20 --seed 7 [--table]
//!
//! Flags: `--clients N` (default 1000), `--cycles N` (default 20),
//! `--seed S`, `--faults SPEC`, `--deadline-ms X` (default 1000),
//! `--table` (full per-client outcome table).

use bda::jitdt::Bytes;
use bda::letkf::{ObsKind, Observation};
use bda::pawr::codec::encode_volume;
use bda::pawr::scan::ScanResult;
use bda::serve::server::{NowcastServer, ServeConfig};
use bda::serve::storm::{StormSwarm, SwarmConfig, SwarmEvent};
use bda::serve::tile::synthetic_reflectivity;
use bda::workflow::supervisor::{CycleDisposition, CycleSupervisor};
use bda::workflow::FaultPlan;
use std::sync::Mutex;
use std::time::Duration;

const W: usize = 96;
const H: usize = 96;

/// A small synthetic volume so the ingest path (checksums, corrupt@ and
/// drop@ faults, staleness) runs for real upstream of the egress stage.
fn volume_for(cycle: usize) -> Bytes {
    let obs: Vec<Observation<f32>> = (0..16)
        .map(|i| Observation {
            kind: if i % 4 == 0 {
                ObsKind::DopplerVelocity
            } else {
                ObsKind::Reflectivity
            },
            x: 1000.0 * i as f64,
            y: 500.0 * i as f64,
            z: 2000.0,
            value: cycle as f32 + i as f32 * 0.25,
            error_sd: 5.0,
        })
        .collect();
    encode_volume(&ScanResult {
        time: (cycle as f64 + 1.0) * 30.0,
        obs,
        n_reflectivity: 12,
        n_doppler: 4,
        n_clear_air: 0,
        raw_bytes: 0,
    })
}

fn main() {
    let mut clients = 1000usize;
    let mut cycles = 20usize;
    let mut seed = 7u64;
    let mut deadline_ms = 1000.0f64;
    let mut table = false;
    let mut faults =
        String::from("slowclient:50@5, connstorm:150@9, drop@7, slowclient:30@14, corrupt@12");

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => {
                clients = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N")
            }
            "--cycles" => {
                cycles = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--cycles N")
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            "--deadline-ms" => {
                deadline_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--deadline-ms X")
            }
            "--faults" => faults = args.next().expect("--faults SPEC"),
            "--table" => table = true,
            other => panic!("unknown flag {other}"),
        }
    }

    let plan = FaultPlan::parse(&faults, cycles).expect("fault spec");
    eprintln!("serve_storm: {clients} clients, {cycles} cycles, seed {seed}, faults [{faults}]");

    let server = NowcastServer::bind(ServeConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    let swarm = StormSwarm::launch(
        addr,
        SwarmConfig {
            clients,
            seed,
            // ≥5% of the fleet hostile before the FaultPlan adds more.
            never_ack: 0.03,
            mid_stream_disconnect: 0.025,
        },
        plan.clone(),
    );
    // Let the fleet handshake before the first cycle publishes.
    std::thread::sleep(Duration::from_millis(50 + clients as u64 / 2));

    // The egress stage runs on the supervisor's forecast thread; the
    // server lives in a cell so main can recover it for shutdown whatever
    // disposition the final cycle had.
    let server_cell = Mutex::new(server);
    let misses: Mutex<Vec<(usize, f64)>> = Mutex::new(Vec::new());
    let swarm_tx = swarm.cycle_sender();
    let supervisor = CycleSupervisor {
        faults: plan,
        ..CycleSupervisor::default()
    };
    let mut last_field = vec![0.0f64; W * H];
    let (server_ref, misses_ref) = (&server_cell, &misses);
    let report = supervisor.run_with_egress(
        cycles,
        |cycle| Ok(volume_for(cycle)),
        |cycle, bytes: Bytes| {
            // Touch every byte so corrupt@C faults surface as degraded
            // cycles upstream of the egress stage.
            let sum: u64 = bytes.iter().map(|&b| u64::from(b)).sum();
            Ok((cycle, sum))
        },
        |_cycle, _input| Ok(()),
        move |cycle, disposition| {
            // Degraded/skipped cycles re-serve the last good product with
            // the staleness flag set; completed cycles serve fresh tiles.
            let stale = !matches!(disposition, CycleDisposition::Completed);
            if !stale {
                last_field = synthetic_reflectivity(cycle as u64, W, H);
            }
            let mut srv = server_ref.lock().expect("server cell");
            let note = match srv.publish(cycle as u64, &last_field, W, H, stale) {
                Ok(rep) => {
                    if rep.elapsed_ms > deadline_ms {
                        misses_ref
                            .lock()
                            .expect("miss log")
                            .push((cycle, rep.elapsed_ms));
                    }
                    let _ = swarm_tx.send(SwarmEvent::Cycle(cycle as u64));
                    format!("{}{}", rep.note(), if stale { " [stale]" } else { "" })
                }
                Err(e) => format!("publish error: {e}"),
            };
            Some(note)
        },
    );

    let serve_report = server_cell
        .into_inner()
        .expect("server cell")
        .shutdown(Duration::from_secs(5));
    let swarm_report = swarm.finish();
    let misses = misses.into_inner().expect("miss log");

    println!("{}", report.table());
    println!("egress: {}", serve_report.summary());
    println!("swarm:  {}", swarm_report.summary());
    if table {
        println!("\n{}", serve_report.table());
    }

    let mut failed = false;
    if !misses.is_empty() {
        failed = true;
        for (cycle, ms) in &misses {
            eprintln!("FAIL: cycle {cycle} publish took {ms:.1}ms > {deadline_ms}ms budget");
        }
    }
    if swarm_report.decode_errors() > 0 {
        failed = true;
        eprintln!(
            "FAIL: {} corrupt frame(s) reached verified clients",
            swarm_report.decode_errors()
        );
    }
    if report.failed() > 0 {
        failed = true;
        eprintln!("FAIL: {} cycle(s) failed outright", report.failed());
    }
    if failed {
        std::process::exit(1);
    }
    println!("serve_storm: OK — {cycles} cycles, zero egress deadline misses, zero corrupt frames");
}
