//! The heavy-rain OSSE study — Figs. 6, 7 and 8.
//!
//! A nature run with triggered convection is cycled through the BDA system;
//! forecast cases are launched every cycle and verified against the truth
//! with the threat score at 30 dBZ, BDA vs persistence (Fig. 7). Forecast
//! and "observed" reflectivity maps (Fig. 6a/6b) are written as PGM images
//! and printed as ASCII; `--fig8` adds the 3-D structure view.
//!
//! ```text
//! cargo run --release --example heavy_rain_osse -- [--cycles N] [--cases M] [--fig8]
//! ```

use bda_core::osse::{Osse, OsseConfig};
use bda_core::products;
use bda_verify::maps::{ascii_map, write_pgm};
use bda_verify::{ContingencyTable, LeadTimeSeries, PersistenceForecast};

struct Args {
    spinup_cycles: usize,
    cases: usize,
    fig8: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        spinup_cycles: 6,
        cases: 8,
        fig8: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--cycles" => {
                i += 1;
                args.spinup_cycles = argv[i].parse().expect("--cycles N");
            }
            "--cases" => {
                i += 1;
                args.cases = argv[i].parse().expect("--cases M");
            }
            "--fig8" => args.fig8 = true,
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    println!("=== heavy-rain OSSE (Figs. 6/7/8 at reduced scale) ===");
    println!(
        "spin-up {} cycles, then {} forecast cases\n",
        args.spinup_cycles, args.cases
    );

    // A somewhat larger reduced domain so convection has room.
    let cfg = OsseConfig::reduced(20, 12, 12, 4, 729);
    let grid = cfg.model.grid.clone();
    let mut osse = Osse::<f32>::new(cfg);

    // Let the truth's convection mature first (the July 29 storms existed
    // before the showcased forecast was launched).
    osse.spinup_system(900.0);
    println!(
        "truth convection after spin-up: max {:.1} dBZ",
        osse.truth_max_dbz()
    );

    // --- spin-up cycling so the ensemble locks onto the truth's storms ---
    for out in osse.run_cycles(args.spinup_cycles) {
        println!(
            "cycle t={:>4.0}s: {:>5} obs used, RMSE {:.2} -> {:.2} dBZ",
            out.time, out.n_obs_used, out.prior_rmse_dbz, out.posterior_rmse_dbz
        );
    }

    // --- Fig. 7: threat score vs lead, BDA vs persistence, many cases ---
    let leads: Vec<f64> = (0..=6).map(|i| i as f64 * 60.0).collect(); // 0..6 min
    let mut bda_series = LeadTimeSeries::new(leads.len(), 60.0);
    let mut per_series = LeadTimeSeries::new(leads.len(), 60.0);
    let mut last_case = None;

    for case_idx in 0..args.cases {
        let case = osse.run_forecast_case(&leads, 3);
        let persistence = PersistenceForecast::new(&case.observed_dbz_init);
        for (li, &lead) in case.leads.iter().enumerate() {
            let bda_t = ContingencyTable::from_fields(
                &case.forecast_dbz[li],
                &case.truth_dbz[li],
                30.0,
                Some(&case.mask),
            );
            let per_t = ContingencyTable::from_fields(
                persistence.at_lead(lead),
                &case.truth_dbz[li],
                30.0,
                Some(&case.mask),
            );
            bda_series.add(li, &bda_t);
            per_series.add(li, &per_t);
        }
        last_case = Some(case);
        // Keep cycling between cases (the real system refreshes every 30 s).
        osse.cycle();
        if case_idx % 4 == 3 {
            println!("  ... {} cases done", case_idx + 1);
        }
    }

    println!("\nFig. 7 analogue — threat score (30 dBZ) vs lead time:");
    print!(
        "{}",
        bda_series.comparison_report("BDA", &per_series, "persistence")
    );

    // --- Fig. 6: final maps of the last case ---
    let case = last_case.expect("at least one case");
    let last = case.leads.len() - 1;
    println!(
        "\nFig. 6 analogue — (a) {}-min BDA forecast vs (b) observation ('/' = radar no-data):",
        case.leads[last] / 60.0
    );
    println!("(a) forecast reflectivity:");
    let fc32: Vec<f32> = case.forecast_dbz[last].iter().map(|&v| v as f32).collect();
    print!("{}", ascii_map(&fc32, grid.nx, grid.ny, Some(&case.mask)));
    println!("(b) verifying truth:");
    let tr32: Vec<f32> = case.truth_dbz[last].iter().map(|&v| v as f32).collect();
    print!("{}", ascii_map(&tr32, grid.nx, grid.ny, Some(&case.mask)));

    let outdir = std::path::Path::new("target/bda_products");
    std::fs::create_dir_all(outdir).expect("create output dir");
    write_pgm(
        outdir.join("fig6a_forecast.pgm"),
        &fc32,
        grid.nx,
        grid.ny,
        0.0,
        60.0,
        Some(&case.mask),
    )
    .unwrap();
    write_pgm(
        outdir.join("fig6b_truth.pgm"),
        &tr32,
        grid.nx,
        grid.ny,
        0.0,
        60.0,
        Some(&case.mask),
    )
    .unwrap();
    // Fig. 1a-style color products.
    products::write_ppm_reflectivity(
        outdir.join("fig1a_forecast_color.ppm"),
        &case.forecast_dbz[last],
        grid.nx,
        grid.ny,
        Some(&case.mask),
    )
    .unwrap();
    println!("PGM/PPM maps written to {}", outdir.display());

    // Probability-of-heavy-rain product from the forecast ensemble members.
    let prob = products::exceedance_probability_map(
        &osse.ensemble.members,
        osse.base(),
        &grid,
        2000.0,
        30.0,
    );
    let p_max = prob.iter().cloned().fold(0.0, f64::max);
    println!(
        "ensemble probability product: max P(>30 dBZ at 2 km) = {:.0}% across the domain",
        p_max * 100.0
    );

    // --- Fig. 8: 3-D structure view ---
    if args.fig8 {
        println!("\nFig. 8 analogue — 3-D reflectivity structure of the truth:");
        print!(
            "{}",
            products::volume_view(osse.truth(), osse.base(), &grid, osse.radar())
        );
    }

    // --- headline conclusions, as in §7 ---
    let bda_ts = bda_series.threat_scores();
    let per_ts = per_series.threat_scores();
    if let (Some(Some(b)), Some(Some(p))) = (bda_ts.last(), per_ts.last()) {
        println!(
            "\nAt the longest lead: BDA threat {b:.3} vs persistence {p:.3} ({})",
            if b > p {
                "BDA wins, as in Fig. 7"
            } else {
                "persistence wins at this scale/seed"
            }
        );
    }
}
