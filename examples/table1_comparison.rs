//! Table 1 — operational regional NWP systems vs BDA2021.
//!
//! Renders the paper's systems comparison and computes the refresh speedup
//! and the problem-size ratio behind §5's "two orders of magnitude increase
//! in problem size".
//!
//! ```text
//! cargo run --release --example table1_comparison
//! ```

use bda_core::systems::{bda2021, render_table1, TABLE1};

fn main() {
    println!("=== Table 1: operational regional NWP systems (<= 5 km) as of early 2023 ===\n");
    print!("{}", render_table1());

    let bda = bda2021();
    println!("\nderived quantities:");
    for s in &TABLE1 {
        println!(
            "  vs {:<14} refresh speedup {:>6.0}x   problem-size ratio {:>8.0}x",
            s.name,
            bda.refresh_speedup_vs(s),
            bda.problem_size_rate() / s.problem_size_rate()
        );
    }
    let best = TABLE1
        .iter()
        .map(|s| s.problem_size_rate())
        .fold(0.0, f64::max);
    println!(
        "\nBDA2021 is {:.0}x the largest operational DA problem-size rate — \
         the paper's 'two orders of magnitude increase in problem size'.",
        bda.problem_size_rate() / best
    );
    println!(
        "Refresh is 120x faster than the hourly systems; only BDA assimilates radar \
         reflectivity and Doppler velocity directly at 30-s cadence."
    );
}
