//! The month-long campaign simulation — Fig. 5.
//!
//! Simulates the Olympics + Paralympics deployment at full scale through the
//! calibrated performance model: 30-second cycles, rain-dependent load,
//! outage windows, JIT-DT transfer statistics — and prints the Fig. 5
//! statistics (forecast count, time-to-solution series summary, histogram,
//! fraction under 3 minutes).
//!
//! ```text
//! cargo run --release --example olympics_campaign [-- --short]
//! ```

use bda_workflow::campaign::{run_campaign, CampaignConfig};
use bda_workflow::NodeAllocation;

fn main() {
    let short = std::env::args().any(|a| a == "--short");

    let alloc = NodeAllocation::bda2021();
    println!("=== BDA2021 campaign simulation (Fig. 5) ===");
    println!(
        "Fugaku allocation: {} exclusive nodes ({:.1}% of the system); inner domain {} nodes = {} cores ({} part <1> + {} part <2>), outer domain {} nodes\n",
        alloc.total,
        alloc.fugaku_fraction() * 100.0,
        alloc.inner_total(),
        alloc.inner_cores(),
        alloc.inner_part1,
        alloc.inner_part2,
        alloc.outer_domain
    );

    let cfg = if short {
        CampaignConfig::short(24.0, 2021)
    } else {
        CampaignConfig::bda2021()
    };
    println!(
        "simulating {} period(s), {:.1} days total, 30-s cycles...",
        cfg.periods.len(),
        cfg.periods.iter().map(|p| p.duration_s).sum::<f64>() / 86_400.0
    );

    let result = run_campaign(&cfg);
    println!("\n{}", result.report());

    // Per-period gray-band (outage) inventory, the Fig. 5a/5b shading.
    for p in &result.periods {
        println!(
            "{}: {} outage windows totalling {:.1} h",
            p.name,
            p.outages.windows().len(),
            p.outages.downtime() / 3600.0
        );
    }

    // Rain-area vs time-to-solution correlation — the paper's "the more the
    // rain area, the more the computation".
    let mut quiet = Vec::new();
    let mut rainy = Vec::new();
    for p in &result.periods {
        for r in &p.records {
            if let Some(t) = r.tts {
                if r.rain_area_1mmh > 1500.0 {
                    rainy.push(t.total_minutes());
                } else if r.rain_area_1mmh < 300.0 {
                    quiet.push(t.total_minutes());
                }
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nrain-load effect: mean time-to-solution {:.2} min in quiet periods vs {:.2} min in rainy periods",
        mean(&quiet),
        mean(&rainy)
    );

    println!(
        "\npaper reference: 75,248 forecasts, ~97% under 3 minutes; this simulation: {} forecasts, {:.1}% under 3 minutes",
        result.total_forecasts(),
        result.fraction_below(3.0) * 100.0
    );
    let skipped: usize = result.periods.iter().map(|p| p.skipped_no_slot).sum();
    println!(
        "part <2> slot scheduler: {skipped} cycles found no free forecast slot ({} slots)",
        alloc.forecast_slots
    );

    // Fig. 5 series data for external plotting.
    let outdir = std::path::Path::new("target/bda_products");
    match result.export_csv(outdir, 20) {
        Ok(paths) => {
            for p in paths {
                println!("series written to {}", p.display());
            }
        }
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
}
