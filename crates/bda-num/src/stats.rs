//! Descriptive statistics used by verification and workflow analytics
//! (time-to-solution percentiles for Fig. 5, skill aggregation for Fig. 7,
//! ensemble spread diagnostics).

use crate::cast;
use crate::real::Real;

/// Arithmetic mean; returns zero for an empty slice.
pub fn mean<T: Real>(xs: &[T]) -> T {
    if xs.is_empty() {
        return T::zero();
    }
    let sum = xs.iter().copied().fold(T::zero(), |a, b| a + b);
    sum / T::of_usize(xs.len())
}

/// Unbiased sample variance (n-1 denominator); zero for fewer than 2 points.
pub fn variance<T: Real>(xs: &[T]) -> T {
    if xs.len() < 2 {
        return T::zero();
    }
    let m = mean(xs);
    let ss = xs
        .iter()
        .fold(T::zero(), |acc, &x| (x - m).mul_add(x - m, acc));
    ss / T::of_usize(xs.len() - 1)
}

/// Sample standard deviation.
pub fn stddev<T: Real>(xs: &[T]) -> T {
    variance(xs).sqrt()
}

/// Root-mean-square difference between two equal-length fields.
pub fn rmse<T: Real>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return T::zero();
    }
    let ss = a
        .iter()
        .zip(b)
        .fold(T::zero(), |acc, (&x, &y)| (x - y).mul_add(x - y, acc));
    (ss / T::of_usize(a.len())).sqrt()
}

/// Pearson correlation; zero if either side is constant.
pub fn correlation<T: Real>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len());
    if a.len() < 2 {
        return T::zero();
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = T::zero();
    let mut va = T::zero();
    let mut vb = T::zero();
    for (&x, &y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        cov = dx.mul_add(dy, cov);
        va = dx.mul_add(dx, va);
        vb = dy.mul_add(dy, vb);
    }
    let denom = (va * vb).sqrt();
    if denom == T::zero() {
        T::zero()
    } else {
        cov / denom
    }
}

/// Percentile with linear interpolation between order statistics;
/// `q` in [0, 100]. Sorts a copy.
pub fn percentile<T: Real>(xs: &[T], q: f64) -> T {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&q));
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q / 100.0 * cast::f64_of(sorted.len() - 1);
    let lo = cast::floor_index(pos);
    let hi = cast::ceil_index(pos);
    if lo == hi {
        sorted[lo]
    } else {
        let w = T::of(pos - cast::f64_of(lo));
        sorted[lo] * (T::one() - w) + sorted[hi] * w
    }
}

/// Fraction of samples strictly below a threshold — the Fig. 5c statistic
/// ("time-to-solution < 3 minutes for ~97% of cases").
pub fn fraction_below<T: Real>(xs: &[T], threshold: T) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    cast::f64_of(xs.iter().filter(|&&x| x < threshold).count()) / cast::f64_of(xs.len())
}

/// A fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin (matching how Fig. 5c presents its tail).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo);
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = cast::trunc_index(t * cast::f64_of(bins)).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin center for index `i`.
    pub fn center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / cast::f64_of(self.counts.len());
        self.lo + (cast::f64_of(i) + 0.5) * w
    }

    /// Render a compact ASCII bar chart (for example binaries and bench
    /// reports; the paper's Fig. 5c equivalent).
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = cast::round_index(
                cast::f64_of_u64(c) / cast::f64_of_u64(max) * cast::f64_of(width),
            );
            out.push_str(&format!(
                "{:>8.2} | {:<width$} {}\n",
                self.center(i),
                "#".repeat(bar),
                c,
                width = width
            ));
        }
        out
    }
}

/// Online mean/min/max/count accumulator for streaming workflow statistics.
#[derive(Clone, Debug, Default)]
pub struct Running {
    n: u64,
    sum: f64,
    sumsq: f64,
    min: f64,
    max: f64,
}

impl Running {
    pub fn new() -> Self {
        Self {
            n: 0,
            sum: 0.0,
            sumsq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sumsq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / cast::f64_of_u64(self.n)
        }
    }

    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let m = self.mean();
        ((self.sumsq - cast::f64_of_u64(self.n) * m * m) / (cast::f64_of_u64(self.n) - 1.0))
            .max(0.0)
            .sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known() {
        let xs = [2.0_f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        let e: [f64; 0] = [];
        assert_eq!(mean(&e), 0.0);
        assert_eq!(variance(&e), 0.0);
        assert_eq!(variance(&[3.0_f64]), 0.0);
        assert_eq!(stddev(&[3.0_f64]), 0.0);
    }

    #[test]
    fn rmse_of_identical_fields_is_zero() {
        let a = [1.0_f32, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        let b = [2.0_f32, 3.0, 4.0];
        assert!((rmse(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn correlation_bounds_and_signs() {
        let a = [1.0_f64, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(correlation(&a, &flat), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0_f64, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_matches_fig5c_semantics() {
        let tts = [1.0_f64, 2.0, 2.5, 2.9, 3.5, 10.0];
        assert!((fraction_below(&tts, 3.0) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.5);
        h.add(-3.0); // clamped into first bin
        h.add(42.0); // clamped into last bin
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 4);
        assert!((h.center(0) - 0.5).abs() < 1e-12);
        assert!(h.ascii(20).lines().count() == 10);
    }

    #[test]
    fn running_accumulator() {
        let mut r = Running::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 4);
        assert!((r.mean() - 2.5).abs() < 1e-12);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 4.0);
        let expected_sd = (5.0f64 / 3.0).sqrt();
        assert!((r.stddev() - expected_sd).abs() < 1e-12);
    }
}
