//! Batched eigensolver — the KeDV analogue.
//!
//! KeDV (Kudo & Imamura 2019) accelerates many same-size symmetric
//! eigenproblems by batching the tridiagonalization cache-efficiently across
//! problems. The LETKF's workload is exactly that: one k x k problem per
//! analysis grid point (256 x 256 x 60 of them per cycle in the paper).
//!
//! [`BatchedEigen`] reproduces the *engineering idea* at the scale of this
//! repository: all workspace (scratch vectors, the eigenvector accumulation
//! buffer, the sort permutation, and the result buffers themselves) is
//! allocated once and reused across the batch, so the per-problem cost is
//! pure compute with warm caches and zero allocator traffic. The hot entry
//! point is [`BatchedEigen::decompose_in_place`], which leaves the result in
//! solver-owned storage read through [`BatchedEigen::values`] /
//! [`BatchedEigen::vectors`] — no per-solve `SymEigDecomp` is materialized.
//! The `ablation_eigensolver` bench compares it against fresh-allocation QL
//! and Jacobi.

use super::{QlEigen, SymEigDecomp, SymEigSolver};
use crate::matrix::MatrixS;
use crate::real::Real;
use crate::timing;

/// Workspace-reusing batched symmetric eigensolver.
#[derive(Clone, Debug, Default)]
pub struct BatchedEigen<T> {
    d: Vec<T>,
    e: Vec<T>,
    order: Vec<usize>,
    q: MatrixS<T>,
    values: Vec<T>,
}

impl<T: Real> BatchedEigen<T> {
    pub fn new() -> Self {
        Self {
            d: Vec::new(),
            e: Vec::new(),
            order: Vec::new(),
            q: MatrixS::zeros(0),
            values: Vec::new(),
        }
    }

    /// Pre-size the workspace for problems of dimension `n`.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            d: Vec::with_capacity(n),
            e: Vec::with_capacity(n),
            order: Vec::with_capacity(n),
            q: MatrixS::zeros(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Decompose one problem entirely into solver-owned storage — the
    /// allocation-free hot path. Results stay valid (via [`Self::values`] /
    /// [`Self::vectors`]) until the next decompose call.
    pub fn decompose_in_place(&mut self, a: &MatrixS<T>) {
        let _t = timing::guard(timing::Kernel::Eigensolve);
        QlEigen::decompose_into(
            a,
            &mut self.q,
            &mut self.values,
            &mut self.d,
            &mut self.e,
            &mut self.order,
        );
    }

    /// Eigenvalues of the last [`Self::decompose_in_place`], ascending.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Eigenvectors of the last [`Self::decompose_in_place`]; column `j`
    /// pairs with `values()[j]`.
    #[inline]
    pub fn vectors(&self) -> &MatrixS<T> {
        &self.q
    }

    /// Decompose a single problem reusing the internal workspace, cloning
    /// the result out (compatibility path; hot callers should prefer
    /// [`Self::decompose_in_place`]).
    pub fn decompose_one(&mut self, a: &MatrixS<T>) -> SymEigDecomp<T> {
        self.decompose_in_place(a);
        SymEigDecomp {
            values: self.values.clone(),
            vectors: self.q.clone(),
        }
    }

    /// Decompose a whole batch, returning results in order.
    pub fn decompose_batch(&mut self, batch: &[MatrixS<T>]) -> Vec<SymEigDecomp<T>> {
        batch.iter().map(|a| self.decompose_one(a)).collect()
    }

    /// Decompose a batch and feed each result to a consumer without keeping
    /// the whole batch of decompositions alive — this is the shape the LETKF
    /// driver uses (one decomposition per grid point, consumed immediately).
    pub fn for_each_decomposition(
        &mut self,
        batch: &[MatrixS<T>],
        mut consume: impl FnMut(usize, SymEigDecomp<T>),
    ) {
        for (idx, a) in batch.iter().enumerate() {
            let dec = self.decompose_one(a);
            consume(idx, dec);
        }
    }
}

impl<T: Real> SymEigSolver<T> for BatchedEigen<T> {
    fn decompose(&mut self, a: &MatrixS<T>) -> SymEigDecomp<T> {
        self.decompose_one(a)
    }

    fn name(&self) -> &'static str {
        "batched-ql (KeDV analogue)"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::JacobiEigen;
    use super::*;

    #[test]
    fn batch_matches_individual_solves() {
        let batch: Vec<MatrixS<f64>> = (0..8)
            .map(|s| random_symmetric(12, s as u64 + 100, 1.0))
            .collect();
        let mut solver = BatchedEigen::new();
        let results = solver.decompose_batch(&batch);
        assert_eq!(results.len(), batch.len());
        for (a, dec) in batch.iter().zip(&results) {
            let reference = JacobiEigen::default().decompose(a);
            for (x, y) in dec.values.iter().zip(&reference.values) {
                assert!((x - y).abs() < 1e-9);
            }
            assert!(dec.max_residual(a) < 1e-9);
        }
    }

    #[test]
    fn in_place_result_is_bit_identical_to_decompose_one() {
        let a = random_symmetric::<f64>(15, 7, 1.0);
        let mut s1 = BatchedEigen::new();
        let dec = s1.decompose_one(&a);
        let mut s2 = BatchedEigen::new();
        s2.decompose_in_place(&a);
        assert_eq!(dec.values.len(), s2.values().len());
        for (x, y) in dec.values.iter().zip(s2.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in dec.vectors.as_slice().iter().zip(s2.vectors().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn repeated_in_place_solves_are_independent() {
        // The second solve must not be polluted by the first's buffers.
        let a = random_symmetric::<f64>(10, 1, 1.0);
        let b = random_symmetric::<f64>(10, 2, 1.0);
        let mut fresh = BatchedEigen::new();
        fresh.decompose_in_place(&b);
        let want: Vec<u64> = fresh.values().iter().map(|v| v.to_bits()).collect();
        let mut reused = BatchedEigen::new();
        reused.decompose_in_place(&a);
        reused.decompose_in_place(&b);
        let got: Vec<u64> = reused.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn workspace_survives_varying_sizes() {
        let mut solver = BatchedEigen::<f64>::new();
        for n in [3usize, 17, 5, 30, 2] {
            let a = random_symmetric(n, n as u64, 2.0);
            let dec = solver.decompose_one(&a);
            assert_eq!(dec.values.len(), n);
            assert!(dec.max_residual(&a) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn for_each_visits_in_order() {
        let batch: Vec<MatrixS<f32>> = (0..5).map(|s| random_symmetric(6, s, 3.0)).collect();
        let mut solver = BatchedEigen::new();
        let mut seen = Vec::new();
        solver.for_each_decomposition(&batch, |idx, dec| {
            assert_eq!(dec.values.len(), 6);
            seen.push(idx);
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut solver = BatchedEigen::<f64>::new();
        assert!(solver.decompose_batch(&[]).is_empty());
    }
}
