//! Householder tridiagonalization + implicit-shift QL iteration.
//!
//! This is the `tred2`/`tqli` algorithm pair — the same family LAPACK's
//! symmetric drivers use, and the baseline that KeDV restructures for cache
//! efficiency. Compared to cyclic Jacobi it does one O(n^3) reduction plus a
//! cheap O(n^2)-per-eigenvalue iteration, which is why the paper's LETKF
//! gained so much from moving off a slower solver at k = 1000.

use super::{sort_ascending_with, SymEigDecomp, SymEigSolver};
use crate::matrix::MatrixS;
use crate::real::Real;

/// Householder + implicit QL symmetric eigensolver.
#[derive(Clone, Debug, Default)]
pub struct QlEigen;

impl QlEigen {
    /// Reduce symmetric `a` (destroyed; becomes the orthogonal accumulation
    /// matrix Q) to tridiagonal form with diagonal `d` and subdiagonal `e`
    /// (where `e[0]` is unused).
    // The entry asserts pin `d`/`e` to the matrix dimension n; every index
    // in the Householder sweep is bounded by `i < n` and `l = i - 1`.
    // bda-check: allow(panic_path)
    pub fn tridiagonalize<T: Real>(a: &mut MatrixS<T>, d: &mut [T], e: &mut [T]) {
        let n = a.n();
        assert_eq!(d.len(), n);
        assert_eq!(e.len(), n);

        for i in (1..n).rev() {
            let l = i - 1;
            let mut h = T::zero();
            if l > 0 {
                let mut scale = T::zero();
                for k in 0..=l {
                    scale += a[(i, k)].abs();
                }
                if scale == T::zero() {
                    e[i] = a[(i, l)];
                } else {
                    for k in 0..=l {
                        let v = a[(i, k)] / scale;
                        a[(i, k)] = v;
                        h += v * v;
                    }
                    let mut f = a[(i, l)];
                    let g = if f >= T::zero() { -h.sqrt() } else { h.sqrt() };
                    e[i] = scale * g;
                    h -= f * g;
                    a[(i, l)] = f - g;
                    f = T::zero();
                    for j in 0..=l {
                        a[(j, i)] = a[(i, j)] / h;
                        let mut g = T::zero();
                        for k in 0..=j {
                            g += a[(j, k)] * a[(i, k)];
                        }
                        for k in (j + 1)..=l {
                            g += a[(k, j)] * a[(i, k)];
                        }
                        e[j] = g / h;
                        f += e[j] * a[(i, j)];
                    }
                    let hh = f / (h + h);
                    for j in 0..=l {
                        let fj = a[(i, j)];
                        let gj = e[j] - hh * fj;
                        e[j] = gj;
                        for k in 0..=j {
                            let delta = fj * e[k] + gj * a[(i, k)];
                            a[(j, k)] -= delta;
                        }
                    }
                }
            } else {
                e[i] = a[(i, l)];
            }
            d[i] = h;
        }
        d[0] = T::zero();
        e[0] = T::zero();
        // Accumulate the transformation matrix.
        for i in 0..n {
            if d[i] != T::zero() {
                for j in 0..i {
                    let mut g = T::zero();
                    for k in 0..i {
                        g += a[(i, k)] * a[(k, j)];
                    }
                    for k in 0..i {
                        let delta = g * a[(k, i)];
                        a[(k, j)] -= delta;
                    }
                }
            }
            d[i] = a[(i, i)];
            a[(i, i)] = T::one();
            for j in 0..i {
                a[(j, i)] = T::zero();
                a[(i, j)] = T::zero();
            }
        }
    }

    /// Implicit-shift QL iteration on a tridiagonal matrix, accumulating the
    /// rotations into `z` (which should enter as the tridiagonalizing Q).
    /// `e[0]` is unused on entry.
    // `d`/`e`/`z` share the dimension n established by `tridiagonalize`;
    // all `i±1` offsets are bounded by the `m < n - 1` pivot search, and the
    // convergence assert is the documented failure mode of QL iteration.
    // bda-check: allow(panic_path)
    pub fn tqli<T: Real>(d: &mut [T], e: &mut [T], z: &mut MatrixS<T>) {
        let n = d.len();
        if n <= 1 {
            return;
        }
        for i in 1..n {
            e[i - 1] = e[i];
        }
        e[n - 1] = T::zero();

        for l in 0..n {
            let mut iter = 0;
            'restart: loop {
                // Find the first negligible subdiagonal element at or after l.
                let mut m = l;
                while m + 1 < n {
                    let dd = d[m].abs() + d[m + 1].abs();
                    if e[m].abs() <= T::eps() * dd {
                        break;
                    }
                    m += 1;
                }
                if m == l {
                    break;
                }
                iter += 1;
                assert!(iter <= 64, "QL iteration failed to converge");

                let mut g = (d[l + 1] - d[l]) / (T::two() * e[l]);
                let mut r = g.hypot(T::one());
                g = d[m] - d[l] + e[l] / (g + r.copysign(g));
                let mut s = T::one();
                let mut c = T::one();
                let mut p = T::zero();
                for i in (l..m).rev() {
                    let mut f = s * e[i];
                    let b = c * e[i];
                    r = f.hypot(g);
                    e[i + 1] = r;
                    if r == T::zero() {
                        d[i + 1] -= p;
                        e[m] = T::zero();
                        continue 'restart;
                    }
                    s = f / r;
                    c = g / r;
                    g = d[i + 1] - p;
                    r = (d[i] - g) * s + T::two() * c * b;
                    p = s * r;
                    d[i + 1] = g + p;
                    g = c * r - b;
                    for k in 0..n {
                        f = z[(k, i + 1)];
                        z[(k, i + 1)] = s * z[(k, i)] + c * f;
                        z[(k, i)] = c * z[(k, i)] - s * f;
                    }
                }
                d[l] -= p;
                e[l] = g;
                e[m] = T::zero();
            }
        }
    }

    /// Full decomposition via tridiagonalization + QL, with caller-provided
    /// scratch (used by [`super::BatchedEigen`] to avoid per-problem
    /// allocation).
    pub fn decompose_with_scratch<T: Real>(
        a: &MatrixS<T>,
        d: &mut Vec<T>,
        e: &mut Vec<T>,
    ) -> SymEigDecomp<T> {
        let mut q = MatrixS::zeros(0);
        let mut values = Vec::new();
        let mut order = Vec::new();
        Self::decompose_into(a, &mut q, &mut values, d, e, &mut order);
        SymEigDecomp { values, vectors: q }
    }

    /// Fully allocation-free decomposition into caller-owned buffers: `q`
    /// receives the eigenvector matrix (column `j` pairs with `values[j]`,
    /// ascending), every scratch vector is resized in place. This is the
    /// batched hot path — one call per analysis grid point must not touch
    /// the allocator.
    pub fn decompose_into<T: Real>(
        a: &MatrixS<T>,
        q: &mut MatrixS<T>,
        values: &mut Vec<T>,
        d: &mut Vec<T>,
        e: &mut Vec<T>,
        order: &mut Vec<usize>,
    ) {
        let n = a.n();
        debug_assert!(a.is_symmetric(T::of(1e-4)), "QL requires symmetry");
        d.clear();
        d.resize(n, T::zero());
        e.clear();
        e.resize(n, T::zero());
        q.copy_from(a);
        Self::tridiagonalize(q, d, e);
        Self::tqli(d, e, q);
        values.clear();
        values.extend_from_slice(d);
        sort_ascending_with(values, q, order);
    }
}

impl<T: Real> SymEigSolver<T> for QlEigen {
    fn decompose(&mut self, a: &MatrixS<T>) -> SymEigDecomp<T> {
        let mut d = Vec::new();
        let mut e = Vec::new();
        QlEigen::decompose_with_scratch(a, &mut d, &mut e)
    }

    fn name(&self) -> &'static str {
        "householder-ql"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::JacobiEigen;
    use super::*;

    #[test]
    fn known_2x2() {
        let a = MatrixS::from_rows(2, &[2.0_f64, 1.0, 1.0, 2.0]);
        let dec = QlEigen.decompose(&a);
        assert!((dec.values[0] - 1.0).abs() < 1e-12);
        assert!((dec.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_3x3_tridiagonal() {
        // Discrete 1-D Laplacian [2,-1] with known spectrum 2 - 2 cos(k pi / 4).
        let a = MatrixS::from_rows(3, &[2.0_f64, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0]);
        let dec = QlEigen.decompose(&a);
        let expected: Vec<f64> = (1..=3)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / 4.0).cos())
            .collect();
        for (got, want) in dec.values.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn matches_jacobi_on_random_matrices() {
        for seed in 0..6u64 {
            let n = 10 + (seed as usize) * 5;
            let a = random_symmetric::<f64>(n, seed.wrapping_mul(17).wrapping_add(1), 0.0);
            let ql = QlEigen.decompose(&a);
            let jc = JacobiEigen::default().decompose(&a);
            for (x, y) in ql.values.iter().zip(&jc.values) {
                assert!(
                    (x - y).abs() < 1e-9,
                    "n={n}: eigenvalue mismatch {x} vs {y}"
                );
            }
            assert!(
                ql.max_residual(&a) < 1e-9,
                "residual {}",
                ql.max_residual(&a)
            );
            check_orthonormal(&ql.vectors, 1e-9);
        }
    }

    #[test]
    fn single_precision_accuracy_sufficient_for_letkf() {
        // k=40 is a typical operational ensemble size; k=1000 is the paper's.
        let a = random_symmetric::<f32>(40, 5, 5.0);
        let dec = QlEigen.decompose(&a);
        assert!(dec.max_residual(&a) < 5e-3);
        check_orthonormal(&dec.vectors, 5e-3);
    }

    #[test]
    fn handles_n1_and_n2() {
        let a1 = MatrixS::from_rows(1, &[7.0_f64]);
        let d1 = QlEigen.decompose(&a1);
        assert_eq!(d1.values, vec![7.0]);

        let a2 = MatrixS::from_rows(2, &[1.0_f64, 0.0, 0.0, -2.0]);
        let d2 = QlEigen.decompose(&a2);
        assert_eq!(d2.values, vec![-2.0, 1.0]);
    }

    #[test]
    fn degenerate_spectrum() {
        // Identity has a fully degenerate spectrum; any orthonormal basis is
        // a valid eigenbasis.
        let a = MatrixS::<f64>::identity(6);
        let dec = QlEigen.decompose(&a);
        for &v in &dec.values {
            assert!((v - 1.0).abs() < 1e-13);
        }
        check_orthonormal(&dec.vectors, 1e-12);
    }

    #[test]
    fn trace_preserved() {
        let n = 25;
        let a = random_symmetric::<f64>(n, 1234, 0.0);
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let dec = QlEigen.decompose(&a);
        let sum: f64 = dec.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }
}
