//! Cyclic Jacobi eigensolver — the robust reference implementation.

use super::{sort_ascending, SymEigDecomp, SymEigSolver};
use crate::matrix::MatrixS;
use crate::real::Real;

/// Classic cyclic Jacobi rotation solver.
///
/// Unconditionally stable and accurate to machine precision, but needs
/// several full sweeps of O(n^3) work — this is our stand-in for "the
/// standard solver the paper started from" in the KeDV ablation.
#[derive(Clone, Debug)]
pub struct JacobiEigen {
    /// Maximum number of full sweeps before giving up (convergence for
    /// symmetric matrices is typically reached in 6–10 sweeps).
    pub max_sweeps: usize,
}

impl Default for JacobiEigen {
    fn default() -> Self {
        Self { max_sweeps: 30 }
    }
}

impl JacobiEigen {
    /// Decompose, reporting how many sweeps were used.
    pub fn decompose_counting<T: Real>(&self, a: &MatrixS<T>) -> (SymEigDecomp<T>, usize) {
        let n = a.n();
        debug_assert!(a.is_symmetric(T::of(1e-4)), "Jacobi requires symmetry");
        let mut m = a.clone();
        let mut v = MatrixS::identity(n);

        let mut sweeps = 0;
        for sweep in 0..self.max_sweeps {
            sweeps = sweep + 1;
            let off = m.max_offdiag_abs();
            // Converged when off-diagonal mass is negligible relative to the
            // diagonal scale.
            let diag_scale = (0..n).fold(T::zero(), |acc, i| acc.max(m[(i, i)].abs()));
            let tol = T::eps() * diag_scale.max(T::one()) * T::of(4.0);
            if off <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (T::two() * apq);
                    // Stable tangent of the rotation angle.
                    let t = {
                        let s = theta.abs() + theta.hypot(T::one());
                        let t = T::one() / s;
                        if theta < T::zero() {
                            -t
                        } else {
                            t
                        }
                    };
                    let c = T::one() / t.hypot(T::one());
                    let s = t * c;
                    let tau = s / (T::one() + c);

                    m[(p, p)] = app - t * apq;
                    m[(q, q)] = aqq + t * apq;
                    m[(p, q)] = T::zero();
                    m[(q, p)] = T::zero();

                    for k in 0..n {
                        if k != p && k != q {
                            let akp = m[(k, p)];
                            let akq = m[(k, q)];
                            let new_kp = akp - s * (akq + tau * akp);
                            let new_kq = akq + s * (akp - tau * akq);
                            m[(k, p)] = new_kp;
                            m[(p, k)] = new_kp;
                            m[(k, q)] = new_kq;
                            m[(q, k)] = new_kq;
                        }
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = vkp - s * (vkq + tau * vkp);
                        v[(k, q)] = vkq + s * (vkp - tau * vkq);
                    }
                }
            }
        }

        let mut values: Vec<T> = (0..n).map(|i| m[(i, i)]).collect();
        sort_ascending(&mut values, &mut v);
        (SymEigDecomp { values, vectors: v }, sweeps)
    }
}

impl<T: Real> SymEigSolver<T> for JacobiEigen {
    fn decompose(&mut self, a: &MatrixS<T>) -> SymEigDecomp<T> {
        self.decompose_counting(a).0
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let mut a = MatrixS::<f64>::zeros(4);
        for (i, &l) in [4.0, -1.0, 2.5, 0.0].iter().enumerate() {
            a[(i, i)] = l;
        }
        let dec = JacobiEigen::default().decompose(&a);
        assert_eq!(dec.values, vec![-1.0, 0.0, 2.5, 4.0]);
        check_orthonormal(&dec.vectors, 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = MatrixS::from_rows(2, &[2.0_f64, 1.0, 1.0, 2.0]);
        let dec = JacobiEigen::default().decompose(&a);
        assert!((dec.values[0] - 1.0).abs() < 1e-12);
        assert!((dec.values[1] - 3.0).abs() < 1e-12);
        assert!(dec.max_residual(&a) < 1e-12);
    }

    #[test]
    fn random_matrices_decompose_accurately_f64() {
        for seed in 0..5u64 {
            let n = 12 + (seed as usize) * 3;
            let a = random_symmetric::<f64>(n, seed, 0.0);
            let dec = JacobiEigen::default().decompose(&a);
            assert!(
                dec.max_residual(&a) < 1e-10,
                "seed {seed}: residual {}",
                dec.max_residual(&a)
            );
            check_orthonormal(&dec.vectors, 1e-10);
            // Sorted ascending.
            for w in dec.values.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn random_matrices_decompose_accurately_f32() {
        let a = random_symmetric::<f32>(20, 7, 0.0);
        let dec = JacobiEigen::default().decompose(&a);
        assert!(dec.max_residual(&a) < 2e-4);
        check_orthonormal(&dec.vectors, 1e-4);
    }

    #[test]
    fn trace_is_preserved() {
        let n = 15;
        let a = random_symmetric::<f64>(n, 99, 0.0);
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let dec = JacobiEigen::default().decompose(&a);
        let sum: f64 = dec.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn spd_matrix_has_positive_spectrum() {
        let a = random_symmetric::<f64>(10, 3, 12.0);
        let dec = JacobiEigen::default().decompose(&a);
        assert!(dec.values.iter().all(|&l| l > 0.0));
    }
}
