//! Symmetric eigensolvers.
//!
//! The LETKF solves, at *every* analysis grid point, a symmetric eigenproblem
//! of the size of the ensemble (k = 1000 in the paper; 256 x 256 x 60 solves
//! per 30-second cycle). The paper replaced the standard LAPACK solver with
//! KeDV (Kudo & Imamura 2019), a cache-efficient, batched tridiagonalization.
//!
//! This module provides the same algorithmic contrast from scratch:
//!
//! * [`JacobiEigen`] — a robust cyclic Jacobi solver, our stand-in for the
//!   "reference" dense solver (simple, accurate, O(n^3) per sweep with several
//!   sweeps).
//! * [`QlEigen`] — Householder tridiagonalization followed by implicit-shift
//!   QL iteration (the classic `tred2`/`tqli` pair), which is the algorithm
//!   family LAPACK's `ssyev` drives and is substantially faster than Jacobi.
//! * [`BatchedEigen`] — a QL solver that amortizes workspace allocation and
//!   keeps buffers hot across a batch of same-size problems, mirroring the
//!   batching idea of KeDV. The `ablation_eigensolver` bench reproduces the
//!   paper's solver comparison.

mod batched;
mod jacobi;
mod ql;

pub use batched::BatchedEigen;
pub use jacobi::JacobiEigen;
pub use ql::QlEigen;

use crate::matrix::MatrixS;
use crate::real::Real;

/// Result of a symmetric eigendecomposition `A = V diag(lambda) V^T`.
///
/// Eigenvalues are sorted ascending; column `j` of `vectors` is the
/// eigenvector for `values[j]`.
#[derive(Clone, Debug)]
pub struct SymEigDecomp<T> {
    pub values: Vec<T>,
    pub vectors: MatrixS<T>,
}

impl<T: Real> SymEigDecomp<T> {
    /// Reconstruct `V f(diag) V^T` for a scalar function of the eigenvalues —
    /// the LETKF uses this with `f = 1/x` (analysis covariance) and
    /// `f = 1/sqrt(x)` (transform weights).
    pub fn apply_spectral(&self, f: impl Fn(T) -> T) -> MatrixS<T> {
        let n = self.values.len();
        let v = &self.vectors;
        let fvals: Vec<T> = self.values.iter().map(|&l| f(l)).collect();
        let mut out = MatrixS::zeros(n);
        for i in 0..n {
            for j in i..n {
                let mut acc = T::zero();
                for m in 0..n {
                    acc += v[(i, m)] * fvals[m] * v[(j, m)];
                }
                out[(i, j)] = acc;
                out[(j, i)] = acc;
            }
        }
        out
    }

    /// Largest |residual| entry of `A v - lambda v` over all pairs, a direct
    /// correctness gauge used in tests.
    pub fn max_residual(&self, a: &MatrixS<T>) -> T {
        let n = self.values.len();
        let mut worst = T::zero();
        for j in 0..n {
            for i in 0..n {
                let mut av = T::zero();
                for k in 0..n {
                    av += a[(i, k)] * self.vectors[(k, j)];
                }
                worst = worst.max((av - self.values[j] * self.vectors[(i, j)]).abs());
            }
        }
        worst
    }
}

/// A solver for dense symmetric eigenproblems.
pub trait SymEigSolver<T: Real> {
    /// Decompose a symmetric matrix. Implementations may assume (and only
    /// debug-assert) symmetry.
    fn decompose(&mut self, a: &MatrixS<T>) -> SymEigDecomp<T>;

    /// Human-readable solver name for bench reports.
    fn name(&self) -> &'static str;
}

/// Sort an eigendecomposition ascending by eigenvalue, permuting vector
/// columns to match.
pub(crate) fn sort_ascending<T: Real>(values: &mut [T], vectors: &mut MatrixS<T>) {
    let mut order = Vec::new();
    sort_ascending_with(values, vectors, &mut order);
}

/// [`sort_ascending`] with caller-owned index scratch: after warm-up the
/// sort allocates nothing (the permutation is applied in place by walking
/// its cycles with swaps instead of cloning the matrix).
pub(crate) fn sort_ascending_with<T: Real>(
    values: &mut [T],
    vectors: &mut MatrixS<T>,
    order: &mut Vec<usize>,
) {
    let n = values.len();
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    // Position `i` must end up holding old position `order[i]`. Walk each
    // permutation cycle, swapping as we go; visited slots are marked with
    // usize::MAX so each cycle is applied exactly once.
    for i in 0..n {
        if order[i] == usize::MAX {
            continue;
        }
        let mut prev = i;
        let mut j = order[i];
        while j != i {
            values.swap(prev, j);
            vectors.swap_columns(prev, j);
            let next = order[j];
            order[prev] = usize::MAX;
            prev = j;
            j = next;
        }
        order[prev] = usize::MAX;
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Deterministic random symmetric matrix with entries in [-1, 1] and a
    /// diagonal shift making it comfortably positive definite when asked.
    pub fn random_symmetric<T: Real>(n: usize, seed: u64, spd_shift: f64) -> MatrixS<T> {
        let mut rng = crate::rng::SplitMix64::new(seed);
        let mut a = MatrixS::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = T::of(rng.next_uniform() * 2.0 - 1.0);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a.add_scaled_identity(T::of(spd_shift));
        a
    }

    pub fn check_orthonormal<T: Real>(v: &MatrixS<T>, tol: f64) {
        let n = v.n();
        let vtv = v.transpose().matmul(v);
        for i in 0..n {
            for j in 0..n {
                let want = if i == j { 1.0 } else { 0.0 };
                let got = vtv[(i, j)].f64();
                assert!(
                    (got - want).abs() < tol,
                    "V^T V [{i},{j}] = {got}, want {want}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn apply_spectral_inverse_recovers_inverse() {
        let a = random_symmetric::<f64>(8, 42, 10.0);
        let dec = JacobiEigen::default().decompose(&a);
        let ainv = dec.apply_spectral(|l| 1.0 / l);
        let prod = a.matmul(&ainv);
        for i in 0..8 {
            for j in 0..8 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn in_place_sort_matches_clone_based_reference() {
        // The cycle-walking permutation must agree with the obvious
        // clone-into-order reference, including under duplicate values.
        let mut rng = crate::rng::SplitMix64::new(99);
        for n in [1usize, 2, 5, 8, 13] {
            let vals: Vec<f64> = (0..n).map(|_| (rng.next_uniform() * 4.0).floor()).collect();
            let vecs = MatrixS::from_fn(n, |i, j| (i * n + j) as f64);

            let mut v_ref = vals.clone();
            let mut m_ref = vecs.clone();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| vals[a].total_cmp(&vals[b]));
            for (new_j, &old_j) in order.iter().enumerate() {
                v_ref[new_j] = vals[old_j];
                for i in 0..n {
                    m_ref[(i, new_j)] = vecs[(i, old_j)];
                }
            }

            let mut v_got = vals.clone();
            let mut m_got = vecs.clone();
            let mut scratch = Vec::new();
            sort_ascending_with(&mut v_got, &mut m_got, &mut scratch);
            assert_eq!(v_got, v_ref, "n={n}");
            assert_eq!(m_got, m_ref, "n={n}");
        }
    }

    #[test]
    fn sort_ascending_orders_and_permutes() {
        let mut vals = vec![3.0_f64, 1.0, 2.0];
        let mut vecs = MatrixS::from_rows(3, &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        sort_ascending(&mut vals, &mut vecs);
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        // Column 0 must now be the old column 1 (e_1).
        assert_eq!(vecs[(1, 0)], 1.0);
        assert_eq!(vecs[(0, 2)], 1.0);
    }
}
