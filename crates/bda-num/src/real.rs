//! Precision abstraction.
//!
//! The BDA paper's first innovation was converting both SCALE and the LETKF
//! from double to single precision. Everything numerical in this workspace is
//! generic over [`Real`] so the same code runs (and is benchmarked) at both
//! precisions.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar used throughout the BDA workspace.
///
/// Implemented for `f32` (the production configuration of the paper) and
/// `f64` (the pre-optimization baseline).
pub trait Real:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Exact conversion from `f64` (rounding to nearest for `f32`).
    fn of(v: f64) -> Self;
    /// Conversion from a count.
    fn of_usize(n: usize) -> Self {
        Self::of(crate::cast::f64_of(n))
    }
    /// Widening conversion to `f64`.
    fn f64(self) -> f64;
    /// Machine epsilon of the concrete type.
    fn eps() -> Self;
    /// Positive infinity.
    fn infinity() -> Self;

    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn exp(self) -> Self;
    fn ln(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn powf(self, p: Self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    fn tanh(self) -> Self;
    fn floor(self) -> Self;
    fn mul_add(self, a: Self, b: Self) -> Self;
    fn is_finite(self) -> bool;

    fn max(self, other: Self) -> Self;
    fn min(self, other: Self) -> Self;

    /// Total order over all values including NaN (IEEE 754 totalOrder).
    ///
    /// Sorting with `partial_cmp().unwrap()` panics on the first NaN; every
    /// sort on possibly-poisoned data must go through this instead.
    fn total_cmp(&self, other: &Self) -> std::cmp::Ordering;

    /// `sqrt(self^2 + other^2)` without undue overflow.
    fn hypot(self, other: Self) -> Self;

    /// Sign transfer: `|self| * sign(other)` (used by the QL iteration).
    fn copysign(self, other: Self) -> Self;

    /// Clamp into `[lo, hi]`.
    fn clamp_to(self, lo: Self, hi: Self) -> Self {
        self.max(lo).min(hi)
    }

    /// `self * self`.
    #[inline]
    fn sq(self) -> Self {
        self * self
    }

    /// Half of one, handy in staggered-grid interpolation.
    #[inline]
    fn half() -> Self {
        Self::of(0.5)
    }

    /// Two.
    #[inline]
    fn two() -> Self {
        Self::of(2.0)
    }
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            #[inline]
            fn zero() -> Self {
                0.0
            }
            #[inline]
            fn one() -> Self {
                1.0
            }
            #[inline]
            fn of(v: f64) -> Self {
                // The Real trait's rounding conversion primitive itself.
                v as $t // bda-check: allow(lossy_cast)
            }
            #[inline]
            fn f64(self) -> f64 {
                // Widening for f32, identity for f64: never lossy.
                self as f64 // bda-check: allow(lossy_cast)
            }
            #[inline]
            fn eps() -> Self {
                <$t>::EPSILON
            }
            #[inline]
            fn infinity() -> Self {
                <$t>::INFINITY
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline]
            fn powf(self, p: Self) -> Self {
                self.powf(p)
            }
            #[inline]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline]
            fn tanh(self) -> Self {
                self.tanh()
            }
            #[inline]
            fn floor(self) -> Self {
                self.floor()
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline]
            fn copysign(self, other: Self) -> Self {
                <$t>::copysign(self, other)
            }
            #[inline]
            fn total_cmp(&self, other: &Self) -> std::cmp::Ordering {
                <$t>::total_cmp(self, other)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<T: Real>() {
        assert_eq!(T::zero() + T::one(), T::one());
        assert_eq!(T::of(2.0) * T::of(3.0), T::of(6.0));
        assert!((T::of(4.0).sqrt() - T::two()).abs() < T::of(1e-6));
        assert!((T::of(1.0).exp().ln() - T::one()).abs() < T::of(1e-5));
        assert_eq!(T::of(-3.5).abs(), T::of(3.5));
        assert_eq!(T::of(3.0).max(T::of(5.0)), T::of(5.0));
        assert_eq!(T::of(3.0).min(T::of(5.0)), T::of(3.0));
        assert_eq!(T::of(7.0).clamp_to(T::zero(), T::of(5.0)), T::of(5.0));
        assert_eq!(T::of(2.0).sq(), T::of(4.0));
        assert_eq!(T::of(5.0).copysign(T::of(-1.0)), T::of(-5.0));
        assert!((T::of(3.0).hypot(T::of(4.0)) - T::of(5.0)).abs() < T::of(1e-6));
        assert!(T::one().is_finite());
        assert!(!T::infinity().abs().recip_is_nonzero_test());
        assert_eq!(T::of_usize(7), T::of(7.0));
        assert_eq!(T::of(2.5).floor(), T::of(2.0));
        assert!((T::of(2.0).mul_add(T::of(3.0), T::of(1.0)) - T::of(7.0)).abs() < T::eps());
        let nan = T::zero() / T::zero();
        let mut v = [T::one(), nan, T::zero()];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], T::zero());
        assert_eq!(v[1], T::one());
        assert!(!v[2].is_finite());
    }

    trait RecipTest {
        fn recip_is_nonzero_test(self) -> bool;
    }
    impl<T: Real> RecipTest for T {
        fn recip_is_nonzero_test(self) -> bool {
            (T::one() / self) > T::zero()
        }
    }

    #[test]
    fn f32_satisfies_contract() {
        exercise::<f32>();
    }

    #[test]
    fn f64_satisfies_contract() {
        exercise::<f64>();
    }

    #[test]
    fn widening_roundtrip() {
        let x: f32 = 1.25;
        assert_eq!(f32::of(x.f64()), x);
        let y: f64 = 1.25e-300;
        assert_eq!(f64::of(y.f64()), y);
    }

    #[test]
    fn eps_matches_native() {
        assert_eq!(<f32 as Real>::eps(), f32::EPSILON);
        assert_eq!(<f64 as Real>::eps(), f64::EPSILON);
    }
}
