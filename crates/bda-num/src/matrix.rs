//! Small dense square matrices for ensemble-space algebra.
//!
//! The LETKF works in the k-dimensional ensemble space (k = 1000 in the
//! paper's production configuration, much smaller in tests), so all matrices
//! here are modest, dense, and row-major. No BLAS is used; the hot paths go
//! through the explicitly unrolled accumulator kernels ([`dot8`], [`axpy8`])
//! so throughput does not depend on the autovectorizer recognizing a
//! reduction, and the GEMM path ([`MatrixS::matmul_into`]) is k-blocked so
//! the streamed operand stays cache-resident across output rows.

use crate::real::Real;

/// A dense `n x n` matrix in row-major order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MatrixS<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Real> MatrixS<T> {
    /// Zero matrix of size `n x n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![T::zero(); n * n],
        }
    }

    /// Identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Build from a row-major slice; panics if `data.len() != n*n`.
    pub fn from_rows(n: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must be n*n long");
        Self {
            n,
            data: data.to_vec(),
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Resize to `n x n` and zero every entry, reusing the existing
    /// allocation — the allocation-free analogue of [`MatrixS::zeros`] for
    /// per-grid-point scratch matrices.
    pub fn reset_zeros(&mut self, n: usize) {
        self.n = n;
        self.data.clear();
        self.data.resize(n * n, T::zero());
    }

    /// Overwrite `self` with a copy of `src`, reusing the existing
    /// allocation (the allocation-free analogue of `clone`).
    pub fn copy_from(&mut self, src: &Self) {
        self.n = src.n;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Swap columns `a` and `b` in place.
    pub fn swap_columns(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let n = self.n;
        for i in 0..n {
            self.data.swap(i * n + a, i * n + b);
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// `self * other`, allocating the result.
    pub fn matmul(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.n);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self * other` into caller-owned storage (resized as needed).
    ///
    /// i-k-j loop order with the inner `j` loop running through the
    /// unrolled [`axpy8`] kernel, and the `k` dimension blocked so a tile
    /// of `other`'s rows is reused across every output row before the next
    /// tile streams in. Accumulation order per output element is ascending
    /// `k` regardless of the block size, so blocking never changes the
    /// result bit pattern.
    // The entry assert pins both operands to dimension n and `reset_zeros`
    // sizes `out`; every `i*n+k` / row-slice offset is below n*n by loop
    // bounds.
    // bda-check: allow(panic_path)
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(self.n, other.n);
        const K_BLOCK: usize = 64;
        let n = self.n;
        out.reset_zeros(n);
        for kb in (0..n).step_by(K_BLOCK) {
            let kend = (kb + K_BLOCK).min(n);
            for i in 0..n {
                for k in kb..kend {
                    let a = self.data[i * n + k];
                    if a == T::zero() {
                        continue;
                    }
                    axpy8(
                        a,
                        &other.data[k * n..(k + 1) * n],
                        &mut out.data[i * n..(i + 1) * n],
                    );
                }
            }
        }
    }

    /// `self * v` for a length-n vector.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        let mut out = vec![T::zero(); self.n];
        self.matvec_into(v, &mut out);
        out
    }

    /// `self * v` into a caller-owned output slice (allocation-free).
    // Entry asserts pin `v`/`out` to n; the row slice `i*n..(i+1)*n` is in
    // bounds for every i < n.
    // bda-check: allow(panic_path)
    pub fn matvec_into(&self, v: &[T], out: &mut [T]) {
        assert_eq!(v.len(), self.n);
        assert_eq!(out.len(), self.n);
        let n = self.n;
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot8(&self.data[i * n..(i + 1) * n], v);
        }
    }

    /// Transpose, allocating the result.
    pub fn transpose(&self) -> Self {
        let n = self.n;
        Self::from_fn(n, |i, j| self.data[j * n + i])
    }

    /// Maximum absolute off-diagonal element (symmetry/diagonalization gauge).
    pub fn max_offdiag_abs(&self) -> T {
        let n = self.n;
        let mut m = T::zero();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m = m.max(self.data[i * n + j].abs());
                }
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> T {
        self.data
            .iter()
            .fold(T::zero(), |acc, &x| x.mul_add(x, acc))
            .sqrt()
    }

    /// Symmetrize in place: `A <- (A + A^T)/2`. The LETKF background
    /// covariance in ensemble space is symmetric by construction but
    /// accumulates rounding asymmetry in single precision.
    pub fn symmetrize(&mut self) {
        let n = self.n;
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = (self.data[i * n + j] + self.data[j * n + i]) * T::half();
                self.data[i * n + j] = avg;
                self.data[j * n + i] = avg;
            }
        }
    }

    /// Is this matrix symmetric to within `tol`?
    pub fn is_symmetric(&self, tol: T) -> bool {
        let n = self.n;
        for i in 0..n {
            for j in (i + 1)..n {
                if (self.data[i * n + j] - self.data[j * n + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Add `s * I` in place.
    pub fn add_scaled_identity(&mut self, s: T) {
        let n = self.n;
        for i in 0..n {
            self.data[i * n + i] += s;
        }
    }

    /// Scale all entries in place.
    pub fn scale(&mut self, s: T) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

impl<T: Real> std::ops::Index<(usize, usize)> for MatrixS<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.n + j]
    }
}

impl<T: Real> std::ops::IndexMut<(usize, usize)> for MatrixS<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.n + j]
    }
}

/// Dot product of two equal-length slices, strictly sequential accumulation
/// order (one chain of `mul_add`s). Use [`dot8`] on hot paths; keep this
/// where an exact left-to-right accumulation order is part of a contract.
#[inline]
pub fn dot<T: Real>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = T::zero();
    for (&x, &y) in a.iter().zip(b) {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// Dot product with four independent accumulator chains over an 8-wide
/// unrolled body.
///
/// A single `mul_add` chain serializes on the FMA latency (4-5 cycles);
/// four independent chains keep the FMA pipes full, which is the entire
/// difference between latency-bound and throughput-bound reduction. The
/// accumulators combine in a fixed order `(a0 + a1) + (a2 + a3)` plus a
/// sequential tail, so the result is deterministic for a given length —
/// but it is *not* bit-identical to [`dot`] (different association).
#[inline]
pub fn dot8<T: Real>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let split = n - n % 8;
    let mut a0 = T::zero();
    let mut a1 = T::zero();
    let mut a2 = T::zero();
    let mut a3 = T::zero();
    for (ca, cb) in a[..split].chunks_exact(8).zip(b[..split].chunks_exact(8)) {
        a0 = ca[0].mul_add(cb[0], a0);
        a1 = ca[1].mul_add(cb[1], a1);
        a2 = ca[2].mul_add(cb[2], a2);
        a3 = ca[3].mul_add(cb[3], a3);
        a0 = ca[4].mul_add(cb[4], a0);
        a1 = ca[5].mul_add(cb[5], a1);
        a2 = ca[6].mul_add(cb[6], a2);
        a3 = ca[7].mul_add(cb[7], a3);
    }
    let mut acc = (a0 + a1) + (a2 + a3);
    for (&x, &y) in a[split..].iter().zip(&b[split..]) {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// `y += alpha * x` (axpy). Elementwise, so unrolling cannot change the
/// result: this is bit-identical to the naive loop at any width.
#[inline]
pub fn axpy<T: Real>(alpha: T, x: &[T], y: &mut [T]) {
    axpy8(alpha, x, y);
}

/// `y += alpha * x` with an 8-wide unrolled body (bit-identical to
/// [`axpy`]; the unroll only removes loop-carried bookkeeping).
#[inline]
pub fn axpy8<T: Real>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let split = n - n % 8;
    for (cy, cx) in y[..split]
        .chunks_exact_mut(8)
        .zip(x[..split].chunks_exact(8))
    {
        cy[0] = alpha.mul_add(cx[0], cy[0]);
        cy[1] = alpha.mul_add(cx[1], cy[1]);
        cy[2] = alpha.mul_add(cx[2], cy[2]);
        cy[3] = alpha.mul_add(cx[3], cy[3]);
        cy[4] = alpha.mul_add(cx[4], cy[4]);
        cy[5] = alpha.mul_add(cx[5], cy[5]);
        cy[6] = alpha.mul_add(cx[6], cy[6]);
        cy[7] = alpha.mul_add(cx[7], cy[7]);
    }
    for (yi, &xi) in y[split..].iter_mut().zip(&x[split..]) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// Scaled elementwise product `u[j] = x[j] * s[j]`, 4-wide unrolled — the
/// left-operand preparation step of the LETKF's `V diag(f) V^T` assembly.
#[inline]
pub fn scale_into<T: Real>(x: &[T], s: &[T], u: &mut [T]) {
    debug_assert_eq!(x.len(), s.len());
    debug_assert_eq!(x.len(), u.len());
    let n = x.len();
    let split = n - n % 4;
    for ((cu, cx), cs) in u[..split]
        .chunks_exact_mut(4)
        .zip(x[..split].chunks_exact(4))
        .zip(s[..split].chunks_exact(4))
    {
        cu[0] = cx[0] * cs[0];
        cu[1] = cx[1] * cs[1];
        cu[2] = cx[2] * cs[2];
        cu[3] = cx[3] * cs[3];
    }
    for i in split..n {
        u[i] = x[i] * s[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = MatrixS::<f64>::from_fn(4, |i, j| (i * 4 + j) as f64);
        let i4 = MatrixS::identity(4);
        assert_eq!(a.matmul(&i4), a);
        assert_eq!(i4.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = MatrixS::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let b = MatrixS::from_rows(2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = MatrixS::from_rows(3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.5, 0.5, 0.5]);
        let v = [1.0, 2.0, 3.0];
        let got = a.matvec(&v);
        assert_eq!(got, vec![7.0, 8.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = MatrixS::<f32>::from_fn(5, |i, j| (i as f32) - 2.0 * (j as f32));
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut a = MatrixS::from_rows(2, &[1.0, 2.0, 4.0, 3.0]);
        a.symmetrize();
        assert!(a.is_symmetric(0.0));
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    fn frobenius_of_identity() {
        let i = MatrixS::<f64>::identity(9);
        assert!((i.frobenius() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_identity_hits_diagonal_only() {
        let mut a = MatrixS::<f64>::zeros(3);
        a.add_scaled_identity(2.5);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], if i == j { 2.5 } else { 0.0 });
            }
        }
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0_f64, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        assert_eq!(dot(&x, &y), 10.0 + 40.0 + 90.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn max_offdiag_ignores_diagonal() {
        let a = MatrixS::from_rows(2, &[100.0, 1.0, -3.0, 100.0]);
        assert_eq!(a.max_offdiag_abs(), 3.0);
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_wrong_len() {
        let _ = MatrixS::<f64>::from_rows(3, &[1.0, 2.0]);
    }

    #[test]
    fn dot8_matches_dot_to_rounding_at_all_lengths() {
        // Cover the empty, sub-unroll, exact-multiple and ragged cases.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 33, 100] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
            let seq = dot(&a, &b);
            let unr = dot8(&a, &b);
            assert!(
                (seq - unr).abs() <= 1e-12 * (1.0 + seq.abs()),
                "n={n}: {seq} vs {unr}"
            );
        }
    }

    #[test]
    fn axpy8_is_bit_identical_to_naive_axpy() {
        for n in [0usize, 1, 5, 8, 13, 16, 31] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
            let mut y_unrolled: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
            let mut y_naive = y_unrolled.clone();
            axpy8(1.7, &x, &mut y_unrolled);
            for (yi, &xi) in y_naive.iter_mut().zip(&x) {
                *yi = 1.7_f64.mul_add(xi, *yi);
            }
            for (a, b) in y_unrolled.iter().zip(&y_naive) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn scale_into_matches_elementwise() {
        for n in [0usize, 1, 3, 4, 5, 11] {
            let x: Vec<f32> = (0..n).map(|i| i as f32 + 0.5).collect();
            let s: Vec<f32> = (0..n).map(|i| 1.0 / (i as f32 + 1.0)).collect();
            let mut u = vec![0.0f32; n];
            scale_into(&x, &s, &mut u);
            for i in 0..n {
                assert_eq!(u[i].to_bits(), (x[i] * s[i]).to_bits());
            }
        }
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise_across_block_boundary() {
        // n = 100 crosses the K_BLOCK = 64 boundary; blocking must not
        // change the accumulation order per element.
        let n = 100;
        let a = MatrixS::<f64>::from_fn(n, |i, j| ((i * 31 + j * 17) as f64 * 0.01).sin());
        let b = MatrixS::<f64>::from_fn(n, |i, j| ((i * 13 + j * 7) as f64 * 0.02).cos());
        let via_alloc = a.matmul(&b);
        let mut out = MatrixS::zeros(1); // wrong size: matmul_into must resize
        a.matmul_into(&b, &mut out);
        assert_eq!(out.n(), n);
        for (x, y) in out.as_slice().iter().zip(via_alloc.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matvec_into_reuses_buffer() {
        let a = MatrixS::from_rows(3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.5, 0.5, 0.5]);
        let v = [1.0, 2.0, 3.0];
        let mut out = vec![9.0; 3];
        a.matvec_into(&v, &mut out);
        assert_eq!(out, vec![7.0, 8.0, 3.0]);
    }

    #[test]
    fn swap_columns_and_copy_from() {
        let mut a = MatrixS::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        a.swap_columns(0, 1);
        assert_eq!(a.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
        a.swap_columns(1, 1); // no-op
        assert_eq!(a.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
        let mut b = MatrixS::zeros(5);
        b.copy_from(&a);
        assert_eq!(b, a);
    }

    #[test]
    fn reset_zeros_resizes_and_clears() {
        let mut a = MatrixS::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        a.reset_zeros(3);
        assert_eq!(a.n(), 3);
        assert!(a.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(a.as_slice().len(), 9);
    }
}
