//! Small dense square matrices for ensemble-space algebra.
//!
//! The LETKF works in the k-dimensional ensemble space (k = 1000 in the
//! paper's production configuration, much smaller in tests), so all matrices
//! here are modest, dense, and row-major. No BLAS is used; these kernels are
//! simple enough that the compiler autovectorizes the inner loops.

use crate::real::Real;

/// A dense `n x n` matrix in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixS<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Real> MatrixS<T> {
    /// Zero matrix of size `n x n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![T::zero(); n * n],
        }
    }

    /// Identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Build from a row-major slice; panics if `data.len() != n*n`.
    pub fn from_rows(n: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must be n*n long");
        Self {
            n,
            data: data.to_vec(),
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.n..(i + 1) * self.n]
    }

    /// `self * other`, allocating the result.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = Self::zeros(n);
        // i-k-j loop order: unit-stride inner loop over the output row.
        for i in 0..n {
            for k in 0..n {
                let a = self.data[i * n + k];
                if a == T::zero() {
                    continue;
                }
                let orow = &other.data[k * n..(k + 1) * n];
                let crow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    crow[j] = a.mul_add(orow[j], crow[j]);
                }
            }
        }
        out
    }

    /// `self * v` for a length-n vector.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.n);
        let n = self.n;
        let mut out = vec![T::zero(); n];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * n..(i + 1) * n];
            let mut acc = T::zero();
            for j in 0..n {
                acc = row[j].mul_add(v[j], acc);
            }
            *o = acc;
        }
        out
    }

    /// Transpose, allocating the result.
    pub fn transpose(&self) -> Self {
        let n = self.n;
        Self::from_fn(n, |i, j| self.data[j * n + i])
    }

    /// Maximum absolute off-diagonal element (symmetry/diagonalization gauge).
    pub fn max_offdiag_abs(&self) -> T {
        let n = self.n;
        let mut m = T::zero();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m = m.max(self.data[i * n + j].abs());
                }
            }
        }
        m
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> T {
        self.data
            .iter()
            .fold(T::zero(), |acc, &x| x.mul_add(x, acc))
            .sqrt()
    }

    /// Symmetrize in place: `A <- (A + A^T)/2`. The LETKF background
    /// covariance in ensemble space is symmetric by construction but
    /// accumulates rounding asymmetry in single precision.
    pub fn symmetrize(&mut self) {
        let n = self.n;
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = (self.data[i * n + j] + self.data[j * n + i]) * T::half();
                self.data[i * n + j] = avg;
                self.data[j * n + i] = avg;
            }
        }
    }

    /// Is this matrix symmetric to within `tol`?
    pub fn is_symmetric(&self, tol: T) -> bool {
        let n = self.n;
        for i in 0..n {
            for j in (i + 1)..n {
                if (self.data[i * n + j] - self.data[j * n + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Add `s * I` in place.
    pub fn add_scaled_identity(&mut self, s: T) {
        let n = self.n;
        for i in 0..n {
            self.data[i * n + i] += s;
        }
    }

    /// Scale all entries in place.
    pub fn scale(&mut self, s: T) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

impl<T: Real> std::ops::Index<(usize, usize)> for MatrixS<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        &self.data[i * self.n + j]
    }
}

impl<T: Real> std::ops::IndexMut<(usize, usize)> for MatrixS<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        &mut self.data[i * self.n + j]
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot<T: Real>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = T::zero();
    for (&x, &y) in a.iter().zip(b) {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// `y += alpha * x` (axpy).
#[inline]
pub fn axpy<T: Real>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_matmul_neutral() {
        let a = MatrixS::<f64>::from_fn(4, |i, j| (i * 4 + j) as f64);
        let i4 = MatrixS::identity(4);
        assert_eq!(a.matmul(&i4), a);
        assert_eq!(i4.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = MatrixS::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let b = MatrixS::from_rows(2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = MatrixS::from_rows(3, &[1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.5, 0.5, 0.5]);
        let v = [1.0, 2.0, 3.0];
        let got = a.matvec(&v);
        assert_eq!(got, vec![7.0, 8.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = MatrixS::<f32>::from_fn(5, |i, j| (i as f32) - 2.0 * (j as f32));
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut a = MatrixS::from_rows(2, &[1.0, 2.0, 4.0, 3.0]);
        a.symmetrize();
        assert!(a.is_symmetric(0.0));
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    fn frobenius_of_identity() {
        let i = MatrixS::<f64>::identity(9);
        assert!((i.frobenius() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_identity_hits_diagonal_only() {
        let mut a = MatrixS::<f64>::zeros(3);
        a.add_scaled_identity(2.5);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], if i == j { 2.5 } else { 0.0 });
            }
        }
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0_f64, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        assert_eq!(dot(&x, &y), 10.0 + 40.0 + 90.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn max_offdiag_ignores_diagonal() {
        let a = MatrixS::from_rows(2, &[100.0, 1.0, -3.0, 100.0]);
        assert_eq!(a.max_offdiag_abs(), 3.0);
    }

    #[test]
    #[should_panic]
    fn from_rows_rejects_wrong_len() {
        let _ = MatrixS::<f64>::from_rows(3, &[1.0, 2.0]);
    }
}
