//! Opt-in per-kernel wall-clock attribution for the bench harness.
//!
//! The paper's 30-second budget is spent in four places: the per-gridpoint
//! eigensolve, the HEVI vertical tridiagonal sweep, the microphysics column
//! update, and the radar observation operator. The `cycle_scaling` bench
//! needs that breakdown per cycle (BENCH_9's `kernels` section, gated by
//! CI's perf-trajectory lane), so the kernels carry lightweight timers:
//!
//! * disabled (the default, and always in production cycling), a timer is a
//!   single relaxed atomic load — no clock read, no syscall;
//! * enabled (`set_enabled(true)`, bench harnesses only), each instrumented
//!   region adds its elapsed nanoseconds and call count to a global relaxed
//!   counter pair, summed across worker threads.
//!
//! Wall-clock reads are confined to this module and annotated per site: the
//! deterministic cycle path never branches on these values, it only
//! accumulates them, so replay determinism is unaffected.

use crate::cast;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented kernel buckets, in report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Per-gridpoint symmetric eigendecomposition (LETKF ensemble space).
    Eigensolve = 0,
    /// HEVI vertically-implicit tridiagonal column solves.
    Tridiag = 1,
    /// Single-moment microphysics column updates.
    Microphysics = 2,
    /// Radar observation operator (PAWR scan simulation).
    ObsOperator = 3,
}

impl Kernel {
    pub const ALL: [Kernel; 4] = [
        Kernel::Eigensolve,
        Kernel::Tridiag,
        Kernel::Microphysics,
        Kernel::ObsOperator,
    ];

    /// Counter-array slot for this bucket (total, no cast involved).
    #[inline]
    fn idx(self) -> usize {
        match self {
            Kernel::Eigensolve => 0,
            Kernel::Tridiag => 1,
            Kernel::Microphysics => 2,
            Kernel::ObsOperator => 3,
        }
    }

    /// Stable bucket name used in BENCH JSON and the CI perf gate.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Eigensolve => "eigensolve",
            Kernel::Tridiag => "tridiag",
            Kernel::Microphysics => "microphysics",
            Kernel::ObsOperator => "obs_operator",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NANOS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static CALLS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Turn kernel timing on or off process-wide. Off by default; bench
/// harnesses enable it around measured sections.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is kernel timing currently enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero all accumulated counters.
pub fn reset() {
    for k in Kernel::ALL {
        NANOS[k.idx()].store(0, Ordering::Relaxed);
        CALLS[k.idx()].store(0, Ordering::Relaxed);
    }
}

/// RAII timer: accumulates the guarded scope's wall time into its bucket on
/// drop. When timing is disabled construction is a single relaxed load.
pub struct KernelGuard {
    kernel: Kernel,
    start: Option<Instant>,
}

/// Start timing `kernel` until the returned guard drops.
#[inline]
pub fn guard(kernel: Kernel) -> KernelGuard {
    let start = if enabled() {
        // bda-check: allow(wallclock)
        Some(Instant::now())
    } else {
        None
    };
    KernelGuard { kernel, start }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            NANOS[self.kernel.idx()].fetch_add(ns, Ordering::Relaxed);
            CALLS[self.kernel.idx()].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One bucket's accumulated totals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelTotals {
    pub kernel: Kernel,
    pub seconds: f64,
    pub calls: u64,
}

/// Snapshot all buckets (in [`Kernel::ALL`] order).
pub fn report() -> Vec<KernelTotals> {
    Kernel::ALL
        .iter()
        .map(|&k| KernelTotals {
            kernel: k,
            seconds: cast::f64_of_u64(NANOS[k.idx()].load(Ordering::Relaxed)) / 1e9,
            calls: CALLS[k.idx()].load(Ordering::Relaxed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global, so the enable/disable/reset behavior
    // is covered by one sequential test rather than several racing ones.
    #[test]
    fn disabled_guards_record_nothing_enabled_guards_accumulate() {
        reset();
        set_enabled(false);
        {
            let _g = guard(Kernel::Tridiag);
        }
        let r = report();
        assert_eq!(r[Kernel::Tridiag.idx()].calls, 0);

        set_enabled(true);
        {
            let _g = guard(Kernel::Tridiag);
            std::hint::black_box(0u64);
        }
        {
            let _g = guard(Kernel::Eigensolve);
        }
        set_enabled(false);
        let r = report();
        assert_eq!(r[Kernel::Tridiag.idx()].calls, 1);
        assert_eq!(r[Kernel::Eigensolve.idx()].calls, 1);
        assert_eq!(r[Kernel::Microphysics.idx()].calls, 0);
        assert!(r[Kernel::Tridiag.idx()].seconds >= 0.0);

        reset();
        let r = report();
        assert!(r.iter().all(|b| b.calls == 0 && b.seconds == 0.0));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].kernel.name(), "eigensolve");
        assert_eq!(r[3].kernel.name(), "obs_operator");
    }
}
