//! Tridiagonal system solvers.
//!
//! The HEVI (horizontally explicit, vertically implicit) dynamical core of
//! `bda-scale` treats vertically propagating acoustic and gravity modes
//! implicitly, which reduces each column update to a tridiagonal solve — the
//! same structure as in SCALE-RM. The Thomas algorithm below is the workhorse;
//! a periodic variant is provided for tests and for doubly-periodic research
//! configurations.

use crate::real::Real;

/// Solve `A x = d` for tridiagonal `A` using the Thomas algorithm.
///
/// `sub[i]` is the subdiagonal coefficient of row `i` (with `sub[0]` unused),
/// `diag[i]` the main diagonal, `sup[i]` the superdiagonal (with `sup[n-1]`
/// unused). The solution overwrites `d`. Scratch must be at least `n` long.
///
/// The algorithm is stable for diagonally dominant systems, which the
/// vertically implicit operator always is (its diagonal carries the
/// `1 + dt^2 c_s^2 / dz^2` acoustic term).
///
/// # Panics
/// Panics if slice lengths disagree or a pivot underflows to zero.
// The entry asserts are the documented contract above and pin every slice
// to length n; the in-loop `i±1` offsets stay inside `1..n` / `0..n-1`.
// bda-check: allow(panic_path)
pub fn solve_thomas<T: Real>(sub: &[T], diag: &[T], sup: &[T], d: &mut [T], scratch: &mut [T]) {
    let n = diag.len();
    assert_eq!(sub.len(), n);
    assert_eq!(sup.len(), n);
    assert_eq!(d.len(), n);
    assert!(scratch.len() >= n);
    assert!(n > 0);

    // Forward sweep.
    let mut beta = diag[0];
    assert!(beta.abs() > T::zero(), "zero pivot in Thomas algorithm");
    d[0] /= beta;
    for i in 1..n {
        scratch[i] = sup[i - 1] / beta;
        beta = diag[i] - sub[i] * scratch[i];
        assert!(beta.abs() > T::zero(), "zero pivot in Thomas algorithm");
        d[i] = (d[i] - sub[i] * d[i - 1]) / beta;
    }
    // Back substitution.
    for i in (0..n - 1).rev() {
        let correction = scratch[i + 1] * d[i + 1];
        d[i] -= correction;
    }
}

/// Convenience allocation-per-call wrapper around [`solve_thomas`].
pub fn solve_thomas_alloc<T: Real>(sub: &[T], diag: &[T], sup: &[T], rhs: &[T]) -> Vec<T> {
    let mut d = rhs.to_vec();
    let mut scratch = vec![T::zero(); diag.len()];
    solve_thomas(sub, diag, sup, &mut d, &mut scratch);
    d
}

/// Multiply a tridiagonal matrix by a vector (for verification).
pub fn tridiag_matvec<T: Real>(sub: &[T], diag: &[T], sup: &[T], x: &[T]) -> Vec<T> {
    let n = diag.len();
    let mut y = vec![T::zero(); n];
    for i in 0..n {
        let mut acc = diag[i] * x[i];
        if i > 0 {
            acc += sub[i] * x[i - 1];
        }
        if i + 1 < n {
            acc += sup[i] * x[i + 1];
        }
        y[i] = acc;
    }
    y
}

/// Solve a cyclic (periodic) tridiagonal system via the Sherman–Morrison
/// correction. `alpha` couples row 0 to column n-1 and `beta` row n-1 to
/// column 0.
pub fn solve_cyclic<T: Real>(
    sub: &[T],
    diag: &[T],
    sup: &[T],
    alpha: T,
    beta: T,
    rhs: &[T],
) -> Vec<T> {
    let n = diag.len();
    assert!(n >= 3, "cyclic solve requires n >= 3");
    let gamma = -diag[0];
    let mut dmod = diag.to_vec();
    dmod[0] = diag[0] - gamma;
    dmod[n - 1] = diag[n - 1] - alpha * beta / gamma;

    let x = solve_thomas_alloc(sub, &dmod, sup, rhs);

    let mut u = vec![T::zero(); n];
    u[0] = gamma;
    u[n - 1] = alpha;
    let z = solve_thomas_alloc(sub, &dmod, sup, &u);

    let fact = (x[0] + beta * x[n - 1] / gamma) / (T::one() + z[0] + beta * z[n - 1] / gamma);
    x.iter().zip(&z).map(|(&xi, &zi)| xi - fact * zi).collect()
}

/// A precomputed Thomas factorization for coefficient sets shared across
/// many right-hand sides.
///
/// The HEVI vertically-implicit operator's coefficients depend only on the
/// level (base state, grid metrics, time step) — not on the column — so one
/// factorization serves every column of the domain. Factoring once replaces
/// the per-column division chain with multiplications by the stored
/// reciprocal pivots, and [`ThomasFactor::solve_columns`] then sweeps a
/// whole block of columns with a unit-stride inner loop (the cache-tiled
/// batch shape of the HEVI sweep).
#[derive(Clone, Debug, Default)]
pub struct ThomasFactor<T> {
    /// Forward-elimination multipliers `sup[i-1] / beta[i-1]` (index 0
    /// unused) — also the back-substitution coefficients.
    w: Vec<T>,
    /// Reciprocal pivots `1 / beta[i]`.
    inv_beta: Vec<T>,
    /// Subdiagonal copy (index 0 unused).
    sub: Vec<T>,
    n: usize,
}

impl<T: Real> ThomasFactor<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// System size of the current factorization.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Factor the tridiagonal operator (same slice conventions as
    /// [`solve_thomas`]). Allocation-free after warm-up.
    ///
    /// # Panics
    /// Panics if slice lengths disagree or a pivot underflows to zero.
    // Entry asserts are the documented contract; `w`/`inv_beta` are resized
    // to n before the loop, so `i±1` indexing over `1..n` cannot panic.
    // bda-check: allow(panic_path)
    pub fn factor(&mut self, sub: &[T], diag: &[T], sup: &[T]) {
        let n = diag.len();
        assert_eq!(sub.len(), n);
        assert_eq!(sup.len(), n);
        assert!(n > 0);
        self.n = n;
        self.w.clear();
        self.w.resize(n, T::zero());
        self.inv_beta.clear();
        self.inv_beta.resize(n, T::zero());
        self.sub.clear();
        self.sub.extend_from_slice(sub);

        let mut beta = diag[0];
        assert!(beta.abs() > T::zero(), "zero pivot in Thomas factorization");
        self.inv_beta[0] = T::one() / beta;
        for i in 1..n {
            self.w[i] = sup[i - 1] * self.inv_beta[i - 1];
            beta = diag[i] - sub[i] * self.w[i];
            assert!(beta.abs() > T::zero(), "zero pivot in Thomas factorization");
            self.inv_beta[i] = T::one() / beta;
        }
    }

    /// Solve one right-hand side in place using the stored factorization.
    // The entry assert pins `d` to the factored size n that `w`/`inv_beta`/
    // `sub` already have; both sweeps index strictly inside `0..n`.
    // bda-check: allow(panic_path)
    pub fn solve(&self, d: &mut [T]) {
        let n = self.n;
        assert_eq!(d.len(), n);
        d[0] *= self.inv_beta[0];
        for i in 1..n {
            d[i] = (d[i] - self.sub[i] * d[i - 1]) * self.inv_beta[i];
        }
        for i in (0..n - 1).rev() {
            let correction = self.w[i + 1] * d[i + 1];
            d[i] -= correction;
        }
    }

    /// Solve `ncols` right-hand sides at once. `block` is row-major
    /// `[level][column]` (level-major, columns contiguous), so both sweeps
    /// run a unit-stride inner loop across columns — the operation the
    /// autovectorizer turns into full-width SIMD. Each column's arithmetic
    /// is identical to [`ThomasFactor::solve`], so the blocked solve is
    /// bit-identical to solving the columns one at a time.
    // The entry assert pins `block` to n*ncols; every row offset is a
    // `split_at_mut` product strictly inside that length.
    // bda-check: allow(panic_path)
    pub fn solve_columns(&self, block: &mut [T], ncols: usize) {
        let n = self.n;
        assert_eq!(block.len(), n * ncols);
        if ncols == 0 {
            return;
        }
        let inv0 = self.inv_beta[0];
        for x in &mut block[..ncols] {
            *x *= inv0;
        }
        for i in 1..n {
            let s = self.sub[i];
            let ib = self.inv_beta[i];
            let (prev_rows, cur_rows) = block.split_at_mut(i * ncols);
            let prev = &prev_rows[(i - 1) * ncols..];
            let cur = &mut cur_rows[..ncols];
            for (x, &p) in cur.iter_mut().zip(prev) {
                *x = (*x - s * p) * ib;
            }
        }
        for i in (0..n - 1).rev() {
            let w1 = self.w[i + 1];
            let (cur_rows, next_rows) = block.split_at_mut((i + 1) * ncols);
            let cur = &mut cur_rows[i * ncols..];
            let next = &next_rows[..ncols];
            for (x, &nx) in cur.iter_mut().zip(next) {
                let correction = w1 * nx;
                *x -= correction;
            }
        }
    }
}

/// A reusable workspace for batched column solves, avoiding per-column
/// allocation in the model's hot vertical-implicit loop.
pub struct TridiagWorkspace<T> {
    scratch: Vec<T>,
}

impl<T: Real> TridiagWorkspace<T> {
    pub fn new(n: usize) -> Self {
        Self {
            scratch: vec![T::zero(); n],
        }
    }

    /// Solve in place, reusing the internal scratch buffer.
    pub fn solve(&mut self, sub: &[T], diag: &[T], sup: &[T], d: &mut [T]) {
        if self.scratch.len() < diag.len() {
            self.scratch.resize(diag.len(), T::zero());
        }
        solve_thomas(sub, diag, sup, d, &mut self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf<T: Real>(sub: &[T], diag: &[T], sup: &[T], x: &[T], rhs: &[T]) -> f64 {
        tridiag_matvec(sub, diag, sup, x)
            .iter()
            .zip(rhs)
            .map(|(&a, &b)| (a - b).abs().f64())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_identity() {
        let n = 6;
        let sub = vec![0.0_f64; n];
        let diag = vec![1.0; n];
        let sup = vec![0.0; n];
        let rhs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = solve_thomas_alloc(&sub, &diag, &sup, &rhs);
        assert_eq!(x, rhs);
    }

    #[test]
    fn solves_diffusion_like_system_f64() {
        // -x_{i-1} + 4 x_i - x_{i+1} = rhs: strongly diagonally dominant.
        let n = 50;
        let sub = vec![-1.0_f64; n];
        let diag = vec![4.0; n];
        let sup = vec![-1.0; n];
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = solve_thomas_alloc(&sub, &diag, &sup, &rhs);
        assert!(residual_inf(&sub, &diag, &sup, &x, &rhs) < 1e-12);
    }

    #[test]
    fn solves_diffusion_like_system_f32() {
        let n = 50;
        let sub = vec![-1.0_f32; n];
        let diag = vec![4.0; n];
        let sup = vec![-1.0; n];
        let rhs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let x = solve_thomas_alloc(&sub, &diag, &sup, &rhs);
        assert!(residual_inf(&sub, &diag, &sup, &x, &rhs) < 1e-5);
    }

    #[test]
    fn single_element_system() {
        let x = solve_thomas_alloc(&[0.0_f64], &[2.0], &[0.0], &[8.0]);
        assert_eq!(x, vec![4.0]);
    }

    #[test]
    fn workspace_reuse_matches_alloc() {
        let n = 20;
        let sub = vec![-0.5_f64; n];
        let diag = vec![3.0; n];
        let sup = vec![-0.7; n];
        let rhs: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let expected = solve_thomas_alloc(&sub, &diag, &sup, &rhs);
        let mut ws = TridiagWorkspace::new(4); // deliberately undersized
        let mut d = rhs.clone();
        ws.solve(&sub, &diag, &sup, &mut d);
        for (a, b) in d.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn cyclic_solver_closes_the_ring() {
        // Periodic 1-D Laplacian-like ring with dominant diagonal.
        let n = 16;
        let sub = vec![-1.0_f64; n];
        let diag = vec![4.0; n];
        let sup = vec![-1.0; n];
        let alpha = -1.0; // A[0][n-1]
        let beta = -1.0; // A[n-1][0]
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let x = solve_cyclic(&sub, &diag, &sup, alpha, beta, &rhs);
        // Verify against a dense multiply including corner couplings.
        for i in 0..n {
            let mut acc = diag[i] * x[i];
            if i > 0 {
                acc += sub[i] * x[i - 1];
            }
            if i + 1 < n {
                acc += sup[i] * x[i + 1];
            }
            if i == 0 {
                acc += alpha * x[n - 1];
            }
            if i == n - 1 {
                acc += beta * x[0];
            }
            assert!((acc - rhs[i]).abs() < 1e-11, "row {i}: {acc} vs {}", rhs[i]);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = solve_thomas_alloc(&[0.0_f64; 3], &[1.0; 4], &[0.0; 4], &[1.0; 4]);
    }

    #[test]
    fn factored_solve_matches_thomas_to_rounding() {
        // The factored path multiplies by reciprocal pivots instead of
        // dividing, so it is not bit-identical to solve_thomas — but the
        // residual must be just as small.
        let n = 40;
        let sub = vec![-1.0_f64; n];
        let diag = vec![4.0; n];
        let sup = vec![-1.3; n];
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin()).collect();
        let mut f = ThomasFactor::new();
        f.factor(&sub, &diag, &sup);
        assert_eq!(f.n(), n);
        let mut d = rhs.clone();
        f.solve(&mut d);
        assert!(residual_inf(&sub, &diag, &sup, &d, &rhs) < 1e-12);
    }

    #[test]
    fn blocked_columns_solve_is_bit_identical_to_single_column_solves() {
        let n = 12;
        let ncols = 7;
        let sub = vec![-0.8_f32; n];
        let diag = vec![3.5; n];
        let sup = vec![-0.6; n];
        let mut f = ThomasFactor::new();
        f.factor(&sub, &diag, &sup);

        // block[level][col], plus per-column reference solves.
        let mut block: Vec<f32> = (0..n * ncols).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut singles: Vec<Vec<f32>> = (0..ncols)
            .map(|c| (0..n).map(|k| block[k * ncols + c]).collect())
            .collect();
        f.solve_columns(&mut block, ncols);
        for (c, col) in singles.iter_mut().enumerate() {
            f.solve(col);
            for k in 0..n {
                assert_eq!(
                    block[k * ncols + c].to_bits(),
                    col[k].to_bits(),
                    "col {c} level {k}"
                );
            }
        }
    }

    #[test]
    fn refactoring_reuses_buffers_for_new_sizes() {
        let mut f = ThomasFactor::<f64>::new();
        for n in [5usize, 17, 3] {
            let sub = vec![-1.0; n];
            let diag = vec![5.0; n];
            let sup = vec![-1.0; n];
            let rhs: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
            f.factor(&sub, &diag, &sup);
            let mut d = rhs.clone();
            f.solve(&mut d);
            assert!(residual_inf(&sub, &diag, &sup, &d, &rhs) < 1e-12, "n={n}");
        }
    }

    #[test]
    fn solve_columns_empty_block_is_fine() {
        let mut f = ThomasFactor::<f64>::new();
        f.factor(&[0.0, -1.0], &[2.0, 2.0], &[-1.0, 0.0]);
        let mut empty: Vec<f64> = Vec::new();
        f.solve_columns(&mut empty, 0);
    }
}
