//! Shared non-cryptographic hashing.
//!
//! One FNV-1a implementation for the whole workspace: the PAWR volume codec,
//! the JIT-DT pipe framing and the field-file format all checksum with the
//! same function, so an encoder in one crate and a verifier in another can
//! never drift apart.

/// 64-bit FNV-1a over a byte slice.
///
/// This is an integrity checksum against accidental corruption (torn
/// transfers, bit rot), not an authentication code: an adversary can forge
/// it trivially, which is exactly why every field behind the checksum is
/// still validated at decode time.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_offset_basis() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn prefix_is_not_a_fixed_point() {
        // Appending bytes always changes the hash (no trivial extension).
        let h = fnv1a(b"volume");
        assert_ne!(h, fnv1a(b"volume\0"));
        assert_ne!(h, fnv1a(b"volum"));
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = fnv1a(&[0u8; 64]);
        let mut buf = [0u8; 64];
        buf[63] = 1;
        assert_ne!(a, fnv1a(&buf));
    }
}
