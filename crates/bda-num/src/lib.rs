//! # bda-num — numerics substrate for the Big Data Assimilation system
//!
//! This crate provides the from-scratch numerical kernels the rest of the
//! workspace builds on:
//!
//! * [`Real`] — a precision trait implemented for `f32` and `f64`. The SC'23
//!   BDA paper converted SCALE and the LETKF from double to single precision
//!   for a ~2x speedup; in this reproduction precision is a type parameter,
//!   and the `ablation_precision` bench measures the same contrast.
//! * [`matrix::MatrixS`] — small dense square matrices in row-major storage,
//!   sized for ensemble-space operations (k = ensemble size).
//! * [`tridiag`] — Thomas-algorithm tridiagonal solvers used by the HEVI
//!   vertically-implicit dynamical core.
//! * [`eigen`] — symmetric eigensolvers: a cyclic-Jacobi baseline (standing in
//!   for the LAPACK solver the paper replaced) and a Householder
//!   tridiagonalization + implicit-shift QL solver with batched, workspace-
//!   reusing execution (standing in for KeDV, Kudo & Imamura 2019).
//! * [`stats`] — mean/variance/percentile/histogram helpers used by the
//!   verification and workflow-statistics layers.
//! * [`timing`] — opt-in per-kernel wall-clock attribution (eigensolve /
//!   tridiag / microphysics / obs-operator) feeding the bench suite's
//!   BENCH JSON breakdown; a disabled timer is one relaxed atomic load.
//! * [`rng`] — a tiny deterministic SplitMix64 generator with Box–Muller
//!   Gaussian sampling, generic over [`Real`], so ensemble perturbations are
//!   reproducible without threading an external RNG through every crate.

pub mod cast;
pub mod eigen;
pub mod hash;
pub mod matrix;
pub mod real;
pub mod rng;
pub mod stats;
pub mod timing;
pub mod tridiag;

pub use eigen::{BatchedEigen, JacobiEigen, QlEigen, SymEigDecomp, SymEigSolver};
pub use hash::fnv1a;
pub use matrix::MatrixS;
pub use real::Real;
pub use rng::SplitMix64;
