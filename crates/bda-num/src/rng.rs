//! Deterministic random number generation.
//!
//! Ensemble perturbations, radar noise, and the workflow performance model
//! must be reproducible for tests and benchmarks, so this module provides a
//! tiny seedable SplitMix64 generator with uniform and Gaussian (Box–Muller)
//! sampling generic over [`Real`]. Crates that need richer distributions use
//! `rand`; the hot model/filter paths use this to stay dependency-light.

use crate::real::Real;

/// SplitMix64 PRNG (Steele, Lea & Flood 2014). Passes BigCrush for this use;
/// one `u64` of state, trivially splittable by re-seeding from output.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Current raw state, for checkpointing. Restoring with
    /// [`SplitMix64::from_state`] continues the stream bit-for-bit.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator from a checkpointed [`SplitMix64::state`] value.
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Derive an independent stream for a sub-task (e.g. per ensemble
    /// member), keeping the parent stream untouched.
    pub fn split(&self, stream: u64) -> Self {
        let mut child = Self::new(
            self.state
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1))),
        );
        // Burn one output so adjacent streams decorrelate immediately.
        child.next_u64();
        child
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn next_uniform(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0,1).
        crate::cast::f64_of_u64(self.next_u64() >> 11) * (1.0 / crate::cast::f64_of_u64(1 << 53))
    }

    /// Uniform in [lo, hi).
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_uniform()
    }

    /// Uniform integer in [0, n).
    #[inline]
    pub fn next_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        crate::cast::trunc_index(self.next_uniform() * crate::cast::f64_of(n)) % n
    }

    /// Standard normal via Box–Muller (the slower but branch-free variant is
    /// unnecessary here; perturbation generation is not a hot path).
    pub fn next_gaussian<T: Real>(&mut self) -> T {
        let u1 = self.next_uniform().max(1e-300);
        let u2 = self.next_uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        T::of(r * (std::f64::consts::TAU * u2).cos())
    }

    /// Gaussian with mean and standard deviation.
    pub fn gaussian<T: Real>(&mut self, mean: T, sd: T) -> T {
        mean + sd * self.next_gaussian::<T>()
    }

    /// Fill a slice with zero-mean Gaussian noise of standard deviation `sd`.
    pub fn fill_gaussian<T: Real>(&mut self, out: &mut [T], sd: T) {
        for v in out {
            *v = self.gaussian(T::zero(), sd);
        }
    }

    /// Sample `k` distinct indices from `0..n` (Floyd's algorithm) — used to
    /// pick the paper's "10 analyses randomly chosen from the 1000-member
    /// ensemble" for the 30-minute forecast.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct from {n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = SplitMix64::new(314);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let parent = SplitMix64::new(7);
        let mut c1 = parent.split(0);
        let mut c2 = parent.split(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SplitMix64::new(9);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SplitMix64::new(11);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let g: f64 = rng.next_gaussian();
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_respects_mean_and_sd_in_f32() {
        let mut rng = SplitMix64::new(13);
        let n = 30_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            sum += rng.gaussian(5.0f32, 2.0f32) as f64;
        }
        assert!((sum / n as f64 - 5.0).abs() < 0.05);
    }

    #[test]
    fn next_index_in_bounds() {
        let mut rng = SplitMix64::new(17);
        for _ in 0..1000 {
            assert!(rng.next_index(7) < 7);
        }
    }

    #[test]
    fn sample_distinct_yields_distinct_in_range() {
        let mut rng = SplitMix64::new(23);
        for _ in 0..50 {
            let s = rng.sample_distinct(1000, 10);
            assert_eq!(s.len(), 10);
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10, "duplicates in {s:?}");
            assert!(s.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn sample_distinct_full_population() {
        let mut rng = SplitMix64::new(29);
        let mut s = rng.sample_distinct(5, 5);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }
}
