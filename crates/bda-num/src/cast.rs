//! Intent-named numeric conversions for kernel code.
//!
//! The `lossy_cast` lint denies bare `as` casts in `bda-num` / `bda-letkf`
//! because a silent truncation in an index or weight computation corrupts
//! an analysis without failing a test. This module is the single audited
//! home of those conversions: every helper names the *intended* semantics
//! (exact count widening, floor-to-index, saturating truncation), carries
//! a `debug_assert!` where the intent has a precondition, and keeps the
//! unavoidable `as` on one reviewed line.
//!
//! Saturating float→int behavior (negative → 0, NaN → 0, overflow → MAX)
//! is Rust's defined `as` semantics and is relied upon by the `*_index`
//! helpers: callers clamp against an upper bound and want the lower bound
//! handled for them.

/// Exact `usize` → `f64` for counts and grid extents. Exact up to 2⁵³,
/// far beyond any in-memory count this workspace can hold.
#[inline]
pub fn f64_of(n: usize) -> f64 {
    debug_assert!(n <= (1 << 53), "count {n} not exactly representable");
    n as f64 // bda-check: allow(lossy_cast)
}

/// Exact `u64` → `f64`; same 2⁵³ precondition as [`f64_of`].
#[inline]
pub fn f64_of_u64(n: u64) -> f64 {
    debug_assert!(n <= (1 << 53), "count {n} not exactly representable");
    n as f64 // bda-check: allow(lossy_cast)
}

/// Truncate toward zero to an index; negatives and NaN saturate to 0.
#[inline]
pub fn trunc_index(x: f64) -> usize {
    x as usize // bda-check: allow(lossy_cast)
}

/// Floor to an index; negatives and NaN saturate to 0.
#[inline]
pub fn floor_index(x: f64) -> usize {
    x.floor() as usize // bda-check: allow(lossy_cast)
}

/// Ceiling to an index; negatives and NaN saturate to 0.
#[inline]
pub fn ceil_index(x: f64) -> usize {
    x.ceil() as usize // bda-check: allow(lossy_cast)
}

/// Round-half-away to an index; negatives and NaN saturate to 0.
#[inline]
pub fn round_index(x: f64) -> usize {
    x.round() as usize // bda-check: allow(lossy_cast)
}

/// Truncate toward zero to `i64` (saturating at the type bounds, NaN → 0)
/// for signed bucket arithmetic around a floored coordinate.
#[inline]
pub fn trunc_i64(x: f64) -> i64 {
    x as i64 // bda-check: allow(lossy_cast)
}

/// `usize` → `u64`: widening on every platform this workspace targets.
#[inline]
pub fn u64_of(n: usize) -> u64 {
    n as u64 // bda-check: allow(lossy_cast)
}

/// `usize` → `i64` for signed neighborhood arithmetic around an index.
#[inline]
pub fn i64_of(n: usize) -> i64 {
    debug_assert!(i64::try_from(n).is_ok(), "index {n} overflows i64");
    n as i64 // bda-check: allow(lossy_cast)
}

/// `i64` → `usize` once sign has been checked by the caller.
#[inline]
pub fn index_of_i64(n: i64) -> usize {
    debug_assert!(n >= 0, "negative index {n}");
    n as usize // bda-check: allow(lossy_cast)
}

/// `u64` → `usize` for cycle counters and wire-decoded counts: widening on
/// every platform this workspace targets (debug-checked for 32-bit).
#[inline]
pub fn index_of_u64(n: u64) -> usize {
    debug_assert!(usize::try_from(n).is_ok(), "count {n} overflows usize");
    n as usize // bda-check: allow(lossy_cast)
}

/// Round-half-away to the nearest `u8`, saturating at 0/255; NaN → 0.
/// This is the dBZ quantizer of the egress tile codec: a non-finite or
/// out-of-palette value must clamp into the colormap, never wrap.
#[inline]
pub fn round_u8_sat(x: f64) -> u8 {
    x.round() as u8 // bda-check: allow(lossy_cast)
}

/// `usize` → `u8` for palette/zoom indices with a checked precondition.
#[inline]
pub fn u8_of_index(n: usize) -> u8 {
    debug_assert!(u8::try_from(n).is_ok(), "index {n} overflows u8");
    n as u8 // bda-check: allow(lossy_cast)
}

/// `usize` → compact `u16` tile coordinate; the precondition is that tile
/// grids stay below 2¹⁶ per axis (they are bounded by the model grid).
#[inline]
pub fn u16_of_index(n: usize) -> u16 {
    debug_assert!(u16::try_from(n).is_ok(), "index {n} overflows u16");
    n as u16 // bda-check: allow(lossy_cast)
}

/// Compact observation-index storage: `u32` → `usize` is always widening
/// on every platform this workspace targets.
#[inline]
pub fn index_of_u32(n: u32) -> usize {
    n as usize // bda-check: allow(lossy_cast)
}

/// `usize` → compact `u32` observation index; the precondition is that
/// observation counts stay below 2³² (they are bounded by grid size).
#[inline]
pub fn u32_of_index(n: usize) -> u32 {
    debug_assert!(u32::try_from(n).is_ok(), "index {n} overflows u32");
    n as u32 // bda-check: allow(lossy_cast)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_widening() {
        assert_eq!(f64_of(0), 0.0);
        assert_eq!(f64_of(1 << 53), 9007199254740992.0);
        assert_eq!(f64_of_u64(12345), 12345.0);
    }

    #[test]
    fn index_helpers_saturate_low() {
        assert_eq!(trunc_index(-3.7), 0);
        assert_eq!(floor_index(-0.1), 0);
        assert_eq!(ceil_index(-5.0), 0);
        assert_eq!(round_index(f64::NAN), 0);
    }

    #[test]
    fn index_helpers_match_float_ops() {
        assert_eq!(trunc_index(3.9), 3);
        assert_eq!(floor_index(3.9), 3);
        assert_eq!(ceil_index(3.1), 4);
        assert_eq!(round_index(3.5), 4);
    }

    #[test]
    fn signed_round_trips() {
        assert_eq!(i64_of(42), 42);
        assert_eq!(index_of_i64(42), 42);
        assert_eq!(index_of_u32(7), 7);
        assert_eq!(u32_of_index(7), 7);
        assert_eq!(u16_of_index(512), 512);
        assert_eq!(u8_of_index(200), 200);
    }

    #[test]
    fn u8_saturation_and_rounding() {
        assert_eq!(round_u8_sat(0.0), 0);
        assert_eq!(round_u8_sat(127.5), 128);
        assert_eq!(round_u8_sat(255.0), 255);
        assert_eq!(round_u8_sat(300.0), 255);
        assert_eq!(round_u8_sat(-5.0), 0);
        assert_eq!(round_u8_sat(f64::NAN), 0);
        assert_eq!(round_u8_sat(f64::INFINITY), 255);
    }
}
