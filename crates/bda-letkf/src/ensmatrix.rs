//! Member-contiguous ensemble state storage.
//!
//! The LETKF transform at one grid point reads and writes the values of all
//! members at that point. Storing the ensemble member-major (one flat state
//! per member) would make that a strided gather; [`EnsembleMatrix`] instead
//! transposes to *element-major* storage where the k member values of each
//! state element are contiguous — the cache layout the transform wants, and
//! the layout that lets Rayon hand each grid point's block to a worker as
//! one mutable chunk.

use bda_num::cast;
use bda_num::Real;
use serde::{Deserialize, Serialize};

/// Geometry of the flattened analysis state.
///
/// Element order within one member's flat state is variable-major:
/// `flat[((v * nx + i) * ny + j) * nz + k]` (matching
/// `bda_scale::ModelState::to_flat`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StateLayout {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    pub nvar: usize,
    /// Horizontal grid spacing, m.
    pub dx: f64,
    /// Cell-center heights, m.
    pub z_center: Vec<f64>,
}

impl StateLayout {
    pub fn n_grid_points(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn n_elements(&self) -> usize {
        self.n_grid_points() * self.nvar
    }

    /// Flat member-state index of (var, i, j, k).
    #[inline]
    pub fn member_index(&self, v: usize, i: usize, j: usize, k: usize) -> usize {
        ((v * self.nx + i) * self.ny + j) * self.nz + k
    }

    /// Physical cell-center position of (i, j).
    #[inline]
    pub fn xy(&self, i: usize, j: usize) -> (f64, f64) {
        (
            (cast::f64_of(i) + 0.5) * self.dx,
            (cast::f64_of(j) + 0.5) * self.dx,
        )
    }
}

/// Element-major ensemble storage: `data[(g * nvar + v) * k + m]` where
/// `g = (i * ny + j) * nz + kz` is the grid-point index.
pub struct EnsembleMatrix<T> {
    pub layout: StateLayout,
    pub k: usize,
    data: Vec<T>,
}

impl<T: Real> EnsembleMatrix<T> {
    /// Transpose member-major flat states into element-major storage.
    pub fn from_members(members: &[Vec<T>], layout: StateLayout) -> Self {
        let k = members.len();
        assert!(k >= 2, "ensemble needs at least 2 members");
        let n_elem_per_member = layout.nvar * layout.n_grid_points();
        for (m, member) in members.iter().enumerate() {
            assert_eq!(member.len(), n_elem_per_member, "member {m} length");
        }
        let mut data = vec![T::zero(); n_elem_per_member * k];
        let (nx, ny, nz, nvar) = (layout.nx, layout.ny, layout.nz, layout.nvar);
        for (m, member) in members.iter().enumerate() {
            for v in 0..nvar {
                for i in 0..nx {
                    for j in 0..ny {
                        for kz in 0..nz {
                            let g = (i * ny + j) * nz + kz;
                            let src = layout.member_index(v, i, j, kz);
                            data[(g * nvar + v) * k + m] = member[src];
                        }
                    }
                }
            }
        }
        Self { layout, k, data }
    }

    /// Transpose back into the given member-major flat states.
    pub fn to_members(&self, members: &mut [Vec<T>]) {
        assert_eq!(members.len(), self.k);
        let (nx, ny, nz, nvar) = (
            self.layout.nx,
            self.layout.ny,
            self.layout.nz,
            self.layout.nvar,
        );
        for (m, member) in members.iter_mut().enumerate() {
            assert_eq!(member.len(), self.layout.n_elements());
            for v in 0..nvar {
                for i in 0..nx {
                    for j in 0..ny {
                        for kz in 0..nz {
                            let g = (i * ny + j) * nz + kz;
                            let dst = self.layout.member_index(v, i, j, kz);
                            member[dst] = self.data[(g * nvar + v) * self.k + m];
                        }
                    }
                }
            }
        }
    }

    /// The k member values of element (grid point g, variable v).
    #[inline]
    pub fn element(&self, g: usize, v: usize) -> &[T] {
        let base = (g * self.layout.nvar + v) * self.k;
        &self.data[base..base + self.k]
    }

    /// Expose the raw storage split into per-grid-point mutable blocks of
    /// `nvar * k` values each, for parallel iteration. Block `g` holds the
    /// elements of grid point `g` for all variables.
    pub fn grid_point_blocks_mut(&mut self) -> (&StateLayout, usize, &mut [T]) {
        (&self.layout, self.k, &mut self.data)
    }

    /// Block size per grid point.
    pub fn block_len(&self) -> usize {
        self.layout.nvar * self.k
    }

    /// Ensemble mean of element (g, v).
    pub fn element_mean(&self, g: usize, v: usize) -> T {
        let vals = self.element(g, v);
        let sum = vals.iter().copied().fold(T::zero(), |a, b| a + b);
        sum / T::of_usize(self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> StateLayout {
        StateLayout {
            nx: 3,
            ny: 2,
            nz: 4,
            nvar: 2,
            dx: 500.0,
            z_center: vec![100.0, 300.0, 600.0, 1000.0],
        }
    }

    fn members() -> Vec<Vec<f64>> {
        let l = layout();
        (0..3)
            .map(|m| (0..l.n_elements()).map(|e| (m * 1000 + e) as f64).collect())
            .collect()
    }

    #[test]
    fn roundtrip_members() {
        let l = layout();
        let ms = members();
        let mat = EnsembleMatrix::from_members(&ms, l);
        let mut out = vec![vec![0.0; ms[0].len()]; 3];
        mat.to_members(&mut out);
        assert_eq!(out, ms);
    }

    #[test]
    fn element_gathers_across_members() {
        let l = layout();
        let ms = members();
        let mat = EnsembleMatrix::from_members(&ms, l.clone());
        // Element (g, v) with i=1, j=0, kz=2, v=1.
        let g = l.ny * l.nz + 2;
        let e = mat.element(g, 1);
        let src = l.member_index(1, 1, 0, 2);
        assert_eq!(e, &[src as f64, (1000 + src) as f64, (2000 + src) as f64]);
    }

    #[test]
    fn element_mean() {
        let l = layout();
        let ms = members();
        let mat = EnsembleMatrix::from_members(&ms, l.clone());
        let g = 0;
        let src = l.member_index(0, 0, 0, 0);
        let expect = (src as f64 + (1000 + src) as f64 + (2000 + src) as f64) / 3.0;
        assert!((mat.element_mean(g, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn block_layout_groups_grid_points() {
        let l = layout();
        let ms = members();
        let mut mat = EnsembleMatrix::from_members(&ms, l);
        let block_len = mat.block_len();
        assert_eq!(block_len, 2 * 3);
        let (_, k, data) = mat.grid_point_blocks_mut();
        assert_eq!(k, 3);
        // First block must equal elements (g=0, v=0) then (g=0, v=1).
        let b0 = &data[..block_len];
        assert_eq!(&b0[..3], mat_elem_copy(&ms, 0, 0).as_slice());
        assert_eq!(&b0[3..], mat_elem_copy(&ms, 0, 1).as_slice());
    }

    fn mat_elem_copy(ms: &[Vec<f64>], g: usize, v: usize) -> Vec<f64> {
        let l = layout();
        // g -> (i, j, kz)
        let kz = g % l.nz;
        let j = (g / l.nz) % l.ny;
        let i = g / (l.nz * l.ny);
        ms.iter().map(|m| m[l.member_index(v, i, j, kz)]).collect()
    }

    #[test]
    fn xy_positions() {
        let l = layout();
        assert_eq!(l.xy(0, 0), (250.0, 250.0));
        assert_eq!(l.xy(2, 1), (1250.0, 750.0));
    }

    #[test]
    #[should_panic]
    fn single_member_rejected() {
        let l = layout();
        let _ = EnsembleMatrix::from_members(&[vec![0.0; l.n_elements()]], l);
    }
}
