//! Observations, model equivalents and quality control.

use crate::config::LetkfConfig;
use bda_num::cast;
use bda_num::Real;
use serde::{Deserialize, Serialize};

/// Observed quantity. The BDA system assimilates both radar observables
/// directly (Table 1, bottom row: "Reflectivity, Doppler velocity") instead
/// of derived humidity/latent-heating proxies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObsKind {
    /// Radar reflectivity, dBZ.
    Reflectivity,
    /// Radial Doppler velocity, m/s.
    DopplerVelocity,
}

/// One (superobbed) observation at a physical location.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation<T> {
    pub kind: ObsKind,
    /// Position in domain coordinates, m.
    pub x: f64,
    pub y: f64,
    pub z: f64,
    pub value: T,
    /// Observation error standard deviation (same unit as `value`).
    pub error_sd: T,
}

/// Observations plus their per-member model equivalents `H(x_m)`.
///
/// `hx[m][i]` is member `m`'s equivalent for observation `i` — produced by
/// the radar forward operator in `bda-pawr` applied to each forecast member.
#[derive(Clone, Debug)]
pub struct ObsEnsemble<T> {
    pub obs: Vec<Observation<T>>,
    pub hx: Vec<Vec<T>>,
}

impl<T: Real> ObsEnsemble<T> {
    pub fn new(obs: Vec<Observation<T>>, hx: Vec<Vec<T>>) -> Self {
        for (m, h) in hx.iter().enumerate() {
            assert_eq!(h.len(), obs.len(), "member {m} equivalents length mismatch");
        }
        Self { obs, hx }
    }

    pub fn len(&self) -> usize {
        self.obs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    pub fn ensemble_size(&self) -> usize {
        self.hx.len()
    }

    /// Ensemble-mean equivalent for observation `i`.
    pub fn hx_mean(&self, i: usize) -> T {
        let k = self.hx.len();
        let sum = self
            .hx
            .iter()
            .fold(T::zero(), |acc, member| acc + member[i]);
        sum / T::of_usize(k)
    }

    /// Innovation (obs minus ensemble-mean equivalent) for observation `i`.
    pub fn innovation(&self, i: usize) -> T {
        self.obs[i].value - self.hx_mean(i)
    }

    /// Retain only observations at indices where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Self {
        assert_eq!(keep.len(), self.obs.len());
        let obs = self
            .obs
            .iter()
            .zip(keep)
            .filter(|(_, &k)| k)
            .map(|(o, _)| *o)
            .collect();
        let hx = self
            .hx
            .iter()
            .map(|member| {
                member
                    .iter()
                    .zip(keep)
                    .filter(|(_, &k)| k)
                    .map(|(&v, _)| v)
                    .collect()
            })
            .collect();
        Self { obs, hx }
    }
}

/// Physical-bounds and departure-check settings for [`QcPipeline`].
///
/// The bounds are ingest sanity limits per [`ObsKind`] — far wider than the
/// radar can produce, so anything outside them is corrupted data, not
/// unusual weather. The `departure_k_*` multipliers drive the
/// ensemble-background departure check: reject observation `y` when
/// `|y − mean(H(x))| > k · sqrt(σ_o² + σ_b²)`, with `σ_b²` the ensemble
/// variance of the model equivalents.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QcConfig {
    /// Reflectivity physical bounds, dBZ.
    pub dbz_min: f64,
    pub dbz_max: f64,
    /// Doppler velocity magnitude ceiling, m/s.
    pub doppler_abs_max: f64,
    /// Observation error SD ceiling (both kinds share it; the SD also must
    /// be finite and strictly positive).
    pub error_sd_max: f64,
    /// Departure-check multiplier for reflectivity.
    pub departure_k_reflectivity: f64,
    /// Departure-check multiplier for Doppler velocity.
    pub departure_k_doppler: f64,
}

impl Default for QcConfig {
    fn default() -> Self {
        Self {
            dbz_min: -60.0,
            dbz_max: 100.0,
            doppler_abs_max: 150.0,
            error_sd_max: 1.0e3,
            departure_k_reflectivity: 3.0,
            departure_k_doppler: 3.0,
        }
    }
}

impl QcConfig {
    pub fn validate(&self) {
        assert!(self.dbz_max > self.dbz_min);
        assert!(self.doppler_abs_max > 0.0);
        assert!(self.error_sd_max > 0.0);
        assert!(self.departure_k_reflectivity > 0.0);
        assert!(self.departure_k_doppler > 0.0);
    }
}

/// Result of the gross-error check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QcStats {
    pub total: usize,
    pub rejected_reflectivity: usize,
    pub rejected_doppler: usize,
}

impl QcStats {
    pub fn accepted(&self) -> usize {
        self.total - self.rejected_reflectivity - self.rejected_doppler
    }
}

/// Gross error check (Table 2): discard observations whose innovation
/// against the ensemble mean exceeds the per-kind threshold. Returns the
/// filtered set and rejection statistics.
#[allow(clippy::needless_range_loop)]
pub fn gross_error_check<T: Real>(
    ens: &ObsEnsemble<T>,
    cfg: &LetkfConfig,
) -> (ObsEnsemble<T>, QcStats) {
    let mut keep = vec![true; ens.len()];
    let mut stats = QcStats {
        total: ens.len(),
        ..QcStats::default()
    };
    for i in 0..ens.len() {
        let innov = ens.innovation(i).abs().f64();
        let (threshold, counter) = match ens.obs[i].kind {
            ObsKind::Reflectivity => (
                cfg.gross_err_reflectivity_dbz,
                &mut stats.rejected_reflectivity,
            ),
            ObsKind::DopplerVelocity => (cfg.gross_err_doppler_ms, &mut stats.rejected_doppler),
        };
        if innov > threshold {
            keep[i] = false;
            *counter += 1;
        }
    }
    (ens.filter(&keep), stats)
}

/// Per-[`ObsKind`] rejection counters for one QC stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindCounts {
    pub reflectivity: usize,
    pub doppler: usize,
}

impl KindCounts {
    pub fn total(&self) -> usize {
        self.reflectivity + self.doppler
    }

    fn bump(&mut self, kind: ObsKind) {
        match kind {
            ObsKind::Reflectivity => self.reflectivity += 1,
            ObsKind::DopplerVelocity => self.doppler += 1,
        }
    }
}

/// Per-cycle accounting of the multi-stage QC: how many observations came
/// in, and how many each stage rejected, split by kind. Each observation is
/// charged to the *first* stage that rejects it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QcReport {
    /// Observations presented to the pipeline.
    pub total: usize,
    /// Stage 1 — gross: non-finite value/SD/equivalents or outside the
    /// physical bounds of [`QcConfig`].
    pub rejected_gross: KindCounts,
    /// Stage 2 — innovation: `|y − mean(H(x))|` beyond the fixed Table-2
    /// gross-error thresholds.
    pub rejected_innovation: KindCounts,
    /// Stage 3 — departure: `|y − mean(H(x))| > k·sqrt(σ_o² + σ_b²)`.
    pub rejected_departure: KindCounts,
}

impl QcReport {
    pub fn rejected(&self) -> usize {
        self.rejected_gross.total()
            + self.rejected_innovation.total()
            + self.rejected_departure.total()
    }

    pub fn accepted(&self) -> usize {
        self.total - self.rejected()
    }

    /// Compact one-line form for cycle tables: `accepted/total` plus the
    /// per-stage rejection counts (g = gross, i = innovation, d = departure).
    pub fn summary(&self) -> String {
        format!(
            "qc {}/{} (g{} i{} d{})",
            self.accepted(),
            self.total,
            self.rejected_gross.total(),
            self.rejected_innovation.total(),
            self.rejected_departure.total()
        )
    }

    /// Merge another report's counters into this one (campaign totals).
    pub fn absorb(&mut self, other: &QcReport) {
        self.total += other.total;
        for (a, b) in [
            (&mut self.rejected_gross, &other.rejected_gross),
            (&mut self.rejected_innovation, &other.rejected_innovation),
            (&mut self.rejected_departure, &other.rejected_departure),
        ] {
            a.reflectivity += b.reflectivity;
            a.doppler += b.doppler;
        }
    }
}

/// Multi-stage observation quality control.
///
/// Stages, in order (an observation is dropped by the first stage it fails):
///
/// 1. **Gross** — the observation must be structurally usable: finite value,
///    finite strictly-positive error SD below the ceiling, finite
///    coordinates, value inside the per-kind physical bounds, and every
///    member's model equivalent finite (a NaN equivalent would poison the
///    ensemble mean and every weight downstream).
/// 2. **Innovation** — the fixed Table-2 gross-error thresholds on
///    `|y − mean(H(x))|` (10 dBZ / 15 m/s), as in [`gross_error_check`].
/// 3. **Departure** — the adaptive ensemble-background departure check:
///    reject when `|y − mean(H(x))| > k·sqrt(σ_o² + σ_b²)` where `σ_b²` is
///    the ensemble variance of the equivalents. Unlike stage 2 this
///    tightens as the ensemble converges and relaxes when spread is large.
pub struct QcPipeline<'a> {
    cfg: &'a LetkfConfig,
}

impl<'a> QcPipeline<'a> {
    pub fn new(cfg: &'a LetkfConfig) -> Self {
        Self { cfg }
    }

    /// Run all stages; returns the surviving ensemble and the report.
    #[allow(clippy::needless_range_loop)]
    pub fn run<T: Real>(&self, ens: &ObsEnsemble<T>) -> (ObsEnsemble<T>, QcReport) {
        let qc = &self.cfg.qc;
        let k = ens.ensemble_size();
        let mut keep = vec![true; ens.len()];
        let mut report = QcReport {
            total: ens.len(),
            ..QcReport::default()
        };
        for i in 0..ens.len() {
            let o = &ens.obs[i];
            let value = o.value.f64();
            let sd = o.error_sd.f64();

            // Stage 1: gross structural / physical-bounds checks.
            let in_bounds = match o.kind {
                ObsKind::Reflectivity => (qc.dbz_min..=qc.dbz_max).contains(&value),
                ObsKind::DopplerVelocity => value.abs() <= qc.doppler_abs_max,
            };
            let structurally_ok = value.is_finite()
                && in_bounds
                && sd.is_finite()
                && sd > 0.0
                && sd <= qc.error_sd_max
                && o.x.is_finite()
                && o.y.is_finite()
                && o.z.is_finite()
                && ens.hx.iter().all(|member| member[i].f64().is_finite());
            if !structurally_ok {
                keep[i] = false;
                report.rejected_gross.bump(o.kind);
                continue;
            }

            // Stage 2: fixed innovation thresholds (Table 2).
            let departure = ens.innovation(i).abs().f64();
            let fixed_threshold = match o.kind {
                ObsKind::Reflectivity => self.cfg.gross_err_reflectivity_dbz,
                ObsKind::DopplerVelocity => self.cfg.gross_err_doppler_ms,
            };
            if departure > fixed_threshold {
                keep[i] = false;
                report.rejected_innovation.bump(o.kind);
                continue;
            }

            // Stage 3: ensemble-background departure check.
            let mean = ens.hx_mean(i).f64();
            let var_b = if k >= 2 {
                ens.hx
                    .iter()
                    .map(|member| {
                        let d = member[i].f64() - mean;
                        d * d
                    })
                    .sum::<f64>()
                    / (cast::f64_of(k) - 1.0)
            } else {
                0.0
            };
            let kf = match o.kind {
                ObsKind::Reflectivity => qc.departure_k_reflectivity,
                ObsKind::DopplerVelocity => qc.departure_k_doppler,
            };
            if departure > kf * (sd * sd + var_b).sqrt() {
                keep[i] = false;
                report.rejected_departure.bump(o.kind);
            }
        }
        (ens.filter(&keep), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(kind: ObsKind, value: f64) -> Observation<f64> {
        Observation {
            kind,
            x: 0.0,
            y: 0.0,
            z: 1000.0,
            value,
            error_sd: 5.0,
        }
    }

    #[test]
    fn innovation_against_ensemble_mean() {
        let ens = ObsEnsemble::new(
            vec![obs(ObsKind::Reflectivity, 30.0)],
            vec![vec![20.0], vec![24.0]],
        );
        assert!((ens.hx_mean(0) - 22.0).abs() < 1e-12);
        assert!((ens.innovation(0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn gross_check_rejects_outliers_per_kind() {
        let cfg = LetkfConfig::reduced(2);
        let ens = ObsEnsemble::new(
            vec![
                obs(ObsKind::Reflectivity, 30.0),    // innov 8 < 10: keep
                obs(ObsKind::Reflectivity, 45.0),    // innov 23 > 10: reject
                obs(ObsKind::DopplerVelocity, 10.0), // innov -12 < 15: keep
                obs(ObsKind::DopplerVelocity, 60.0), // innov 38 > 15: reject
            ],
            vec![vec![20.0, 20.0, 20.0, 20.0], vec![24.0, 24.0, 24.0, 24.0]],
        );
        let (filtered, stats) = gross_error_check(&ens, &cfg);
        assert_eq!(filtered.len(), 2);
        assert_eq!(stats.rejected_reflectivity, 1);
        assert_eq!(stats.rejected_doppler, 1);
        assert_eq!(stats.accepted(), 2);
        assert_eq!(filtered.obs[0].value, 30.0);
        assert_eq!(filtered.obs[1].value, 10.0);
        // hx filtered consistently.
        assert_eq!(filtered.hx[0], vec![20.0, 20.0]);
    }

    #[test]
    fn filter_preserves_alignment() {
        let ens = ObsEnsemble::new(
            vec![
                obs(ObsKind::Reflectivity, 1.0),
                obs(ObsKind::Reflectivity, 2.0),
                obs(ObsKind::Reflectivity, 3.0),
            ],
            vec![vec![10.0, 20.0, 30.0]],
        );
        let f = ens.filter(&[true, false, true]);
        assert_eq!(f.obs[1].value, 3.0);
        assert_eq!(f.hx[0], vec![10.0, 30.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_hx_length_rejected() {
        let _ = ObsEnsemble::new(vec![obs(ObsKind::Reflectivity, 1.0)], vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_ensemble_passes_qc() {
        let cfg = LetkfConfig::reduced(2);
        let ens = ObsEnsemble::<f64>::new(vec![], vec![vec![], vec![]]);
        let (f, stats) = gross_error_check(&ens, &cfg);
        assert!(f.is_empty());
        assert_eq!(stats.total, 0);
    }

    #[test]
    fn pipeline_charges_first_failing_stage() {
        let cfg = LetkfConfig::reduced(2);
        let mut bad_sd = obs(ObsKind::Reflectivity, 21.0);
        bad_sd.error_sd = -1.0;
        let ens = ObsEnsemble::new(
            vec![
                obs(ObsKind::Reflectivity, 21.0),     // clean: keep
                obs(ObsKind::Reflectivity, f64::NAN), // gross: non-finite value
                obs(ObsKind::Reflectivity, 500.0),    // gross: out of physical bounds
                bad_sd,                               // gross: bad error SD
                obs(ObsKind::DopplerVelocity, 60.0),  // innovation: |38| > 15
            ],
            vec![vec![20.0; 5], vec![24.0; 5]],
        );
        let (f, r) = QcPipeline::new(&cfg).run(&ens);
        assert_eq!(f.len(), 1);
        assert_eq!(f.obs[0].value, 21.0);
        assert_eq!(r.total, 5);
        assert_eq!(r.rejected_gross.reflectivity, 3);
        assert_eq!(r.rejected_innovation.doppler, 1);
        assert_eq!(r.rejected_departure.total(), 0);
        assert_eq!(r.accepted(), 1);
    }

    #[test]
    fn pipeline_rejects_non_finite_equivalent() {
        let cfg = LetkfConfig::reduced(2);
        let ens = ObsEnsemble::new(
            vec![obs(ObsKind::Reflectivity, 21.0)],
            vec![vec![20.0], vec![f64::INFINITY]],
        );
        let (f, r) = QcPipeline::new(&cfg).run(&ens);
        assert!(f.is_empty());
        assert_eq!(r.rejected_gross.reflectivity, 1);
    }

    #[test]
    fn departure_check_tightens_with_small_spread() {
        // Doppler obs with departure 12 m/s: passes the fixed 15 m/s Table-2
        // threshold but fails 3·sqrt(σ_o² + σ_b²) = 3·sqrt(9 + ~0) ≈ 9 when
        // the ensemble has (almost) no spread.
        let cfg = LetkfConfig::reduced(2);
        let mut o = obs(ObsKind::DopplerVelocity, 12.0);
        o.error_sd = 3.0;
        let tight = ObsEnsemble::new(vec![o], vec![vec![0.0], vec![1e-6]]);
        let (f, r) = QcPipeline::new(&cfg).run(&tight);
        assert!(f.is_empty());
        assert_eq!(r.rejected_departure.doppler, 1);

        // The same departure with a spread ensemble (σ_b large) is accepted:
        // the adaptive threshold relaxes where the background is uncertain.
        let spread = ObsEnsemble::new(vec![o], vec![vec![-5.0], vec![5.0]]);
        let (f, r) = QcPipeline::new(&cfg).run(&spread);
        assert_eq!(f.len(), 1);
        assert_eq!(r.rejected(), 0);
    }

    #[test]
    fn report_summary_and_absorb() {
        let mut a = QcReport {
            total: 10,
            ..QcReport::default()
        };
        a.rejected_gross.bump(ObsKind::Reflectivity);
        a.rejected_departure.bump(ObsKind::DopplerVelocity);
        assert_eq!(a.summary(), "qc 8/10 (g1 i0 d1)");
        let mut b = a;
        b.absorb(&a);
        assert_eq!(b.total, 20);
        assert_eq!(b.rejected(), 4);
        assert_eq!(b.accepted(), 16);
    }

    #[test]
    fn pipeline_matches_gross_error_check_on_clean_in_range_obs() {
        // On well-behaved obs whose departures are within the adaptive
        // threshold, the pipeline reduces to exactly the Table-2 check.
        let cfg = LetkfConfig::reduced(2);
        let ens = ObsEnsemble::new(
            vec![
                obs(ObsKind::Reflectivity, 30.0),
                obs(ObsKind::Reflectivity, 45.0),
                obs(ObsKind::DopplerVelocity, 60.0),
            ],
            vec![vec![20.0; 3], vec![24.0; 3]],
        );
        let (f_old, _) = gross_error_check(&ens, &cfg);
        let (f_new, r) = QcPipeline::new(&cfg).run(&ens);
        assert_eq!(f_old.len(), f_new.len());
        assert_eq!(r.rejected_innovation.total(), 2);
    }
}
