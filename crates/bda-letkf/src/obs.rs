//! Observations, model equivalents and quality control.

use crate::config::LetkfConfig;
use bda_num::Real;
use serde::{Deserialize, Serialize};

/// Observed quantity. The BDA system assimilates both radar observables
/// directly (Table 1, bottom row: "Reflectivity, Doppler velocity") instead
/// of derived humidity/latent-heating proxies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObsKind {
    /// Radar reflectivity, dBZ.
    Reflectivity,
    /// Radial Doppler velocity, m/s.
    DopplerVelocity,
}

/// One (superobbed) observation at a physical location.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation<T> {
    pub kind: ObsKind,
    /// Position in domain coordinates, m.
    pub x: f64,
    pub y: f64,
    pub z: f64,
    pub value: T,
    /// Observation error standard deviation (same unit as `value`).
    pub error_sd: T,
}

/// Observations plus their per-member model equivalents `H(x_m)`.
///
/// `hx[m][i]` is member `m`'s equivalent for observation `i` — produced by
/// the radar forward operator in `bda-pawr` applied to each forecast member.
#[derive(Clone, Debug)]
pub struct ObsEnsemble<T> {
    pub obs: Vec<Observation<T>>,
    pub hx: Vec<Vec<T>>,
}

impl<T: Real> ObsEnsemble<T> {
    pub fn new(obs: Vec<Observation<T>>, hx: Vec<Vec<T>>) -> Self {
        for (m, h) in hx.iter().enumerate() {
            assert_eq!(h.len(), obs.len(), "member {m} equivalents length mismatch");
        }
        Self { obs, hx }
    }

    pub fn len(&self) -> usize {
        self.obs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    pub fn ensemble_size(&self) -> usize {
        self.hx.len()
    }

    /// Ensemble-mean equivalent for observation `i`.
    pub fn hx_mean(&self, i: usize) -> T {
        let k = self.hx.len();
        let sum = self
            .hx
            .iter()
            .fold(T::zero(), |acc, member| acc + member[i]);
        sum / T::of_usize(k)
    }

    /// Innovation (obs minus ensemble-mean equivalent) for observation `i`.
    pub fn innovation(&self, i: usize) -> T {
        self.obs[i].value - self.hx_mean(i)
    }

    /// Retain only observations at indices where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Self {
        assert_eq!(keep.len(), self.obs.len());
        let obs = self
            .obs
            .iter()
            .zip(keep)
            .filter(|(_, &k)| k)
            .map(|(o, _)| *o)
            .collect();
        let hx = self
            .hx
            .iter()
            .map(|member| {
                member
                    .iter()
                    .zip(keep)
                    .filter(|(_, &k)| k)
                    .map(|(&v, _)| v)
                    .collect()
            })
            .collect();
        Self { obs, hx }
    }
}

/// Result of the gross-error check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QcStats {
    pub total: usize,
    pub rejected_reflectivity: usize,
    pub rejected_doppler: usize,
}

impl QcStats {
    pub fn accepted(&self) -> usize {
        self.total - self.rejected_reflectivity - self.rejected_doppler
    }
}

/// Gross error check (Table 2): discard observations whose innovation
/// against the ensemble mean exceeds the per-kind threshold. Returns the
/// filtered set and rejection statistics.
#[allow(clippy::needless_range_loop)]
pub fn gross_error_check<T: Real>(
    ens: &ObsEnsemble<T>,
    cfg: &LetkfConfig,
) -> (ObsEnsemble<T>, QcStats) {
    let mut keep = vec![true; ens.len()];
    let mut stats = QcStats {
        total: ens.len(),
        ..QcStats::default()
    };
    for i in 0..ens.len() {
        let innov = ens.innovation(i).abs().f64();
        let (threshold, counter) = match ens.obs[i].kind {
            ObsKind::Reflectivity => (
                cfg.gross_err_reflectivity_dbz,
                &mut stats.rejected_reflectivity,
            ),
            ObsKind::DopplerVelocity => (cfg.gross_err_doppler_ms, &mut stats.rejected_doppler),
        };
        if innov > threshold {
            keep[i] = false;
            *counter += 1;
        }
    }
    (ens.filter(&keep), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(kind: ObsKind, value: f64) -> Observation<f64> {
        Observation {
            kind,
            x: 0.0,
            y: 0.0,
            z: 1000.0,
            value,
            error_sd: 5.0,
        }
    }

    #[test]
    fn innovation_against_ensemble_mean() {
        let ens = ObsEnsemble::new(
            vec![obs(ObsKind::Reflectivity, 30.0)],
            vec![vec![20.0], vec![24.0]],
        );
        assert!((ens.hx_mean(0) - 22.0).abs() < 1e-12);
        assert!((ens.innovation(0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn gross_check_rejects_outliers_per_kind() {
        let cfg = LetkfConfig::reduced(2);
        let ens = ObsEnsemble::new(
            vec![
                obs(ObsKind::Reflectivity, 30.0),    // innov 8 < 10: keep
                obs(ObsKind::Reflectivity, 45.0),    // innov 23 > 10: reject
                obs(ObsKind::DopplerVelocity, 10.0), // innov -12 < 15: keep
                obs(ObsKind::DopplerVelocity, 60.0), // innov 38 > 15: reject
            ],
            vec![vec![20.0, 20.0, 20.0, 20.0], vec![24.0, 24.0, 24.0, 24.0]],
        );
        let (filtered, stats) = gross_error_check(&ens, &cfg);
        assert_eq!(filtered.len(), 2);
        assert_eq!(stats.rejected_reflectivity, 1);
        assert_eq!(stats.rejected_doppler, 1);
        assert_eq!(stats.accepted(), 2);
        assert_eq!(filtered.obs[0].value, 30.0);
        assert_eq!(filtered.obs[1].value, 10.0);
        // hx filtered consistently.
        assert_eq!(filtered.hx[0], vec![20.0, 20.0]);
    }

    #[test]
    fn filter_preserves_alignment() {
        let ens = ObsEnsemble::new(
            vec![
                obs(ObsKind::Reflectivity, 1.0),
                obs(ObsKind::Reflectivity, 2.0),
                obs(ObsKind::Reflectivity, 3.0),
            ],
            vec![vec![10.0, 20.0, 30.0]],
        );
        let f = ens.filter(&[true, false, true]);
        assert_eq!(f.obs[1].value, 3.0);
        assert_eq!(f.hx[0], vec![10.0, 30.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_hx_length_rejected() {
        let _ = ObsEnsemble::new(vec![obs(ObsKind::Reflectivity, 1.0)], vec![vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_ensemble_passes_qc() {
        let cfg = LetkfConfig::reduced(2);
        let ens = ObsEnsemble::<f64>::new(vec![], vec![vec![], vec![]]);
        let (f, stats) = gross_error_check(&ens, &cfg);
        assert!(f.is_empty());
        assert_eq!(stats.total, 0);
    }
}
