//! Observation localization: Gaspari–Cohn taper and a spatial bucket index.

use crate::obs::Observation;
use bda_num::cast;
use bda_num::Real;

/// Gaspari–Cohn 5th-order piecewise-rational correlation function with
/// support scale `c`: 1 at r = 0, exactly 0 for r >= 2c. This is the taper
/// applied to R^-1 in the R-localized LETKF.
pub fn gaspari_cohn(r: f64, c: f64) -> f64 {
    debug_assert!(c > 0.0);
    let x = (r / c).abs();
    if x >= 2.0 {
        0.0
    } else if x <= 1.0 {
        // -1/4 x^5 + 1/2 x^4 + 5/8 x^3 - 5/3 x^2 + 1
        1.0 + x * x * (-5.0 / 3.0 + x * (5.0 / 8.0 + x * (0.5 - 0.25 * x)))
    } else {
        // 1/12 x^5 - 1/2 x^4 + 5/8 x^3 + 5/3 x^2 - 5 x + 4 - 2/(3x)
        4.0 - 5.0 * x + x * x * (5.0 / 3.0 + x * (5.0 / 8.0 + x * (-0.5 + x / 12.0)))
            - 2.0 / (3.0 * x)
    }
}

/// Combined localization weight for horizontal distance `rh` and vertical
/// distance `rv` with scales `ch`, `cv` (separable product, as in
/// SCALE-LETKF).
pub fn localization_weight(rh: f64, ch: f64, rv: f64, cv: f64) -> f64 {
    gaspari_cohn(rh, ch) * gaspari_cohn(rv, cv)
}

/// Typed localization failure — a malformed cutoff or observation set must
/// surface as an error through the driver, not panic the analysis thread.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LocalizationError {
    /// The localization cutoff must be strictly positive and finite.
    BadCutoff { cutoff: f64 },
    /// An observation has a non-finite horizontal position and cannot be
    /// bucketed (index of the first offender).
    NonFiniteObsPosition { index: usize },
}

impl std::fmt::Display for LocalizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LocalizationError::BadCutoff { cutoff } => {
                write!(
                    f,
                    "localization cutoff must be positive and finite, got {cutoff}"
                )
            }
            LocalizationError::NonFiniteObsPosition { index } => {
                write!(f, "observation {index} has a non-finite position")
            }
        }
    }
}

impl std::error::Error for LocalizationError {}

/// A uniform-bucket 2-D spatial index over observations for fast
/// within-cutoff queries. Bucket size equals the cutoff so any query only
/// inspects a 3x3 neighborhood of buckets.
pub struct ObsIndex {
    cutoff: f64,
    nx: usize,
    ny: usize,
    x0: f64,
    y0: f64,
    buckets: Vec<Vec<u32>>,
}

impl ObsIndex {
    /// Build the index from observation positions.
    // Per-analysis setup, called once per cycle before the per-grid-point
    // loop; bucket indices are clamped with `.min(nx-1)`/`.min(ny-1)` so
    // `bi*ny + bj < nx*ny` always holds.
    // bda-check: allow(hot_alloc, panic_path)
    pub fn build<T: Real>(obs: &[Observation<T>], cutoff: f64) -> Result<Self, LocalizationError> {
        if !(cutoff > 0.0 && cutoff.is_finite()) {
            return Err(LocalizationError::BadCutoff { cutoff });
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, o) in obs.iter().enumerate() {
            if !(o.x.is_finite() && o.y.is_finite()) {
                return Err(LocalizationError::NonFiniteObsPosition { index: i });
            }
            xmin = xmin.min(o.x);
            xmax = xmax.max(o.x);
            ymin = ymin.min(o.y);
            ymax = ymax.max(o.y);
        }
        if obs.is_empty() {
            xmin = 0.0;
            xmax = 0.0;
            ymin = 0.0;
            ymax = 0.0;
        }
        let nx = (cast::floor_index((xmax - xmin) / cutoff) + 1).max(1);
        let ny = (cast::floor_index((ymax - ymin) / cutoff) + 1).max(1);
        let mut buckets = vec![Vec::new(); nx * ny];
        for (idx, o) in obs.iter().enumerate() {
            let bi = cast::trunc_index((o.x - xmin) / cutoff).min(nx - 1);
            let bj = cast::trunc_index((o.y - ymin) / cutoff).min(ny - 1);
            buckets[bi * ny + bj].push(cast::u32_of_index(idx));
        }
        Ok(Self {
            cutoff,
            nx,
            ny,
            x0: xmin,
            y0: ymin,
            buckets,
        })
    }

    /// Visit the indices of all observations within `cutoff` *horizontal*
    /// distance of (x, y). The caller applies the vertical test and the
    /// exact weight.
    pub fn for_each_near<T: Real>(
        &self,
        obs: &[Observation<T>],
        x: f64,
        y: f64,
        mut f: impl FnMut(usize, f64),
    ) {
        if self.buckets.is_empty() {
            return;
        }
        let bi = ((x - self.x0) / self.cutoff).floor();
        let bj = ((y - self.y0) / self.cutoff).floor();
        let cutoff2 = self.cutoff * self.cutoff;
        for di in -1..=1i64 {
            for dj in -1..=1i64 {
                let ii = cast::trunc_i64(bi) + di;
                let jj = cast::trunc_i64(bj) + dj;
                if ii < 0 || jj < 0 || ii >= cast::i64_of(self.nx) || jj >= cast::i64_of(self.ny) {
                    continue;
                }
                for &idx in &self.buckets[cast::index_of_i64(ii) * self.ny + cast::index_of_i64(jj)]
                {
                    let o = &obs[cast::index_of_u32(idx)];
                    let dx = o.x - x;
                    let dy = o.y - y;
                    let d2 = dx * dx + dy * dy;
                    if d2 <= cutoff2 {
                        f(cast::index_of_u32(idx), d2.sqrt());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObsKind;

    #[test]
    fn gaspari_cohn_shape() {
        let c = 2000.0;
        assert!((gaspari_cohn(0.0, c) - 1.0).abs() < 1e-12);
        assert_eq!(gaspari_cohn(2.0 * c, c), 0.0);
        assert_eq!(gaspari_cohn(5.0 * c, c), 0.0);
        // Monotone decreasing on [0, 2c].
        let mut prev = 1.0;
        for i in 1..=40 {
            let r = i as f64 * 0.05 * 2.0 * c;
            let g = gaspari_cohn(r, c);
            assert!(g <= prev + 1e-12, "not decreasing at r = {r}");
            assert!(g >= -1e-12, "negative weight {g} at r = {r}");
            prev = g;
        }
        // Continuity at the x = 1 junction.
        let below = gaspari_cohn(c * (1.0 - 1e-9), c);
        let above = gaspari_cohn(c * (1.0 + 1e-9), c);
        assert!((below - above).abs() < 1e-6);
    }

    #[test]
    fn separable_weight_product() {
        let w = localization_weight(0.0, 2000.0, 0.0, 2000.0);
        assert!((w - 1.0).abs() < 1e-12);
        let w2 = localization_weight(2000.0, 2000.0, 2000.0, 2000.0);
        let gh = gaspari_cohn(2000.0, 2000.0);
        assert!((w2 - gh * gh).abs() < 1e-12);
        assert_eq!(localization_weight(5000.0, 2000.0, 0.0, 2000.0), 0.0);
    }

    fn obs_at(x: f64, y: f64) -> Observation<f64> {
        Observation {
            kind: ObsKind::Reflectivity,
            x,
            y,
            z: 1000.0,
            value: 0.0,
            error_sd: 5.0,
        }
    }

    #[test]
    fn index_finds_exactly_the_near_obs() {
        let obs: Vec<_> = (0..20)
            .flat_map(|i| (0..20).map(move |j| obs_at(i as f64 * 1000.0, j as f64 * 1000.0)))
            .collect();
        let cutoff = 2500.0;
        let index = ObsIndex::build(&obs, cutoff).unwrap();
        let (qx, qy) = (9500.0, 9500.0);
        let mut found = Vec::new();
        index.for_each_near(&obs, qx, qy, |idx, dist| {
            assert!(dist <= cutoff + 1e-9);
            found.push(idx);
        });
        // Brute force reference.
        let brute: Vec<usize> = obs
            .iter()
            .enumerate()
            .filter(|(_, o)| ((o.x - qx).powi(2) + (o.y - qy).powi(2)).sqrt() <= cutoff)
            .map(|(i, _)| i)
            .collect();
        found.sort_unstable();
        assert_eq!(found, brute);
        assert!(!found.is_empty());
    }

    #[test]
    fn query_far_outside_domain_is_empty() {
        let obs = vec![obs_at(0.0, 0.0), obs_at(1000.0, 1000.0)];
        let index = ObsIndex::build(&obs, 2000.0).unwrap();
        let mut n = 0;
        index.for_each_near(&obs, 1e7, 1e7, |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn empty_observation_set() {
        let obs: Vec<Observation<f64>> = vec![];
        let index = ObsIndex::build(&obs, 1000.0).unwrap();
        let mut n = 0;
        index.for_each_near(&obs, 0.0, 0.0, |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn reported_distance_is_correct() {
        let obs = vec![obs_at(3000.0, 4000.0)];
        let index = ObsIndex::build(&obs, 10_000.0).unwrap();
        let mut seen = None;
        index.for_each_near(&obs, 0.0, 0.0, |idx, d| seen = Some((idx, d)));
        let (idx, d) = seen.expect("obs not found");
        assert_eq!(idx, 0);
        assert!((d - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn bad_cutoff_is_a_typed_error_not_a_panic() {
        let obs = vec![obs_at(0.0, 0.0)];
        assert_eq!(
            ObsIndex::build(&obs, 0.0).err(),
            Some(LocalizationError::BadCutoff { cutoff: 0.0 })
        );
        assert_eq!(
            ObsIndex::build(&obs, -5.0).err(),
            Some(LocalizationError::BadCutoff { cutoff: -5.0 })
        );
        assert!(matches!(
            ObsIndex::build(&obs, f64::NAN).err(),
            Some(LocalizationError::BadCutoff { .. })
        ));
    }

    #[test]
    fn non_finite_obs_position_is_a_typed_error() {
        let obs = vec![obs_at(0.0, 0.0), obs_at(f64::NAN, 100.0)];
        assert_eq!(
            ObsIndex::build(&obs, 1000.0).err(),
            Some(LocalizationError::NonFiniteObsPosition { index: 1 })
        );
    }
}
