//! LETKF configuration — defaults reproduce Table 2 of the paper.

use crate::obs::QcConfig;
use serde::{Deserialize, Serialize};

/// Experimental settings of the LETKF (paper Table 2).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LetkfConfig {
    /// Ensemble size (Table 2: 1000).
    pub ensemble_size: usize,
    /// Height range for analysis, m (Table 2: 0.5 – 11 km).
    pub analysis_z_min: f64,
    pub analysis_z_max: f64,
    /// Regridded observation resolution, m (Table 2: 500 m).
    pub obs_resolution: f64,
    /// Observation error standard deviations (Table 2).
    pub obs_err_reflectivity_dbz: f64,
    pub obs_err_doppler_ms: f64,
    /// Maximum observation number per grid point (Table 2: 1000).
    pub max_obs_per_grid: usize,
    /// Gross error check thresholds (Table 2).
    pub gross_err_reflectivity_dbz: f64,
    pub gross_err_doppler_ms: f64,
    /// Gaspari–Cohn localization scales, m (Table 2: 2 km / 2 km).
    pub loc_horizontal: f64,
    pub loc_vertical: f64,
    /// Relaxation-to-prior-perturbations factor (Table 2: 0.95).
    pub rtpp: f64,
    /// Multiplicative background inflation (1 = none; RTPP is the paper's
    /// inflation mechanism).
    pub infl_mult: f64,
    /// Multi-stage observation QC settings ([`crate::obs::QcPipeline`]):
    /// physical bounds and ensemble-background departure thresholds.
    pub qc: QcConfig,
}

impl Default for LetkfConfig {
    fn default() -> Self {
        Self::bda2021()
    }
}

impl LetkfConfig {
    /// The paper's production configuration, row for row from Table 2.
    pub fn bda2021() -> Self {
        Self {
            ensemble_size: 1000,
            analysis_z_min: 500.0,
            analysis_z_max: 11_000.0,
            obs_resolution: 500.0,
            obs_err_reflectivity_dbz: 5.0,
            obs_err_doppler_ms: 3.0,
            max_obs_per_grid: 1000,
            gross_err_reflectivity_dbz: 10.0,
            gross_err_doppler_ms: 15.0,
            loc_horizontal: 2000.0,
            loc_vertical: 2000.0,
            rtpp: 0.95,
            infl_mult: 1.0,
            qc: QcConfig::default(),
        }
    }

    /// Reduced configuration for tests/examples: same physics of the filter,
    /// smaller ensemble.
    pub fn reduced(ensemble_size: usize) -> Self {
        Self {
            ensemble_size,
            ..Self::bda2021()
        }
    }

    /// Localization cutoff radius (Gaspari–Cohn support limit, 2c).
    pub fn cutoff_horizontal(&self) -> f64 {
        2.0 * self.loc_horizontal
    }

    pub fn cutoff_vertical(&self) -> f64 {
        2.0 * self.loc_vertical
    }

    pub fn validate(&self) {
        assert!(self.ensemble_size >= 2, "need at least 2 members");
        assert!(self.analysis_z_max > self.analysis_z_min);
        assert!(self.loc_horizontal > 0.0 && self.loc_vertical > 0.0);
        assert!((0.0..=1.0).contains(&self.rtpp), "rtpp must be in [0,1]");
        assert!(self.infl_mult >= 1.0);
        assert!(self.max_obs_per_grid > 0);
        self.qc.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let c = LetkfConfig::bda2021();
        assert_eq!(c.ensemble_size, 1000);
        assert_eq!(c.analysis_z_min, 500.0);
        assert_eq!(c.analysis_z_max, 11_000.0);
        assert_eq!(c.obs_resolution, 500.0);
        assert_eq!(c.obs_err_reflectivity_dbz, 5.0);
        assert_eq!(c.obs_err_doppler_ms, 3.0);
        assert_eq!(c.max_obs_per_grid, 1000);
        assert_eq!(c.gross_err_reflectivity_dbz, 10.0);
        assert_eq!(c.gross_err_doppler_ms, 15.0);
        assert_eq!(c.loc_horizontal, 2000.0);
        assert_eq!(c.loc_vertical, 2000.0);
        assert_eq!(c.rtpp, 0.95);
        assert_eq!(c.qc, QcConfig::default());
        c.validate();
    }

    #[test]
    fn default_is_bda2021() {
        assert_eq!(LetkfConfig::default(), LetkfConfig::bda2021());
    }

    #[test]
    fn cutoffs_are_twice_the_scale() {
        let c = LetkfConfig::bda2021();
        assert_eq!(c.cutoff_horizontal(), 4000.0);
        assert_eq!(c.cutoff_vertical(), 4000.0);
    }

    #[test]
    fn reduced_keeps_everything_but_size() {
        let c = LetkfConfig::reduced(40);
        assert_eq!(c.ensemble_size, 40);
        assert_eq!(c.loc_horizontal, 2000.0);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_tiny_ensemble() {
        LetkfConfig::reduced(1).validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_bad_rtpp() {
        let mut c = LetkfConfig::bda2021();
        c.rtpp = 1.5;
        c.validate();
    }
}
