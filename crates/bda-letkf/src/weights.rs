//! Ensemble-space transform weights (the heart of the LETKF).
//!
//! For one analysis grid point with `nobs` localized observations and `k`
//! members, the transform is (Hunt et al. 2007):
//!
//! ```text
//! A      = (k-1)/rho I + Yb^T R~^-1 Yb          (k x k, symmetric)
//! A      = V diag(lambda) V^T                   (the eigensolve)
//! Pa~    = V diag(1/lambda) V^T
//! wbar   = Pa~ Yb^T R~^-1 (y - H xbar)
//! W      = sqrt(k-1) V diag(lambda^-1/2) V^T
//! ```
//!
//! where `R~^-1` carries the Gaspari–Cohn localization weights
//! (R-localization). RTPP inflation (Table 2, factor alpha = 0.95) relaxes
//! the posterior perturbations toward the prior:
//! `W_final = alpha I + (1 - alpha) W`, and the full member transform is
//! `T[n][m] = W_final[n][m] + wbar[n]`.

use bda_num::matrix::{axpy, dot8, scale_into};
use bda_num::{BatchedEigen, MatrixS, Real};

/// Gathered local observations for one grid point, in ensemble-space form.
#[derive(Clone, Debug)]
pub struct LocalObs<T> {
    /// Innovations `y_i - mean(H x)_i`.
    pub dy: Vec<T>,
    /// Localized inverse error variances `w_i / sigma_i^2`.
    pub rinv: Vec<T>,
    /// Observation-space perturbations, row-major `[obs][member]`.
    pub yb: Vec<T>,
    k: usize,
}

impl<T: Real> LocalObs<T> {
    pub fn new(k: usize) -> Self {
        Self {
            dy: Vec::new(),
            rinv: Vec::new(),
            yb: Vec::new(),
            k,
        }
    }

    pub fn clear(&mut self) {
        self.dy.clear();
        self.rinv.clear();
        self.yb.clear();
    }

    pub fn nobs(&self) -> usize {
        self.dy.len()
    }

    /// Append one localized observation: innovation, localized 1/r, and the
    /// k member perturbations in observation space.
    pub fn push(&mut self, dy: T, rinv: T, yb_row: &[T]) {
        debug_assert_eq!(yb_row.len(), self.k);
        self.dy.push(dy);
        self.rinv.push(rinv);
        self.yb.extend_from_slice(yb_row);
    }

    #[inline]
    pub fn yb_row(&self, i: usize) -> &[T] {
        &self.yb[i * self.k..(i + 1) * self.k]
    }
}

/// Floor for eigenvalues of the (theoretically SPD) ensemble-space matrix,
/// guarding single-precision round-off.
fn lambda_floor<T: Real>(k: usize) -> T {
    T::of(1e-6) * T::of_usize(k)
}

/// Reused intermediates for [`compute_transform`]: the ensemble-space matrix
/// and the ensemble-sized vectors it chains through. One scratch per worker
/// makes the per-gridpoint solve allocation-free after warm-up.
#[derive(Clone, Debug, Default)]
pub struct TransformScratch<T> {
    a: MatrixS<T>,
    b: Vec<T>,
    vtb: Vec<T>,
    wbar: Vec<T>,
    inv_sqrt: Vec<T>,
    u: Vec<T>,
}

impl<T: Real> TransformScratch<T> {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compute the full member transform `trans[(n, m)]` for one grid point.
///
/// `trans` must be k x k; it is overwritten. Returns `false` (leaving
/// `trans` as the identity-plus-zero-mean transform) when there are no
/// observations — the caller can skip applying it. All intermediates live
/// in `scratch`; after the first call at a given `k`, nothing allocates.
pub fn compute_transform<T: Real>(
    local: &LocalObs<T>,
    rtpp: T,
    infl_mult: T,
    solver: &mut BatchedEigen<T>,
    scratch: &mut TransformScratch<T>,
    trans: &mut MatrixS<T>,
) -> bool {
    let k = local.k;
    debug_assert_eq!(trans.n(), k);
    if local.nobs() == 0 {
        trans.reset_zeros(k);
        for m in 0..k {
            trans[(m, m)] = T::one();
        }
        return false;
    }

    let km1 = T::of_usize(k - 1);

    // A = (k-1)/rho I + Yb^T R~^-1 Yb: upper triangle built as row-tail
    // axpys (unit stride over `n`), then mirrored.
    scratch.a.reset_zeros(k);
    for i in 0..local.nobs() {
        let row = local.yb_row(i);
        let r = local.rinv[i];
        for m in 0..k {
            let ym_r = row[m] * r;
            if ym_r == T::zero() {
                continue;
            }
            axpy(ym_r, &row[m..], &mut scratch.a.row_mut(m)[m..]);
        }
    }
    for m in 0..k {
        for n in (m + 1)..k {
            scratch.a[(n, m)] = scratch.a[(m, n)];
        }
    }
    scratch.a.add_scaled_identity(km1 / infl_mult);

    solver.decompose_in_place(&scratch.a);
    let floor = lambda_floor::<T>(k);

    // b = Yb^T R~^-1 dy: one row-axpy per observation.
    scratch.b.clear();
    scratch.b.resize(k, T::zero());
    for i in 0..local.nobs() {
        let c = local.rinv[i] * local.dy[i];
        axpy(c, local.yb_row(i), &mut scratch.b);
    }
    // vtb = diag(1/lambda) V^T b, accumulated row-wise so the inner loop is
    // unit-stride over the eigenvector matrix.
    let v = solver.vectors();
    let values = solver.values();
    scratch.vtb.clear();
    scratch.vtb.resize(k, T::zero());
    for i in 0..k {
        axpy(scratch.b[i], v.row(i), &mut scratch.vtb);
    }
    for (t, &l) in scratch.vtb.iter_mut().zip(values) {
        *t /= l.max(floor);
    }
    // wbar = V vtb.
    scratch.wbar.clear();
    for i in 0..k {
        let w = dot8(v.row(i), &scratch.vtb);
        scratch.wbar.push(w);
    }

    // W = sqrt(k-1) V diag(lambda^-1/2) V^T, then RTPP relaxation. Each
    // row m is pre-scaled once (`u = v_row_m * inv_sqrt`) so the inner
    // product over `j` is a straight dot8 of two contiguous rows.
    let sqrt_km1 = km1.sqrt();
    scratch.inv_sqrt.clear();
    scratch
        .inv_sqrt
        .extend(values.iter().map(|&l| T::one() / l.max(floor).sqrt()));
    scratch.u.clear();
    scratch.u.resize(k, T::zero());
    let one_minus_alpha = T::one() - rtpp;
    for m in 0..k {
        scale_into(v.row(m), &scratch.inv_sqrt, &mut scratch.u);
        for n in m..k {
            let acc = dot8(&scratch.u, v.row(n));
            let w = sqrt_km1 * acc * one_minus_alpha;
            let diag_term = if m == n { rtpp } else { T::zero() };
            trans[(m, n)] = w + diag_term + scratch.wbar[m];
            trans[(n, m)] = w + diag_term + scratch.wbar[n];
        }
    }
    true
}

/// Apply a transform to one state element: given the k member values,
/// replace them with `xbar + sum_n pert[n] * trans[(n, m)]`.
pub fn apply_transform<T: Real>(values: &mut [T], trans: &MatrixS<T>, pert: &mut [T]) {
    let k = values.len();
    debug_assert_eq!(trans.n(), k);
    debug_assert_eq!(pert.len(), k);
    let mut mean = T::zero();
    for &v in values.iter() {
        mean += v;
    }
    mean /= T::of_usize(k);
    for (p, &v) in pert.iter_mut().zip(values.iter()) {
        *p = v - mean;
    }
    // values[m] = mean + sum_n pert[n] * trans[(n, m)], restructured as one
    // unit-stride row-axpy per `n`: each element still accumulates in
    // ascending-n `mul_add` order starting from `mean`, so this is
    // bit-identical to the column-at-a-time form.
    values.fill(mean);
    for (n, &p) in pert.iter().enumerate().take(k) {
        axpy(p, trans.row(n), values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_num::SplitMix64;

    /// Scalar identical-twin: state = observed quantity directly.
    fn scalar_ensemble(k: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        let mut xs: Vec<f64> = (0..k).map(|_| rng.gaussian(mean, sd)).collect();
        // Recenter exactly for a clean test.
        let m: f64 = xs.iter().sum::<f64>() / k as f64;
        for x in &mut xs {
            *x += mean - m;
        }
        xs
    }

    fn build_local(xs: &[f64], obs_value: f64, obs_err: f64, loc_w: f64) -> LocalObs<f64> {
        let k = xs.len();
        let mean: f64 = xs.iter().sum::<f64>() / k as f64;
        let yb: Vec<f64> = xs.iter().map(|&x| x - mean).collect();
        let mut local = LocalObs::new(k);
        local.push(obs_value - mean, loc_w / (obs_err * obs_err), &yb);
        local
    }

    #[test]
    fn no_obs_gives_identity() {
        let k = 7;
        let local = LocalObs::<f64>::new(k);
        let mut solver = BatchedEigen::new();
        let mut scratch = TransformScratch::new();
        let mut trans = MatrixS::zeros(k);
        let any = compute_transform(&local, 0.0, 1.0, &mut solver, &mut scratch, &mut trans);
        assert!(!any);
        assert_eq!(trans, MatrixS::identity(k));
    }

    #[test]
    fn identity_transform_preserves_values() {
        let mut vals = vec![1.0, 2.0, 4.0];
        let trans = MatrixS::identity(3);
        let mut pert = vec![0.0; 3];
        apply_transform(&mut vals, &trans, &mut pert);
        assert_eq!(vals, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn mean_update_matches_scalar_kalman_gain() {
        // With a directly observed scalar state and no localization taper,
        // the LETKF mean update equals the Kalman update with the *sample*
        // background variance.
        let k = 200;
        let xs = scalar_ensemble(k, 10.0, 2.0, 42);
        let sample_var: f64 =
            xs.iter().map(|&x| (x - 10.0) * (x - 10.0)).sum::<f64>() / (k - 1) as f64;
        let obs = 16.0;
        let obs_err = 1.5;
        let local = build_local(&xs, obs, obs_err, 1.0);
        let mut solver = BatchedEigen::new();
        let mut scratch = TransformScratch::new();
        let mut trans = MatrixS::zeros(k);
        assert!(compute_transform(
            &local,
            0.0,
            1.0,
            &mut solver,
            &mut scratch,
            &mut trans
        ));
        let mut vals = xs.clone();
        let mut pert = vec![0.0; k];
        apply_transform(&mut vals, &trans, &mut pert);

        let post_mean: f64 = vals.iter().sum::<f64>() / k as f64;
        let gain = sample_var / (sample_var + obs_err * obs_err);
        let expect = 10.0 + gain * (obs - 10.0);
        assert!(
            (post_mean - expect).abs() < 0.05,
            "posterior mean {post_mean}, Kalman {expect}"
        );
        // Posterior spread shrinks by the right factor.
        let post_var: f64 =
            vals.iter().map(|&x| (x - post_mean).powi(2)).sum::<f64>() / (k - 1) as f64;
        let expect_var = (1.0 - gain) * sample_var;
        assert!(
            (post_var - expect_var).abs() / expect_var < 0.1,
            "posterior var {post_var}, expect {expect_var}"
        );
    }

    #[test]
    fn localization_weight_zero_is_like_no_obs_for_the_mean() {
        let k = 50;
        let xs = scalar_ensemble(k, 5.0, 1.0, 3);
        let local = build_local(&xs, 9.0, 1.0, 1e-12);
        let mut solver = BatchedEigen::new();
        let mut scratch = TransformScratch::new();
        let mut trans = MatrixS::zeros(k);
        compute_transform(&local, 0.0, 1.0, &mut solver, &mut scratch, &mut trans);
        let mut vals = xs.clone();
        let mut pert = vec![0.0; k];
        apply_transform(&mut vals, &trans, &mut pert);
        let post_mean: f64 = vals.iter().sum::<f64>() / k as f64;
        assert!((post_mean - 5.0).abs() < 1e-3, "mean moved to {post_mean}");
    }

    #[test]
    fn rtpp_one_preserves_prior_perturbations() {
        let k = 30;
        let xs = scalar_ensemble(k, 0.0, 1.0, 9);
        let local = build_local(&xs, 2.0, 1.0, 1.0);
        let mut solver = BatchedEigen::new();
        let mut scratch = TransformScratch::new();
        let mut trans = MatrixS::zeros(k);
        compute_transform(&local, 1.0, 1.0, &mut solver, &mut scratch, &mut trans);
        let mut vals = xs.clone();
        let mut pert = vec![0.0; k];
        apply_transform(&mut vals, &trans, &mut pert);
        let prior_mean: f64 = xs.iter().sum::<f64>() / k as f64;
        let post_mean: f64 = vals.iter().sum::<f64>() / k as f64;
        // Mean still updates...
        assert!((post_mean - prior_mean).abs() > 0.1);
        // ...but member perturbations are exactly the prior's.
        for (x, v) in xs.iter().zip(&vals) {
            let prior_pert = x - prior_mean;
            let post_pert = v - post_mean;
            assert!(
                (prior_pert - post_pert).abs() < 1e-9,
                "{prior_pert} vs {post_pert}"
            );
        }
    }

    #[test]
    fn rtpp_intermediate_blends_spread() {
        let k = 100;
        let xs = scalar_ensemble(k, 0.0, 2.0, 17);
        let spread = |v: &[f64]| -> f64 {
            let m: f64 = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
        };
        let run = |alpha: f64| -> f64 {
            let local = build_local(&xs, 1.0, 0.5, 1.0);
            let mut solver = BatchedEigen::new();
            let mut scratch = TransformScratch::new();
            let mut trans = MatrixS::zeros(k);
            compute_transform(&local, alpha, 1.0, &mut solver, &mut scratch, &mut trans);
            let mut vals = xs.clone();
            let mut pert = vec![0.0; k];
            apply_transform(&mut vals, &trans, &mut pert);
            spread(&vals)
        };
        let s_none = run(0.0);
        let s_mid = run(0.95);
        let s_full = run(1.0);
        assert!(
            s_none < s_mid && s_mid < s_full,
            "{s_none} {s_mid} {s_full}"
        );
        assert!((s_full - spread(&xs)).abs() < 1e-9);
    }

    #[test]
    fn multiplicative_inflation_widens_posterior() {
        let k = 60;
        let xs = scalar_ensemble(k, 0.0, 1.0, 23);
        let run = |infl: f64| -> f64 {
            let local = build_local(&xs, 1.0, 1.0, 1.0);
            let mut solver = BatchedEigen::new();
            let mut scratch = TransformScratch::new();
            let mut trans = MatrixS::zeros(k);
            compute_transform(&local, 0.0, infl, &mut solver, &mut scratch, &mut trans);
            let mut vals = xs.clone();
            let mut pert = vec![0.0; k];
            apply_transform(&mut vals, &trans, &mut pert);
            let m: f64 = vals.iter().sum::<f64>() / k as f64;
            (vals.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / (k - 1) as f64).sqrt()
        };
        assert!(run(1.5) > run(1.0));
    }

    #[test]
    fn single_precision_transform_is_close_to_double() {
        let k = 40;
        let xs = scalar_ensemble(k, 10.0, 2.0, 5);
        let xs32: Vec<f32> = xs.iter().map(|&x| x as f32).collect();

        let local64 = build_local(&xs, 14.0, 2.0, 0.7);
        let mut s64 = BatchedEigen::new();
        let mut sc64 = TransformScratch::new();
        let mut t64 = MatrixS::zeros(k);
        compute_transform(&local64, 0.95, 1.0, &mut s64, &mut sc64, &mut t64);
        let mut v64 = xs.clone();
        let mut p64 = vec![0.0; k];
        apply_transform(&mut v64, &t64, &mut p64);

        let mean32: f32 = xs32.iter().sum::<f32>() / k as f32;
        let yb32: Vec<f32> = xs32.iter().map(|&x| x - mean32).collect();
        let mut local32 = LocalObs::<f32>::new(k);
        local32.push(14.0 - mean32, 0.7 / 4.0, &yb32);
        let mut s32 = BatchedEigen::new();
        let mut sc32 = TransformScratch::new();
        let mut t32 = MatrixS::zeros(k);
        compute_transform(&local32, 0.95, 1.0, &mut s32, &mut sc32, &mut t32);
        let mut v32 = xs32.clone();
        let mut p32 = vec![0.0f32; k];
        apply_transform(&mut v32, &t32, &mut p32);

        let m64: f64 = v64.iter().sum::<f64>() / k as f64;
        let m32: f32 = v32.iter().sum::<f32>() / k as f32;
        assert!(
            (m64 - m32 as f64).abs() < 1e-3,
            "f64 mean {m64} vs f32 mean {m32}"
        );
    }
}
