//! # bda-letkf — Local Ensemble Transform Kalman Filter
//!
//! From-scratch implementation of the LETKF (Hunt, Kostelich & Szunyogh
//! 2007; Miyoshi & Yamane 2007) as configured for the BDA system (paper
//! Table 2): 1000 members, R-localized radar observations (reflectivity and
//! Doppler velocity), Gaspari–Cohn localization with 2-km horizontal and
//! vertical scales, gross-error QC, a cap of 1000 observations per grid
//! point, and relaxation-to-prior-perturbations (RTPP) inflation with factor
//! 0.95.
//!
//! The computational core is, per analysis grid point, a symmetric
//! eigendecomposition of the k x k ensemble-space matrix — 256 x 256 x 60
//! of them per 30-second cycle at full scale, which is why the paper swapped
//! LAPACK for the batched KeDV solver. The driver here pairs Rayon
//! parallelism over grid points with the workspace-reusing
//! [`bda_num::BatchedEigen`]; the solver ablation is benchmarked in
//! `bda-bench`.
//!
//! ## Data flow
//!
//! 1. Build an [`obs::ObsEnsemble`] — observations plus per-member model
//!    equivalents H(x_m) (produced by `bda-pawr`'s observation operator).
//! 2. Quality control: [`obs::QcPipeline`] — gross physical-bounds checks,
//!    the Table-2 innovation thresholds, and an adaptive ensemble-background
//!    departure check, with per-stage rejection counters in
//!    [`obs::QcReport`]. (The bare Table-2 check remains available as
//!    [`obs::gross_error_check`].)
//! 3. Pack the forecast ensemble into an [`ensmatrix::EnsembleMatrix`]
//!    (member-contiguous per state element).
//! 4. [`driver::analyze`] transforms every grid point in the configured
//!    height range in parallel.
//! 5. Unpack to member states; the model applies physical clamping.

pub mod config;
pub mod diagnostics;
pub mod driver;
pub mod ensmatrix;
pub mod localization;
pub mod obs;
pub mod weights;

pub use config::LetkfConfig;
pub use driver::{
    analyze, analyze_quorum, analyze_quorum_region, analyze_region, AnalysisError, AnalysisStats,
    QuorumStats, ABSOLUTE_MIN_QUORUM,
};
pub use ensmatrix::{EnsembleMatrix, StateLayout};
pub use localization::LocalizationError;
pub use obs::{
    gross_error_check, KindCounts, ObsEnsemble, ObsKind, Observation, QcConfig, QcPipeline,
    QcReport,
};
