//! The parallel LETKF driver: one transform per analysis grid point.

use crate::config::LetkfConfig;
use crate::ensmatrix::{EnsembleMatrix, StateLayout};
use crate::localization::{localization_weight, LocalizationError, ObsIndex};
use crate::obs::ObsEnsemble;
use crate::weights::{apply_transform, compute_transform, LocalObs, TransformScratch};
use bda_num::cast;
use bda_num::{BatchedEigen, MatrixS, Real};
use rayon::prelude::*;

/// Why an analysis step could not run. All variants are recoverable by the
/// supervisor's degradation ladder; none should panic the pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AnalysisError {
    /// The observation index could not be built.
    Localization(LocalizationError),
    /// Observation equivalents don't match the ensemble size.
    EnsembleSizeMismatch { hx: usize, k: usize },
    /// Too few surviving members to form a meaningful analysis
    /// ([`analyze_quorum`] only).
    BelowQuorum { alive: usize, required: usize },
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            AnalysisError::Localization(e) => write!(f, "localization failed: {e}"),
            AnalysisError::EnsembleSizeMismatch { hx, k } => {
                write!(
                    f,
                    "observation equivalents for {hx} members, ensemble has {k}"
                )
            }
            AnalysisError::BelowQuorum { alive, required } => {
                write!(f, "only {alive} members alive, quorum requires {required}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<LocalizationError> for AnalysisError {
    fn from(e: LocalizationError) -> Self {
        AnalysisError::Localization(e)
    }
}

/// Aggregate statistics of one analysis step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AnalysisStats {
    /// Grid points whose transform was computed and applied.
    pub points_analyzed: usize,
    /// Grid points inside the height range with no local observations.
    pub points_no_obs: usize,
    /// Grid points outside the analysis height range.
    pub points_outside_range: usize,
    /// Grid points outside the caller's x-strip region (shard-owned
    /// analyses only; zero for whole-domain runs).
    pub points_outside_region: usize,
    /// Total localized observations used (summed over grid points).
    pub total_local_obs: u64,
    /// Largest local observation count (after the per-point cap).
    pub max_local_obs: usize,
}

impl AnalysisStats {
    fn merge(mut self, other: Self) -> Self {
        self.points_analyzed += other.points_analyzed;
        self.points_no_obs += other.points_no_obs;
        self.points_outside_range += other.points_outside_range;
        self.points_outside_region += other.points_outside_region;
        self.total_local_obs += other.total_local_obs;
        self.max_local_obs = self.max_local_obs.max(other.max_local_obs);
        self
    }

    /// Mean number of local observations per analyzed point.
    pub fn mean_local_obs(&self) -> f64 {
        if self.points_analyzed == 0 {
            0.0
        } else {
            cast::f64_of_u64(self.total_local_obs) / cast::f64_of(self.points_analyzed)
        }
    }
}

/// Per-worker scratch.
struct Workspace<T> {
    local: LocalObs<T>,
    candidates: Vec<(f64, u32)>, // (localization weight, obs index)
    solver: BatchedEigen<T>,
    scratch: TransformScratch<T>,
    trans: MatrixS<T>,
    pert: Vec<T>,
}

impl<T: Real> Workspace<T> {
    // Fold-identity constructor: one allocation per rayon worker chunk,
    // amortized across every grid point the chunk analyzes.
    // bda-check: allow(hot_alloc)
    fn new(k: usize) -> Self {
        Self {
            local: LocalObs::new(k),
            candidates: Vec::new(),
            solver: BatchedEigen::with_capacity(k),
            scratch: TransformScratch::new(),
            trans: MatrixS::zeros(k),
            pert: vec![T::zero(); k],
        }
    }
}

/// Run the LETKF analysis in place on an ensemble.
///
/// Observations should already have passed [`crate::obs::gross_error_check`].
/// Grid points outside `[analysis_z_min, analysis_z_max]` (Table 2) are left
/// untouched, as are points with no observation within the localization
/// cutoff.
pub fn analyze<T: Real>(
    ens: &mut EnsembleMatrix<T>,
    obs: &ObsEnsemble<T>,
    cfg: &LetkfConfig,
) -> Result<AnalysisStats, AnalysisError> {
    analyze_region(ens, obs, cfg, None)
}

/// [`analyze`] restricted to the x-strip `i0 <= i < i1` of the domain —
/// the per-shard analysis of a federated run. `None` analyzes everything
/// and is bit-identical to [`analyze`].
///
/// Because the LETKF transform is independent per grid point (innovations
/// and observation-space perturbations are precomputed from the full
/// observation set, and each point's transform reads only its own local
/// gather), the values produced at the points *inside* the region are
/// bit-identical to what a whole-domain analysis would produce there —
/// the property the shard-parity tests pin down.
pub fn analyze_region<T: Real>(
    ens: &mut EnsembleMatrix<T>,
    obs: &ObsEnsemble<T>,
    cfg: &LetkfConfig,
    region: Option<(usize, usize)>,
) -> Result<AnalysisStats, AnalysisError> {
    cfg.validate();
    let k = ens.k;
    if obs.ensemble_size() != k {
        return Err(AnalysisError::EnsembleSizeMismatch {
            hx: obs.ensemble_size(),
            k,
        });
    }

    // Precompute innovations and observation-space perturbation rows.
    let nobs = obs.len();
    // Per-analysis setup, before the per-grid-point loop: two allocations
    // per cycle, not per point. bda-check: allow(hot_alloc)
    let mut dy = vec![T::zero(); nobs];
    // bda-check: allow(hot_alloc)
    let mut yb = vec![T::zero(); nobs * k]; // row-major [obs][member]
    for i in 0..nobs {
        let mean = obs.hx_mean(i);
        dy[i] = obs.obs[i].value - mean;
        for m in 0..k {
            // In bounds: i < nobs, m < k, so i*k + m < nobs*k = yb.len().
            // bda-check: allow(panic_path)
            yb[i * k + m] = obs.hx[m][i] - mean;
        }
    }

    let index = ObsIndex::build(&obs.obs, cfg.cutoff_horizontal())?;

    let rtpp = T::of(cfg.rtpp);
    let infl = T::of(cfg.infl_mult);
    let ch = cfg.loc_horizontal;
    let cv = cfg.loc_vertical;
    let cutoff_v = cfg.cutoff_vertical();
    let zmin = cfg.analysis_z_min;
    let zmax = cfg.analysis_z_max;
    let max_obs = cfg.max_obs_per_grid;

    let block_len = ens.block_len();
    let (layout, _, data) = ens.grid_point_blocks_mut();
    let (ny, nz, nvar) = (layout.ny, layout.nz, layout.nvar);

    let stats = data
        .par_chunks_mut(block_len)
        .enumerate()
        .fold(
            || (AnalysisStats::default(), Workspace::<T>::new(k)),
            |(mut stats, mut ws), (g, block)| {
                let kz = g % nz;
                let j = (g / nz) % ny;
                let i = g / (nz * ny);
                if let Some((i0, i1)) = region {
                    if i < i0 || i >= i1 {
                        stats.points_outside_region += 1;
                        return (stats, ws);
                    }
                }
                let z = layout.z_center[kz];
                if z < zmin || z > zmax {
                    stats.points_outside_range += 1;
                    return (stats, ws);
                }
                let (x, y) = layout.xy(i, j);

                // Gather localized observations.
                ws.candidates.clear();
                index.for_each_near(&obs.obs, x, y, |idx, rh| {
                    let rv = (obs.obs[idx].z - z).abs();
                    if rv >= cutoff_v {
                        return;
                    }
                    let w = localization_weight(rh, ch, rv, cv);
                    if w > 1e-8 {
                        ws.candidates.push((w, cast::u32_of_index(idx)));
                    }
                });
                if ws.candidates.is_empty() {
                    stats.points_no_obs += 1;
                    return (stats, ws);
                }
                // Cap at max_obs_per_grid, keeping the strongest weights
                // (the paper's Table 2 cap of 1000).
                if ws.candidates.len() > max_obs {
                    ws.candidates.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
                    ws.candidates.truncate(max_obs);
                }

                ws.local.clear();
                for &(w, idx) in &ws.candidates {
                    let i_obs = cast::index_of_u32(idx);
                    let err = obs.obs[i_obs].error_sd;
                    let rinv = T::of(w) / (err * err);
                    // In bounds: i_obs < nobs by construction of candidates.
                    ws.local
                        // bda-check: allow(panic_path)
                        .push(dy[i_obs], rinv, &yb[i_obs * k..(i_obs + 1) * k]);
                }

                if compute_transform(
                    &ws.local,
                    rtpp,
                    infl,
                    &mut ws.solver,
                    &mut ws.scratch,
                    &mut ws.trans,
                ) {
                    for v in 0..nvar {
                        // In bounds: block has nvar*k elements, v < nvar.
                        // bda-check: allow(panic_path)
                        let vals = &mut block[v * k..(v + 1) * k];
                        apply_transform(vals, &ws.trans, &mut ws.pert);
                    }
                    stats.points_analyzed += 1;
                    stats.total_local_obs += cast::u64_of(ws.candidates.len());
                    stats.max_local_obs = stats.max_local_obs.max(ws.candidates.len());
                }
                (stats, ws)
            },
        )
        .map(|(stats, _)| stats)
        .reduce(AnalysisStats::default, AnalysisStats::merge);
    Ok(stats)
}

/// Statistics of a quorum analysis: the LETKF ran on the `k_alive` surviving
/// members of a `k_total`-member ensemble.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuorumStats {
    pub stats: AnalysisStats,
    /// Members that actually entered the transform.
    pub k_alive: usize,
    /// Nominal ensemble size.
    pub k_total: usize,
}

impl QuorumStats {
    /// Did any member get quarantined out of this analysis?
    pub fn degraded(&self) -> bool {
        self.k_alive < self.k_total
    }
}

/// Minimum number of members for the transform to be meaningful at all:
/// the ensemble covariance needs at least two members.
pub const ABSOLUTE_MIN_QUORUM: usize = 2;

/// Run the LETKF on the surviving subset of a partially-dead ensemble.
///
/// `members` are flat state vectors ([`StateLayout`] order), index-aligned
/// with `alive`; dead members are left untouched. `obs` must carry
/// observation equivalents for the *alive* members only, in ascending member
/// order. The transform is computed with k = `alive.count()`, so the
/// ensemble-covariance weighting `1/(k-1)` is automatically consistent with
/// the reduced quorum. Below `min_quorum` (clamped to at least
/// [`ABSOLUTE_MIN_QUORUM`]) nothing is touched and the caller's degradation
/// ladder takes over.
pub fn analyze_quorum<T: Real>(
    members: &mut [Vec<T>],
    alive: &[bool],
    layout: StateLayout,
    obs: &ObsEnsemble<T>,
    cfg: &LetkfConfig,
    min_quorum: usize,
) -> Result<QuorumStats, AnalysisError> {
    analyze_quorum_region(members, alive, layout, obs, cfg, min_quorum, None)
}

/// [`analyze_quorum`] restricted to the x-strip `i0 <= i < i1` (see
/// [`analyze_region`]); `None` is bit-identical to [`analyze_quorum`].
#[allow(clippy::too_many_arguments)]
pub fn analyze_quorum_region<T: Real>(
    members: &mut [Vec<T>],
    alive: &[bool],
    layout: StateLayout,
    obs: &ObsEnsemble<T>,
    cfg: &LetkfConfig,
    min_quorum: usize,
    region: Option<(usize, usize)>,
) -> Result<QuorumStats, AnalysisError> {
    assert_eq!(
        alive.len(),
        members.len(),
        "alive flags must align with members"
    );
    let k_total = members.len();
    let alive_idx: Vec<usize> = (0..k_total).filter(|&m| alive[m]).collect();
    let k_alive = alive_idx.len();
    let required = min_quorum.max(ABSOLUTE_MIN_QUORUM);
    if k_alive < required {
        return Err(AnalysisError::BelowQuorum {
            alive: k_alive,
            required,
        });
    }
    // Move (not copy) the surviving members into a dense sub-ensemble,
    // run the standard transform on it, and scatter back.
    let mut flats: Vec<Vec<T>> = alive_idx
        .iter()
        .map(|&m| std::mem::take(&mut members[m]))
        .collect();
    let mut mat = EnsembleMatrix::from_members(&flats, layout);
    let result = analyze_region(&mut mat, obs, cfg, region);
    mat.to_members(&mut flats);
    for (&slot, flat) in alive_idx.iter().zip(flats) {
        members[slot] = flat;
    }
    Ok(QuorumStats {
        stats: result?,
        k_alive,
        k_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensmatrix::StateLayout;
    use crate::obs::{ObsKind, Observation};
    use bda_num::SplitMix64;

    /// Identical-twin setup: nvar = 1 field, observations sample variable 0
    /// at given grid points with an identity forward operator.
    struct Twin {
        layout: StateLayout,
        members: Vec<Vec<f64>>,
    }

    fn twin(nx: usize, nz: usize, k: usize, seed: u64) -> Twin {
        let layout = StateLayout {
            nx,
            ny: nx,
            nz,
            nvar: 1,
            dx: 500.0,
            z_center: (0..nz).map(|kk| 500.0 + kk as f64 * 500.0).collect(),
        };
        let mut rng = SplitMix64::new(seed);
        let members = (0..k)
            .map(|_| {
                (0..layout.n_elements())
                    .map(|_| rng.gaussian(5.0, 1.0))
                    .collect()
            })
            .collect();
        Twin { layout, members }
    }

    fn obs_at(
        twin: &Twin,
        i: usize,
        j: usize,
        kz: usize,
        value: f64,
        err: f64,
    ) -> ObsEnsemble<f64> {
        let (x, y) = twin.layout.xy(i, j);
        let z = twin.layout.z_center[kz];
        let o = Observation {
            kind: ObsKind::Reflectivity,
            x,
            y,
            z,
            value,
            error_sd: err,
        };
        let src = twin.layout.member_index(0, i, j, kz);
        let hx: Vec<Vec<f64>> = twin.members.iter().map(|m| vec![m[src]]).collect();
        ObsEnsemble::new(vec![o], hx)
    }

    fn point_stats(mat: &EnsembleMatrix<f64>, g: usize) -> (f64, f64) {
        let vals = mat.element(g, 0);
        let k = vals.len();
        let mean: f64 = vals.iter().sum::<f64>() / k as f64;
        let var: f64 = vals.iter().map(|&v| (v - mean).powi(2)).sum::<f64>() / (k - 1) as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn observation_pulls_mean_and_shrinks_spread_locally() {
        let tw = twin(8, 4, 20, 1);
        let cfg = LetkfConfig::reduced(20);
        let obs = obs_at(&tw, 4, 4, 1, 9.0, 0.5);
        let mut mat = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let g_obs = (4 * tw.layout.ny + 4) * tw.layout.nz + 1;
        let (mean_before, sd_before) = point_stats(&mat, g_obs);
        let stats = analyze(&mut mat, &obs, &cfg).unwrap();
        assert!(stats.points_analyzed > 0);
        let (mean_after, sd_after) = point_stats(&mat, g_obs);
        assert!(
            (mean_after - 9.0).abs() < (mean_before - 9.0).abs(),
            "mean did not move toward obs: {mean_before} -> {mean_after}"
        );
        // RTPP = 0.95 keeps most spread, but it must not grow.
        assert!(sd_after <= sd_before + 1e-9);
    }

    #[test]
    fn faraway_points_are_untouched() {
        let tw = twin(10, 4, 15, 2);
        let cfg = LetkfConfig::reduced(15);
        let obs = obs_at(&tw, 1, 1, 1, 12.0, 0.5);
        let mut mat = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        // Point at the opposite corner, far beyond the 4-km cutoff.
        let g_far = (9 * tw.layout.ny + 9) * tw.layout.nz + 1;
        let before: Vec<f64> = mat.element(g_far, 0).to_vec();
        analyze(&mut mat, &obs, &cfg).unwrap();
        assert_eq!(mat.element(g_far, 0), before.as_slice());
    }

    #[test]
    fn points_outside_height_range_are_untouched() {
        let mut tw = twin(6, 5, 10, 3);
        // Put level 4 above the analysis ceiling.
        tw.layout.z_center[4] = 15_000.0;
        let cfg = LetkfConfig::reduced(10);
        let obs = obs_at(&tw, 3, 3, 1, 8.0, 0.5);
        let mut mat = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let g_high = (3 * tw.layout.ny + 3) * tw.layout.nz + 4;
        let before: Vec<f64> = mat.element(g_high, 0).to_vec();
        let stats = analyze(&mut mat, &obs, &cfg).unwrap();
        assert_eq!(mat.element(g_high, 0), before.as_slice());
        assert!(stats.points_outside_range > 0);
    }

    #[test]
    fn no_observations_is_a_no_op() {
        let tw = twin(5, 3, 8, 4);
        let cfg = LetkfConfig::reduced(8);
        let obs = ObsEnsemble::<f64>::new(vec![], vec![vec![]; 8]);
        let mut mat = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let before: Vec<f64> = mat.element(0, 0).to_vec();
        let stats = analyze(&mut mat, &obs, &cfg).unwrap();
        assert_eq!(stats.points_analyzed, 0);
        assert_eq!(mat.element(0, 0), before.as_slice());
    }

    #[test]
    fn max_obs_cap_is_respected() {
        let tw = twin(6, 3, 8, 5);
        let mut cfg = LetkfConfig::reduced(8);
        cfg.max_obs_per_grid = 3;
        // A dense cluster of observations around one point.
        let mut all_obs = Vec::new();
        let mut hx: Vec<Vec<f64>> = vec![Vec::new(); 8];
        for di in 0..3 {
            for dj in 0..3 {
                let o = obs_at(&tw, 2 + di, 2 + dj, 1, 7.0, 1.0);
                all_obs.push(o.obs[0]);
                for (m, hxm) in hx.iter_mut().enumerate() {
                    hxm.push(o.hx[m][0]);
                }
            }
        }
        let obs = ObsEnsemble::new(all_obs, hx);
        let mut mat = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let stats = analyze(&mut mat, &obs, &cfg).unwrap();
        assert!(
            stats.max_local_obs <= 3,
            "cap violated: {}",
            stats.max_local_obs
        );
        assert!(stats.points_analyzed > 0);
    }

    #[test]
    fn multiple_variables_all_updated_at_observed_point() {
        let layout = StateLayout {
            nx: 6,
            ny: 6,
            nz: 3,
            nvar: 2,
            dx: 500.0,
            z_center: vec![500.0, 1000.0, 1500.0],
        };
        let mut rng = SplitMix64::new(6);
        // Variable 1 correlated with variable 0 (so the update propagates).
        let mut members: Vec<Vec<f64>> = Vec::new();
        for _ in 0..20 {
            let mut m = vec![0.0; layout.n_elements()];
            for i in 0..6 {
                for j in 0..6 {
                    for kz in 0..3 {
                        let base: f64 = rng.gaussian(5.0, 1.0);
                        m[layout.member_index(0, i, j, kz)] = base;
                        m[layout.member_index(1, i, j, kz)] = 2.0 * base + rng.gaussian(0.0, 0.1);
                    }
                }
            }
            members.push(m);
        }
        let (x, y) = layout.xy(3, 3);
        let o = Observation {
            kind: ObsKind::DopplerVelocity,
            x,
            y,
            z: 1000.0,
            value: 8.0,
            error_sd: 0.5,
        };
        let src = layout.member_index(0, 3, 3, 1);
        let hx: Vec<Vec<f64>> = members.iter().map(|m| vec![m[src]]).collect();
        let obs = ObsEnsemble::new(vec![o], hx);
        let mut mat = EnsembleMatrix::from_members(&members, layout.clone());
        let g = (3 * layout.ny + 3) * layout.nz + 1;
        let v1_before = mat.element_mean(g, 1);
        analyze(&mut mat, &obs, &LetkfConfig::reduced(20)).unwrap();
        let v0_after = mat.element_mean(g, 0);
        let v1_after = mat.element_mean(g, 1);
        // Var 0 pulled toward 8; var 1 (≈ 2 * var 0) pulled toward 16.
        assert!((v0_after - 8.0).abs() < 2.0, "v0 = {v0_after}");
        assert!(
            (v1_after - 16.0).abs() < (v1_before - 16.0).abs(),
            "correlated variable not updated: {v1_before} -> {v1_after}"
        );
    }

    #[test]
    fn analysis_reduces_error_against_truth_statistically() {
        // Multiple observations of a smooth truth: posterior mean RMSE to
        // truth must beat the prior's.
        let tw = twin(10, 4, 30, 7);
        let cfg = LetkfConfig::reduced(30);
        let truth = 7.5_f64;
        let mut all_obs = Vec::new();
        let mut hx: Vec<Vec<f64>> = vec![Vec::new(); 30];
        for (i, j) in [(2, 2), (2, 7), (7, 2), (7, 7), (5, 5)] {
            let o = obs_at(&tw, i, j, 2, truth, 0.4);
            all_obs.push(o.obs[0]);
            for (m, hxm) in hx.iter_mut().enumerate() {
                hxm.push(o.hx[m][0]);
            }
        }
        let obs = ObsEnsemble::new(all_obs, hx);
        let mut mat = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let rmse_at_obs_points = |mat: &EnsembleMatrix<f64>| -> f64 {
            let pts = [(2, 2), (2, 7), (7, 2), (7, 7), (5, 5)];
            let mut s = 0.0;
            for (i, j) in pts {
                let g = (i * tw.layout.ny + j) * tw.layout.nz + 2;
                let (m, _) = point_stats(mat, g);
                s += (m - truth).powi(2);
            }
            (s / pts.len() as f64).sqrt()
        };
        let before = rmse_at_obs_points(&mat);
        let stats = analyze(&mut mat, &obs, &cfg).unwrap();
        let after = rmse_at_obs_points(&mat);
        assert!(after < before, "RMSE did not improve: {before} -> {after}");
        assert!(stats.mean_local_obs() >= 1.0);
    }

    #[test]
    fn ensemble_size_mismatch_is_a_typed_error() {
        let tw = twin(5, 3, 8, 11);
        let cfg = LetkfConfig::reduced(8);
        let obs = obs_at(&tw, 2, 2, 1, 9.0, 0.5);
        // Build a matrix with one member fewer than the obs equivalents.
        let mut mat = EnsembleMatrix::from_members(&tw.members[..7], tw.layout.clone());
        assert_eq!(
            analyze(&mut mat, &obs, &cfg).err(),
            Some(AnalysisError::EnsembleSizeMismatch { hx: 8, k: 7 })
        );
    }

    /// Restrict an ObsEnsemble's model equivalents to the alive members.
    fn obs_for_alive(obs: &ObsEnsemble<f64>, alive: &[bool]) -> ObsEnsemble<f64> {
        let hx: Vec<Vec<f64>> = obs
            .hx
            .iter()
            .zip(alive)
            .filter(|(_, &a)| a)
            .map(|(h, _)| h.clone())
            .collect();
        ObsEnsemble::new(obs.obs.clone(), hx)
    }

    #[test]
    fn quorum_analysis_skips_dead_members_and_still_pulls_toward_obs() {
        let tw = twin(8, 4, 12, 21);
        let cfg = LetkfConfig::reduced(12);
        let obs_full = obs_at(&tw, 4, 4, 1, 9.0, 0.5);
        let mut members = tw.members.clone();
        // Poison member 3 with NaN and quarantine it.
        for v in members[3].iter_mut() {
            *v = f64::NAN;
        }
        let mut alive = vec![true; 12];
        alive[3] = false;
        let obs = obs_for_alive(&obs_full, &alive);
        let dead_before = members[3].clone();
        let q = analyze_quorum(&mut members, &alive, tw.layout.clone(), &obs, &cfg, 2).unwrap();
        assert_eq!(q.k_alive, 11);
        assert_eq!(q.k_total, 12);
        assert!(q.degraded());
        assert!(q.stats.points_analyzed > 0);
        // Dead member untouched; every surviving member finite.
        assert!(members[3]
            .iter()
            .zip(&dead_before)
            .all(|(a, b)| { (a.is_nan() && b.is_nan()) || a == b }));
        for (m, flat) in members.iter().enumerate() {
            if m != 3 {
                assert!(flat.iter().all(|v| v.is_finite()), "member {m} not finite");
            }
        }
        // The analysis still moved the surviving mean toward the observation.
        let g_obs = (4 * tw.layout.ny + 4) * tw.layout.nz + 1;
        let mean_after: f64 = alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(m, _)| members[m][g_obs])
            .sum::<f64>()
            / 11.0;
        let mean_before: f64 = alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(m, _)| tw.members[m][g_obs])
            .sum::<f64>()
            / 11.0;
        assert!(
            (mean_after - 9.0).abs() < (mean_before - 9.0).abs(),
            "quorum mean did not move toward obs: {mean_before} -> {mean_after}"
        );
    }

    #[test]
    fn quorum_matches_plain_analysis_when_all_members_alive() {
        let tw = twin(6, 3, 10, 31);
        let cfg = LetkfConfig::reduced(10);
        let obs = obs_at(&tw, 3, 3, 1, 8.0, 0.5);
        let mut members = tw.members.clone();
        let alive = vec![true; 10];
        let q = analyze_quorum(&mut members, &alive, tw.layout.clone(), &obs, &cfg, 2).unwrap();
        assert!(!q.degraded());
        let mut mat = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let stats = analyze(&mut mat, &obs, &cfg).unwrap();
        assert_eq!(q.stats, stats);
        let mut reference = tw.members.clone();
        mat.to_members(&mut reference);
        assert_eq!(members, reference);
    }

    #[test]
    fn below_quorum_leaves_members_untouched() {
        let tw = twin(5, 3, 6, 41);
        let cfg = LetkfConfig::reduced(6);
        let obs_full = obs_at(&tw, 2, 2, 1, 9.0, 0.5);
        let mut members = tw.members.clone();
        let alive = vec![true, false, false, false, false, true];
        let obs = obs_for_alive(&obs_full, &alive);
        let before = members.clone();
        let err = analyze_quorum(&mut members, &alive, tw.layout.clone(), &obs, &cfg, 4)
            .err()
            .unwrap();
        assert_eq!(
            err,
            AnalysisError::BelowQuorum {
                alive: 2,
                required: 4
            }
        );
        assert_eq!(members, before);
    }

    #[test]
    fn region_none_is_bit_identical_to_full_analysis() {
        let tw = twin(10, 4, 12, 61);
        let cfg = LetkfConfig::reduced(12);
        let obs = obs_at(&tw, 4, 4, 1, 9.0, 0.5);
        let mut full = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let mut region = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let s_full = analyze(&mut full, &obs, &cfg).unwrap();
        let s_region = analyze_region(&mut region, &obs, &cfg, None).unwrap();
        assert_eq!(s_full, s_region);
        let mut a = tw.members.clone();
        let mut b = tw.members.clone();
        full.to_members(&mut a);
        region.to_members(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn region_restricted_analysis_matches_full_inside_and_skips_outside() {
        // The property that makes bit-identical sharding possible: a
        // region-restricted analysis produces exactly the full analysis'
        // values at the points it owns, and leaves the rest untouched.
        let tw = twin(10, 4, 12, 71);
        let cfg = LetkfConfig::reduced(12);
        // Observations in both halves so both strips have real updates.
        let mut all_obs = Vec::new();
        let mut hx: Vec<Vec<f64>> = vec![Vec::new(); 12];
        for (i, j) in [(2, 3), (7, 6), (4, 4), (8, 2)] {
            let o = obs_at(&tw, i, j, 1, 9.0, 0.5);
            all_obs.push(o.obs[0]);
            for (m, hxm) in hx.iter_mut().enumerate() {
                hxm.push(o.hx[m][0]);
            }
        }
        let obs = ObsEnsemble::new(all_obs, hx);

        let mut full = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        analyze(&mut full, &obs, &cfg).unwrap();
        let mut full_members = tw.members.clone();
        full.to_members(&mut full_members);

        let (i0, i1) = (0usize, 5usize);
        let mut strip = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        let stats = analyze_region(&mut strip, &obs, &cfg, Some((i0, i1))).unwrap();
        assert!(stats.points_analyzed > 0);
        assert!(stats.points_outside_region > 0);
        let mut strip_members = tw.members.clone();
        strip.to_members(&mut strip_members);

        let l = &tw.layout;
        for (m, (fm, sm)) in full_members.iter().zip(&strip_members).enumerate() {
            for i in 0..l.nx {
                for j in 0..l.ny {
                    for kz in 0..l.nz {
                        let idx = l.member_index(0, i, j, kz);
                        if i >= i0 && i < i1 {
                            assert_eq!(
                                fm[idx].to_bits(),
                                sm[idx].to_bits(),
                                "member {m} diverges inside region at ({i},{j},{kz})"
                            );
                        } else {
                            assert_eq!(
                                sm[idx].to_bits(),
                                tw.members[m][idx].to_bits(),
                                "member {m} touched outside region at ({i},{j},{kz})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn disjoint_regions_tile_the_full_analysis_exactly() {
        // Stitching every shard's strip back together must reproduce the
        // single-domain analysis bit-for-bit — for any shard count.
        let tw = twin(10, 4, 8, 81);
        let cfg = LetkfConfig::reduced(8);
        let obs = obs_at(&tw, 5, 5, 1, 10.0, 0.5);

        let mut full = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
        analyze(&mut full, &obs, &cfg).unwrap();
        let mut full_members = tw.members.clone();
        full.to_members(&mut full_members);

        for n_shards in [2usize, 4] {
            let mut stitched = tw.members.clone();
            let mut cursor = 0usize;
            for s in 0..n_shards {
                let w = tw.layout.nx / n_shards + usize::from(s < tw.layout.nx % n_shards);
                let (i0, i1) = (cursor, cursor + w);
                cursor = i1;
                let mut mat = EnsembleMatrix::from_members(&tw.members, tw.layout.clone());
                analyze_region(&mut mat, &obs, &cfg, Some((i0, i1))).unwrap();
                let mut strip_members = tw.members.clone();
                mat.to_members(&mut strip_members);
                let l = &tw.layout;
                for (dst, src) in stitched.iter_mut().zip(&strip_members) {
                    for i in i0..i1 {
                        for j in 0..l.ny {
                            for kz in 0..l.nz {
                                let idx = l.member_index(0, i, j, kz);
                                dst[idx] = src[idx];
                            }
                        }
                    }
                }
            }
            assert_eq!(
                stitched, full_members,
                "{n_shards}-way stitched analysis diverged from the full one"
            );
        }
    }

    #[test]
    fn min_quorum_is_clamped_to_absolute_minimum() {
        let tw = twin(4, 3, 4, 51);
        let cfg = LetkfConfig::reduced(4);
        let obs_full = obs_at(&tw, 1, 1, 1, 7.0, 0.5);
        let mut members = tw.members.clone();
        let alive = vec![true, false, false, false];
        let obs = obs_for_alive(&obs_full, &alive);
        // min_quorum 0 still refuses a single-member "ensemble".
        assert_eq!(
            analyze_quorum(&mut members, &alive, tw.layout.clone(), &obs, &cfg, 0).err(),
            Some(AnalysisError::BelowQuorum {
                alive: 1,
                required: ABSOLUTE_MIN_QUORUM
            })
        );
    }
}
