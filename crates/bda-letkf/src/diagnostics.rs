//! Data-assimilation health diagnostics.
//!
//! The classic innovation-statistics checks: for a healthy filter the
//! observation-space innovations `d = y - H(xbar)` satisfy
//! `E[d d^T] = HPH^T + R`, i.e. the ensemble spread in observation space
//! plus the observation error should explain the innovation variance. A
//! consistency ratio well below 1 means the ensemble is overdispersive;
//! well above 1 means spread collapse (what RTPP exists to prevent).
//!
//! Also provides Desroziers-style adaptive multiplicative inflation — an
//! *extension* beyond the paper's fixed-RTPP configuration (the paper lists
//! only RTPP in Table 2), useful for the sensitivity studies.

use crate::obs::{ObsEnsemble, ObsKind};
use bda_num::cast;
use bda_num::Real;
use serde::{Deserialize, Serialize};

/// Innovation statistics for one observation kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InnovationStats {
    pub count: usize,
    /// Mean innovation (bias; should be ~0 for an unbiased system).
    pub mean: f64,
    /// Innovation variance `E[d^2] - mean^2`.
    pub variance: f64,
    /// Mean ensemble variance in observation space (HPH^T diagonal).
    pub hpht: f64,
    /// Mean observation-error variance (R diagonal).
    pub r: f64,
}

impl InnovationStats {
    /// Spread-consistency ratio `var(d) / (HPH^T + R)`; ~1 for a healthy
    /// filter, > 1 when the ensemble is overconfident.
    pub fn consistency_ratio(&self) -> f64 {
        let denom = self.hpht + self.r;
        if denom <= 0.0 {
            return f64::NAN;
        }
        self.variance / denom
    }

    /// Desroziers-style multiplicative inflation estimate: the factor by
    /// which background variance should grow so that consistency holds.
    /// Clamped to [1, max_factor]; deflation is left to RTPP.
    pub fn inflation_estimate(&self, max_factor: f64) -> f64 {
        if self.hpht <= 0.0 {
            return 1.0;
        }
        let target_hpht = (self.variance - self.r).max(0.0);
        (target_hpht / self.hpht).clamp(1.0, max_factor)
    }
}

/// Compute innovation statistics per observation kind.
pub fn innovation_statistics<T: Real>(ens: &ObsEnsemble<T>) -> (InnovationStats, InnovationStats) {
    let k = ens.ensemble_size();
    let mut stats = [InnovationStats::default(), InnovationStats::default()];
    let mut sums = [(0.0f64, 0.0f64, 0.0f64, 0.0f64); 2]; // (d, d^2, hpht, r)
    for i in 0..ens.len() {
        let idx = match ens.obs[i].kind {
            ObsKind::Reflectivity => 0,
            ObsKind::DopplerVelocity => 1,
        };
        let d = ens.innovation(i).f64();
        let mean = ens.hx_mean(i).f64();
        let var: f64 = ens
            .hx
            .iter()
            .map(|m| (m[i].f64() - mean).powi(2))
            .sum::<f64>()
            / cast::f64_of(k - 1);
        let r = ens.obs[i].error_sd.f64().powi(2);
        stats[idx].count += 1;
        sums[idx].0 += d;
        sums[idx].1 += d * d;
        sums[idx].2 += var;
        sums[idx].3 += r;
    }
    for idx in 0..2 {
        let n = stats[idx].count;
        if n > 0 {
            let nf = cast::f64_of(n);
            stats[idx].mean = sums[idx].0 / nf;
            stats[idx].variance = (sums[idx].1 / nf - stats[idx].mean.powi(2)).max(0.0);
            stats[idx].hpht = sums[idx].2 / nf;
            stats[idx].r = sums[idx].3 / nf;
        }
    }
    (stats[0], stats[1])
}

/// Running adaptive-inflation state: exponentially smoothed estimates, one
/// scalar factor applied through `LetkfConfig::infl_mult`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AdaptiveInflation {
    /// Current multiplicative factor.
    pub factor: f64,
    /// Smoothing weight for new estimates (0..1).
    pub smoothing: f64,
    /// Upper bound on the factor.
    pub max_factor: f64,
}

impl Default for AdaptiveInflation {
    fn default() -> Self {
        Self {
            factor: 1.0,
            smoothing: 0.1,
            max_factor: 2.0,
        }
    }
}

impl AdaptiveInflation {
    /// Update from this cycle's innovation statistics (both kinds pooled by
    /// observation count).
    pub fn update(&mut self, refl: &InnovationStats, dopp: &InnovationStats) -> f64 {
        let total = refl.count + dopp.count;
        if total == 0 {
            return self.factor;
        }
        let est = (refl.inflation_estimate(self.max_factor) * cast::f64_of(refl.count)
            + dopp.inflation_estimate(self.max_factor) * cast::f64_of(dopp.count))
            / cast::f64_of(total);
        self.factor = ((1.0 - self.smoothing) * self.factor + self.smoothing * est)
            .clamp(1.0, self.max_factor);
        self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Observation;
    use bda_num::SplitMix64;

    fn make_ens(
        k: usize,
        n: usize,
        spread: f64,
        innov_scale: f64,
        err: f64,
        seed: u64,
    ) -> ObsEnsemble<f64> {
        let mut rng = SplitMix64::new(seed);
        let mut obs = Vec::new();
        let mut hx = vec![Vec::with_capacity(n); k];
        for i in 0..n {
            let truth = 20.0 + rng.gaussian(0.0, 3.0);
            obs.push(Observation {
                kind: if i % 2 == 0 {
                    ObsKind::Reflectivity
                } else {
                    ObsKind::DopplerVelocity
                },
                x: i as f64 * 500.0,
                y: 0.0,
                z: 1000.0,
                value: truth + rng.gaussian(0.0, innov_scale),
                error_sd: err,
            });
            for member in hx.iter_mut() {
                member.push(truth + rng.gaussian(0.0, spread));
            }
        }
        ObsEnsemble::new(obs, hx)
    }

    #[test]
    fn healthy_filter_has_ratio_near_one() {
        // Innovations driven by spread+obs error exactly: d ~ N(0, s^2+r^2).
        let spread = 2.0;
        let err = 1.5;
        let innov = (spread * spread + err * err).sqrt();
        let ens = make_ens(200, 400, spread, innov, err, 1);
        let (r, d) = innovation_statistics(&ens);
        for s in [r, d] {
            let ratio = s.consistency_ratio();
            assert!(
                (0.7..1.4).contains(&ratio),
                "healthy ratio should be ~1, got {ratio:.2}"
            );
        }
    }

    #[test]
    fn collapsed_ensemble_has_large_ratio_and_inflation() {
        // Tiny spread but large innovations: the filter is overconfident.
        let ens = make_ens(50, 200, 0.1, 6.0, 1.0, 2);
        let (r, _) = innovation_statistics(&ens);
        assert!(
            r.consistency_ratio() > 5.0,
            "ratio {:.1}",
            r.consistency_ratio()
        );
        assert!(r.inflation_estimate(100.0) > 5.0);
    }

    #[test]
    fn overdispersive_ensemble_suggests_no_inflation() {
        let ens = make_ens(50, 200, 8.0, 1.0, 1.0, 3);
        let (r, _) = innovation_statistics(&ens);
        assert!(r.consistency_ratio() < 0.5);
        assert_eq!(r.inflation_estimate(2.0), 1.0, "deflation is RTPP's job");
    }

    #[test]
    fn statistics_split_by_kind() {
        let ens = make_ens(20, 100, 2.0, 2.0, 1.0, 4);
        let (r, d) = innovation_statistics(&ens);
        assert_eq!(r.count, 50);
        assert_eq!(d.count, 50);
    }

    #[test]
    fn adaptive_inflation_moves_smoothly_and_is_bounded() {
        let mut ai = AdaptiveInflation::default();
        let collapsed = make_ens(30, 100, 0.1, 6.0, 1.0, 5);
        let (r, d) = innovation_statistics(&collapsed);
        let f1 = ai.update(&r, &d);
        assert!(f1 > 1.0 && f1 <= ai.max_factor);
        // Repeated updates converge toward the cap without exceeding it.
        for _ in 0..100 {
            ai.update(&r, &d);
        }
        assert!(ai.factor <= ai.max_factor + 1e-12);
        assert!(ai.factor > f1);
    }

    #[test]
    fn empty_observation_set_is_neutral() {
        let ens = ObsEnsemble::<f64>::new(vec![], vec![vec![]; 3]);
        let (r, d) = innovation_statistics(&ens);
        assert_eq!(r.count, 0);
        assert_eq!(d.count, 0);
        let mut ai = AdaptiveInflation::default();
        assert_eq!(ai.update(&r, &d), 1.0);
    }
}
