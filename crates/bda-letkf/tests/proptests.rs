//! Property-based invariants of the LETKF transform mathematics.

use bda_letkf::weights::{apply_transform, compute_transform, LocalObs, TransformScratch};
use bda_num::{BatchedEigen, MatrixS, SplitMix64};
use proptest::prelude::*;

/// Build a random scalar ensemble and one localized observation of it.
fn setup(
    k: usize,
    seed: u64,
    obs_offset: f64,
    obs_err: f64,
    loc_w: f64,
) -> (Vec<f64>, LocalObs<f64>) {
    let mut rng = SplitMix64::new(seed);
    let xs: Vec<f64> = (0..k).map(|_| rng.gaussian(5.0, 2.0)).collect();
    let mean: f64 = xs.iter().sum::<f64>() / k as f64;
    let yb: Vec<f64> = xs.iter().map(|&x| x - mean).collect();
    let mut local = LocalObs::new(k);
    local.push(mean + obs_offset - mean, loc_w / (obs_err * obs_err), &yb);
    (xs, local)
}

fn stats(vals: &[f64]) -> (f64, f64) {
    let k = vals.len();
    let mean: f64 = vals.iter().sum::<f64>() / k as f64;
    let var: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (k - 1) as f64;
    (mean, var.sqrt())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The posterior mean always lies between the prior mean and the
    /// observation (for a single directly observed scalar), and the spread
    /// never grows (rtpp < 1, no multiplicative inflation).
    #[test]
    fn posterior_mean_between_prior_and_obs(
        k in 5usize..60,
        seed in any::<u64>(),
        offset in -10.0f64..10.0,
        err in 0.3f64..5.0,
        loc_w in 0.05f64..1.0,
        rtpp in 0.0f64..1.0,
    ) {
        let (xs, local) = setup(k, seed, offset, err, loc_w);
        let (prior_mean, prior_sd) = stats(&xs);
        let obs_value = prior_mean + offset;
        let mut solver = BatchedEigen::new();
        let mut scratch = TransformScratch::new();
        let mut trans = MatrixS::zeros(k);
        prop_assert!(compute_transform(&local, rtpp, 1.0, &mut solver, &mut scratch, &mut trans));
        let mut vals = xs.clone();
        let mut pert = vec![0.0; k];
        apply_transform(&mut vals, &trans, &mut pert);
        let (post_mean, post_sd) = stats(&vals);

        let lo = prior_mean.min(obs_value) - 1e-6;
        let hi = prior_mean.max(obs_value) + 1e-6;
        prop_assert!(
            (lo..=hi).contains(&post_mean),
            "posterior mean {post_mean} outside [{lo}, {hi}]"
        );
        prop_assert!(
            post_sd <= prior_sd * (1.0 + 1e-6),
            "spread grew: {prior_sd} -> {post_sd}"
        );
        prop_assert!(post_sd.is_finite() && post_sd >= 0.0);
    }

    /// Zero innovation leaves the mean unchanged (transform still contracts
    /// the perturbations).
    #[test]
    fn zero_innovation_preserves_mean(
        k in 5usize..40,
        seed in any::<u64>(),
        err in 0.5f64..4.0,
    ) {
        let (xs, local) = setup(k, seed, 0.0, err, 1.0);
        let (prior_mean, _) = stats(&xs);
        let mut solver = BatchedEigen::new();
        let mut scratch = TransformScratch::new();
        let mut trans = MatrixS::zeros(k);
        compute_transform(&local, 0.5, 1.0, &mut solver, &mut scratch, &mut trans);
        let mut vals = xs.clone();
        let mut pert = vec![0.0; k];
        apply_transform(&mut vals, &trans, &mut pert);
        let (post_mean, _) = stats(&vals);
        prop_assert!(
            (post_mean - prior_mean).abs() < 1e-8 * prior_mean.abs().max(1.0),
            "mean moved without innovation: {prior_mean} -> {post_mean}"
        );
    }

    /// A tighter observation error pulls the mean closer to the observation.
    #[test]
    fn sharper_obs_pull_harder(
        k in 10usize..50,
        seed in any::<u64>(),
        offset in 1.0f64..8.0,
    ) {
        let run = |err: f64| -> f64 {
            let (xs, local) = setup(k, seed, offset, err, 1.0);
            let (prior_mean, _) = stats(&xs);
            let mut solver = BatchedEigen::new();
            let mut scratch = TransformScratch::new();
            let mut trans = MatrixS::zeros(k);
            compute_transform(&local, 0.0, 1.0, &mut solver, &mut scratch, &mut trans);
            let mut vals = xs.clone();
            let mut pert = vec![0.0; k];
            apply_transform(&mut vals, &trans, &mut pert);
            let (post_mean, _) = stats(&vals);
            (post_mean - (prior_mean + offset)).abs()
        };
        let sharp = run(0.3);
        let blunt = run(5.0);
        prop_assert!(
            sharp <= blunt + 1e-9,
            "sharp obs ({sharp}) further from target than blunt ({blunt})"
        );
    }

    /// RTPP interpolates the posterior spread monotonically between the
    /// no-relaxation spread and the prior spread.
    #[test]
    fn rtpp_monotone_in_spread(
        k in 10usize..40,
        seed in any::<u64>(),
    ) {
        let spread_at = |alpha: f64| -> f64 {
            let (xs, local) = setup(k, seed, 3.0, 1.0, 1.0);
            let mut solver = BatchedEigen::new();
            let mut scratch = TransformScratch::new();
            let mut trans = MatrixS::zeros(k);
            compute_transform(&local, alpha, 1.0, &mut solver, &mut scratch, &mut trans);
            let mut vals = xs.clone();
            let mut pert = vec![0.0; k];
            apply_transform(&mut vals, &trans, &mut pert);
            stats(&vals).1
        };
        let s0 = spread_at(0.0);
        let s_half = spread_at(0.5);
        let s1 = spread_at(1.0);
        prop_assert!(s0 <= s_half + 1e-9 && s_half <= s1 + 1e-9,
            "rtpp spread not monotone: {s0} {s_half} {s1}");
    }
}
