//! Bounded in-memory tile cache: snapshot-plus-delta catch-up.
//!
//! Live subscribers ride the delta stream, but a client that joins late —
//! or reconnects after an eviction — has no base to apply deltas to. The
//! cache keeps, per recent cycle, both the delta frames as broadcast and
//! the key-frame snapshot, under a hard byte budget:
//!
//! * a reconnector whose last-seen cycle is still cached replays only the
//!   missed delta sets ([`CatchUp::Deltas`]);
//! * anyone older than the cache window — or a fresh join — gets the
//!   newest key-frame snapshot ([`CatchUp::Snapshot`]) and rides deltas
//!   from there.
//!
//! Eviction is strictly oldest-cycle-first, and the newest cycle is never
//! evicted even if it alone exceeds the budget: serving *something* always
//! beats serving nothing, and memory here is bounded by one product.

use bytes::Bytes;
use std::collections::BTreeMap;

struct CachedCycle {
    deltas: Vec<Bytes>,
    keys: Vec<Bytes>,
    bytes: usize,
}

/// How a (re)joining client was brought up to date.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatchUp {
    /// Already current: nothing to send.
    Current,
    /// Replayed the delta sets of `cycles` missed cycles.
    Deltas { cycles: usize },
    /// Sent the key-frame snapshot of `cycle`.
    Snapshot { cycle: u64 },
}

impl std::fmt::Display for CatchUp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatchUp::Current => write!(f, "current"),
            CatchUp::Deltas { cycles } => write!(f, "delta-replay x{cycles}"),
            CatchUp::Snapshot { cycle } => write!(f, "snapshot@{cycle}"),
        }
    }
}

/// Bounded per-cycle tile store.
pub struct TileCache {
    max_bytes: usize,
    cycles: BTreeMap<u64, CachedCycle>,
    bytes: usize,
    evicted_cycles: usize,
}

impl TileCache {
    pub fn new(max_bytes: usize) -> Self {
        Self {
            max_bytes,
            cycles: BTreeMap::new(),
            bytes: 0,
            evicted_cycles: 0,
        }
    }

    /// Insert one cycle's frames, evicting oldest cycles past the budget.
    pub fn insert(&mut self, cycle: u64, deltas: Vec<Bytes>, keys: Vec<Bytes>) {
        let bytes = deltas.iter().map(Bytes::len).sum::<usize>()
            + keys.iter().map(Bytes::len).sum::<usize>();
        if let Some(old) = self.cycles.insert(
            cycle,
            CachedCycle {
                deltas,
                keys,
                bytes,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        while self.bytes > self.max_bytes && self.cycles.len() > 1 {
            let Some((&oldest, _)) = self.cycles.first_key_value() else {
                break;
            };
            if let Some(gone) = self.cycles.remove(&oldest) {
                self.bytes -= gone.bytes;
                self.evicted_cycles += 1;
            }
        }
    }

    /// Newest cached cycle.
    pub fn latest(&self) -> Option<u64> {
        self.cycles.keys().next_back().copied()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn cached_cycles(&self) -> usize {
        self.cycles.len()
    }

    pub fn evicted_cycles(&self) -> usize {
        self.evicted_cycles
    }

    /// Frames that bring a client whose last complete cycle is `last_seen`
    /// (`None` = fresh join) up to the newest cached cycle, plus the typed
    /// route taken. Empty cache ⇒ `Current` with no frames.
    pub fn catch_up(&self, last_seen: Option<u64>) -> (Vec<Bytes>, CatchUp) {
        let Some(latest) = self.latest() else {
            return (Vec::new(), CatchUp::Current);
        };
        if let Some(last) = last_seen {
            if last >= latest {
                return (Vec::new(), CatchUp::Current);
            }
            // Delta replay is only sound if every intermediate cycle is
            // still cached — a hole would leave the client on a wrong base
            // with valid-looking frames.
            let have_all = (last + 1..=latest).all(|c| self.cycles.contains_key(&c));
            if have_all {
                let mut frames = Vec::new();
                for c in last + 1..=latest {
                    if let Some(entry) = self.cycles.get(&c) {
                        frames.extend(entry.deltas.iter().cloned());
                    }
                }
                let cycles = usize::try_from(latest - last).unwrap_or(usize::MAX);
                return (frames, CatchUp::Deltas { cycles });
            }
        }
        let frames = self
            .cycles
            .get(&latest)
            .map(|e| e.keys.clone())
            .unwrap_or_default();
        (frames, CatchUp::Snapshot { cycle: latest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(len: usize, tag: u8) -> Bytes {
        Bytes::from(vec![tag; len])
    }

    fn insert_cycle(cache: &mut TileCache, cycle: u64, len: usize) {
        let tag = bda_num::cast::u8_of_index(usize::try_from(cycle).unwrap_or(0) % 256);
        cache.insert(cycle, vec![frame(len, tag)], vec![frame(len * 4, tag)]);
    }

    #[test]
    fn fresh_join_gets_latest_snapshot() {
        let mut c = TileCache::new(1 << 20);
        insert_cycle(&mut c, 0, 10);
        insert_cycle(&mut c, 1, 10);
        let (frames, route) = c.catch_up(None);
        assert_eq!(route, CatchUp::Snapshot { cycle: 1 });
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].len(), 40); // key frames, not deltas
        assert_eq!(frames[0][0], 1);
    }

    #[test]
    fn recent_reconnector_replays_deltas_only() {
        let mut c = TileCache::new(1 << 20);
        for cy in 0..5 {
            insert_cycle(&mut c, cy, 10);
        }
        let (frames, route) = c.catch_up(Some(2));
        assert_eq!(route, CatchUp::Deltas { cycles: 2 });
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0][0], 3);
        assert_eq!(frames[1][0], 4);
        assert!(frames.iter().all(|f| f.len() == 10));
    }

    #[test]
    fn current_client_gets_nothing() {
        let mut c = TileCache::new(1 << 20);
        insert_cycle(&mut c, 7, 10);
        assert_eq!(c.catch_up(Some(7)), (Vec::new(), CatchUp::Current));
        assert_eq!(c.catch_up(Some(9)), (Vec::new(), CatchUp::Current));
        let empty = TileCache::new(1 << 20);
        assert_eq!(empty.catch_up(None), (Vec::new(), CatchUp::Current));
    }

    #[test]
    fn stale_reconnector_falls_back_to_snapshot() {
        let mut c = TileCache::new(200);
        for cy in 0..20 {
            insert_cycle(&mut c, cy, 10); // 50 bytes/cycle: window of ~4
        }
        assert!(c.evicted_cycles() > 0);
        let (frames, route) = c.catch_up(Some(0));
        assert_eq!(route, CatchUp::Snapshot { cycle: 19 });
        assert!(!frames.is_empty());
    }

    #[test]
    fn budget_is_enforced_but_newest_survives() {
        let mut c = TileCache::new(100);
        insert_cycle(&mut c, 0, 10);
        insert_cycle(&mut c, 1, 1000); // alone over budget
        assert_eq!(c.cached_cycles(), 1);
        assert_eq!(c.latest(), Some(1));
        assert!(c.bytes() > 100, "newest kept despite budget");
        insert_cycle(&mut c, 2, 10);
        assert_eq!(c.latest(), Some(2));
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn reinserting_a_cycle_replaces_without_leaking_budget() {
        let mut c = TileCache::new(1 << 20);
        insert_cycle(&mut c, 3, 10);
        let before = c.bytes();
        insert_cycle(&mut c, 3, 10);
        assert_eq!(c.bytes(), before);
        assert_eq!(c.cached_cycles(), 1);
    }
}
