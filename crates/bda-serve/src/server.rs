//! The nowcast broadcast server.
//!
//! One [`NowcastServer`] sits at the egress end of the supervised 30-second
//! cycle: the forecast thread calls [`NowcastServer::publish`] once per
//! cycle, and every subscribed TCP client receives the quantized tile
//! stream. The design invariant, mirrored from the ingest side's
//! supervisor, is that **no client behaviour can stall a cycle**:
//!
//! * every client socket is nonblocking; the publish path never issues a
//!   blocking syscall;
//! * each client has a bounded frame queue — overflow is a typed
//!   [`EvictReason::SlowReader`] eviction, not memory growth;
//! * clients that accept bytes but never acknowledge them (a reader that
//!   drains the kernel buffer into a stuck pipeline — invisible to
//!   queue-overflow detection on loopback, where kernel buffers are
//!   generous) hit the [`EvictReason::AckLag`] backstop;
//! * the acceptor runs on its own thread with per-connection nonblocking
//!   handshakes, so a client that connects and sends nothing cannot block
//!   later joiners.
//!
//! Joins and rejoins are served snapshot-plus-delta from the
//! [`TileCache`]: a reconnector inside the cache window replays only the
//! deltas it missed; anyone else gets the newest key-frame snapshot. Every
//! client ends in exactly one [`ClientOutcome`] row of the final
//! [`ServeReport`] — the egress analogue of the supervisor's cycle table.

use crate::cache::{CatchUp, TileCache};
use crate::tile::{TileConfig, TileError, Tiler};
use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client → server hello: magic + the last cycle the client holds
/// (`u64::MAX` = fresh join).
pub const HELLO_MAGIC: &[u8; 4] = b"BDAH";
/// Hello length in bytes.
pub const HELLO_BYTES: usize = 4 + 8;
/// `last_cycle` wire value meaning "no state at all".
pub const FRESH_JOIN: u64 = u64::MAX;
/// Server → client message header: sequence number + frame length.
pub const MSG_HEADER_BYTES: usize = 8 + 4;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    pub tile: TileConfig,
    /// Per-client bounded send queue, in frames. Overflow evicts.
    pub queue_frames: usize,
    /// Maximum delivered-but-unacknowledged messages before the ack-lag
    /// backstop evicts. Must exceed one cycle's frame count plus a
    /// round-trip, or healthy clients get culled.
    pub ack_lag: u64,
    /// Handshake completion deadline; a connector silent past this is
    /// dropped without ever reaching the subscriber list.
    pub handshake_timeout: Duration,
    /// Tile cache budget in bytes (snapshot-plus-delta catch-up window).
    pub cache_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            tile: TileConfig::default(),
            queue_frames: 512,
            ack_lag: 64,
            handshake_timeout: Duration::from_millis(250),
            cache_bytes: 4 << 20,
        }
    }
}

/// Why a client was removed from the subscriber list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictReason {
    /// Send queue overflowed: the socket stopped draining long enough for
    /// `queued` frames to pile up server-side.
    SlowReader { queued: usize },
    /// Accepted bytes but fell more than the ack-lag budget behind in
    /// acknowledgements.
    AckLag { delivered: u64, acked: Option<u64> },
    /// The peer closed or reset the connection.
    Disconnected,
    /// A socket error other than disconnect.
    SocketError { kind: ErrorKind },
}

impl std::fmt::Display for EvictReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvictReason::SlowReader { queued } => write!(f, "slow-reader ({queued} queued)"),
            EvictReason::AckLag { delivered, acked } => match acked {
                Some(a) => write!(f, "ack-lag (delivered {delivered}, acked {a})"),
                None => write!(f, "ack-lag (delivered {delivered}, never acked)"),
            },
            EvictReason::Disconnected => write!(f, "disconnected"),
            EvictReason::SocketError { kind } => write!(f, "socket error: {kind:?}"),
        }
    }
}

/// Final per-client accounting row.
#[derive(Clone, Debug)]
pub struct ClientOutcome {
    pub id: usize,
    /// Publish cycle at which the client was admitted.
    pub joined_cycle: u64,
    /// How it was brought up to date at admission.
    pub catch_up: CatchUp,
    /// Messages enqueued / fully written to the socket.
    pub enqueued: u64,
    pub delivered: u64,
    /// Highest message sequence number the client acknowledged.
    pub acked: Option<u64>,
    /// `None` = still connected at shutdown.
    pub evicted: Option<EvictReason>,
}

/// One cycle's publish accounting.
#[derive(Clone, Debug)]
pub struct PublishReport {
    pub cycle: u64,
    /// Tile frames in the delta stream.
    pub frames: usize,
    /// Bytes of the delta stream (before per-client fan-out).
    pub delta_bytes: usize,
    /// Live subscribers after this publish.
    pub clients: usize,
    /// Clients admitted this cycle, by catch-up route.
    pub joined_snapshot: usize,
    pub joined_delta: usize,
    pub joined_current: usize,
    /// Clients evicted during this publish.
    pub evicted: usize,
    /// Publish wall time (encode + fan-out + one pump), milliseconds.
    pub elapsed_ms: f64,
}

impl PublishReport {
    /// One-line note for the supervisor's egress column.
    pub fn note(&self) -> String {
        let joined = self.joined_snapshot + self.joined_delta + self.joined_current;
        format!(
            "{} tiles to {} clients (+{joined} -{}) {:.1}ms",
            self.frames, self.clients, self.evicted, self.elapsed_ms
        )
    }
}

/// Final server report: every client that ever completed a handshake has
/// exactly one row.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    pub outcomes: Vec<ClientOutcome>,
    /// Connections that never produced a valid hello in time.
    pub handshake_failures: usize,
    pub cycles_published: u64,
    pub cache_evicted_cycles: usize,
}

impl ServeReport {
    pub fn evicted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.evicted.is_some()).count()
    }

    pub fn alive(&self) -> usize {
        self.outcomes.len() - self.evicted()
    }

    fn count_by(&self, f: impl Fn(&EvictReason) -> bool) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.evicted.as_ref().is_some_and(&f))
            .count()
    }

    /// Aggregate counts, for the 1000-client case where the full table is
    /// too long to read.
    pub fn summary(&self) -> String {
        format!(
            "{} clients: {} alive, {} slow-reader, {} ack-lag, {} disconnected, \
             {} socket-error; {} handshake failures; {} cycles",
            self.outcomes.len(),
            self.alive(),
            self.count_by(|e| matches!(e, EvictReason::SlowReader { .. })),
            self.count_by(|e| matches!(e, EvictReason::AckLag { .. })),
            self.count_by(|e| matches!(e, EvictReason::Disconnected)),
            self.count_by(|e| matches!(e, EvictReason::SocketError { .. })),
            self.handshake_failures,
            self.cycles_published,
        )
    }

    /// Full per-client outcome table.
    pub fn table(&self) -> String {
        let mut out =
            String::from("client  joined  catch-up          enq  deliv  acked  outcome\n");
        for o in &self.outcomes {
            let acked = o.acked.map(|a| a.to_string()).unwrap_or_else(|| "-".into());
            let outcome = o
                .evicted
                .as_ref()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "connected".into());
            out.push_str(&format!(
                "{:6}  {:6}  {:<16}  {:4}  {:5}  {:>5}  {}\n",
                o.id,
                o.joined_cycle,
                o.catch_up.to_string(),
                o.enqueued,
                o.delivered,
                acked,
                outcome,
            ));
        }
        out
    }
}

/// A handshake-complete connection waiting for admission at the next
/// publish.
struct Joined {
    stream: TcpStream,
    last_cycle: Option<u64>,
}

/// Acceptor ↔ publisher shared state.
struct Shared {
    pending: Mutex<Vec<Joined>>,
    stop: AtomicBool,
    handshake_failures: AtomicUsize,
}

struct ClientConn {
    id: usize,
    stream: TcpStream,
    queue: VecDeque<Bytes>,
    /// Bytes of the front message already written.
    front_written: usize,
    next_seq: u64,
    delivered: u64,
    acked: Option<u64>,
    ackbuf: Vec<u8>,
    joined_cycle: u64,
    catch_up: CatchUp,
    evict: Option<EvictReason>,
}

impl ClientConn {
    fn enqueue(&mut self, frame: &Bytes, queue_frames: usize) {
        if self.evict.is_some() {
            return;
        }
        if self.queue.len() >= queue_frames {
            self.evict = Some(EvictReason::SlowReader {
                queued: self.queue.len(),
            });
            return;
        }
        let mut msg = BytesMut::with_capacity(MSG_HEADER_BYTES + frame.len());
        msg.put_u64(self.next_seq);
        msg.put_u32(bda_num::cast::u32_of_index(frame.len()));
        msg.put_slice(frame);
        self.queue.push_back(msg.freeze());
        self.next_seq += 1;
    }

    /// Drain as much of the queue as the socket accepts and fold in any
    /// acknowledgements. Strictly nonblocking.
    fn pump(&mut self, ack_lag: u64) {
        if self.evict.is_some() {
            return;
        }
        while let Some(front) = self.queue.front() {
            match self.stream.write(&front[self.front_written..]) {
                Ok(0) => {
                    self.evict = Some(EvictReason::Disconnected);
                    return;
                }
                Ok(n) => {
                    self.front_written += n;
                    if self.front_written == front.len() {
                        self.queue.pop_front();
                        self.front_written = 0;
                        self.delivered += 1;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::BrokenPipe
                            | ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionAborted
                    ) =>
                {
                    self.evict = Some(EvictReason::Disconnected);
                    return;
                }
                Err(e) => {
                    self.evict = Some(EvictReason::SocketError { kind: e.kind() });
                    return;
                }
            }
        }
        let mut buf = [0u8; 256];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.evict = Some(EvictReason::Disconnected);
                    return;
                }
                Ok(n) => {
                    self.ackbuf.extend_from_slice(&buf[..n]);
                    while self.ackbuf.len() >= 8 {
                        let rest = self.ackbuf.split_off(8);
                        let mut word = [0u8; 8];
                        word.copy_from_slice(&self.ackbuf);
                        self.ackbuf = rest;
                        let seq = u64::from_be_bytes(word);
                        // Hostile acks for messages never sent are capped
                        // at what was actually delivered.
                        let seq = seq.min(self.delivered.saturating_sub(1));
                        self.acked = Some(self.acked.map_or(seq, |a| a.max(seq)));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::BrokenPipe
                            | ErrorKind::ConnectionReset
                            | ErrorKind::ConnectionAborted
                    ) =>
                {
                    self.evict = Some(EvictReason::Disconnected);
                    return;
                }
                Err(e) => {
                    self.evict = Some(EvictReason::SocketError { kind: e.kind() });
                    return;
                }
            }
        }
        let acked_count = self.acked.map_or(0, |a| a + 1);
        if self.delivered.saturating_sub(acked_count) > ack_lag {
            self.evict = Some(EvictReason::AckLag {
                delivered: self.delivered,
                acked: self.acked,
            });
        }
    }

    fn outcome(&self) -> ClientOutcome {
        ClientOutcome {
            id: self.id,
            joined_cycle: self.joined_cycle,
            catch_up: self.catch_up.clone(),
            enqueued: self.next_seq,
            delivered: self.delivered,
            acked: self.acked,
            evicted: self.evict,
        }
    }
}

/// The broadcast server. See the module docs for the design invariants.
pub struct NowcastServer {
    cfg: ServeConfig,
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    tiler: Tiler,
    cache: TileCache,
    clients: Vec<ClientConn>,
    finished: Vec<ClientOutcome>,
    next_id: usize,
    cycles_published: u64,
}

impl NowcastServer {
    /// Bind to a loopback ephemeral port and start the acceptor thread.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            pending: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            handshake_failures: AtomicUsize::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            let timeout = cfg.handshake_timeout;
            std::thread::Builder::new()
                .name("bda-serve-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared, timeout))?
        };
        Ok(Self {
            tiler: Tiler::new(cfg.tile),
            cache: TileCache::new(cfg.cache_bytes),
            cfg,
            addr,
            shared,
            acceptor: Some(acceptor),
            clients: Vec::new(),
            finished: Vec::new(),
            next_id: 0,
            cycles_published: 0,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live subscribers (handshaken clients admitted and not yet evicted).
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// True when every live client has an empty queue and has acknowledged
    /// everything delivered to it — the published product is confirmed
    /// received end-to-end, not merely parked in kernel buffers.
    pub fn fully_acked(&self) -> bool {
        self.clients.iter().all(|c| {
            c.queue.is_empty()
                && c.delivered == c.next_seq
                && c.acked.map_or(0, |a| a + 1) == c.delivered
        })
    }

    /// Publish one cycle's reflectivity product to every subscriber.
    ///
    /// Runs entirely nonblocking: encode on the rayon pool, bounded
    /// enqueue per client, one parallel pump. A stalled client costs one
    /// eviction record, never wall time.
    pub fn publish(
        &mut self,
        cycle: u64,
        field: &[f64],
        w: usize,
        h: usize,
        stale: bool,
    ) -> Result<PublishReport, TileError> {
        let t0 = Instant::now(); // bda-check: allow(wallclock) — publish-latency telemetry
        let tiles = self.tiler.encode_cycle(cycle, field, w, h, stale)?;
        let frames = tiles.deltas.len();
        let delta_bytes = tiles.delta_bytes();
        self.cache
            .insert(cycle, tiles.deltas.clone(), tiles.keys.clone());

        // Admit pending joiners with snapshot-plus-delta catch-up (which,
        // after the insert above, already covers this cycle).
        let pending = std::mem::take(&mut *self.shared.pending.lock());
        let (mut joined_snapshot, mut joined_delta, mut joined_current) = (0, 0, 0);
        for j in pending {
            let (catch_frames, route) = self.cache.catch_up(j.last_cycle);
            match route {
                CatchUp::Snapshot { .. } => joined_snapshot += 1,
                CatchUp::Deltas { .. } => joined_delta += 1,
                CatchUp::Current => joined_current += 1,
            }
            let mut conn = ClientConn {
                id: self.next_id,
                stream: j.stream,
                queue: VecDeque::new(),
                front_written: 0,
                next_seq: 0,
                delivered: 0,
                acked: None,
                ackbuf: Vec::new(),
                joined_cycle: cycle,
                catch_up: route,
                evict: None,
            };
            self.next_id += 1;
            for f in &catch_frames {
                conn.enqueue(f, self.cfg.queue_frames);
            }
            self.clients.push(conn);
        }

        // Fan the delta stream out to everyone admitted before this cycle.
        for conn in &mut self.clients {
            if conn.joined_cycle == cycle {
                continue; // catch-up already covered this cycle
            }
            for f in &tiles.deltas {
                conn.enqueue(f, self.cfg.queue_frames);
            }
        }

        // One parallel pump: every socket drained as far as it will go,
        // acks folded in, lag checked — all nonblocking.
        let ack_lag = self.cfg.ack_lag;
        self.clients.par_iter_mut().for_each(|c| c.pump(ack_lag));

        let evicted = self.sweep();
        self.cycles_published += 1;
        Ok(PublishReport {
            cycle,
            frames,
            delta_bytes,
            clients: self.clients.len(),
            joined_snapshot,
            joined_delta,
            joined_current,
            evicted,
            elapsed_ms: t0.elapsed().as_secs_f64() * 1e3, // bda-check: allow(wallclock) — publish-latency telemetry
        })
    }

    /// One extra nonblocking drain of every client queue (between cycles,
    /// and at shutdown). Returns the number of still-queued frames.
    pub fn pump_all(&mut self) -> usize {
        let ack_lag = self.cfg.ack_lag;
        self.clients.par_iter_mut().for_each(|c| c.pump(ack_lag));
        self.sweep();
        self.clients.iter().map(|c| c.queue.len()).sum()
    }

    /// Move evicted clients to the outcome list, dropping their sockets.
    fn sweep(&mut self) -> usize {
        let before = self.clients.len();
        let mut kept = Vec::with_capacity(before);
        for c in self.clients.drain(..) {
            if c.evict.is_some() {
                self.finished.push(c.outcome());
            } else {
                kept.push(c);
            }
        }
        self.clients = kept;
        before - self.clients.len()
    }

    /// Stop accepting, drain what the sockets will take within
    /// `drain_budget`, and produce the final per-client outcome table.
    pub fn shutdown(mut self, drain_budget: Duration) -> ServeReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + drain_budget; // bda-check: allow(wallclock) — shutdown drain budget
        loop {
            let queued = self.pump_all();
            if queued == 0 {
                break;
            }
            // bda-check: allow(wallclock) — shutdown drain budget
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut outcomes = std::mem::take(&mut self.finished);
        for c in &self.clients {
            outcomes.push(c.outcome());
        }
        outcomes.sort_by_key(|o| o.id);
        ServeReport {
            outcomes,
            handshake_failures: self.shared.handshake_failures.load(Ordering::SeqCst),
            cycles_published: self.cycles_published,
            cache_evicted_cycles: self.cache.evicted_cycles(),
        }
    }
}

impl Drop for NowcastServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Acceptor thread body: nonblocking accepts plus per-connection
/// nonblocking handshakes, so one silent connector never delays another.
fn accept_loop(listener: &TcpListener, shared: &Shared, timeout: Duration) {
    struct Inflight {
        stream: Option<TcpStream>,
        buf: [u8; HELLO_BYTES],
        got: usize,
        since: Instant,
    }
    /// One nonblocking handshake step. `Some(keep)` resolves the
    /// connection; `None` leaves it in flight.
    fn step(c: &mut Inflight, done: &mut Vec<Joined>, shared: &Shared) -> Option<()> {
        let stream = c.stream.as_mut()?;
        loop {
            match stream.read(&mut c.buf[c.got..]) {
                Ok(0) => {
                    shared.handshake_failures.fetch_add(1, Ordering::SeqCst);
                    c.stream = None;
                    return Some(());
                }
                Ok(n) => {
                    c.got += n;
                    if c.got == HELLO_BYTES {
                        if &c.buf[..4] == HELLO_MAGIC {
                            let mut word = [0u8; 8];
                            word.copy_from_slice(&c.buf[4..]);
                            let last = u64::from_be_bytes(word);
                            if let Some(stream) = c.stream.take() {
                                done.push(Joined {
                                    stream,
                                    last_cycle: (last != FRESH_JOIN).then_some(last),
                                });
                            }
                        } else {
                            shared.handshake_failures.fetch_add(1, Ordering::SeqCst);
                            c.stream = None;
                        }
                        return Some(());
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return None,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    shared.handshake_failures.fetch_add(1, Ordering::SeqCst);
                    c.stream = None;
                    return Some(());
                }
            }
        }
    }

    let mut inflight: Vec<Inflight> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        let mut progressed = false;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        shared.handshake_failures.fetch_add(1, Ordering::SeqCst);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    inflight.push(Inflight {
                        stream: Some(stream),
                        buf: [0; HELLO_BYTES],
                        got: 0,
                        since: Instant::now(), // bda-check: allow(wallclock) — handshake deadline
                    });
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        let mut done = Vec::new();
        for c in &mut inflight {
            if step(c, &mut done, shared).is_none() && c.since.elapsed() >= timeout
            // bda-check: allow(wallclock) — handshake deadline
            {
                shared.handshake_failures.fetch_add(1, Ordering::SeqCst);
                c.stream = None;
            }
        }
        inflight.retain(|c| c.stream.is_some());
        if !done.is_empty() {
            progressed = true;
            shared.pending.lock().extend(done);
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}
