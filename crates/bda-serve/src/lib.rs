//! bda-serve: fault-tolerant nowcast egress.
//!
//! The 30-second BDA loop is only useful if its products reach consumers
//! *inside* the cycle that produced them — a forecast delivered a cycle
//! late is a forecast of the past. This crate is the egress layer: it
//! quantizes each refreshed reflectivity field into a zoom pyramid of
//! compact dBZ tiles ([`tile`]), delta-encodes them against the previous
//! cycle, and broadcasts them over real TCP to an arbitrary, partially
//! hostile subscriber population ([`server`]) — under one invariant:
//!
//! > **No client can stall a cycle.** Slow readers, never-ACK clients,
//! > half-open sockets, and reconnect storms cost *that client* its
//! > connection (with a typed [`EvictReason`](server::EvictReason)), never
//! > the broadcast deadline.
//!
//! Late joiners and evicted reconnectors are brought current from a
//! bounded in-memory cache ([`cache`]) via snapshot-plus-delta catch-up.
//! The adversarial counterpart lives in [`storm`]: a seeded swarm of
//! verifying clients that doubles as the end-to-end integrity check.
//!
//! Wire integrity reuses the workspace's shared machinery: FNV-1a frame
//! trailers from [`bda_io::frame`], sequence classification from
//! [`bda_jitdt::sequence`], and fault schedules from
//! [`bda_workflow::fault`] (`slowclient:N@C`, `connstorm:N@C`).
//!
//! Tile encoding fans out across the deterministic worker pool, so the
//! broadcast byte stream is bit-identical for any `BDA_THREADS` — the
//! egress layer preserves the workspace's reproducibility contract.

pub mod cache;
pub mod server;
pub mod storm;
pub mod tile;

pub use cache::{CatchUp, TileCache};
pub use server::{
    ClientOutcome, EvictReason, NowcastServer, PublishReport, ServeConfig, ServeReport,
};
pub use storm::{StormSwarm, SwarmConfig, SwarmReport};
pub use tile::{
    decode_tile, stream_digest, synthetic_reflectivity, TileAssembler, TileConfig, TileError,
    TileFrame, Tiler,
};
