//! Deterministic adversarial client swarm.
//!
//! The server's fault tolerance claims mean nothing without hostile load,
//! so this module is the load: a single thread driving hundreds to
//! thousands of nonblocking subscriber sockets against a
//! [`NowcastServer`](crate::server::NowcastServer), with a seeded mix of
//! well-behaved and hostile behaviours:
//!
//! * **slow readers** — stop draining their socket (kernel buffer fills,
//!   then the server's queue; must end as a `SlowReader` eviction);
//! * **never-ACK** — read and parse everything but acknowledge nothing
//!   (must end as an `AckLag` eviction);
//! * **mid-stream disconnects** — close abruptly partway through a frame;
//! * **reconnect / connection storms** — bursts of fresh joins and
//!   rejoins with a stale `last_cycle`, exercising snapshot-plus-delta
//!   catch-up under load.
//!
//! Which clients are hostile is a pure function of the seed; *when*
//! behaviours trigger comes from the shared
//! [`FaultPlan`](bda_workflow::fault::FaultPlan) (`slowclient:N@C`,
//! `connstorm:N@C`), so one spec string composes ingest and egress faults
//! into a single reproducible campaign.
//!
//! Every healthy client verifies each frame end-to-end: checksum via
//! [`decode_tile`], sequencing via the shared
//! [`SeqTracker`](bda_jitdt::sequence::SeqTracker), and delta reassembly
//! via [`TileAssembler`] — so the swarm report is also an integrity check
//! of the whole egress path.

use crate::server::{FRESH_JOIN, HELLO_BYTES, HELLO_MAGIC, MSG_HEADER_BYTES};
use crate::tile::{decode_tile, TileAssembler};
use bda_jitdt::sequence::{SeqClass, SeqTracker};
use bda_num::rng::SplitMix64;
use bda_workflow::backoff::Backoff;
use bda_workflow::fault::FaultPlan;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::Duration;

/// Swarm sizing and hostility mix. Fractions are applied deterministically
/// from the seed at spawn time.
#[derive(Clone, Copy, Debug)]
pub struct SwarmConfig {
    /// Initial subscriber count.
    pub clients: usize,
    pub seed: u64,
    /// Fraction of initial clients that never acknowledge.
    pub never_ack: f64,
    /// Fraction that disconnect abruptly mid-stream (after a seeded number
    /// of bytes, deliberately not frame-aligned).
    pub mid_stream_disconnect: f64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        Self {
            clients: 100,
            seed: 0x5eed,
            never_ack: 0.02,
            mid_stream_disconnect: 0.02,
        }
    }
}

/// What one swarm client observed before it stopped.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Frames received, decoded, and checksum-verified.
    pub frames: usize,
    /// Tile frames that failed to decode (any nonzero value means wire
    /// corruption reached a client).
    pub decode_errors: usize,
    /// Duplicate / out-of-order message sequence numbers observed.
    pub seq_duplicates: usize,
    pub seq_out_of_order: usize,
    /// Sequence numbers skipped (catch-up rejoins legitimately reset).
    pub seq_gaps: u64,
    /// Delta frames that arrived with no base established.
    pub orphan_deltas: usize,
    pub hostile: bool,
}

/// Aggregated swarm-side report.
#[derive(Clone, Debug, Default)]
pub struct SwarmReport {
    pub clients: Vec<ClientStats>,
    /// Connections that never completed (server backlog under storm).
    pub connect_failures: usize,
}

impl SwarmReport {
    pub fn total_frames(&self) -> usize {
        self.clients.iter().map(|c| c.frames).sum()
    }

    pub fn decode_errors(&self) -> usize {
        self.clients.iter().map(|c| c.decode_errors).sum()
    }

    pub fn hostile_clients(&self) -> usize {
        self.clients.iter().filter(|c| c.hostile).count()
    }

    pub fn summary(&self) -> String {
        format!(
            "{} clients ({} hostile): {} frames verified, {} decode errors, \
             {} dup / {} ooo / {} gap seqs, {} orphan deltas, {} connect failures",
            self.clients.len(),
            self.hostile_clients(),
            self.total_frames(),
            self.decode_errors(),
            self.clients.iter().map(|c| c.seq_duplicates).sum::<usize>(),
            self.clients
                .iter()
                .map(|c| c.seq_out_of_order)
                .sum::<usize>(),
            self.clients.iter().map(|c| c.seq_gaps).sum::<u64>(),
            self.clients.iter().map(|c| c.orphan_deltas).sum::<usize>(),
            self.connect_failures,
        )
    }
}

enum Behaviour {
    Healthy,
    NeverAck,
    /// Stop reading at the given cycle (set by `slowclient:N@C`).
    SlowFrom(u64),
    /// Shut the socket down after this many received bytes.
    DisconnectAfter(usize),
}

struct SwarmClient {
    stream: Option<TcpStream>,
    behaviour: Behaviour,
    tracker: SeqTracker,
    assembler: TileAssembler,
    stats: ClientStats,
    /// Unparsed wire bytes (partial messages).
    buf: Vec<u8>,
    bytes_read: usize,
    acked: Option<u64>,
}

impl SwarmClient {
    fn connect(addr: SocketAddr, last_cycle: Option<u64>) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut hello = [0u8; HELLO_BYTES];
        hello[..4].copy_from_slice(HELLO_MAGIC);
        hello[4..].copy_from_slice(&last_cycle.unwrap_or(FRESH_JOIN).to_be_bytes());
        stream.write_all(&hello)?;
        stream.set_nonblocking(true)?;
        Ok(Self {
            stream: Some(stream),
            behaviour: Behaviour::Healthy,
            tracker: SeqTracker::new(),
            assembler: TileAssembler::new(),
            stats: ClientStats::default(),
            buf: Vec::new(),
            bytes_read: 0,
            acked: None,
        })
    }

    /// One nonblocking poll round: read, parse complete messages, verify,
    /// acknowledge.
    fn poll(&mut self, current_cycle: u64) {
        if let Behaviour::SlowFrom(c) = self.behaviour {
            if current_cycle >= c {
                return; // playing dead: stop draining entirely
            }
        }
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => {
                    self.stream = None;
                    return;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.bytes_read += n;
                    if let Behaviour::DisconnectAfter(limit) = self.behaviour {
                        if self.bytes_read >= limit {
                            // Abrupt mid-stream close, deliberately not
                            // frame-aligned.
                            self.stream = None;
                            self.stats.hostile = true;
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.stream = None;
                    return;
                }
            }
        }
        self.parse_messages();
        self.send_ack();
    }

    fn parse_messages(&mut self) {
        let mut off = 0usize;
        let mut newest = None;
        while self.buf.len() - off >= MSG_HEADER_BYTES {
            let head = &self.buf[off..off + MSG_HEADER_BYTES];
            let mut seq_word = [0u8; 8];
            seq_word.copy_from_slice(&head[..8]);
            let seq = u64::from_be_bytes(seq_word);
            let mut len_word = [0u8; 4];
            len_word.copy_from_slice(&head[8..]);
            let len = bda_num::cast::index_of_u32(u32::from_be_bytes(len_word));
            if self.buf.len() - off - MSG_HEADER_BYTES < len {
                break; // partial frame: wait for more bytes
            }
            let frame = &self.buf[off + MSG_HEADER_BYTES..off + MSG_HEADER_BYTES + len];
            match self.tracker.classify(seq) {
                SeqClass::Fresh { gap } => self.stats.seq_gaps += gap,
                SeqClass::Duplicate { .. } => self.stats.seq_duplicates += 1,
                SeqClass::OutOfOrder { .. } => self.stats.seq_out_of_order += 1,
            }
            match decode_tile(frame) {
                Ok(tile) => {
                    self.stats.frames += 1;
                    if self.assembler.apply(&tile).is_err() {
                        self.stats.orphan_deltas += 1;
                    }
                }
                Err(_) => self.stats.decode_errors += 1,
            }
            newest = Some(seq);
            off += MSG_HEADER_BYTES + len;
        }
        if off > 0 {
            self.buf.drain(..off);
        }
        if let Some(seq) = newest {
            self.acked = Some(self.acked.map_or(seq, |a| a.max(seq)));
        }
    }

    fn send_ack(&mut self) {
        if matches!(self.behaviour, Behaviour::NeverAck) {
            return;
        }
        let (Some(stream), Some(seq)) = (self.stream.as_mut(), self.acked) else {
            return;
        };
        // Nonblocking single-shot ack: losing one is fine, the next poll
        // re-acks the newest sequence number.
        match stream.write(&seq.to_be_bytes()) {
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => self.stream = None,
        }
    }
}

/// Control messages from the campaign driver to the swarm thread.
pub enum SwarmEvent {
    /// A cycle was published; apply this cycle's scheduled egress faults.
    Cycle(u64),
    /// Drain what remains, then report.
    Stop,
}

/// Handle to a running swarm thread.
pub struct StormSwarm {
    tx: Sender<SwarmEvent>,
    handle: std::thread::JoinHandle<SwarmReport>,
}

impl StormSwarm {
    /// Spawn the swarm against `addr`. Hostile roles are assigned from
    /// `cfg.seed`; per-cycle behaviours come from `plan`.
    pub fn launch(addr: SocketAddr, cfg: SwarmConfig, plan: FaultPlan) -> Self {
        let (tx, rx) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("bda-serve-swarm".into())
            .spawn(move || swarm_loop(addr, cfg, &plan, &rx))
            .unwrap_or_else(|e| panic!("swarm thread spawn failed: {e}"));
        Self { tx, handle }
    }

    /// Notify the swarm that `cycle` was published (applies scheduled
    /// faults for that cycle).
    pub fn on_cycle(&self, cycle: u64) {
        let _ = self.tx.send(SwarmEvent::Cycle(cycle));
    }

    /// A cloneable handle for notifying cycles from another thread (e.g.
    /// the supervisor's forecast thread, where the egress stage runs).
    pub fn cycle_sender(&self) -> Sender<SwarmEvent> {
        self.tx.clone()
    }

    /// Stop the swarm and collect its report.
    pub fn finish(self) -> SwarmReport {
        let _ = self.tx.send(SwarmEvent::Stop);
        self.handle
            .join()
            .unwrap_or_else(|_| panic!("swarm thread panicked"))
    }
}

fn connect_with_retry(
    addr: SocketAddr,
    last_cycle: Option<u64>,
    failures: &mut usize,
) -> Option<SwarmClient> {
    // The listener backlog is finite; under a connection storm a connect
    // can be refused. Bounded retry with a short pause absorbs it — the
    // shared policy with cap == base keeps the historical flat 2 ms pause.
    let mut backoff =
        Backoff::new(Duration::from_millis(2), Duration::from_millis(2)).with_max_attempts(20);
    loop {
        match SwarmClient::connect(addr, last_cycle) {
            Ok(c) => return Some(c),
            Err(_) => match backoff.next_delay() {
                Some(delay) => std::thread::sleep(delay),
                None => break,
            },
        }
    }
    *failures += 1;
    None
}

fn swarm_loop(
    addr: SocketAddr,
    cfg: SwarmConfig,
    plan: &FaultPlan,
    rx: &Receiver<SwarmEvent>,
) -> SwarmReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut clients: Vec<SwarmClient> = Vec::with_capacity(cfg.clients);
    let mut report = SwarmReport::default();

    for _ in 0..cfg.clients {
        let Some(mut c) = connect_with_retry(addr, None, &mut report.connect_failures) else {
            continue;
        };
        // Seeded role assignment: the same seed always elects the same
        // hostile cohort.
        let roll = rng.next_uniform();
        if roll < cfg.never_ack {
            c.behaviour = Behaviour::NeverAck;
            c.stats.hostile = true;
        } else if roll < cfg.never_ack + cfg.mid_stream_disconnect {
            let after = 64 + rng.next_index(4096);
            c.behaviour = Behaviour::DisconnectAfter(after);
            c.stats.hostile = true;
        }
        clients.push(c);
    }

    let mut current_cycle = 0u64;
    let mut stopping = false;
    let mut drain_rounds = 0usize;
    loop {
        loop {
            match rx.try_recv() {
                Ok(SwarmEvent::Cycle(cycle)) => {
                    current_cycle = cycle;
                    let cycle_idx = usize::try_from(cycle).unwrap_or(usize::MAX);
                    // slowclient:N@C — the first N still-healthy clients
                    // stop draining from this cycle on (deterministic:
                    // list order is join order).
                    let mut to_slow = plan.slow_clients_at(cycle_idx);
                    for c in clients.iter_mut() {
                        if to_slow == 0 {
                            break;
                        }
                        if matches!(c.behaviour, Behaviour::Healthy) && c.stream.is_some() {
                            c.behaviour = Behaviour::SlowFrom(cycle);
                            c.stats.hostile = true;
                            to_slow -= 1;
                        }
                    }
                    // connstorm:N@C — burst joins; odd ones rejoin with a
                    // stale last_cycle to force catch-up, even ones are
                    // fresh.
                    for k in 0..plan.conn_storm_at(cycle_idx) {
                        let last = if k % 2 == 1 && cycle > 0 {
                            Some(u64_min(rng.next_index(cycle_idx.max(1)), cycle))
                        } else {
                            None
                        };
                        if let Some(c) =
                            connect_with_retry(addr, last, &mut report.connect_failures)
                        {
                            clients.push(c);
                        }
                    }
                }
                Ok(SwarmEvent::Stop) => stopping = true,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => stopping = true,
            }
            if stopping {
                break;
            }
        }
        for c in clients.iter_mut() {
            c.poll(current_cycle);
        }
        if stopping {
            drain_rounds += 1;
            // A few extra rounds pick up frames still in flight, then the
            // swarm reports what it saw.
            if drain_rounds > 25 {
                break;
            }
        }
        std::thread::sleep(Duration::from_micros(if stopping { 2000 } else { 300 }));
    }
    report.clients = clients.into_iter().map(|c| c.stats).collect();
    report
}

#[inline]
fn u64_min(a: usize, b: u64) -> u64 {
    bda_num::cast::u64_of(a).min(b)
}
