//! Quantized reflectivity tile codec.
//!
//! The 30-second nowcast product is a 2-D composite reflectivity field in
//! dBZ. Broadcasting it raw (8 bytes per cell, every cycle, to every
//! subscriber) would make the egress link the new bottleneck, so the codec
//! applies the standard product pipeline:
//!
//! 1. **quantize** — dBZ to `u8` at 0.5 dB steps from −30 dBZ
//!    ([`quantize_dbz`]); rain-rate displays do not resolve finer than
//!    that, and NaN/∞ from a degraded forecast clamp into the palette
//!    instead of poisoning the stream;
//! 2. **pyramid** — zoom levels by 2×2 max-pooling ([`QuantGrid::coarsen`];
//!    max, not mean: an overview tile must not dilute a storm core away);
//! 3. **tile** — each level is cut into [`TileConfig::tile`]-sized tiles so
//!    a viewer fetches only its viewport;
//! 4. **delta** — each tile is wrapping-subtracted from the same tile of
//!    the previous cycle ([`make_delta`]); on a 30-s cadence most cells are
//!    unchanged, so the run-length stage collapses deltas to near nothing;
//! 5. **run-length encode** — `(run, value)` byte pairs ([`rle_encode`]);
//! 6. **seal** — the shared FNV-1a trailer convention
//!    ([`bda_io::frame::seal`]), so a damaged or truncated tile is a typed
//!    [`TileError`] at the client, never a corrupt render.
//!
//! The [`Tiler`] holds the previous cycle's pyramid and emits both the
//! delta stream (what live subscribers get) and the key-frame snapshot
//! (what late joiners need), in a deterministic tile order. Tile payload
//! encoding runs on the rayon pool; the vendor pool's fixed-chunk contract
//! makes the emitted byte stream identical for any `BDA_THREADS`.

use bda_io::frame::{self, FrameError};
use bda_num::cast::{round_u8_sat, u16_of_index};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rayon::prelude::*;

const MAGIC: &[u8; 4] = b"BDAT";
const VERSION: u16 = 1;
/// Header bytes before the RLE payload.
const HEADER_BYTES: usize = 4 + 2 + 8 + 1 + 2 + 2 + 2 + 2 + 1 + 4;

const FLAG_STALE: u8 = 0b0000_0001;
const FLAG_DELTA: u8 = 0b0000_0010;

/// dBZ mapped to quantization step 0: the floor of the palette.
pub const DBZ_FLOOR: f64 = -30.0;
/// dB per quantization step.
pub const DBZ_STEP: f64 = 0.5;

/// Quantize one dBZ value to its palette index. Saturates at the palette
/// bounds; NaN (a poisoned cell that slipped through the health scan)
/// lands on the floor, i.e. "no echo", rather than aborting the product.
#[inline]
pub fn quantize_dbz(dbz: f64) -> u8 {
    round_u8_sat((dbz - DBZ_FLOOR) / DBZ_STEP)
}

/// Palette index back to the center of its dBZ bin.
#[inline]
pub fn dequantize(q: u8) -> f64 {
    DBZ_FLOOR + f64::from(q) * DBZ_STEP
}

/// Tiling parameters.
#[derive(Clone, Copy, Debug)]
pub struct TileConfig {
    /// Tile edge in cells; edge tiles are smaller when the grid does not
    /// divide evenly.
    pub tile: usize,
    /// Coarsest zoom level (0 = native resolution); level `z` is the
    /// native grid max-pooled `z` times.
    pub max_zoom: u8,
}

impl Default for TileConfig {
    fn default() -> Self {
        Self {
            tile: 32,
            max_zoom: 2,
        }
    }
}

/// One zoom level's quantized grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantGrid {
    pub w: usize,
    pub h: usize,
    pub q: Vec<u8>,
}

impl QuantGrid {
    /// Quantize a row-major dBZ field. `field.len()` must be `w * h`.
    pub fn quantize(field: &[f64], w: usize, h: usize) -> Result<Self, TileError> {
        if field.len() != w * h {
            return Err(TileError::FieldShape {
                cells: field.len(),
                w,
                h,
            });
        }
        Ok(Self {
            w,
            h,
            q: field.iter().map(|&v| quantize_dbz(v)).collect(),
        })
    }

    /// Next zoom level: 2×2 max-pooling (odd edges pool what exists).
    pub fn coarsen(&self) -> Self {
        let w = self.w.div_ceil(2).max(1);
        let h = self.h.div_ceil(2).max(1);
        let mut q = vec![0u8; w * h];
        for cy in 0..h {
            for cx in 0..w {
                let mut m = 0u8;
                for sy in (2 * cy)..((2 * cy + 2).min(self.h.max(1))) {
                    for sx in (2 * cx)..((2 * cx + 2).min(self.w.max(1))) {
                        m = m.max(self.q[sy * self.w + sx]);
                    }
                }
                q[cy * w + cx] = m;
            }
        }
        Self { w, h, q }
    }

    /// Copy out the tile at tile coordinates `(tx, ty)` for tile edge
    /// `tile`; the returned dims are the actual (possibly clipped) extent.
    fn tile_cells(&self, tile: usize, tx: usize, ty: usize) -> (usize, usize, Vec<u8>) {
        let x0 = tx * tile;
        let y0 = ty * tile;
        let w = tile.min(self.w - x0);
        let h = tile.min(self.h - y0);
        let mut cells = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            cells.extend_from_slice(&self.q[y * self.w + x0..y * self.w + x0 + w]);
        }
        (w, h, cells)
    }
}

/// What [`decode_tile`] rejects. Every variant is a hostile-input or
/// wire-damage condition a subscriber must survive as a typed error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TileError {
    /// Shorter than the fixed header + trailer.
    TooShort,
    /// Checksum trailer does not cover the bytes received.
    ChecksumMismatch,
    /// Not a tile frame at all.
    BadMagic,
    /// A frame from a future (or corrupted) codec revision.
    UnsupportedVersion(u16),
    /// The declared payload length disagrees with the bytes present.
    PayloadLength { declared: usize, got: usize },
    /// An RLE run of length zero: cannot be produced by the encoder.
    ZeroRun,
    /// A dangling run byte with no value byte.
    DanglingRun,
    /// RLE expanded to a cell count other than `w * h`.
    CellCount { expected: usize, got: usize },
    /// A zero-area tile: `w` or `h` of 0 cannot be produced by the tiler.
    EmptyTile,
    /// Encode-side: the field slice does not match the declared dims.
    FieldShape { cells: usize, w: usize, h: usize },
    /// Delta application against a base of the wrong size.
    BaseMismatch { base: usize, delta: usize },
}

impl std::fmt::Display for TileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileError::TooShort => write!(f, "tile frame too short"),
            TileError::ChecksumMismatch => write!(f, "tile frame checksum mismatch"),
            TileError::BadMagic => write!(f, "bad tile magic"),
            TileError::UnsupportedVersion(v) => write!(f, "unsupported tile version {v}"),
            TileError::PayloadLength { declared, got } => {
                write!(f, "payload length {declared} declared, {got} present")
            }
            TileError::ZeroRun => write!(f, "zero-length RLE run"),
            TileError::DanglingRun => write!(f, "dangling RLE run byte"),
            TileError::CellCount { expected, got } => {
                write!(f, "tile decoded to {got} cells, header says {expected}")
            }
            TileError::EmptyTile => write!(f, "zero-area tile"),
            TileError::FieldShape { cells, w, h } => {
                write!(f, "field has {cells} cells, dims say {w}x{h}")
            }
            TileError::BaseMismatch { base, delta } => {
                write!(f, "delta of {delta} cells against base of {base}")
            }
        }
    }
}

impl std::error::Error for TileError {}

impl From<FrameError> for TileError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::TooShort => TileError::TooShort,
            FrameError::ChecksumMismatch => TileError::ChecksumMismatch,
        }
    }
}

/// Run-length encode: `(run, value)` byte pairs, runs capped at 255.
pub fn rle_encode(cells: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    let mut iter = cells.iter();
    let Some(&first) = iter.next() else {
        return out;
    };
    let (mut run, mut value) = (1u8, first);
    for &c in iter {
        if c == value && run < u8::MAX {
            run += 1;
        } else {
            out.push(run);
            out.push(value);
            run = 1;
            value = c;
        }
    }
    out.push(run);
    out.push(value);
    out
}

/// Decode an RLE stream, checking it expands to exactly `expected` cells.
pub fn rle_decode(rle: &[u8], expected: usize) -> Result<Vec<u8>, TileError> {
    if !rle.len().is_multiple_of(2) {
        return Err(TileError::DanglingRun);
    }
    let mut out = Vec::with_capacity(expected);
    for pair in rle.chunks_exact(2) {
        let run = usize::from(pair[0]);
        if run == 0 {
            return Err(TileError::ZeroRun);
        }
        if out.len() + run > expected {
            // Hostile length: stop before allocating past the declared
            // cell count.
            return Err(TileError::CellCount {
                expected,
                got: out.len() + run,
            });
        }
        out.resize(out.len() + run, pair[1]);
    }
    if out.len() != expected {
        return Err(TileError::CellCount {
            expected,
            got: out.len(),
        });
    }
    Ok(out)
}

/// Per-cell wrapping difference `cur - prev` (same-length slices).
pub fn make_delta(prev: &[u8], cur: &[u8]) -> Result<Vec<u8>, TileError> {
    if prev.len() != cur.len() {
        return Err(TileError::BaseMismatch {
            base: prev.len(),
            delta: cur.len(),
        });
    }
    Ok(cur
        .iter()
        .zip(prev)
        .map(|(c, p)| c.wrapping_sub(*p))
        .collect())
}

/// Reconstruct `cur` from `prev` and a wrapping delta.
pub fn apply_delta(prev: &[u8], delta: &[u8]) -> Result<Vec<u8>, TileError> {
    if prev.len() != delta.len() {
        return Err(TileError::BaseMismatch {
            base: prev.len(),
            delta: delta.len(),
        });
    }
    Ok(delta
        .iter()
        .zip(prev)
        .map(|(d, p)| p.wrapping_add(*d))
        .collect())
}

/// A decoded tile frame. `cells` is the RLE-expanded payload: quantized
/// values for a key frame, wrapping deltas when `delta` is set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileFrame {
    pub cycle: u64,
    pub zoom: u8,
    pub tx: u16,
    pub ty: u16,
    pub w: u16,
    pub h: u16,
    /// The product was served from a previous cycle's last-good field.
    pub stale: bool,
    /// `cells` are deltas against the previous cycle's same tile.
    pub delta: bool,
    pub cells: Vec<u8>,
}

/// Encode one sealed tile frame. `cells.len()` must equal `w * h`.
#[allow(clippy::too_many_arguments)]
pub fn encode_tile(
    cycle: u64,
    zoom: u8,
    tx: u16,
    ty: u16,
    w: u16,
    h: u16,
    stale: bool,
    delta: bool,
    cells: &[u8],
) -> Result<Bytes, TileError> {
    let area = usize::from(w) * usize::from(h);
    if cells.len() != area {
        return Err(TileError::FieldShape {
            cells: cells.len(),
            w: usize::from(w),
            h: usize::from(h),
        });
    }
    if area == 0 {
        return Err(TileError::EmptyTile);
    }
    let payload = rle_encode(cells);
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + payload.len() + frame::TRAILER_BYTES);
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_u64(cycle);
    buf.put_u8(zoom);
    buf.put_u16(tx);
    buf.put_u16(ty);
    buf.put_u16(w);
    buf.put_u16(h);
    let mut flags = 0u8;
    if stale {
        flags |= FLAG_STALE;
    }
    if delta {
        flags |= FLAG_DELTA;
    }
    buf.put_u8(flags);
    buf.put_u32(bda_num::cast::u32_of_index(payload.len()));
    buf.put_slice(&payload);
    Ok(frame::seal(buf))
}

/// Decode and validate one sealed tile frame. Every malformed input maps
/// to a typed [`TileError`]; no input can panic this path.
pub fn decode_tile(data: &[u8]) -> Result<TileFrame, TileError> {
    let body = frame::open(data)?;
    if body.len() < HEADER_BYTES {
        return Err(TileError::TooShort);
    }
    let mut buf = body;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TileError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(TileError::UnsupportedVersion(version));
    }
    let cycle = buf.get_u64();
    let zoom = buf.get_u8();
    let tx = buf.get_u16();
    let ty = buf.get_u16();
    let w = buf.get_u16();
    let h = buf.get_u16();
    let flags = buf.get_u8();
    let declared = bda_num::cast::index_of_u32(buf.get_u32());
    if buf.remaining() != declared {
        return Err(TileError::PayloadLength {
            declared,
            got: buf.remaining(),
        });
    }
    let area = usize::from(w) * usize::from(h);
    if area == 0 {
        return Err(TileError::EmptyTile);
    }
    let cells = rle_decode(buf, area)?;
    Ok(TileFrame {
        cycle,
        zoom,
        tx,
        ty,
        w,
        h,
        stale: flags & FLAG_STALE != 0,
        delta: flags & FLAG_DELTA != 0,
        cells,
    })
}

/// One cycle's encoded product: the delta stream broadcast to live
/// subscribers and the key-frame snapshot cached for late joiners. Frames
/// are ordered (zoom, ty, tx) ascending — the deterministic stream order.
#[derive(Clone, Debug)]
pub struct CycleTiles {
    pub cycle: u64,
    pub deltas: Vec<Bytes>,
    pub keys: Vec<Bytes>,
}

impl CycleTiles {
    pub fn delta_bytes(&self) -> usize {
        self.deltas.iter().map(|b| b.len()).sum()
    }

    pub fn key_bytes(&self) -> usize {
        self.keys.iter().map(|b| b.len()).sum()
    }
}

/// Stateful per-stream encoder: quantizes, builds the zoom pyramid, and
/// delta-encodes against the previous cycle.
#[derive(Debug, Default)]
pub struct Tiler {
    cfg: TileConfig,
    prev: Vec<QuantGrid>,
}

impl Tiler {
    pub fn new(cfg: TileConfig) -> Self {
        Self {
            cfg,
            prev: Vec::new(),
        }
    }

    /// Build the zoom pyramid for one field.
    fn pyramid(&self, field: &[f64], w: usize, h: usize) -> Result<Vec<QuantGrid>, TileError> {
        let mut levels = Vec::with_capacity(usize::from(self.cfg.max_zoom) + 1);
        levels.push(QuantGrid::quantize(field, w, h)?);
        for _ in 0..self.cfg.max_zoom {
            let next = levels[levels.len() - 1].coarsen();
            if next.w == levels[levels.len() - 1].w && next.h == levels[levels.len() - 1].h {
                break; // already 1x1: further levels are identical
            }
            levels.push(next);
        }
        Ok(levels)
    }

    /// Encode one cycle's field. Emits delta frames against the previous
    /// cycle where the pyramid shapes match (first cycle and any grid
    /// reshape fall back to key frames for the delta stream too), and
    /// always a full key-frame snapshot. Tile payloads are encoded on the
    /// rayon pool in deterministic order.
    pub fn encode_cycle(
        &mut self,
        cycle: u64,
        field: &[f64],
        w: usize,
        h: usize,
        stale: bool,
    ) -> Result<CycleTiles, TileError> {
        let levels = self.pyramid(field, w, h)?;
        let same_shape = self.prev.len() == levels.len()
            && self
                .prev
                .iter()
                .zip(&levels)
                .all(|(p, l)| p.w == l.w && p.h == l.h);
        let tile = self.cfg.tile.max(1);

        // Flat deterministic tile schedule: (zoom, ty, tx) ascending.
        let mut schedule = Vec::new();
        for (z, level) in levels.iter().enumerate() {
            let tiles_x = level.w.div_ceil(tile).max(1);
            let tiles_y = level.h.div_ceil(tile).max(1);
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    schedule.push((z, tx, ty));
                }
            }
        }

        let prev = &self.prev;
        let levels_ref = &levels;
        let encoded: Vec<Result<(Bytes, Bytes), TileError>> = schedule
            .par_iter()
            .map(|&(z, tx, ty)| {
                let level = &levels_ref[z];
                let (tw, th, cells) = level.tile_cells(tile, tx, ty);
                let zoom = bda_num::cast::u8_of_index(z);
                let (txw, tyw) = (u16_of_index(tx), u16_of_index(ty));
                let (ww, hw) = (u16_of_index(tw), u16_of_index(th));
                let key = encode_tile(cycle, zoom, txw, tyw, ww, hw, stale, false, &cells)?;
                let delta = if same_shape {
                    let (_, _, base) = prev[z].tile_cells(tile, tx, ty);
                    let d = make_delta(&base, &cells)?;
                    encode_tile(cycle, zoom, txw, tyw, ww, hw, stale, true, &d)?
                } else {
                    key.clone()
                };
                Ok((delta, key))
            })
            .collect();

        let mut deltas = Vec::with_capacity(encoded.len());
        let mut keys = Vec::with_capacity(encoded.len());
        for r in encoded {
            let (d, k) = r?;
            deltas.push(d);
            keys.push(k);
        }
        self.prev = levels;
        Ok(CycleTiles {
            cycle,
            deltas,
            keys,
        })
    }

    /// Frames per cycle for the current configuration and a `w`×`h` grid
    /// (what a subscriber should expect between sequence gaps).
    pub fn frames_per_cycle(&self, w: usize, h: usize) -> usize {
        let tile = self.cfg.tile.max(1);
        let (mut cw, mut ch) = (w, h);
        let mut n = 0;
        for z in 0..=usize::from(self.cfg.max_zoom) {
            n += cw.div_ceil(tile).max(1) * ch.div_ceil(tile).max(1);
            let (nw, nh) = (cw.div_ceil(2).max(1), ch.div_ceil(2).max(1));
            if z > 0 && nw == cw && nh == ch {
                break;
            }
            (cw, ch) = (nw, nh);
        }
        n
    }
}

/// Client-side reassembler: applies delta frames to the tile state built
/// from key frames, detecting bases that were never established.
#[derive(Debug, Default)]
pub struct TileAssembler {
    tiles: std::collections::BTreeMap<(u8, u16, u16), Vec<u8>>,
    pub last_cycle: Option<u64>,
}

impl TileAssembler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one decoded frame into the assembled state.
    pub fn apply(&mut self, f: &TileFrame) -> Result<(), TileError> {
        let key = (f.zoom, f.tx, f.ty);
        if f.delta {
            let base = self.tiles.get(&key).ok_or(TileError::BaseMismatch {
                base: 0,
                delta: f.cells.len(),
            })?;
            let cur = apply_delta(base, &f.cells)?;
            self.tiles.insert(key, cur);
        } else {
            self.tiles.insert(key, f.cells.clone());
        }
        self.last_cycle = Some(f.cycle);
        Ok(())
    }

    /// Assembled quantized cells for one tile, if established.
    pub fn tile(&self, zoom: u8, tx: u16, ty: u16) -> Option<&[u8]> {
        self.tiles.get(&(zoom, tx, ty)).map(Vec::as_slice)
    }

    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }
}

/// Concatenated frame bytes of one cycle's delta stream — the determinism
/// witness compared across thread counts by `tests/par_determinism.rs`.
pub fn stream_digest(tiles: &CycleTiles) -> u64 {
    let mut buf = Vec::with_capacity(tiles.delta_bytes());
    for f in &tiles.deltas {
        buf.extend_from_slice(f);
    }
    bda_num::fnv1a(&buf)
}

/// Deterministic synthetic reflectivity composite: two rain cells orbiting
/// the domain plus an advecting squall band, in dBZ. Used by the example,
/// the bench, and the parity test so they all serve the same storm.
pub fn synthetic_reflectivity(cycle: u64, w: usize, h: usize) -> Vec<f64> {
    use bda_num::cast::{f64_of, f64_of_u64};
    let t = f64_of_u64(cycle) * 0.12;
    let (wf, hf) = (f64_of(w).max(1.0), f64_of(h).max(1.0));
    let mut out = Vec::with_capacity(w * h);
    let cells = [
        (0.5 + 0.3 * (t).cos(), 0.5 + 0.3 * (t).sin(), 0.08, 55.0),
        (
            0.5 + 0.25 * (1.7 * t + 1.0).sin(),
            0.5 - 0.2 * (1.3 * t).cos(),
            0.12,
            42.0,
        ),
    ];
    for y in 0..h {
        for x in 0..w {
            let (ux, uy) = (f64_of(x) / wf, f64_of(y) / hf);
            let mut dbz: f64 = -25.0;
            for &(cx, cy, sigma, peak) in &cells {
                let d2 = (ux - cx).powi(2) + (uy - cy).powi(2);
                dbz = dbz.max(peak * (-d2 / (2.0 * sigma * sigma)).exp() - 25.0 * d2);
            }
            // Squall band sweeping east at constant speed.
            let band = 35.0 * (-((ux - (0.1 + 0.04 * t).fract()).abs() / 0.05).powi(2)).exp();
            dbz = dbz.max(band - 5.0);
            out.push(dbz);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_clamps_hostile_values() {
        assert_eq!(quantize_dbz(-30.0), 0);
        assert_eq!(quantize_dbz(-1000.0), 0);
        assert_eq!(quantize_dbz(f64::NAN), 0);
        assert_eq!(quantize_dbz(f64::INFINITY), 255);
        assert_eq!(quantize_dbz(97.5), 255);
        assert_eq!(dequantize(quantize_dbz(10.0)), 10.0);
        assert!((dequantize(quantize_dbz(10.26)) - 10.5).abs() < 1e-12);
    }

    #[test]
    fn rle_roundtrip_and_long_runs() {
        for cells in [
            vec![0u8; 1000],
            vec![1, 1, 2, 2, 2, 3],
            (0..=255u8).collect::<Vec<_>>(),
            vec![7u8; 255],
            vec![7u8; 256],
        ] {
            let rle = rle_encode(&cells);
            assert_eq!(rle_decode(&rle, cells.len()).unwrap(), cells);
        }
        assert!(rle_encode(&[]).is_empty());
        assert_eq!(rle_decode(&[], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rle_rejects_hostile_streams() {
        assert_eq!(rle_decode(&[0, 5], 4).unwrap_err(), TileError::ZeroRun);
        assert_eq!(rle_decode(&[1], 1).unwrap_err(), TileError::DanglingRun);
        assert_eq!(
            rle_decode(&[255, 1], 4).unwrap_err(),
            TileError::CellCount {
                expected: 4,
                got: 255
            }
        );
        assert_eq!(
            rle_decode(&[2, 1], 4).unwrap_err(),
            TileError::CellCount {
                expected: 4,
                got: 2
            }
        );
    }

    #[test]
    fn tile_frame_roundtrip() {
        let cells: Vec<u8> = (0..12 * 9)
            .map(|i| bda_num::cast::u8_of_index(i % 7))
            .collect();
        let frame = encode_tile(42, 1, 3, 2, 12, 9, true, false, &cells).unwrap();
        let f = decode_tile(&frame).unwrap();
        assert_eq!(
            (f.cycle, f.zoom, f.tx, f.ty, f.w, f.h, f.stale, f.delta),
            (42, 1, 3, 2, 12, 9, true, false)
        );
        assert_eq!(f.cells, cells);
    }

    #[test]
    fn damaged_frames_are_typed_errors_never_panics() {
        let cells = vec![3u8; 64];
        let frame = encode_tile(1, 0, 0, 0, 8, 8, false, false, &cells)
            .unwrap()
            .to_vec();
        // Truncation at every length.
        for cut in 0..frame.len() {
            assert!(decode_tile(&frame[..cut]).is_err(), "cut {cut}");
        }
        // Every single-bit flip.
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut d = frame.clone();
                d[byte] ^= 1 << bit;
                assert!(decode_tile(&d).is_err(), "flip byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn delta_roundtrip_is_exact() {
        let a: Vec<u8> = (0..100)
            .map(|i| bda_num::cast::u8_of_index(i * 3 % 251))
            .collect();
        let b: Vec<u8> = (0..100)
            .map(|i| bda_num::cast::u8_of_index(i * 7 % 253))
            .collect();
        let d = make_delta(&a, &b).unwrap();
        assert_eq!(apply_delta(&a, &d).unwrap(), b);
        assert!(make_delta(&a, &b[..50]).is_err());
        assert!(apply_delta(&a[..50], &d).is_err());
    }

    #[test]
    fn coarsen_max_pools() {
        let g = QuantGrid {
            w: 4,
            h: 2,
            q: vec![1, 9, 2, 2, 3, 4, 0, 8],
        };
        let c = g.coarsen();
        assert_eq!((c.w, c.h), (2, 1));
        assert_eq!(c.q, vec![9, 8]);
        // Odd edge pools the remainder.
        let odd = QuantGrid {
            w: 3,
            h: 1,
            q: vec![5, 1, 7],
        };
        let co = odd.coarsen();
        assert_eq!((co.w, co.h), (2, 1));
        assert_eq!(co.q, vec![5, 7]);
    }

    #[test]
    fn tiler_delta_stream_reassembles_bit_exact() {
        let cfg = TileConfig {
            tile: 16,
            max_zoom: 2,
        };
        let mut tiler = Tiler::new(cfg);
        let mut asm = TileAssembler::new();
        let (w, h) = (48, 40);
        for cycle in 0..5u64 {
            let field = synthetic_reflectivity(cycle, w, h);
            let tiles = tiler.encode_cycle(cycle, &field, w, h, false).unwrap();
            assert_eq!(tiles.deltas.len(), tiles.keys.len());
            assert_eq!(tiles.deltas.len(), tiler.frames_per_cycle(w, h));
            for frame in &tiles.deltas {
                asm.apply(&decode_tile(frame).unwrap()).unwrap();
            }
            // Zoom 0 reassembly equals direct quantization.
            let direct = QuantGrid::quantize(&field, w, h).unwrap();
            let mut reassembled = vec![0u8; w * h];
            for ty in 0..h.div_ceil(16) {
                for tx in 0..w.div_ceil(16) {
                    let cells = asm
                        .tile(0, u16_of_index(tx), u16_of_index(ty))
                        .expect("tile missing");
                    let tw = 16.min(w - tx * 16);
                    for (row, chunk) in cells.chunks(tw).enumerate() {
                        let y = ty * 16 + row;
                        reassembled[y * w + tx * 16..y * w + tx * 16 + tw].copy_from_slice(chunk);
                    }
                }
            }
            assert_eq!(reassembled, direct.q, "cycle {cycle} diverged");
        }
    }

    #[test]
    fn unchanged_field_deltas_collapse() {
        let mut tiler = Tiler::new(TileConfig::default());
        let (w, h) = (64, 64);
        let field = synthetic_reflectivity(3, w, h);
        let first = tiler.encode_cycle(0, &field, w, h, false).unwrap();
        let second = tiler.encode_cycle(1, &field, w, h, true).unwrap();
        assert!(
            second.delta_bytes() * 4 < first.key_bytes(),
            "unchanged-field deltas {} not ≪ key frames {}",
            second.delta_bytes(),
            first.key_bytes()
        );
        let f = decode_tile(&second.deltas[0]).unwrap();
        assert!(f.stale && f.delta);
        assert!(f.cells.iter().all(|&c| c == 0));
    }

    #[test]
    fn grid_reshape_falls_back_to_key_frames() {
        let mut tiler = Tiler::new(TileConfig::default());
        tiler
            .encode_cycle(0, &synthetic_reflectivity(0, 32, 32), 32, 32, false)
            .unwrap();
        let tiles = tiler
            .encode_cycle(1, &synthetic_reflectivity(1, 48, 48), 48, 48, false)
            .unwrap();
        for frame in &tiles.deltas {
            assert!(!decode_tile(frame).unwrap().delta);
        }
    }

    #[test]
    fn delta_without_base_is_typed() {
        let mut asm = TileAssembler::new();
        let d = make_delta(&[1, 2], &[3, 4]).unwrap();
        let frame = encode_tile(1, 0, 0, 0, 2, 1, false, true, &d).unwrap();
        let f = decode_tile(&frame).unwrap();
        assert!(matches!(
            asm.apply(&f).unwrap_err(),
            TileError::BaseMismatch { .. }
        ));
    }

    #[test]
    fn field_shape_mismatch_rejected() {
        assert!(QuantGrid::quantize(&[0.0; 5], 2, 2).is_err());
        let mut tiler = Tiler::new(TileConfig::default());
        assert!(tiler.encode_cycle(0, &[0.0; 5], 2, 2, false).is_err());
    }
}
