//! End-to-end loopback tests: real sockets, real acceptor thread, typed
//! evictions, snapshot-plus-delta catch-up.

use bda_serve::server::{
    EvictReason, NowcastServer, ServeConfig, FRESH_JOIN, HELLO_BYTES, HELLO_MAGIC,
};
use bda_serve::storm::{StormSwarm, SwarmConfig};
use bda_serve::tile::{synthetic_reflectivity, TileConfig};
use bda_workflow::fault::FaultPlan;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const W: usize = 64;
const H: usize = 64;

fn small_cfg() -> ServeConfig {
    ServeConfig {
        tile: TileConfig {
            tile: 32,
            max_zoom: 2,
        },
        ..ServeConfig::default()
    }
}

fn publish(server: &mut NowcastServer, cycle: u64) -> bda_serve::server::PublishReport {
    let field = synthetic_reflectivity(cycle, W, H);
    server
        .publish(cycle, &field, W, H, false)
        .expect("publish failed")
}

/// Raw scriptable client for targeted eviction tests.
struct RawClient {
    stream: TcpStream,
}

impl RawClient {
    fn connect(addr: SocketAddr, last_cycle: Option<u64>) -> Self {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut hello = [0u8; HELLO_BYTES];
        hello[..4].copy_from_slice(HELLO_MAGIC);
        hello[4..].copy_from_slice(&last_cycle.unwrap_or(FRESH_JOIN).to_be_bytes());
        stream.write_all(&hello).expect("hello");
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        Self { stream }
    }

    /// Drain whatever is available right now; returns bytes read.
    fn drain(&mut self) -> usize {
        let mut total = 0;
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => total += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::TimedOut => break,
                Err(_) => break,
            }
        }
        total
    }
}

/// Wait (bounded) until the server has admitted `n` clients; admission
/// happens at publish, so this drives empty publishes.
fn wait_for_clients(server: &mut NowcastServer, mut cycle: u64, n: usize) -> u64 {
    for _ in 0..200 {
        if server.client_count() >= n {
            return cycle;
        }
        publish(server, cycle);
        cycle += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!(
        "server admitted {} of {n} clients in time",
        server.client_count()
    );
}

#[test]
fn healthy_swarm_verifies_every_frame() {
    let mut server = NowcastServer::bind(small_cfg()).expect("bind");
    let swarm = StormSwarm::launch(
        server.local_addr(),
        SwarmConfig {
            clients: 20,
            seed: 7,
            never_ack: 0.0,
            mid_stream_disconnect: 0.0,
        },
        FaultPlan::none(),
    );
    // Let the fleet handshake, then run a short campaign.
    std::thread::sleep(Duration::from_millis(50));
    for cycle in 0..5u64 {
        let report = publish(&mut server, cycle);
        swarm.on_cycle(cycle);
        assert!(report.frames > 0);
        std::thread::sleep(Duration::from_millis(10));
        server.pump_all();
    }
    let report = server.shutdown(Duration::from_secs(2));
    let swarm_report = swarm.finish();

    assert_eq!(report.cycles_published, 5);
    assert_eq!(
        swarm_report.decode_errors(),
        0,
        "{}",
        swarm_report.summary()
    );
    assert!(
        swarm_report.total_frames() > 0,
        "{}",
        swarm_report.summary()
    );
    assert_eq!(report.outcomes.len(), 20, "{}", report.summary());
    // Healthy clients must never be evicted for slowness or ack lag.
    assert_eq!(
        report
            .outcomes
            .iter()
            .filter(|o| matches!(
                o.evicted,
                Some(EvictReason::SlowReader { .. } | EvictReason::AckLag { .. })
            ))
            .count(),
        0,
        "{}",
        report.table()
    );
}

#[test]
fn never_ack_client_hits_ack_lag_backstop() {
    // ack_lag must exceed the admission catch-up (6 frames here) so the
    // client survives its join, then falls behind cycle by cycle.
    let cfg = ServeConfig {
        ack_lag: 8,
        ..small_cfg()
    };
    let mut server = NowcastServer::bind(cfg).expect("bind");
    let mut client = RawClient::connect(server.local_addr(), None);
    let start = wait_for_clients(&mut server, 0, 1);
    // Reads everything, acknowledges nothing: queue-overflow detection
    // can't see it (the kernel buffer hides it), the ack-lag backstop must.
    let mut evicted_at = None;
    for cycle in start..start + 20 {
        let report = publish(&mut server, cycle);
        client.drain();
        if report.evicted > 0 {
            evicted_at = Some(cycle);
            break;
        }
    }
    assert!(evicted_at.is_some(), "never-ACK client was never evicted");
    let report = server.shutdown(Duration::from_millis(200));
    assert_eq!(report.outcomes.len(), 1);
    let outcome = &report.outcomes[0];
    assert!(
        matches!(
            outcome.evicted,
            Some(EvictReason::AckLag { acked: None, .. })
        ),
        "expected ack-lag eviction, got {:?}",
        outcome.evicted
    );
    assert!(outcome.delivered > 8);
}

#[test]
fn queue_overflow_is_a_typed_slow_reader_eviction() {
    // Queue shorter than the admission snapshot (6 frames): enqueue
    // overflows deterministically at admission, whatever the kernel
    // buffers would absorb, and the same publish sweeps the client.
    let cfg = ServeConfig {
        queue_frames: 2,
        ..small_cfg()
    };
    let mut server = NowcastServer::bind(cfg).expect("bind");
    let _client = RawClient::connect(server.local_addr(), None);
    let mut evicted = false;
    for cycle in 0..200u64 {
        let report = publish(&mut server, cycle);
        if report.evicted > 0 {
            evicted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(evicted, "overflowing client was never evicted");
    let report = server.shutdown(Duration::from_millis(200));
    assert_eq!(report.outcomes.len(), 1);
    assert!(
        matches!(
            report.outcomes[0].evicted,
            Some(EvictReason::SlowReader { queued: 2 })
        ),
        "expected slow-reader eviction, got {:?}",
        report.outcomes[0].evicted
    );
}

#[test]
fn mid_stream_disconnect_is_typed_not_fatal() {
    let mut server = NowcastServer::bind(small_cfg()).expect("bind");
    let client = RawClient::connect(server.local_addr(), None);
    let start = wait_for_clients(&mut server, 0, 1);
    drop(client); // abrupt close
    let mut evicted = false;
    for cycle in start..start + 20 {
        publish(&mut server, cycle);
        if server.client_count() == 0 {
            evicted = true;
            break;
        }
    }
    assert!(evicted, "closed client never swept");
    let report = server.shutdown(Duration::from_millis(100));
    assert!(
        matches!(report.outcomes[0].evicted, Some(EvictReason::Disconnected)),
        "expected disconnect eviction, got {:?}",
        report.outcomes[0].evicted
    );
}

#[test]
fn late_joiner_snapshots_and_reconnector_replays_deltas() {
    let mut server = NowcastServer::bind(small_cfg()).expect("bind");
    for cycle in 0..3u64 {
        publish(&mut server, cycle);
    }
    // Fresh join: must be brought current via the newest key-frame
    // snapshot. Reconnector claiming it last completed cycle 1: every
    // later cycle is still cached, so it must get a delta replay instead.
    let mut fresh = RawClient::connect(server.local_addr(), None);
    let mut rejoin = RawClient::connect(server.local_addr(), Some(1));
    let mut saw_snapshot = false;
    let mut saw_delta = false;
    for probe in 3..200u64 {
        let report = publish(&mut server, probe);
        saw_snapshot |= report.joined_snapshot > 0;
        saw_delta |= report.joined_delta > 0;
        fresh.drain();
        rejoin.drain();
        if saw_snapshot && saw_delta {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_snapshot, "fresh join did not take the snapshot route");
    assert!(saw_delta, "recent reconnector did not take the delta route");
    let report = server.shutdown(Duration::from_secs(1));
    assert_eq!(report.outcomes.len(), 2, "{}", report.table());
}

#[test]
fn garbage_hello_counts_as_handshake_failure_and_never_joins() {
    let mut server = NowcastServer::bind(small_cfg()).expect("bind");
    let mut bad = TcpStream::connect(server.local_addr()).expect("connect");
    bad.write_all(b"NOTBDA_HELLO").expect("write");
    std::thread::sleep(Duration::from_millis(50));
    for cycle in 0..3u64 {
        publish(&mut server, cycle);
    }
    let report = server.shutdown(Duration::from_millis(100));
    assert_eq!(report.outcomes.len(), 0);
    assert_eq!(report.handshake_failures, 1);
}
