//! Property-based invariants of the egress tile codec.
//!
//! The codec sits on a hostile boundary: whatever a client feeds back, and
//! whatever damage the wire does, [`decode_tile`] must return a typed
//! error — never panic, never accept silently corrupted cells.

use bda_serve::tile::{
    apply_delta, decode_tile, make_delta, rle_decode, rle_encode, stream_digest, QuantGrid,
    TileAssembler, TileConfig, TileError, Tiler,
};
use proptest::prelude::*;

/// Deterministic pseudo-random dBZ field (with NaN/∞ contamination) from a
/// seed — proptest shrinks the seed, the field stays reproducible.
fn field_from_seed(seed: u64, w: usize, h: usize) -> Vec<f64> {
    let mut rng = bda_num::rng::SplitMix64::new(seed);
    (0..w * h)
        .map(|_| match rng.next_index(32) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => rng.uniform_in(-40.0, 80.0),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RLE is a bijection on cell vectors (within the expected length).
    #[test]
    fn rle_roundtrips(cells in prop::collection::vec(0u8..=255, 1..700)) {
        let rle = rle_encode(&cells);
        prop_assert_eq!(rle.len() % 2, 0);
        let back = rle_decode(&rle, cells.len()).expect("own encoding decodes");
        prop_assert_eq!(back, cells);
    }

    /// Delta encode/apply is exact for any pair of same-length cell
    /// vectors, including wraparound values.
    #[test]
    fn delta_roundtrips(
        prev in prop::collection::vec(0u8..=255, 1..300),
        seed in any::<u64>(),
    ) {
        let mut rng = bda_num::rng::SplitMix64::new(seed);
        let cur: Vec<u8> = prev
            .iter()
            .map(|&p| p.wrapping_add(bda_num::cast::u8_of_index(rng.next_index(256))))
            .collect();
        let d = make_delta(&prev, &cur).expect("same length");
        let back = apply_delta(&prev, &d).expect("same length");
        prop_assert_eq!(back, cur);
    }

    /// Full-stack roundtrip over consecutive cycles: encode two arbitrary
    /// fields, replay the delta stream through an assembler, and require
    /// the reassembled tiles to be bit-exact against direct quantization
    /// of the second field.
    #[test]
    fn delta_stream_reassembles_bit_exact(
        w in 1usize..70,
        h in 1usize..70,
        seed in any::<u64>(),
        stale in any::<bool>(),
    ) {
        let cfg = TileConfig { tile: 16, max_zoom: 2 };
        let mut tiler = Tiler::new(cfg);
        let f0 = field_from_seed(seed, w, h);
        let f1 = field_from_seed(seed ^ 0x9E37_79B9, w, h);
        let c0 = tiler.encode_cycle(0, &f0, w, h, false).expect("cycle 0");
        let c1 = tiler.encode_cycle(1, &f1, w, h, stale).expect("cycle 1");

        let mut asm = TileAssembler::new();
        for frame in c0.deltas.iter().chain(c1.deltas.iter()) {
            let tile = decode_tile(frame).expect("own frames decode");
            prop_assert_eq!(tile.stale, tile.cycle == 1 && stale);
            asm.apply(&tile).expect("in-order stream has no orphans");
        }

        // Ground truth: quantize + coarsen f1 directly.
        let mut level = QuantGrid::quantize(&f1, w, h).expect("shape");
        for z in 0..3u8 {
            let tiles_x = level.w.div_ceil(16).max(1);
            let tiles_y = level.h.div_ceil(16).max(1);
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let x0 = tx * 16;
                    let y0 = ty * 16;
                    let tw = 16.min(level.w - x0);
                    let mut expect = Vec::new();
                    for y in y0..y0 + 16.min(level.h - y0) {
                        expect.extend_from_slice(
                            &level.q[y * level.w + x0..y * level.w + x0 + tw],
                        );
                    }
                    let got = asm
                        .tile(z, tx as u16, ty as u16)
                        .expect("assembler holds every tile");
                    prop_assert_eq!(got, &expect[..]);
                }
            }
            let next = level.coarsen();
            if next.w == level.w && next.h == level.h {
                break;
            }
            level = next;
        }
    }

    /// Determinism witness: the same field sequence produces the same
    /// delta byte stream, whatever else happened to a different tiler.
    #[test]
    fn stream_digest_is_a_pure_function_of_inputs(
        w in 1usize..50,
        h in 1usize..50,
        seed in any::<u64>(),
    ) {
        let f0 = field_from_seed(seed, w, h);
        let f1 = field_from_seed(!seed, w, h);
        let run = || {
            let mut t = Tiler::new(TileConfig { tile: 16, max_zoom: 2 });
            let a = t.encode_cycle(0, &f0, w, h, false).expect("c0");
            let b = t.encode_cycle(1, &f1, w, h, false).expect("c1");
            (stream_digest(&a), stream_digest(&b))
        };
        prop_assert_eq!(run(), run());
    }

    /// Every truncation of a valid frame is rejected with a typed error —
    /// no prefix parses, nothing panics.
    #[test]
    fn truncated_frames_are_typed_errors(
        w in 1usize..40,
        h in 1usize..40,
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let field = field_from_seed(seed, w, h);
        let mut tiler = Tiler::new(TileConfig { tile: 16, max_zoom: 1 });
        let tiles = tiler.encode_cycle(0, &field, w, h, false).expect("encode");
        let frame = &tiles.deltas[0];
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < frame.len());
        let err = decode_tile(&frame[..cut]).expect_err("truncation must not parse");
        // Any typed variant is acceptable; reaching here proves no panic.
        let _ = err.to_string();
    }

    /// Every single-bit flip anywhere in a frame is rejected: the FNV-1a
    /// trailer is built from invertible steps, so a one-byte change can
    /// never collide.
    #[test]
    fn bit_flipped_frames_are_rejected(
        w in 1usize..40,
        h in 1usize..40,
        seed in any::<u64>(),
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let field = field_from_seed(seed, w, h);
        let mut tiler = Tiler::new(TileConfig { tile: 16, max_zoom: 1 });
        let tiles = tiler.encode_cycle(0, &field, w, h, false).expect("encode");
        let mut frame = tiles.deltas[0].to_vec();
        let pos = usize::try_from(flip_pos).unwrap_or(usize::MAX) % frame.len();
        frame[pos] ^= 1u8 << flip_bit;
        let err = decode_tile(&frame).expect_err("bit flip must not parse");
        let _ = err.to_string();
    }

    /// Hostile RLE payloads never panic and never over-allocate past the
    /// declared cell count.
    #[test]
    fn arbitrary_rle_never_panics(
        rle in prop::collection::vec(0u8..=255, 0..600),
        expected in 0usize..4096,
    ) {
        match rle_decode(&rle, expected) {
            Ok(cells) => prop_assert_eq!(cells.len(), expected),
            Err(
                TileError::ZeroRun
                | TileError::DanglingRun
                | TileError::CellCount { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected variant {other:?}"),
        }
    }
}
