//! Fault-tolerant supervisor for the live 30-second pipeline.
//!
//! [`RealtimePipeline`](crate::pipeline::RealtimePipeline) is the
//! happy-path reproduction of Figs. 2/4: it assumes every scan arrives,
//! every transfer completes, and every stage returns. The production system
//! on Fugaku could not assume any of that — a 30-second cadence with a
//! month-long deployment means every component *will* fail mid-campaign,
//! and the right response is almost never "stop". [`CycleSupervisor`] wraps
//! the same three-thread layout with the operational armor:
//!
//! * **panic isolation** — each stage closure runs under `catch_unwind`;
//!   a panicking assimilation poisons one cycle, not the pipeline;
//! * **stall watchdog + retry** — the transfer wait uses the JIT-DT pipe's
//!   [`recv_timeout`](bda_jitdt::pipe::PipeReceiver::recv_timeout) watchdog
//!   and retries with bounded exponential backoff, mirroring the paper's
//!   transfer-daemon auto-restart;
//! * **newest-scan-wins** — when the assimilation falls behind, queued
//!   stale scans are superseded by the latest one (a 30-second-old analysis
//!   is worth more than a 90-second-old one delivered late);
//! * **per-stage deadlines** — a cycle that blows its deadline is recorded
//!   as skipped rather than delaying every cycle after it;
//! * **graceful degradation** — failed assimilation falls back to the
//!   previous analysis (forecast–forecast continuation); missing or
//!   corrupt observations fall back to persistence;
//! * **end-to-end payload checksum** — volumes are checksummed at scan
//!   time and verified before assimilation, catching corruption the pipe's
//!   own per-hop trailer cannot see.
//!
//! Every cycle ends in exactly one [`CycleDisposition`], and the
//! [`SupervisorReport`] aggregates them into the availability statistic
//! that corresponds to the gray outage shading of the paper's Fig. 5.

use crate::backoff::Backoff;
use crate::fault::{Fault, FaultPlan, Stage};
use crate::pipeline::{CycleTiming, RealtimePipeline};
use bda_jitdt::pipe::{fnv1a, PipeError};
use bda_jitdt::sequence::{sequenced_pipe, DeliveryDrop, DeliveryError, SequencedReceiver};
use bytes::Bytes;
use crossbeam::channel::bounded;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A typed stage failure. The `Display` form reads as an error chain
/// (`stage: cause`), and the variants carry enough context to reconstruct
/// what the supervisor saw.
#[derive(Clone, Debug, PartialEq)]
pub enum StageError {
    /// The stage closure panicked (caught at the stage boundary).
    Panicked { stage: Stage, message: String },
    /// The stage closure returned an error.
    Failed { stage: Stage, message: String },
    /// The stage finished but past its deadline.
    DeadlineExceeded {
        stage: Stage,
        elapsed_s: f64,
        deadline_s: f64,
    },
    /// The transfer watchdog fired `attempts` times and the retry budget
    /// ran out — the volume never arrived.
    TransferTimeout { attempts: usize },
    /// The volume arrived but its payload checksum did not match the one
    /// taken at scan time.
    CorruptVolume { expected: u64, got: u64 },
    /// The scan produced no volume at all this cycle.
    ScanDropped,
    /// The volume arrived, but its scan timestamp was older than the
    /// staleness horizon — assimilating it would move the analysis
    /// backwards in time.
    StaleScan { age_s: f64, horizon_s: f64 },
    /// The volume arrived shorter than its framing declared (mid-stream
    /// truncation), distinct from checksum-detected corruption.
    TruncatedVolume { expected: u64, got: u64 },
    /// The underlying pipe failed structurally (disconnect, framing).
    Pipe(String),
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Panicked { stage, message } => {
                write!(f, "{stage} panicked: {message}")
            }
            StageError::Failed { stage, message } => write!(f, "{stage} failed: {message}"),
            StageError::DeadlineExceeded {
                stage,
                elapsed_s,
                deadline_s,
            } => write!(
                f,
                "{stage} missed deadline: {elapsed_s:.3}s > {deadline_s:.3}s"
            ),
            StageError::TransferTimeout { attempts } => {
                write!(f, "transfer timed out after {attempts} watchdog windows")
            }
            StageError::CorruptVolume { expected, got } => write!(
                f,
                "volume corrupt: checksum {got:#018x} != scan-time {expected:#018x}"
            ),
            StageError::ScanDropped => write!(f, "scan produced no volume"),
            StageError::StaleScan { age_s, horizon_s } => {
                write!(f, "stale scan: {age_s:.1}s old > {horizon_s:.1}s horizon")
            }
            StageError::TruncatedVolume { expected, got } => {
                write!(f, "volume truncated in transit: {got}/{expected} bytes")
            }
            StageError::Pipe(msg) => write!(f, "pipe error: {msg}"),
        }
    }
}

impl std::error::Error for StageError {}

/// How a degraded cycle's forecast was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradedMode {
    /// Fresh observations were unusable, but a previous analysis exists:
    /// the forecast continues from it (forecast–forecast continuation).
    PreviousAnalysis,
    /// No analysis at all is available: advect the last product forward
    /// unchanged (persistence forecast).
    Persistence,
}

impl std::fmt::Display for DegradedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedMode::PreviousAnalysis => f.write_str("previous-analysis"),
            DegradedMode::Persistence => f.write_str("persistence"),
        }
    }
}

/// Why a cycle was skipped without producing a forecast.
#[derive(Clone, Debug, PartialEq)]
pub enum SkipCause {
    /// A newer scan arrived before this one was assimilated.
    Superseded { by: usize },
    /// A stage finished past its deadline; the product was discarded.
    Deadline(StageError),
}

impl std::fmt::Display for SkipCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipCause::Superseded { by } => write!(f, "superseded by cycle {by}"),
            SkipCause::Deadline(e) => write!(f, "{e}"),
        }
    }
}

/// The outcome taxonomy: every supervised cycle ends in exactly one of
/// these.
#[derive(Clone, Debug, PartialEq)]
pub enum CycleDisposition {
    /// Fresh analysis, forecast delivered on time.
    Completed,
    /// A forecast was delivered, but from a degraded source.
    Degraded {
        mode: DegradedMode,
        cause: StageError,
    },
    /// No forecast for this cycle, by design (superseded or late).
    Skipped { cause: SkipCause },
    /// No forecast and no graceful path: the forecast stage itself died.
    Failed { cause: StageError },
}

impl CycleDisposition {
    pub fn label(&self) -> &'static str {
        match self {
            CycleDisposition::Completed => "completed",
            CycleDisposition::Degraded { .. } => "degraded",
            CycleDisposition::Skipped { .. } => "skipped",
            CycleDisposition::Failed { .. } => "failed",
        }
    }

    /// Whether a forecast product reached the consumer this cycle.
    pub fn delivered_forecast(&self) -> bool {
        matches!(
            self,
            CycleDisposition::Completed | CycleDisposition::Degraded { .. }
        )
    }
}

/// What the forecast stage is given to work from.
#[derive(Debug)]
pub enum ForecastInput<'a, P> {
    /// This cycle's fresh analysis.
    Analysis(&'a P),
    /// The most recent earlier analysis (degraded).
    PreviousAnalysis(&'a P),
    /// No analysis available: persistence (degraded).
    Persistence,
}

/// One cycle's supervised outcome.
#[derive(Clone, Debug)]
pub struct CycleReport {
    pub cycle: usize,
    pub disposition: CycleDisposition,
    /// Stage timings, present whenever the forecast stage ran.
    pub timing: Option<CycleTiming>,
    /// Transfer watchdog windows that elapsed before the volume arrived.
    pub transfer_retries: usize,
    /// Volumes classified and dropped while waiting for this cycle's volume
    /// (duplicates from replayed transfers, out-of-order leftovers from
    /// abandoned cycles). Dropping them is correct behaviour; they are
    /// reported so the outcome table shows the ingest layer working.
    pub drops: Vec<DeliveryDrop>,
    /// What the egress stage reported after this cycle's product was (or
    /// was not) published — `None` when no egress stage is wired in, or
    /// when the cycle never reached the forecast thread (superseded /
    /// assimilation-deadline skips publish nothing).
    pub egress: Option<String>,
}

/// Aggregated outcome of a supervised run.
#[derive(Clone, Debug, Default)]
pub struct SupervisorReport {
    pub cycles: Vec<CycleReport>,
}

impl SupervisorReport {
    fn count(&self, f: impl Fn(&CycleDisposition) -> bool) -> usize {
        self.cycles.iter().filter(|c| f(&c.disposition)).count()
    }

    pub fn completed(&self) -> usize {
        self.count(|d| matches!(d, CycleDisposition::Completed))
    }

    pub fn degraded(&self) -> usize {
        self.count(|d| matches!(d, CycleDisposition::Degraded { .. }))
    }

    pub fn skipped(&self) -> usize {
        self.count(|d| matches!(d, CycleDisposition::Skipped { .. }))
    }

    pub fn failed(&self) -> usize {
        self.count(|d| matches!(d, CycleDisposition::Failed { .. }))
    }

    /// Fraction of cycles that delivered a forecast (fresh or degraded) —
    /// the Fig. 5 availability analogue: skipped and failed cycles are the
    /// gray bands.
    pub fn availability(&self) -> f64 {
        if self.cycles.is_empty() {
            return 1.0;
        }
        self.count(CycleDisposition::delivered_forecast) as f64 / self.cycles.len() as f64
    }

    /// Per-cycle outcome table (the `--inject` report of the realtime
    /// example). When any cycle carries an egress note, the table grows an
    /// `egress` column between `retries` and `detail`.
    pub fn table(&self) -> String {
        let egress_w = self
            .cycles
            .iter()
            .filter_map(|c| c.egress.as_deref().map(str::len))
            .max()
            .map(|w| w.max("egress".len()));
        let mut out = format!(
            "cycle  outcome    obs(ms)  letkf(ms)  fcst(ms)  tts(ms)  retries  {}detail\n",
            match egress_w {
                Some(w) => format!("{:<w$}  ", "egress"),
                None => String::new(),
            }
        );
        for c in &self.cycles {
            // Per-stage wall-clock: observation ingest (scan + transfer),
            // LETKF analysis, ensemble forecast, then end-to-end
            // time-to-solution.
            let stages = c
                .timing
                .map(|t| {
                    format!(
                        "{:7.1}  {:9.1}  {:8.1}  {:7.1}",
                        (t.scan_s + t.transfer_s) * 1e3,
                        t.assimilation_s * 1e3,
                        t.forecast_s * 1e3,
                        t.time_to_solution_s * 1e3
                    )
                })
                .unwrap_or_else(|| format!("{:>7}  {:>9}  {:>8}  {:>7}", "-", "-", "-", "-"));
            let mut detail = match &c.disposition {
                CycleDisposition::Completed => String::new(),
                CycleDisposition::Degraded { mode, cause } => format!("{mode}: {cause}"),
                CycleDisposition::Skipped { cause } => cause.to_string(),
                CycleDisposition::Failed { cause } => cause.to_string(),
            };
            for d in &c.drops {
                if !detail.is_empty() {
                    detail.push_str("; ");
                }
                detail.push_str(&d.to_string());
            }
            let egress = match egress_w {
                Some(w) => format!("{:<w$}  ", c.egress.as_deref().unwrap_or("-")),
                None => String::new(),
            };
            out.push_str(&format!(
                "{:5}  {:<9} {stages}  {:7}  {egress}{detail}\n",
                c.cycle,
                c.disposition.label(),
                c.transfer_retries,
            ));
        }
        out.push_str(&format!(
            "availability {:.1}% ({} completed, {} degraded, {} skipped, {} failed)\n",
            self.availability() * 100.0,
            self.completed(),
            self.degraded(),
            self.skipped(),
            self.failed(),
        ));
        out
    }
}

/// Supervisor configuration. With the default settings and an empty
/// [`FaultPlan`], the supervised pipeline is semantically identical to
/// [`RealtimePipeline::run`] — same thread layout, same channel
/// capacities, same overlap behaviour.
#[derive(Clone, Debug)]
pub struct CycleSupervisor {
    pub pipeline: RealtimePipeline,
    /// Transfer stall watchdog window (per-frame progress timeout).
    pub stall_timeout: Duration,
    /// Watchdog firings tolerated before the transfer is declared dead —
    /// the JIT-DT `max_restarts` analogue.
    pub max_restarts: usize,
    /// Base backoff slept after each watchdog firing (doubles per retry,
    /// capped at 16x).
    pub backoff_base: Duration,
    /// Assimilation wall-clock deadline; exceeding it skips the cycle.
    pub assimilation_deadline: Option<Duration>,
    /// Forecast wall-clock deadline; exceeding it skips the cycle.
    pub forecast_deadline: Option<Duration>,
    /// Newest-scan-wins: skip queued stale scans instead of draining the
    /// backlog in order. Off by default — it is the right policy when the
    /// radar paces scans at a real cadence and assimilation can fall
    /// behind it, but with free-running (unpaced) scan closures it would
    /// supersede everything the radar gets ahead of.
    pub supersede_stale: bool,
    /// Campaign-clock seconds between scans (the paper's 30-second
    /// cadence). Volume scan timestamps and the receiver's staleness clock
    /// both advance by this much per cycle.
    pub scan_interval_s: f64,
    /// Reject volumes whose scan timestamp is older than this at receive
    /// time; `None` disables the staleness check.
    pub stale_horizon_s: Option<f64>,
    /// Deterministic fault injection schedule.
    pub faults: FaultPlan,
}

impl Default for CycleSupervisor {
    fn default() -> Self {
        Self {
            pipeline: RealtimePipeline::default(),
            stall_timeout: Duration::from_millis(50),
            max_restarts: 3,
            backoff_base: Duration::from_millis(5),
            assimilation_deadline: None,
            forecast_deadline: None,
            supersede_stale: false,
            scan_interval_s: 30.0,
            stale_horizon_s: Some(90.0),
            faults: FaultPlan::none(),
        }
    }
}

/// Scan-side metadata for one cycle. `payload` is `Err` when no volume was
/// sent through the pipe (dropped scan or scan-stage failure).
struct ScanMeta {
    cycle: usize,
    t_obs: Instant,
    scan_s: f64,
    payload: Result<PayloadMeta, StageError>,
}

#[derive(Clone, Copy)]
struct PayloadMeta {
    checksum: u64,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What [`CycleSupervisor::receive_volume`] recovered for one cycle.
struct ReceivedVolume {
    retries: usize,
    drops: Vec<DeliveryDrop>,
    payload: Bytes,
}

/// What the assimilation thread hands the forecast thread per cycle.
struct AssimOutcome<P> {
    meta: ScanMeta,
    retries: usize,
    drops: Vec<DeliveryDrop>,
    transfer_s: f64,
    assim_s: f64,
    result: Result<P, StageError>,
}

impl CycleSupervisor {
    /// Run `n_cycles` under supervision.
    ///
    /// The stage closures mirror [`RealtimePipeline::run`] but return
    /// `Result` so recoverable failures flow into the degradation ladder
    /// (panics are additionally caught at every stage boundary):
    ///
    /// * `scan(cycle)` produces the encoded volume;
    /// * `assimilate(cycle, volume)` returns the analysis product;
    /// * `forecast(cycle, input)` consumes a [`ForecastInput`] — fresh
    ///   analysis, previous analysis, or persistence.
    pub fn run<P, S, A, F>(
        &self,
        n_cycles: usize,
        scan: S,
        assimilate: A,
        forecast: F,
    ) -> SupervisorReport
    where
        P: Send,
        S: FnMut(usize) -> Result<Bytes, String> + Send,
        A: FnMut(usize, Bytes) -> Result<P, String> + Send,
        F: FnMut(usize, ForecastInput<'_, P>) -> Result<(), String> + Send,
    {
        self.run_with_egress(n_cycles, scan, assimilate, forecast, |_, _| None)
    }

    /// [`run`](Self::run) with an egress stage attached to the forecast
    /// thread.
    ///
    /// After each cycle's disposition is decided, `egress(cycle,
    /// &disposition)` runs panic-isolated; whatever note it returns lands
    /// in [`CycleReport::egress`] and the outcome table. The egress stage
    /// can never change a disposition — a publishing failure (or panic) is
    /// recorded, not escalated, because the product itself was already
    /// produced. Cycles that never reach the forecast thread (superseded,
    /// assimilation-deadline skips) publish nothing and carry no note.
    pub fn run_with_egress<P, S, A, F, E>(
        &self,
        n_cycles: usize,
        mut scan: S,
        mut assimilate: A,
        mut forecast: F,
        mut egress: E,
    ) -> SupervisorReport
    where
        P: Send,
        S: FnMut(usize) -> Result<Bytes, String> + Send,
        A: FnMut(usize, Bytes) -> Result<P, String> + Send,
        F: FnMut(usize, ForecastInput<'_, P>) -> Result<(), String> + Send,
        E: FnMut(usize, &CycleDisposition) -> Option<String> + Send,
    {
        let capacity = self.pipeline.capacity;
        let (vol_tx, vol_rx) =
            sequenced_pipe(self.pipeline.chunk_bytes, capacity, self.stale_horizon_s);
        let (meta_tx, meta_rx) = bounded::<ScanMeta>(capacity);
        let (ana_tx, ana_rx) = bounded::<AssimOutcome<P>>(capacity);
        let (out_tx, out_rx) = bounded::<CycleReport>(n_cycles.max(1));
        let out_tx_assim = out_tx.clone();
        let plan = &self.faults;

        std::thread::scope(|s| {
            // Radar thread: scan (panic-isolated), checksum at T_obs, then
            // apply scheduled payload corruption *after* the checksum — the
            // supervised receiver must catch it. Volumes are sequenced with
            // the cycle index and the campaign-clock scan time; dup/stale
            // faults replay or back-date the send.
            s.spawn(move || {
                let mut vol_tx = vol_tx;
                for cycle in 0..n_cycles {
                    let t0 = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
                    if plan.has(cycle, Fault::DropScan) {
                        let meta = ScanMeta {
                            cycle,
                            t_obs: Instant::now(), // bda-check: allow(wallclock) — wall-time telemetry column
                            scan_s: 0.0,
                            payload: Err(StageError::ScanDropped),
                        };
                        if meta_tx.send(meta).is_err() {
                            break;
                        }
                        continue;
                    }
                    let inject_panic = plan.has(cycle, Fault::StagePanic(Stage::Scan));
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if inject_panic {
                            panic!("injected scan panic (cycle {cycle})");
                        }
                        scan(cycle)
                    }));
                    let t_obs = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
                    let scan_s = (t_obs - t0).as_secs_f64();
                    let payload = match result {
                        Err(p) => Err(StageError::Panicked {
                            stage: Stage::Scan,
                            message: panic_message(p),
                        }),
                        Ok(Err(message)) => Err(StageError::Failed {
                            stage: Stage::Scan,
                            message,
                        }),
                        Ok(Ok(volume)) => {
                            let checksum = fnv1a(&volume);
                            let wire = if plan.has(cycle, Fault::CorruptVolume) {
                                let mut bytes = volume.to_vec();
                                FaultPlan::corrupt_payload(&mut bytes);
                                Bytes::from(bytes)
                            } else {
                                volume
                            };
                            let meta = ScanMeta {
                                cycle,
                                t_obs,
                                scan_s,
                                payload: Ok(PayloadMeta { checksum }),
                            };
                            if meta_tx.send(meta).is_err() {
                                return;
                            }
                            let scan_time = if plan.has(cycle, Fault::StaleScan) {
                                // Back-date far past any plausible horizon.
                                cycle as f64 * self.scan_interval_s
                                    - self.stale_horizon_s.unwrap_or(0.0)
                                    - 10.0 * self.scan_interval_s.max(1.0)
                            } else {
                                cycle as f64 * self.scan_interval_s
                            };
                            if vol_tx
                                .send_with_seq(cycle as u64, scan_time, &wire)
                                .is_err()
                            {
                                return;
                            }
                            if plan.has(cycle, Fault::DuplicateVolume)
                                && vol_tx
                                    .send_with_seq(cycle as u64, scan_time, &wire)
                                    .is_err()
                            {
                                return;
                            }
                            continue;
                        }
                    };
                    let meta = ScanMeta {
                        cycle,
                        t_obs,
                        scan_s,
                        payload,
                    };
                    if meta_tx.send(meta).is_err() {
                        break;
                    }
                }
            });

            // Assimilation thread: newest-scan-wins, watchdog + retry on
            // the transfer, checksum verification, panic-isolated
            // assimilation under a deadline.
            s.spawn(move || {
                let mut vol_rx = vol_rx;
                while let Ok(first) = meta_rx.recv() {
                    let mut meta = first;
                    if self.supersede_stale {
                        let mut superseded = Vec::new();
                        while let Ok(newer) = meta_rx.try_recv() {
                            superseded.push(std::mem::replace(&mut meta, newer));
                        }
                        let by = meta.cycle;
                        for old in superseded {
                            let _ = out_tx_assim.send(CycleReport {
                                cycle: old.cycle,
                                disposition: CycleDisposition::Skipped {
                                    cause: SkipCause::Superseded { by },
                                },
                                timing: None,
                                transfer_retries: 0,
                                drops: Vec::new(),
                                egress: None,
                            });
                        }
                    }
                    let cycle = meta.cycle;
                    match meta.payload {
                        Err(ref e) => {
                            let result = Err(e.clone());
                            if ana_tx
                                .send(AssimOutcome {
                                    meta,
                                    retries: 0,
                                    drops: Vec::new(),
                                    transfer_s: 0.0,
                                    assim_s: 0.0,
                                    result,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                        Ok(pm) => {
                            let received = self.receive_volume(&mut vol_rx, cycle);
                            let transfer_s = meta.t_obs.elapsed().as_secs_f64();
                            let (retries, drops, volume) = match received {
                                Ok(r) => (r.retries, r.drops, r.payload),
                                Err((retries, drops, e)) => {
                                    let _ = ana_tx.send(AssimOutcome {
                                        meta,
                                        retries,
                                        drops,
                                        transfer_s,
                                        assim_s: 0.0,
                                        result: Err(e),
                                    });
                                    continue;
                                }
                            };
                            let got = fnv1a(&volume);
                            if got != pm.checksum {
                                let err = StageError::CorruptVolume {
                                    expected: pm.checksum,
                                    got,
                                };
                                let _ = ana_tx.send(AssimOutcome {
                                    meta,
                                    retries,
                                    drops,
                                    transfer_s,
                                    assim_s: 0.0,
                                    result: Err(err),
                                });
                                continue;
                            }
                            let inject_panic =
                                plan.has(cycle, Fault::StagePanic(Stage::Assimilation));
                            let t1 = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                if inject_panic {
                                    panic!("injected assimilation panic (cycle {cycle})");
                                }
                                assimilate(cycle, volume)
                            }));
                            let assim_s = t1.elapsed().as_secs_f64();
                            let result = match outcome {
                                Err(p) => Err(StageError::Panicked {
                                    stage: Stage::Assimilation,
                                    message: panic_message(p),
                                }),
                                Ok(Err(message)) => Err(StageError::Failed {
                                    stage: Stage::Assimilation,
                                    message,
                                }),
                                Ok(Ok(product)) => Ok(product),
                            };
                            if result.is_ok() {
                                if let Some(deadline) = self.assimilation_deadline {
                                    let deadline_s = deadline.as_secs_f64();
                                    if assim_s > deadline_s {
                                        // Late analysis: discard the product
                                        // rather than delay every later cycle.
                                        let _ = out_tx_assim.send(CycleReport {
                                            cycle,
                                            disposition: CycleDisposition::Skipped {
                                                cause: SkipCause::Deadline(
                                                    StageError::DeadlineExceeded {
                                                        stage: Stage::Assimilation,
                                                        elapsed_s: assim_s,
                                                        deadline_s,
                                                    },
                                                ),
                                            },
                                            timing: None,
                                            transfer_retries: retries,
                                            drops,
                                            egress: None,
                                        });
                                        continue;
                                    }
                                }
                            }
                            if ana_tx
                                .send(AssimOutcome {
                                    meta,
                                    retries,
                                    drops,
                                    transfer_s,
                                    assim_s,
                                    result,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                    }
                }
            });

            // Forecast thread: degradation ladder, panic-isolated forecast
            // under a deadline, final disposition.
            s.spawn(move || {
                let mut last_good: Option<P> = None;
                while let Ok(AssimOutcome {
                    meta,
                    retries,
                    drops,
                    transfer_s,
                    assim_s,
                    result,
                }) = ana_rx.recv()
                {
                    let cycle = meta.cycle;
                    let (fresh, degradation) = match result {
                        Ok(product) => (Some(product), None),
                        Err(cause) => {
                            // Ladder: an assimilation-side failure means
                            // observations arrived but no analysis was
                            // computed — continue from the previous one if
                            // it exists. Anything earlier (no scan, lost or
                            // corrupt volume) means no usable observations:
                            // persistence.
                            let assimilation_side = matches!(
                                &cause,
                                StageError::Panicked {
                                    stage: Stage::Assimilation,
                                    ..
                                } | StageError::Failed {
                                    stage: Stage::Assimilation,
                                    ..
                                }
                            );
                            let mode = if assimilation_side && last_good.is_some() {
                                DegradedMode::PreviousAnalysis
                            } else {
                                DegradedMode::Persistence
                            };
                            (None, Some((mode, cause)))
                        }
                    };
                    let input = match (&fresh, &degradation) {
                        (Some(p), _) => ForecastInput::Analysis(p),
                        (None, Some((DegradedMode::PreviousAnalysis, _))) => {
                            match last_good.as_ref() {
                                Some(prev) => ForecastInput::PreviousAnalysis(prev),
                                None => ForecastInput::Persistence,
                            }
                        }
                        _ => ForecastInput::Persistence,
                    };
                    let inject_panic = plan.has(cycle, Fault::StagePanic(Stage::Forecast));
                    let t2 = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if inject_panic {
                            panic!("injected forecast panic (cycle {cycle})");
                        }
                        forecast(cycle, input)
                    }));
                    let forecast_s = t2.elapsed().as_secs_f64();
                    let time_to_solution_s = meta.t_obs.elapsed().as_secs_f64();
                    let timing = CycleTiming {
                        cycle,
                        scan_s: meta.scan_s,
                        transfer_s,
                        assimilation_s: assim_s,
                        forecast_s,
                        time_to_solution_s,
                    };
                    let disposition = match outcome {
                        Err(p) => CycleDisposition::Failed {
                            cause: StageError::Panicked {
                                stage: Stage::Forecast,
                                message: panic_message(p),
                            },
                        },
                        Ok(Err(message)) => CycleDisposition::Failed {
                            cause: StageError::Failed {
                                stage: Stage::Forecast,
                                message,
                            },
                        },
                        Ok(Ok(())) => {
                            let late = self.forecast_deadline.and_then(|d| {
                                let deadline_s = d.as_secs_f64();
                                (forecast_s > deadline_s).then_some(deadline_s)
                            });
                            match (late, degradation) {
                                (Some(deadline_s), _) => CycleDisposition::Skipped {
                                    cause: SkipCause::Deadline(StageError::DeadlineExceeded {
                                        stage: Stage::Forecast,
                                        elapsed_s: forecast_s,
                                        deadline_s,
                                    }),
                                },
                                (None, None) => CycleDisposition::Completed,
                                (None, Some((mode, cause))) => {
                                    CycleDisposition::Degraded { mode, cause }
                                }
                            }
                        }
                    };
                    // A fresh analysis is valid even if this forecast run
                    // failed — keep it for the next cycle's ladder.
                    if let Some(p) = fresh {
                        last_good = Some(p);
                    }
                    // Egress runs after the disposition is final: a stalled
                    // or panicking publisher is a recorded note, never a
                    // changed outcome.
                    let egress_note =
                        match catch_unwind(AssertUnwindSafe(|| egress(cycle, &disposition))) {
                            Ok(note) => note,
                            Err(p) => Some(format!("egress panicked: {}", panic_message(p))),
                        };
                    let _ = out_tx.send(CycleReport {
                        cycle,
                        disposition,
                        timing: Some(timing),
                        transfer_retries: retries,
                        drops,
                        egress: egress_note,
                    });
                }
            });
        });

        let mut cycles: Vec<CycleReport> = out_rx.try_iter().collect();
        cycles.sort_by_key(|c| c.cycle);
        SupervisorReport { cycles }
    }

    /// Wait for `cycle`'s volume under the stall watchdog, retrying with
    /// bounded exponential backoff. Duplicate and out-of-order volumes
    /// (replays, leftovers from abandoned or superseded cycles) are dropped
    /// and recorded; stale scans and mid-stream truncation surface as their
    /// own typed [`StageError`]s.
    ///
    /// Injected `TransferStall` faults consume the first watchdog windows
    /// deterministically: the receiver behaves exactly as if the stream had
    /// been silent for that many windows, regardless of thread scheduling.
    fn receive_volume(
        &self,
        vol_rx: &mut SequencedReceiver,
        cycle: usize,
    ) -> Result<ReceivedVolume, (usize, Vec<DeliveryDrop>, StageError)> {
        // The receiver's campaign clock: cycle C runs at C * interval.
        let now = cycle as f64 * self.scan_interval_s;
        let mut injected_left = self.faults.stall_timeouts(cycle);
        let mut timeouts = 0usize;
        let mut drops = Vec::new();
        // Shared retry policy (unjittered so the watchdog's historical
        // delay schedule — base * 2^min(n-1, 4) — is preserved exactly).
        let mut backoff = Backoff::new(self.backoff_base, self.backoff_base * 16);
        loop {
            let stalled = if injected_left > 0 {
                injected_left -= 1;
                std::thread::sleep(self.stall_timeout);
                true
            } else {
                match vol_rx.recv_timeout(now, self.stall_timeout) {
                    Ok(v) => {
                        if v.seq < cycle as u64 {
                            // Late volume from an abandoned cycle: newest
                            // (this cycle) wins.
                            drops.push(DeliveryDrop::OutOfOrder {
                                seq: v.seq,
                                newest: cycle as u64,
                            });
                            continue;
                        }
                        if v.seq > cycle as u64 {
                            return Err((
                                timeouts,
                                drops,
                                StageError::Pipe(format!(
                                    "volume seq {} ahead of expected cycle {cycle}",
                                    v.seq
                                )),
                            ));
                        }
                        return Ok(ReceivedVolume {
                            retries: timeouts,
                            drops,
                            payload: v.payload,
                        });
                    }
                    Err(DeliveryError::Duplicate { seq }) => {
                        drops.push(DeliveryDrop::Duplicate { seq });
                        continue;
                    }
                    Err(DeliveryError::OutOfOrder { seq, newest }) => {
                        drops.push(DeliveryDrop::OutOfOrder { seq, newest });
                        continue;
                    }
                    Err(DeliveryError::Stale {
                        age_s, horizon_s, ..
                    }) => {
                        return Err((timeouts, drops, StageError::StaleScan { age_s, horizon_s }));
                    }
                    Err(DeliveryError::Truncated { expected, got }) => {
                        return Err((
                            timeouts,
                            drops,
                            StageError::TruncatedVolume { expected, got },
                        ));
                    }
                    Err(DeliveryError::Pipe(PipeError::Stalled)) => true,
                    Err(e) => return Err((timeouts, drops, StageError::Pipe(e.to_string()))),
                }
            };
            if stalled {
                timeouts += 1;
                if timeouts > self.max_restarts {
                    return Err((
                        timeouts,
                        drops,
                        StageError::TransferTimeout { attempts: timeouts },
                    ));
                }
                if let Some(delay) = backoff.next_delay() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_stages(
        n: usize,
        sup: &CycleSupervisor,
    ) -> (SupervisorReport, Vec<(usize, &'static str)>) {
        let log = std::sync::Mutex::new(Vec::new());
        let report = sup.run(
            n,
            |c| Ok(Bytes::from(vec![c as u8; 100])),
            |c, v: Bytes| {
                assert_eq!(v.len(), 100);
                Ok(c * 10)
            },
            |c, input: ForecastInput<'_, usize>| {
                let kind = match input {
                    ForecastInput::Analysis(p) => {
                        assert_eq!(*p, c * 10);
                        "fresh"
                    }
                    ForecastInput::PreviousAnalysis(_) => "previous",
                    ForecastInput::Persistence => "persistence",
                };
                log.lock().unwrap().push((c, kind));
                Ok(())
            },
        );
        (report, log.into_inner().unwrap())
    }

    #[test]
    fn clean_run_all_cycles_complete() {
        let sup = CycleSupervisor::default();
        let (report, log) = counting_stages(6, &sup);
        assert_eq!(report.cycles.len(), 6);
        assert_eq!(report.completed(), 6);
        assert_eq!(report.availability(), 1.0);
        assert!(log.iter().all(|(_, k)| *k == "fresh"));
        for (i, c) in report.cycles.iter().enumerate() {
            assert_eq!(c.cycle, i);
            assert!(c.timing.is_some());
            assert_eq!(c.transfer_retries, 0);
        }
    }

    #[test]
    fn empty_run_reports_nothing() {
        let sup = CycleSupervisor::default();
        let (report, _) = counting_stages(0, &sup);
        assert!(report.cycles.is_empty());
        assert_eq!(report.availability(), 1.0);
    }

    #[test]
    fn assimilation_panic_degrades_to_previous_analysis() {
        let sup = CycleSupervisor {
            faults: FaultPlan::none().panic_at(Stage::Assimilation, 2),
            ..CycleSupervisor::default()
        };
        let (report, log) = counting_stages(5, &sup);
        assert_eq!(report.cycles.len(), 5);
        assert_eq!(report.completed(), 4);
        assert_eq!(report.degraded(), 1);
        match &report.cycles[2].disposition {
            CycleDisposition::Degraded { mode, cause } => {
                assert_eq!(*mode, DegradedMode::PreviousAnalysis);
                assert!(matches!(
                    cause,
                    StageError::Panicked {
                        stage: Stage::Assimilation,
                        ..
                    }
                ));
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        assert_eq!(log[2], (2, "previous"));
        // Neighbours unaffected.
        assert_eq!(log[1], (1, "fresh"));
        assert_eq!(log[3], (3, "fresh"));
    }

    #[test]
    fn first_cycle_assimilation_panic_falls_to_persistence() {
        // No previous analysis exists yet, so the ladder bottoms out.
        let sup = CycleSupervisor {
            faults: FaultPlan::none().panic_at(Stage::Assimilation, 0),
            ..CycleSupervisor::default()
        };
        let (report, log) = counting_stages(3, &sup);
        match &report.cycles[0].disposition {
            CycleDisposition::Degraded { mode, .. } => {
                assert_eq!(*mode, DegradedMode::Persistence)
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        assert_eq!(log[0], (0, "persistence"));
    }

    #[test]
    fn dropped_scan_forecasts_from_persistence() {
        let sup = CycleSupervisor {
            faults: FaultPlan::none().drop_scan(1),
            ..CycleSupervisor::default()
        };
        let (report, log) = counting_stages(3, &sup);
        match &report.cycles[1].disposition {
            CycleDisposition::Degraded { mode, cause } => {
                assert_eq!(*mode, DegradedMode::Persistence);
                assert_eq!(*cause, StageError::ScanDropped);
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        assert_eq!(log[1], (1, "persistence"));
        assert_eq!(report.availability(), 1.0);
    }

    #[test]
    fn corrupt_volume_rejected_by_checksum() {
        let sup = CycleSupervisor {
            faults: FaultPlan::none().corrupt_volume(2),
            ..CycleSupervisor::default()
        };
        let (report, log) = counting_stages(4, &sup);
        match &report.cycles[2].disposition {
            CycleDisposition::Degraded { mode, cause } => {
                assert_eq!(*mode, DegradedMode::Persistence);
                assert!(matches!(cause, StageError::CorruptVolume { .. }));
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        assert_eq!(log[2], (2, "persistence"));
    }

    #[test]
    fn duplicate_volume_dropped_and_reported() {
        let sup = CycleSupervisor {
            faults: FaultPlan::none().duplicate_volume(1),
            ..CycleSupervisor::default()
        };
        let (report, log) = counting_stages(4, &sup);
        // Every cycle still completes: the replayed copy is dropped, not
        // assimilated twice.
        assert_eq!(report.completed(), 4);
        assert!(log.iter().all(|(_, k)| *k == "fresh"));
        // The duplicate surfaces while waiting for the *next* cycle's
        // volume, as a typed drop on that cycle's report.
        let drops: Vec<_> = report.cycles.iter().flat_map(|c| &c.drops).collect();
        assert_eq!(drops, vec![&DeliveryDrop::Duplicate { seq: 1 }]);
        assert!(report.cycles[2]
            .drops
            .contains(&DeliveryDrop::Duplicate { seq: 1 }));
        assert!(
            report.table().contains("dropped duplicate seq 1"),
            "table:\n{}",
            report.table()
        );
    }

    #[test]
    fn stale_scan_rejected_with_typed_outcome() {
        let sup = CycleSupervisor {
            faults: FaultPlan::none().stale_scan(2),
            ..CycleSupervisor::default()
        };
        let (report, log) = counting_stages(4, &sup);
        match &report.cycles[2].disposition {
            CycleDisposition::Degraded {
                mode: DegradedMode::Persistence,
                cause: StageError::StaleScan { age_s, horizon_s },
            } => {
                assert_eq!(*horizon_s, 90.0);
                assert!(age_s > horizon_s);
            }
            other => panic!("stale scan should degrade to persistence, got {other:?}"),
        }
        assert_eq!(log[2], (2, "persistence"));
        // Neighbours are untouched and availability holds.
        assert!(matches!(
            report.cycles[3].disposition,
            CycleDisposition::Completed
        ));
        assert!(report.table().contains("stale scan"));
    }

    #[test]
    fn stalled_transfer_retries_and_completes() {
        let sup = CycleSupervisor {
            stall_timeout: Duration::from_millis(10),
            max_restarts: 4,
            backoff_base: Duration::from_millis(1),
            faults: FaultPlan::none().stall_transfer(1, 2),
            ..CycleSupervisor::default()
        };
        let (report, _) = counting_stages(3, &sup);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.cycles[1].transfer_retries, 2);
        assert_eq!(report.cycles[0].transfer_retries, 0);
        // The stalled cycle's transfer time reflects the quiet windows.
        let t = report.cycles[1].timing.unwrap();
        assert!(t.transfer_s >= 0.02, "transfer {:.3}", t.transfer_s);
    }

    #[test]
    fn exhausted_transfer_retries_degrade_to_persistence() {
        let sup = CycleSupervisor {
            stall_timeout: Duration::from_millis(5),
            max_restarts: 2,
            backoff_base: Duration::from_millis(1),
            faults: FaultPlan::none().stall_transfer(1, 8),
            ..CycleSupervisor::default()
        };
        let (report, _) = counting_stages(3, &sup);
        match &report.cycles[1].disposition {
            CycleDisposition::Degraded { mode, cause } => {
                assert_eq!(*mode, DegradedMode::Persistence);
                assert_eq!(*cause, StageError::TransferTimeout { attempts: 3 });
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        // The abandoned volume must not poison later cycles.
        assert!(matches!(
            report.cycles[2].disposition,
            CycleDisposition::Completed
        ));
    }

    #[test]
    fn forecast_panic_is_failed_but_isolated() {
        let sup = CycleSupervisor {
            faults: FaultPlan::none().panic_at(Stage::Forecast, 1),
            ..CycleSupervisor::default()
        };
        let (report, _) = counting_stages(3, &sup);
        assert!(matches!(
            report.cycles[1].disposition,
            CycleDisposition::Failed {
                cause: StageError::Panicked {
                    stage: Stage::Forecast,
                    ..
                }
            }
        ));
        assert!(matches!(
            report.cycles[2].disposition,
            CycleDisposition::Completed
        ));
    }

    #[test]
    fn assimilation_deadline_skips_late_cycle() {
        let sup = CycleSupervisor {
            assimilation_deadline: Some(Duration::from_millis(5)),
            ..CycleSupervisor::default()
        };
        let report = sup.run(
            3,
            |_| Ok(Bytes::from_static(b"v")),
            |c, _| {
                if c == 1 {
                    std::thread::sleep(Duration::from_millis(30));
                }
                Ok(c)
            },
            |_, _: ForecastInput<'_, usize>| Ok(()),
        );
        assert!(matches!(
            &report.cycles[1].disposition,
            CycleDisposition::Skipped {
                cause: SkipCause::Deadline(StageError::DeadlineExceeded {
                    stage: Stage::Assimilation,
                    ..
                })
            }
        ));
        assert!(report.cycles[1].timing.is_none());
        assert!(matches!(
            report.cycles[2].disposition,
            CycleDisposition::Completed
        ));
    }

    #[test]
    fn slow_assimilation_supersedes_stale_scans() {
        // Scans arrive every ~2 ms but each assimilation takes ~40 ms: by
        // the time a cycle finishes, several scans are queued; the
        // supervisor must jump to the newest and skip the rest.
        let sup = CycleSupervisor {
            supersede_stale: true,
            ..CycleSupervisor::default()
        };
        let assimilated = std::sync::Mutex::new(Vec::new());
        let report = sup.run(
            8,
            |c| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(Bytes::from(vec![c as u8]))
            },
            |c, _| {
                assimilated.lock().unwrap().push(c);
                std::thread::sleep(Duration::from_millis(40));
                Ok(c)
            },
            |_, _: ForecastInput<'_, usize>| Ok(()),
        );
        assert_eq!(report.cycles.len(), 8);
        let skipped = report.skipped();
        assert!(skipped > 0, "expected superseded cycles, got none");
        for c in &report.cycles {
            if let CycleDisposition::Skipped {
                cause: SkipCause::Superseded { by },
            } = &c.disposition
            {
                assert!(*by > c.cycle, "superseded by an older cycle");
            }
        }
        // The last cycle is never superseded.
        assert!(report.cycles[7].disposition.delivered_forecast());
    }

    #[test]
    fn report_table_mentions_every_cycle_and_availability() {
        let sup = CycleSupervisor {
            faults: FaultPlan::none().corrupt_volume(1),
            ..CycleSupervisor::default()
        };
        let (report, _) = counting_stages(3, &sup);
        let table = report.table();
        assert!(table.contains("availability"));
        assert!(table.contains("degraded"));
        // Per-stage wall-clock columns: ingest, analysis, forecast,
        // end-to-end.
        for col in ["obs(ms)", "letkf(ms)", "fcst(ms)", "tts(ms)"] {
            assert!(table.contains(col), "missing column {col}:\n{table}");
        }
        for c in 0..3 {
            assert!(
                table.contains(&format!("\n{c:5}  ")),
                "missing cycle {c}:\n{table}"
            );
        }
    }

    #[test]
    fn egress_notes_reach_report_and_table() {
        let sup = CycleSupervisor {
            faults: FaultPlan::none().drop_scan(1),
            ..CycleSupervisor::default()
        };
        let report = sup.run_with_egress(
            3,
            |c| Ok(Bytes::from(vec![c as u8; 16])),
            |c, _| Ok(c),
            |_, _: ForecastInput<'_, usize>| Ok(()),
            |c, d| Some(format!("published cycle {c} ({})", d.label())),
        );
        assert_eq!(report.cycles.len(), 3);
        assert_eq!(
            report.cycles[0].egress.as_deref(),
            Some("published cycle 0 (completed)")
        );
        // The degraded cycle still publishes (last-good product).
        assert_eq!(
            report.cycles[1].egress.as_deref(),
            Some("published cycle 1 (degraded)")
        );
        let table = report.table();
        assert!(table.contains("egress"), "missing column:\n{table}");
        assert!(
            table.contains("published cycle 2"),
            "missing note:\n{table}"
        );
    }

    #[test]
    fn egress_panic_is_recorded_not_escalated() {
        let sup = CycleSupervisor::default();
        let report = sup.run_with_egress(
            3,
            |c| Ok(Bytes::from(vec![c as u8; 16])),
            |c, _| Ok(c),
            |_, _: ForecastInput<'_, usize>| Ok(()),
            |c, _| {
                if c == 1 {
                    panic!("injected egress panic");
                }
                None
            },
        );
        // The publisher dying cannot change the forecast's outcome.
        assert_eq!(report.completed(), 3);
        assert!(report.cycles[1]
            .egress
            .as_deref()
            .is_some_and(|e| e.contains("egress panicked")));
        assert_eq!(report.cycles[2].egress, None);
    }

    #[test]
    fn table_has_no_egress_column_without_notes() {
        let sup = CycleSupervisor::default();
        let (report, _) = counting_stages(2, &sup);
        assert!(!report.table().contains("egress"));
    }

    #[test]
    fn no_faults_matches_unsupervised_semantics() {
        // Same closures through RealtimePipeline and CycleSupervisor with
        // no faults: both must see every cycle with a fresh analysis.
        let p = RealtimePipeline::default();
        let plain = p.run(
            4,
            |c| Bytes::from(vec![c as u8; 10]),
            |c, _| c,
            |c, product| assert_eq!(product, c),
        );
        let sup = CycleSupervisor::default();
        let (report, log) = counting_stages(4, &sup);
        assert_eq!(plain.len(), report.cycles.len());
        assert_eq!(report.completed(), 4);
        assert!(log.iter().all(|(_, k)| *k == "fresh"));
    }
}
