//! Process-level supervision of a shard federation.
//!
//! The [`supervisor`](crate::supervisor) module hardens the *stages* of one
//! 30-second cycle inside a single process; this module hardens the
//! *processes* of a sharded federation. Each LETKF shard runs as its own OS
//! process (`bda-shard` workers spawned by `examples/federation.rs`), and
//! the supervisor's only view of them is the pair of traits defined here:
//! a [`ShardProcess`] it can poll and kill, and a [`FederationBus`] control
//! plane (per-cycle readiness records, dead markers, the forecast-only
//! directive) implemented by `bda_shard::HaloBus`. Keeping the supervisor
//! behind traits means its full fault ladder is unit-tested here with fake
//! processes and a fake bus — deterministically, without spawning anything.
//!
//! Per cycle the supervisor:
//!
//! 1. injects any scheduled `shardkill` faults (hard-kills the process);
//! 2. polls every live shard until its cycle record appears on the bus
//!    ([`ShardHealth::Healthy`]) or the cycle deadline expires
//!    ([`ShardHealth::Lagging`]);
//! 3. respawns exited shards within a per-shard budget
//!    ([`ShardHealth::Respawning`] — the worker resumes from its own
//!    scoped checkpoint and replays from the bus), and past the budget
//!    marks them dead on the bus ([`ShardHealth::Dead`]) so neighbours
//!    stop waiting and widen their boundary assumption;
//! 4. if live shards drop below quorum, posts the federation-wide
//!    forecast-only directive — the bottom rung of the shard ladder.

use crate::fault::FaultPlan;
use std::time::{Duration, Instant};

/// Typed per-shard health as seen by the supervisor for one cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Cycle record on the bus before the deadline.
    Healthy,
    /// Still running at the deadline with no record — peers step their
    /// degradation ladder, the supervisor keeps the process alive.
    Lagging,
    /// Exited (or was killed) this cycle and was restarted within the
    /// respawn budget; it is replaying toward the federation's cycle.
    Respawning,
    /// Respawn budget exhausted (or respawn failed): marked dead on the
    /// bus, never polled again.
    Dead,
}

impl std::fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Lagging => "lagging",
            ShardHealth::Respawning => "respawning",
            ShardHealth::Dead => "dead",
        })
    }
}

/// Typed health of one transport link, as reported by a shard's socket
/// transport on the control plane. The file bus has no links, so file
/// federations simply never report any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkHealth {
    /// The link is up and traffic flows.
    Connected,
    /// The link is up but has been dropping and reconnecting — suspect,
    /// yet not worth degrading over on its own.
    Flapping,
    /// The peer has been unreachable past the partition deadline; every
    /// send fails and reconnects are being refused.
    Partitioned,
}

impl std::fmt::Display for LinkHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LinkHealth::Connected => "connected",
            LinkHealth::Flapping => "flapping",
            LinkHealth::Partitioned => "partitioned",
        })
    }
}

impl std::str::FromStr for LinkHealth {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "connected" => Ok(LinkHealth::Connected),
            "flapping" => Ok(LinkHealth::Flapping),
            "partitioned" => Ok(LinkHealth::Partitioned),
            other => Err(format!("unknown link health `{other}`")),
        }
    }
}

/// The minimal process handle the supervisor needs. Implemented for
/// [`std::process::Child`]; tests substitute a deterministic fake.
pub trait ShardProcess {
    /// Non-blocking exit probe: `None` while running, `Some(clean)` once
    /// exited (`clean` = exit status reported success).
    fn poll_exit(&mut self) -> Option<bool>;
    /// Hard-kill the process (the SIGKILL flavour — no grace).
    fn kill(&mut self);
}

impl ShardProcess for std::process::Child {
    fn poll_exit(&mut self) -> Option<bool> {
        match self.try_wait() {
            Ok(Some(status)) => Some(status.success()),
            Ok(None) => None,
            // The probe itself failing means we can no longer supervise
            // the process; treat it as an unclean exit so it gets the
            // respawn path rather than an eternal Healthy.
            Err(_) => Some(false),
        }
    }

    fn kill(&mut self) {
        let _ = std::process::Child::kill(self);
        let _ = self.wait();
    }
}

/// Control-plane view of the federation bus. `bda_shard::HaloBus` provides
/// all four operations (`has_record`, `mark_dead`/`mark_alive`,
/// `set_forecast_only_from`); the trait keeps `bda-workflow` free of a
/// dependency on the shard crate and the supervisor testable with a fake.
pub trait FederationBus {
    /// Whether shard `shard` has finished `cycle` (its outcome record is
    /// on the bus).
    fn shard_ready(&self, cycle: u64, shard: usize) -> bool;
    /// Publish a dead marker: neighbours stop waiting for this shard and
    /// widen their boundary assumption.
    fn mark_dead(&self, shard: usize);
    /// Lift the dead marker (the shard respawned after all).
    fn mark_alive(&self, shard: usize);
    /// Post the federation-wide forecast-only directive from `cycle` on.
    fn set_forecast_only_from(&self, cycle: u64);
    /// Shard `shard`'s view of its links to every peer, as published on
    /// the control plane by its transport. An empty vector means "no link
    /// telemetry" (the file bus) and never counts against the shard.
    fn link_health(&self, _shard: usize) -> Vec<LinkHealth> {
        Vec::new()
    }
}

/// Supervisor policy knobs.
#[derive(Clone, Debug)]
pub struct ShardSupervisorConfig {
    pub n_shards: usize,
    pub n_cycles: usize,
    /// Per-cycle readiness deadline; shards still silent at expiry are
    /// [`ShardHealth::Lagging`] for the cycle.
    pub cycle_deadline: Duration,
    /// Respawns allowed per shard over the whole campaign.
    pub max_respawns: usize,
    /// Minimum live (non-dead) shards for assimilation to continue; below
    /// this the forecast-only directive is posted.
    pub quorum: usize,
    /// Poll interval while waiting on readiness.
    pub poll: Duration,
    /// How long to let surviving workers exit on their own once the
    /// campaign is over before the backstop kill. A worker's last bus
    /// record precedes its final cleanup (checkpoint flushes, socket
    /// teardown); killing at zero grace races that tail work.
    pub shutdown_grace: Duration,
    /// Deterministic fault schedule (`shardkill:S@C` entries are injected
    /// by the supervisor itself; stall/drop faults ride inside the shard
    /// processes' own plans).
    pub plan: FaultPlan,
}

impl ShardSupervisorConfig {
    pub fn new(n_shards: usize, n_cycles: usize) -> Self {
        Self {
            n_shards,
            n_cycles,
            cycle_deadline: Duration::from_secs(60),
            max_respawns: 2,
            quorum: 1.max(n_shards / 2),
            poll: Duration::from_millis(20),
            shutdown_grace: Duration::from_secs(5),
            plan: FaultPlan::none(),
        }
    }
}

/// One cycle's supervision outcome.
#[derive(Clone, Debug)]
pub struct ShardCycleReport {
    pub cycle: u64,
    /// Final per-shard health for the cycle (indexed by shard).
    pub health: Vec<ShardHealth>,
    /// Shards respawned during this cycle.
    pub respawned: Vec<usize>,
    /// Live shards whose every reported link was partitioned this cycle —
    /// unreachable by the rest of the federation, so they do not count
    /// toward quorum even though their process is up.
    pub isolated: Vec<usize>,
    /// Whether the forecast-only directive was active after this cycle.
    pub forecast_only: bool,
}

/// Whole-campaign supervision report.
#[derive(Clone, Debug)]
pub struct FederationReport {
    pub cycles: Vec<ShardCycleReport>,
    /// Total respawns per shard.
    pub respawns: Vec<usize>,
    /// Shards marked dead by the end of the campaign.
    pub dead: Vec<bool>,
    /// The cycle from which the forecast-only directive applies, if posted.
    pub forecast_only_from: Option<u64>,
}

impl FederationReport {
    /// Human-readable per-cycle health table, one column per shard.
    pub fn table(&self) -> String {
        let mut out = String::from("cycle");
        for s in 0..self.respawns.len() {
            out.push_str(&format!("  {:<10}", format!("s{s:03}")));
        }
        out.push('\n');
        for c in &self.cycles {
            out.push_str(&format!("{:5}", c.cycle));
            for h in &c.health {
                out.push_str(&format!("  {:<10}", h.to_string()));
            }
            if !c.isolated.is_empty() {
                out.push_str(&format!("  isolated {:?}", c.isolated));
            }
            out.push('\n');
        }
        let n_dead = self.dead.iter().filter(|&&d| d).count();
        out.push_str(&format!(
            "{} cycles: {} respawns, {} dead{}\n",
            self.cycles.len(),
            self.respawns.iter().sum::<usize>(),
            n_dead,
            match self.forecast_only_from {
                Some(c) => format!(", forecast-only from cycle {c}"),
                None => String::new(),
            }
        ));
        out
    }
}

/// Supervises `n_shards` shard processes through an `n_cycles` campaign.
///
/// Generic over the process handle, the bus, and the spawn factory
/// `FnMut(shard, respawn) -> io::Result<P>` so the whole ladder is
/// unit-testable without OS processes.
pub struct ShardSupervisor<P, B, F>
where
    P: ShardProcess,
    B: FederationBus,
    F: FnMut(usize, bool) -> std::io::Result<P>,
{
    cfg: ShardSupervisorConfig,
    bus: B,
    spawn: F,
    procs: Vec<Option<P>>,
    respawns: Vec<usize>,
    dead: Vec<bool>,
    forecast_only_from: Option<u64>,
}

impl<P, B, F> ShardSupervisor<P, B, F>
where
    P: ShardProcess,
    B: FederationBus,
    F: FnMut(usize, bool) -> std::io::Result<P>,
{
    /// Spawn every shard and return the running supervisor.
    pub fn start(cfg: ShardSupervisorConfig, bus: B, mut spawn: F) -> std::io::Result<Self> {
        let mut procs = Vec::with_capacity(cfg.n_shards);
        for s in 0..cfg.n_shards {
            procs.push(Some(spawn(s, false)?));
        }
        let n = cfg.n_shards;
        Ok(Self {
            cfg,
            bus,
            spawn,
            procs,
            respawns: vec![0; n],
            dead: vec![false; n],
            forecast_only_from: None,
        })
    }

    /// The bus handle (tests inspect the fake through this).
    pub fn bus(&self) -> &B {
        &self.bus
    }

    /// Supervise the whole campaign cycle by cycle.
    pub fn run(&mut self) -> FederationReport {
        let mut cycles = Vec::with_capacity(self.cfg.n_cycles);
        for cycle in 0..self.cfg.n_cycles as u64 {
            cycles.push(self.supervise_cycle(cycle));
        }
        // Reap what is still running: the campaign is over, so surviving
        // workers should exit on their own — give them `shutdown_grace`
        // to finish their tail work (final checkpoints, socket teardown);
        // kill is the backstop that keeps the supervisor from leaking
        // processes on a hung shard.
        let grace_start = Instant::now(); // bda-check: allow(wallclock)
        loop {
            let still_running = self
                .procs
                .iter_mut()
                .flatten()
                .any(|p| p.poll_exit().is_none());
            if !still_running || grace_start.elapsed() >= self.cfg.shutdown_grace {
                break;
            }
            std::thread::sleep(self.cfg.poll);
        }
        for p in self.procs.iter_mut().flatten() {
            if p.poll_exit().is_none() {
                p.kill();
            }
        }
        FederationReport {
            cycles,
            respawns: self.respawns.clone(),
            dead: self.dead.clone(),
            forecast_only_from: self.forecast_only_from,
        }
    }

    /// One cycle of supervision: inject scheduled kills, then poll for
    /// readiness until the deadline, respawning exited shards as they are
    /// discovered. See the module docs for the ladder.
    fn supervise_cycle(&mut self, cycle: u64) -> ShardCycleReport {
        let cycle_idx = usize::try_from(cycle).unwrap_or(usize::MAX);
        for s in self.cfg.plan.shard_kills(cycle_idx) {
            if s < self.procs.len() {
                if let Some(p) = self.procs[s].as_mut() {
                    p.kill();
                }
            }
        }
        let mut health = vec![ShardHealth::Healthy; self.cfg.n_shards];
        for (s, h) in health.iter_mut().enumerate() {
            if self.dead[s] {
                *h = ShardHealth::Dead;
            }
        }
        let mut respawned = Vec::new();
        let start = Instant::now(); // bda-check: allow(wallclock)
        loop {
            let mut all_ready = true;
            for (s, h) in health.iter_mut().enumerate() {
                if self.dead[s] {
                    continue;
                }
                if let Some(exit) = self.procs[s].as_mut().and_then(|p| p.poll_exit()) {
                    // A clean exit means the worker finished its campaign;
                    // drop the handle and let readiness speak for it. An
                    // unclean exit (or our own kill) walks the ladder.
                    self.procs[s] = None;
                    if !exit {
                        if self.try_respawn(s) {
                            *h = ShardHealth::Respawning;
                            if !respawned.contains(&s) {
                                respawned.push(s);
                            }
                        } else {
                            *h = ShardHealth::Dead;
                        }
                    }
                }
                if self.dead[s] {
                    continue;
                }
                if self.bus.shard_ready(cycle, s) {
                    // Keep the Respawning label for the cycle's report even
                    // once the replay catches up — the record should show
                    // the restart happened.
                    if *h != ShardHealth::Respawning {
                        *h = ShardHealth::Healthy;
                    }
                } else {
                    all_ready = false;
                }
            }
            if all_ready {
                break;
            }
            if start.elapsed() >= self.cfg.cycle_deadline {
                for (s, h) in health.iter_mut().enumerate() {
                    if !self.dead[s] && !self.bus.shard_ready(cycle, s) {
                        *h = ShardHealth::Lagging;
                    }
                }
                break;
            }
            std::thread::sleep(self.cfg.poll);
        }
        // A shard whose every link is partitioned is unreachable by its
        // peers even though its process runs: its halos cannot arrive, so
        // for quorum purposes it is as good as dead (without the marker —
        // the partition may heal). File buses report no links and are
        // never isolated.
        let isolated: Vec<usize> = (0..self.cfg.n_shards)
            .filter(|&s| {
                !self.dead[s] && {
                    let links = self.bus.link_health(s);
                    !links.is_empty() && links.iter().all(|l| *l == LinkHealth::Partitioned)
                }
            })
            .collect();
        let live = self.dead.iter().filter(|&&d| !d).count() - isolated.len();
        if live < self.cfg.quorum && self.forecast_only_from.is_none() {
            self.bus.set_forecast_only_from(cycle + 1);
            self.forecast_only_from = Some(cycle + 1);
        }
        ShardCycleReport {
            cycle,
            health,
            respawned,
            isolated,
            forecast_only: self.forecast_only_from.is_some(),
        }
    }

    /// Respawn shard `s` within budget; returns `false` (and marks the
    /// shard dead on the bus) when the budget is spent or the spawn fails.
    fn try_respawn(&mut self, s: usize) -> bool {
        if self.respawns[s] >= self.cfg.max_respawns {
            self.dead[s] = true;
            self.bus.mark_dead(s);
            return false;
        }
        self.respawns[s] += 1;
        match (self.spawn)(s, true) {
            Ok(p) => {
                self.procs[s] = Some(p);
                self.bus.mark_alive(s);
                true
            }
            Err(_) => {
                self.dead[s] = true;
                self.bus.mark_dead(s);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct FakeProc {
        running: bool,
        clean: bool,
    }

    impl ShardProcess for FakeProc {
        fn poll_exit(&mut self) -> Option<bool> {
            if self.running {
                None
            } else {
                Some(self.clean)
            }
        }
        fn kill(&mut self) {
            self.running = false;
            self.clean = false;
        }
    }

    #[derive(Default)]
    struct BusState {
        dead: Vec<usize>,
        revived: Vec<usize>,
        forecast_only_from: Option<u64>,
        never_ready: Option<usize>,
        links: Vec<Vec<LinkHealth>>,
    }

    #[derive(Clone)]
    struct FakeBus(Rc<RefCell<BusState>>);

    impl FederationBus for FakeBus {
        fn shard_ready(&self, _cycle: u64, shard: usize) -> bool {
            self.0.borrow().never_ready != Some(shard)
        }
        fn mark_dead(&self, shard: usize) {
            self.0.borrow_mut().dead.push(shard);
        }
        fn mark_alive(&self, shard: usize) {
            self.0.borrow_mut().revived.push(shard);
        }
        fn set_forecast_only_from(&self, cycle: u64) {
            self.0.borrow_mut().forecast_only_from = Some(cycle);
        }
        fn link_health(&self, shard: usize) -> Vec<LinkHealth> {
            self.0
                .borrow()
                .links
                .get(shard)
                .cloned()
                .unwrap_or_default()
        }
    }

    fn quick(n_shards: usize, n_cycles: usize) -> ShardSupervisorConfig {
        let mut cfg = ShardSupervisorConfig::new(n_shards, n_cycles);
        cfg.cycle_deadline = Duration::from_millis(40);
        cfg.poll = Duration::from_millis(2);
        // Fake processes never exit on their own; a real grace period
        // would only stall the tests on their way to the backstop kill.
        cfg.shutdown_grace = Duration::ZERO;
        cfg
    }

    fn spawner(
        log: Rc<RefCell<Vec<(usize, bool)>>>,
    ) -> impl FnMut(usize, bool) -> std::io::Result<FakeProc> {
        move |s, respawn| {
            log.borrow_mut().push((s, respawn));
            Ok(FakeProc {
                running: true,
                clean: true,
            })
        }
    }

    #[test]
    fn clean_federation_is_all_healthy() {
        let bus = FakeBus(Rc::default());
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sup =
            ShardSupervisor::start(quick(3, 2), bus.clone(), spawner(log.clone())).unwrap();
        let report = sup.run();
        for c in &report.cycles {
            assert_eq!(c.health, vec![ShardHealth::Healthy; 3]);
            assert!(c.respawned.is_empty());
            assert!(!c.forecast_only);
        }
        assert_eq!(report.respawns, [0, 0, 0]);
        assert_eq!(report.dead, [false, false, false]);
        assert_eq!(log.borrow().len(), 3); // initial spawns only
        assert!(report.table().contains("2 cycles: 0 respawns, 0 dead"));
    }

    #[test]
    fn killed_shard_respawns_within_budget() {
        let bus = FakeBus(Rc::default());
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut cfg = quick(2, 3);
        cfg.plan = FaultPlan::none().shard_kill(1, 0);
        let mut sup = ShardSupervisor::start(cfg, bus.clone(), spawner(log.clone())).unwrap();
        let report = sup.run();
        assert_eq!(report.cycles[1].respawned, [0]);
        assert_eq!(report.cycles[1].health[0], ShardHealth::Respawning);
        assert_eq!(report.cycles[2].health[0], ShardHealth::Healthy);
        assert_eq!(report.respawns, [1, 0]);
        assert_eq!(report.dead, [false, false]);
        assert!(log.borrow().contains(&(0, true)));
        assert_eq!(bus.0.borrow().revived, [0]);
        assert!(bus.0.borrow().dead.is_empty());
        assert!(report.table().contains("respawning"));
    }

    #[test]
    fn budget_exhaustion_marks_dead_and_quorum_loss_posts_forecast_only() {
        let bus = FakeBus(Rc::default());
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut cfg = quick(2, 2);
        cfg.max_respawns = 0;
        cfg.quorum = 2;
        cfg.plan = FaultPlan::none().shard_kill(0, 1);
        let mut sup = ShardSupervisor::start(cfg, bus.clone(), spawner(log.clone())).unwrap();
        let report = sup.run();
        assert_eq!(report.cycles[0].health[1], ShardHealth::Dead);
        assert!(report.cycles[0].forecast_only);
        assert_eq!(report.cycles[1].health[1], ShardHealth::Dead);
        assert_eq!(report.dead, [false, true]);
        assert_eq!(bus.0.borrow().dead, [1]);
        assert_eq!(bus.0.borrow().forecast_only_from, Some(1));
        assert_eq!(report.forecast_only_from, Some(1));
        // No respawn was attempted past the budget.
        assert!(!log.borrow().contains(&(1, true)));
        assert!(report
            .table()
            .contains("2 cycles: 0 respawns, 1 dead, forecast-only from cycle 1"));
    }

    #[test]
    fn fully_partitioned_shard_is_isolated_and_costs_quorum() {
        // 3 shards, quorum 2: shard 2's links are all partitioned, so the
        // effective live count is 3 - 1 = 2 — still at quorum, no
        // directive. Then shard 1 isolates too: 1 < 2 posts forecast-only.
        let state = Rc::new(RefCell::new(BusState {
            links: vec![
                vec![LinkHealth::Connected, LinkHealth::Connected],
                vec![LinkHealth::Connected, LinkHealth::Flapping],
                vec![LinkHealth::Partitioned, LinkHealth::Partitioned],
            ],
            ..BusState::default()
        }));
        let bus = FakeBus(state.clone());
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut cfg = quick(3, 1);
        cfg.quorum = 2;
        let mut sup = ShardSupervisor::start(cfg, bus.clone(), spawner(log)).unwrap();
        let report = sup.run();
        assert_eq!(report.cycles[0].isolated, [2]);
        // Flapping alone never isolates, and one isolated shard of three
        // keeps quorum.
        assert!(!report.cycles[0].forecast_only);
        assert_eq!(state.borrow().forecast_only_from, None);
        assert!(report.table().contains("isolated [2]"));

        state.borrow_mut().links[1] = vec![LinkHealth::Partitioned, LinkHealth::Partitioned];
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut cfg = quick(3, 1);
        cfg.quorum = 2;
        let mut sup = ShardSupervisor::start(cfg, bus.clone(), spawner(log)).unwrap();
        let report = sup.run();
        assert_eq!(report.cycles[0].isolated, [1, 2]);
        assert!(report.cycles[0].forecast_only);
        assert_eq!(state.borrow().forecast_only_from, Some(1));
        // Isolation leaves no dead markers: the partition may heal.
        assert!(state.borrow().dead.is_empty());
    }

    #[test]
    fn link_health_round_trips_through_display() {
        for h in [
            LinkHealth::Connected,
            LinkHealth::Flapping,
            LinkHealth::Partitioned,
        ] {
            assert_eq!(h.to_string().parse::<LinkHealth>(), Ok(h));
        }
        assert!("busy".parse::<LinkHealth>().is_err());
    }

    #[test]
    fn silent_shard_is_lagging_at_the_deadline() {
        let state = Rc::new(RefCell::new(BusState {
            never_ready: Some(1),
            ..BusState::default()
        }));
        let bus = FakeBus(state);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sup = ShardSupervisor::start(quick(2, 1), bus.clone(), spawner(log)).unwrap();
        let report = sup.run();
        assert_eq!(
            report.cycles[0].health,
            [ShardHealth::Healthy, ShardHealth::Lagging]
        );
        // Lagging is not dead: no marker, no directive, process kept.
        assert!(bus.0.borrow().dead.is_empty());
        assert_eq!(bus.0.borrow().forecast_only_from, None);
        assert_eq!(report.dead, [false, false]);
    }

    #[test]
    fn failed_respawn_walks_to_dead() {
        let bus = FakeBus(Rc::default());
        let mut cfg = quick(1, 1);
        cfg.quorum = 1;
        cfg.plan = FaultPlan::none().shard_kill(0, 0);
        let mut first = true;
        let spawn = move |_s: usize, respawn: bool| {
            if respawn {
                Err(std::io::Error::other("spawn failed"))
            } else {
                assert!(std::mem::take(&mut first));
                Ok(FakeProc {
                    running: true,
                    clean: true,
                })
            }
        };
        let mut sup = ShardSupervisor::start(cfg, bus.clone(), spawn).unwrap();
        let report = sup.run();
        assert_eq!(report.cycles[0].health, [ShardHealth::Dead]);
        assert_eq!(report.respawns, [1]);
        assert_eq!(bus.0.borrow().dead, [0]);
        assert_eq!(bus.0.borrow().forecast_only_from, Some(1));
    }
}
