//! The live multi-threaded pipeline (Figs. 2 and 4, at reduced scale).
//!
//! Three stages run on their own threads, connected by the JIT-DT byte pipe
//! and a bounded channel, mirroring the production layout:
//!
//! ```text
//! radar thread  --volume bytes-->  assimilation thread  --analysis-->  forecast thread
//!  (MP-PAWR)        (JIT-DT)        (LETKF, part <1>)                 (part <2>)
//! ```
//!
//! The stages overlap across cycles exactly as on Fugaku: while cycle `n`'s
//! 30-minute forecast runs, cycle `n+1` is already being scanned and
//! assimilated. Per-stage wall-clock times are recorded and the
//! time-to-solution is measured from scan completion (`T_obs`) to forecast
//! product completion, the Fig. 4 definition.

use bda_jitdt::pipe::{pipe, PipeReceiver, PipeSender};
use bytes::Bytes;
use crossbeam::channel::bounded;
use std::time::Instant;

/// Wall-clock timing of one cycle through the live pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleTiming {
    pub cycle: usize,
    /// Time spent producing the scan volume (before `T_obs`).
    pub scan_s: f64,
    /// `T_obs` to volume available on the assimilation side.
    pub transfer_s: f64,
    /// Assimilation stage duration.
    pub assimilation_s: f64,
    /// Forecast stage duration.
    pub forecast_s: f64,
    /// `T_obs` to forecast product — the paper's time-to-solution.
    pub time_to_solution_s: f64,
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct RealtimePipeline {
    /// Transfer chunk size through the byte pipe.
    pub chunk_bytes: usize,
    /// In-flight frame capacity (back-pressure depth).
    pub capacity: usize,
}

impl Default for RealtimePipeline {
    fn default() -> Self {
        Self {
            chunk_bytes: 64 * 1024,
            capacity: 64,
        }
    }
}

struct Meta {
    cycle: usize,
    t_obs: Instant,
    scan_s: f64,
}

impl RealtimePipeline {
    /// Run `n_cycles` through the three-stage pipeline.
    ///
    /// * `scan(cycle)` produces the encoded volume (runs on the radar
    ///   thread);
    /// * `assimilate(cycle, volume)` consumes it and returns the analysis
    ///   product handed to the forecast stage;
    /// * `forecast(cycle, analysis)` produces the final product.
    ///
    /// Returns per-cycle timings sorted by cycle.
    pub fn run<P, S, A, F>(
        &self,
        n_cycles: usize,
        mut scan: S,
        mut assimilate: A,
        mut forecast: F,
    ) -> Vec<CycleTiming>
    where
        P: Send,
        S: FnMut(usize) -> Bytes + Send,
        A: FnMut(usize, Bytes) -> P + Send,
        F: FnMut(usize, P) + Send,
    {
        let (vol_tx, vol_rx): (PipeSender, PipeReceiver) = pipe(self.chunk_bytes, self.capacity);
        let (meta_tx, meta_rx) = bounded::<Meta>(self.capacity);
        let (ana_tx, ana_rx) = bounded::<(Meta, f64, f64, P)>(self.capacity);
        let (out_tx, out_rx) = bounded::<CycleTiming>(n_cycles.max(1));

        std::thread::scope(|s| {
            // Radar thread.
            s.spawn(move || {
                for cycle in 0..n_cycles {
                    let t0 = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
                    let volume = scan(cycle);
                    let t_obs = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
                    let scan_s = (t_obs - t0).as_secs_f64();
                    if meta_tx
                        .send(Meta {
                            cycle,
                            t_obs,
                            scan_s,
                        })
                        .is_err()
                    {
                        break;
                    }
                    if vol_tx.send(volume).is_err() {
                        break;
                    }
                }
            });

            // Assimilation thread.
            s.spawn(move || {
                while let Ok(meta) = meta_rx.recv() {
                    let volume = match vol_rx.recv() {
                        Ok(v) => v,
                        Err(_) => break,
                    };
                    let transfer_s = meta.t_obs.elapsed().as_secs_f64();
                    let t1 = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
                    let product = assimilate(meta.cycle, volume);
                    let assimilation_s = t1.elapsed().as_secs_f64();
                    if ana_tx
                        .send((meta, transfer_s, assimilation_s, product))
                        .is_err()
                    {
                        break;
                    }
                }
            });

            // Forecast thread.
            s.spawn(move || {
                while let Ok((meta, transfer_s, assimilation_s, product)) = ana_rx.recv() {
                    let t2 = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
                    forecast(meta.cycle, product);
                    let forecast_s = t2.elapsed().as_secs_f64();
                    let time_to_solution_s = meta.t_obs.elapsed().as_secs_f64();
                    let _ = out_tx.send(CycleTiming {
                        cycle: meta.cycle,
                        scan_s: meta.scan_s,
                        transfer_s,
                        assimilation_s,
                        forecast_s,
                        time_to_solution_s,
                    });
                }
            });
        });

        let mut timings: Vec<CycleTiming> = out_rx.try_iter().collect();
        timings.sort_by_key(|t| t.cycle);
        timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sleepy(ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }

    #[test]
    fn all_cycles_flow_through_in_order() {
        let p = RealtimePipeline::default();
        let timings = p.run(
            5,
            |c| Bytes::from(vec![c as u8; 1000]),
            |c, v| {
                assert_eq!(v.len(), 1000);
                assert_eq!(v[0], c as u8);
                c * 10
            },
            |c, product| assert_eq!(product, c * 10),
        );
        assert_eq!(timings.len(), 5);
        for (i, t) in timings.iter().enumerate() {
            assert_eq!(t.cycle, i);
            assert!(t.time_to_solution_s >= 0.0);
        }
    }

    #[test]
    fn time_to_solution_covers_transfer_assim_forecast() {
        let p = RealtimePipeline::default();
        let timings = p.run(
            3,
            |_| Bytes::from_static(b"volume"),
            |_, _| {
                sleepy(20);
            },
            |_, _| sleepy(30),
        );
        for t in &timings {
            assert!(t.assimilation_s >= 0.018, "assim {:.3}", t.assimilation_s);
            assert!(t.forecast_s >= 0.028, "forecast {:.3}", t.forecast_s);
            assert!(
                t.time_to_solution_s >= t.assimilation_s + t.forecast_s - 1e-6,
                "tts {:.3} < sum of stages",
                t.time_to_solution_s
            );
        }
    }

    #[test]
    fn stages_overlap_across_cycles() {
        // 6 cycles, each stage 20 ms. Serial would be >= 6 * 60 = 360 ms;
        // the pipeline should be well below that.
        let p = RealtimePipeline::default();
        let t0 = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
        let timings = p.run(
            6,
            |_| {
                sleepy(20);
                Bytes::from_static(b"v")
            },
            |_, _| sleepy(20),
            |_, _| sleepy(20),
        );
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(timings.len(), 6);
        assert!(wall < 0.32, "no overlap: wall = {wall:.3} s");
    }

    #[test]
    fn empty_run_returns_no_timings() {
        let p = RealtimePipeline::default();
        let timings = p.run(0, |_| Bytes::new(), |_, _| (), |_, _| ());
        assert!(timings.is_empty());
    }

    #[test]
    fn large_volumes_survive_the_pipe() {
        let p = RealtimePipeline {
            chunk_bytes: 4096,
            capacity: 4,
        };
        let payload: Vec<u8> = (0..500_000u32).map(|i| (i % 255) as u8).collect();
        let expect = payload.clone();
        let timings = p.run(
            2,
            move |_| Bytes::from(payload.clone()),
            move |_, v| {
                assert_eq!(&v[..], &expect[..]);
                v.len()
            },
            |_, n| assert_eq!(n, 500_000),
        );
        assert_eq!(timings.len(), 2);
    }
}
