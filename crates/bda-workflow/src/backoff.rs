//! One retry policy for every reconnect path.
//!
//! Three places in the workbench used to hand-roll the same loop: the
//! transfer watchdog in [`supervisor`](crate::supervisor) (bounded
//! exponential backoff between ingest retries), the swarm reconnect in
//! `bda-serve` (fixed short pauses against a full listener backlog), and
//! now the socket halo transport in `bda-shard` (reconnects to a peer that
//! may be mid-respawn). This module is the single policy they share:
//! exponential doubling from a base, capped, optionally bounded in attempt
//! count, with *deterministic* jitter from a seeded [`SplitMix64`] so two
//! shards that lost the same peer at the same instant do not reconnect in
//! lockstep — and so every test of the policy is reproducible.
//!
//! The paper's 30-second wall makes the cap the interesting knob: a
//! reconnect policy that backs off past the cycle period has silently
//! decided to drop a cycle. Callers size `cap` well under their
//! degradation deadline so the transport keeps probing while the ladder
//! (halo-reuse → boundary-widened → forecast-only) decides what to do
//! about the data that is not arriving.

use bda_num::rng::SplitMix64;
use std::time::Duration;

/// Deterministic jittered exponential backoff.
///
/// `next_delay` yields `base * 2^attempt`, capped at `cap`, shrunk by up
/// to `jitter * 100` percent (seeded, so the sequence is a pure function
/// of the constructor arguments), and `None` once the attempt budget is
/// spent. `reset` rearms the policy after a success.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    max_attempts: Option<usize>,
    jitter: f64,
    rng: SplitMix64,
    attempt: usize,
}

impl Backoff {
    /// Unjittered, unbounded policy: `base`, doubling, capped at `cap`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Self {
            base,
            cap,
            max_attempts: None,
            jitter: 0.0,
            rng: SplitMix64::new(0),
            attempt: 0,
        }
    }

    /// Shrink each delay by up to `frac` (clamped to `[0, 1)`) using a
    /// deterministic stream seeded with `seed`. Jitter only ever shortens
    /// a delay, so `cap` stays an upper bound.
    pub fn with_jitter(mut self, frac: f64, seed: u64) -> Self {
        self.jitter = frac.clamp(0.0, 0.999);
        self.rng = SplitMix64::new(seed);
        self
    }

    /// Give up (return `None`) after `n` delays have been handed out.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_attempts = Some(n);
        self
    }

    /// Delays handed out since construction or the last [`reset`](Self::reset).
    pub fn attempt(&self) -> usize {
        self.attempt
    }

    /// Whether the attempt budget is spent.
    pub fn exhausted(&self) -> bool {
        self.max_attempts.is_some_and(|m| self.attempt >= m)
    }

    /// The next delay to sleep before retrying, or `None` when the budget
    /// is spent. Advances the attempt counter and the jitter stream.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.exhausted() {
            return None;
        }
        // 2^attempt saturates long before the shift could overflow.
        let exp = u32::try_from(self.attempt.min(30)).unwrap_or(30);
        let raw = self
            .base
            .checked_mul(1u32 << exp)
            .unwrap_or(self.cap)
            .min(self.cap);
        self.attempt += 1;
        if self.jitter > 0.0 {
            Some(raw.mul_f64(1.0 - self.jitter * self.rng.next_uniform()))
        } else {
            Some(raw)
        }
    }

    /// Rearm after a success: the next failure starts from `base` again.
    /// The jitter stream is deliberately *not* rewound — two resets do not
    /// replay the same delays.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_from_base_and_caps() {
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_millis(80));
        let delays: Vec<u128> = (0..7)
            .filter_map(|_| b.next_delay())
            .map(|d| d.as_millis())
            .collect();
        assert_eq!(delays, [5, 10, 20, 40, 80, 80, 80]);
    }

    #[test]
    fn matches_the_transfer_watchdog_schedule() {
        // The supervisor's historical formula: base * 2^min(timeouts-1, 4).
        let base = Duration::from_millis(5);
        let mut b = Backoff::new(base, base * 16);
        for timeouts in 1u32..=8 {
            let legacy = base * (1u32 << (timeouts - 1).min(4));
            assert_eq!(b.next_delay(), Some(legacy), "timeouts={timeouts}");
        }
    }

    #[test]
    fn attempt_budget_is_enforced_and_reset_rearms() {
        let mut b =
            Backoff::new(Duration::from_millis(2), Duration::from_millis(2)).with_max_attempts(3);
        assert_eq!((0..5).filter_map(|_| b.next_delay()).count(), 3);
        assert!(b.exhausted());
        assert_eq!(b.attempt(), 3);
        b.reset();
        assert!(!b.exhausted());
        assert_eq!(b.next_delay(), Some(Duration::from_millis(2)));
    }

    #[test]
    fn jitter_only_shortens_and_is_deterministic() {
        let mk = || {
            Backoff::new(Duration::from_millis(10), Duration::from_millis(100))
                .with_jitter(0.5, 0xBDA)
        };
        let (mut a, mut b) = (mk(), mk());
        for i in 0..10 {
            let (da, db) = (a.next_delay().unwrap(), b.next_delay().unwrap());
            assert_eq!(da, db, "attempt {i}: same seed must give same delay");
            let raw = Duration::from_millis(10)
                .checked_mul(1 << i.min(4))
                .unwrap()
                .min(Duration::from_millis(100));
            assert!(da <= raw, "jitter must never lengthen a delay");
            assert!(da >= raw.mul_f64(0.5), "jitter bounded by the fraction");
        }
        // A different seed decorrelates the streams.
        let seq = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(100))
                .with_jitter(0.5, seed);
            (0..10).filter_map(|_| b.next_delay()).collect()
        };
        assert_ne!(
            seq(0xBDA),
            seq(0xF00D),
            "distinct seeds should not replay the same jitter"
        );
    }
}
