//! Outage windows — the gray shadings of Fig. 5.
//!
//! The campaign produced forecasts for a net 26 days 3 hours 4 minutes out
//! of the ~30-day Olympic + Paralympic periods; the remainder (system
//! trouble, JIT-DT give-ups, upstream data gaps, the planned reallocation
//! around July 27) appears as gray bands. This module models outages as a
//! mix of scheduled windows and random failures with exponential
//! inter-arrival and repair times.

use bda_num::SplitMix64;
use serde::{Deserialize, Serialize};

/// A half-open outage interval `[start, end)` in seconds from campaign start.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Window {
    pub start: f64,
    pub end: f64,
}

impl Window {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// The outage schedule of one campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OutageSchedule {
    windows: Vec<Window>,
    total_duration: f64,
}

impl OutageSchedule {
    /// Build from explicit windows (merged and clipped to the campaign).
    pub fn new(mut windows: Vec<Window>, total_duration: f64) -> Self {
        windows.retain(|w| w.end > 0.0 && w.start < total_duration);
        for w in &mut windows {
            w.start = w.start.max(0.0);
            w.end = w.end.min(total_duration);
        }
        // Clipping (or the caller) can leave zero- or negative-width
        // windows; they carry no downtime and would confuse `is_down`'s
        // binary search, so drop them.
        windows.retain(|w| w.end > w.start);
        windows.sort_by(|a, b| a.start.total_cmp(&b.start));
        // Merge overlaps.
        let mut merged: Vec<Window> = Vec::new();
        for w in windows {
            if let Some(last) = merged.last_mut() {
                if w.start <= last.end {
                    last.end = last.end.max(w.end);
                    continue;
                }
            }
            merged.push(w);
        }
        Self {
            windows: merged,
            total_duration,
        }
    }

    /// Random outage schedule: scheduled maintenance plus exponential
    /// failures, calibrated by target availability.
    pub fn generate(total_duration: f64, target_availability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&target_availability));
        let mut rng = SplitMix64::new(seed);
        let mut windows = Vec::new();
        let outage_budget = total_duration * (1.0 - target_availability);
        // ~40% of the budget is one long scheduled window (the paper's
        // July 27 reallocation trouble), the rest random failures.
        let scheduled = outage_budget * 0.4;
        let sched_start = rng.uniform_in(0.2, 0.5) * total_duration;
        windows.push(Window {
            start: sched_start,
            end: sched_start + scheduled,
        });
        let mut remaining = outage_budget * 0.6;
        let mean_repair = 40.0 * 60.0; // 40-minute mean repair
        while remaining > 0.0 {
            let start = rng.uniform_in(0.0, total_duration);
            let dur = (-mean_repair * (1.0 - rng.next_uniform()).ln()).min(remaining.max(60.0));
            windows.push(Window {
                start,
                end: start + dur,
            });
            remaining -= dur;
        }
        Self::new(windows, total_duration)
    }

    /// Is the system down at time `t`?
    pub fn is_down(&self, t: f64) -> bool {
        // Windows are sorted; binary search by start.
        match self.windows.binary_search_by(|w| w.start.total_cmp(&t)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.windows[i - 1].contains(t),
        }
    }

    /// Total downtime, s.
    pub fn downtime(&self) -> f64 {
        self.windows.iter().map(Window::duration).sum()
    }

    /// Availability fraction. A zero-duration campaign has no time to be
    /// down in, so it counts as fully available.
    pub fn availability(&self) -> f64 {
        if self.total_duration <= 0.0 {
            return 1.0;
        }
        1.0 - self.downtime() / self.total_duration
    }

    pub fn windows(&self) -> &[Window] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_merge_and_clip() {
        let s = OutageSchedule::new(
            vec![
                Window {
                    start: -10.0,
                    end: 20.0,
                },
                Window {
                    start: 15.0,
                    end: 40.0,
                },
                Window {
                    start: 90.0,
                    end: 200.0,
                },
            ],
            100.0,
        );
        assert_eq!(s.windows().len(), 2);
        assert_eq!(
            s.windows()[0],
            Window {
                start: 0.0,
                end: 40.0
            }
        );
        assert_eq!(
            s.windows()[1],
            Window {
                start: 90.0,
                end: 100.0
            }
        );
        assert!((s.downtime() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn is_down_matches_windows() {
        let s = OutageSchedule::new(
            vec![Window {
                start: 10.0,
                end: 20.0,
            }],
            100.0,
        );
        assert!(!s.is_down(5.0));
        assert!(s.is_down(10.0));
        assert!(s.is_down(19.9));
        assert!(!s.is_down(20.0));
        assert!(!s.is_down(99.0));
    }

    #[test]
    fn generated_schedule_hits_target_availability() {
        let month = 30.0 * 86_400.0;
        let s = OutageSchedule::generate(month, 0.87, 42);
        let a = s.availability();
        assert!(
            (0.82..0.92).contains(&a),
            "availability {a:.3}, target 0.87"
        );
    }

    #[test]
    fn generated_schedule_is_deterministic() {
        let month = 30.0 * 86_400.0;
        let a = OutageSchedule::generate(month, 0.9, 5);
        let b = OutageSchedule::generate(month, 0.9, 5);
        assert_eq!(a.windows(), b.windows());
    }

    #[test]
    fn full_availability_means_never_down() {
        let s = OutageSchedule::new(vec![], 1000.0);
        assert_eq!(s.availability(), 1.0);
        for i in 0..100 {
            assert!(!s.is_down(i as f64 * 10.0));
        }
    }

    #[test]
    fn zero_duration_campaign_is_fully_available() {
        let s = OutageSchedule::new(
            vec![Window {
                start: 0.0,
                end: 10.0,
            }],
            0.0,
        );
        assert!(s.windows().is_empty());
        assert_eq!(s.downtime(), 0.0);
        assert_eq!(s.availability(), 1.0);
        let g = OutageSchedule::generate(0.0, 0.9, 3);
        assert_eq!(g.availability(), 1.0);
    }

    #[test]
    fn target_availability_one_generates_no_windows() {
        let s = OutageSchedule::generate(86_400.0, 1.0, 11);
        assert!(s.windows().is_empty(), "windows: {:?}", s.windows());
        assert_eq!(s.availability(), 1.0);
        assert!(!s.is_down(0.0));
        assert!(!s.is_down(43_200.0));
    }

    #[test]
    fn zero_width_windows_are_dropped() {
        let s = OutageSchedule::new(
            vec![
                Window {
                    start: 50.0,
                    end: 50.0,
                },
                Window {
                    start: 10.0,
                    end: 20.0,
                },
            ],
            100.0,
        );
        assert_eq!(s.windows().len(), 1);
        assert!(!s.is_down(50.0));
        assert!((s.downtime() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_and_touching_windows_merge() {
        let s = OutageSchedule::new(
            vec![
                Window {
                    start: 0.0,
                    end: 10.0,
                },
                Window {
                    start: 10.0,
                    end: 20.0,
                }, // touching: merges
                Window {
                    start: 5.0,
                    end: 12.0,
                }, // contained/overlapping
                Window {
                    start: 30.0,
                    end: 35.0,
                },
            ],
            100.0,
        );
        assert_eq!(
            s.windows(),
            &[
                Window {
                    start: 0.0,
                    end: 20.0
                },
                Window {
                    start: 30.0,
                    end: 35.0
                }
            ]
        );
        assert!((s.downtime() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn paper_uptime_yields_paper_forecast_count() {
        // Net uptime of 26 d 3 h 4 min at one forecast per 30 s gives the
        // paper's 75,248 forecasts.
        let uptime = 26.0 * 86_400.0 + 3.0 * 3600.0 + 4.0 * 60.0;
        let forecasts = (uptime / 30.0) as u64;
        assert_eq!(forecasts, 75_248);
    }
}
