//! Synthetic rain-area time series for the campaign simulation.
//!
//! Fig. 5 overlays the observed rain area in the computational domain (for
//! rates >= 1 mm/h and >= 20 mm/h) on the time-to-solution series, because
//! rain area modulates compute time ("the more the rain area, the more the
//! computation"). Lacking the JMA rain analyses, this module generates a
//! statistically similar trace: a mean-reverting background with a diurnal
//! cycle (Kanto summer convection peaks in the afternoon) and episodic
//! heavy-rain events (fronts, typhoon remnants).

use bda_num::SplitMix64;
use serde::{Deserialize, Serialize};

/// A heavy-rain episode.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
struct Episode {
    /// Center time, s from trace start.
    t_center: f64,
    /// Duration scale, s.
    width: f64,
    /// Peak area contribution, km^2.
    peak_km2: f64,
}

/// Deterministic rain-area generator.
#[derive(Clone, Debug)]
pub struct RainTrace {
    episodes: Vec<Episode>,
    /// Background area scale for >= 1 mm/h rain, km^2.
    pub background_km2: f64,
    /// Domain area cap, km^2 (128 km x 128 km).
    pub domain_km2: f64,
    seed: u64,
}

impl RainTrace {
    /// Build a trace for `duration_s` with roughly one significant episode
    /// every couple of days, like the 2021 campaign.
    pub fn generate(duration_s: f64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut episodes = Vec::new();
        let mean_gap = 1.8 * 86_400.0;
        let mut t = rng.uniform_in(0.0, mean_gap);
        while t < duration_s {
            episodes.push(Episode {
                t_center: t,
                width: rng.uniform_in(2.0, 10.0) * 3600.0,
                peak_km2: rng.uniform_in(800.0, 6000.0),
            });
            t += rng.uniform_in(0.4, 1.6) * mean_gap;
        }
        Self {
            episodes,
            background_km2: 150.0,
            domain_km2: 128.0 * 128.0,
            seed,
        }
    }

    /// Rain area (km^2) with rate >= 1 mm/h at time `t`.
    pub fn area_1mmh(&self, t: f64) -> f64 {
        // Diurnal factor: peaks mid-afternoon (t measured from 00 JST).
        let hour = (t / 3600.0).rem_euclid(24.0);
        let diurnal = 1.0
            + 0.8
                * (std::f64::consts::TAU * (hour - 15.0) / 24.0)
                    .cos()
                    .max(-0.9);
        let mut area = self.background_km2 * diurnal;
        for e in &self.episodes {
            let x = (t - e.t_center) / e.width;
            area += e.peak_km2 * (-x * x).exp();
        }
        // Small deterministic high-frequency wiggle.
        let mut rng = SplitMix64::new(self.seed).split((t / 300.0) as u64);
        area *= 1.0 + 0.1 * (rng.next_uniform() - 0.5);
        area.min(self.domain_km2)
    }

    /// Rain area with rate >= 20 mm/h — a small, episode-dominated fraction
    /// of the light-rain area.
    pub fn area_20mmh(&self, t: f64) -> f64 {
        let light = self.area_1mmh(t);
        let episodic: f64 = self
            .episodes
            .iter()
            .map(|e| {
                let x = (t - e.t_center) / e.width;
                e.peak_km2 * (-x * x).exp()
            })
            .sum();
        // Heavy rain only exists inside episodes.
        (0.12 * episodic).min(light)
    }

    /// Normalized load factor in [0, 1]: the fraction of the domain with
    /// processable echo, which drives compute-time modulation.
    pub fn load_factor(&self, t: f64) -> f64 {
        (self.area_1mmh(t) / self.domain_km2).clamp(0.0, 1.0)
    }

    pub fn n_episodes(&self) -> usize {
        self.episodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MONTH: f64 = 30.0 * 86_400.0;

    #[test]
    fn deterministic_for_seed() {
        let a = RainTrace::generate(MONTH, 7);
        let b = RainTrace::generate(MONTH, 7);
        for i in 0..100 {
            let t = i as f64 * 7200.0;
            assert_eq!(a.area_1mmh(t), b.area_1mmh(t));
        }
    }

    #[test]
    fn area_is_bounded_by_domain() {
        let tr = RainTrace::generate(MONTH, 3);
        for i in 0..2000 {
            let t = i as f64 * 1800.0;
            let a1 = tr.area_1mmh(t);
            let a20 = tr.area_20mmh(t);
            assert!(a1 >= 0.0 && a1 <= tr.domain_km2);
            assert!(a20 >= 0.0 && a20 <= a1, "a20 {a20} > a1 {a1} at t {t}");
        }
    }

    #[test]
    fn episodes_produce_heavy_rain_peaks() {
        let tr = RainTrace::generate(MONTH, 11);
        assert!(tr.n_episodes() >= 5, "only {} episodes", tr.n_episodes());
        let max20 = (0..20_000)
            .map(|i| tr.area_20mmh(i as f64 * 120.0))
            .fold(0.0, f64::max);
        assert!(max20 > 50.0, "no heavy-rain episodes: max {max20} km^2");
    }

    #[test]
    fn quiet_times_have_little_heavy_rain() {
        let tr = RainTrace::generate(MONTH, 13);
        let frac_heavy = (0..20_000)
            .map(|i| tr.area_20mmh(i as f64 * 120.0))
            .filter(|&a| a > 20.0)
            .count() as f64
            / 20_000.0;
        assert!(
            frac_heavy < 0.5,
            "heavy rain {:.0}% of the time",
            frac_heavy * 100.0
        );
    }

    #[test]
    fn load_factor_in_unit_interval() {
        let tr = RainTrace::generate(MONTH, 17);
        for i in 0..1000 {
            let l = tr.load_factor(i as f64 * 3600.0);
            assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn diurnal_cycle_peaks_in_afternoon() {
        let tr = RainTrace::generate(7.0 * 86_400.0, 19);
        // Average over several days at 15 JST vs 03 JST, background-dominated
        // trace (skip if an episode dominates — compare medians instead).
        let sample = |hour: f64| -> f64 {
            let mut vals: Vec<f64> = (0..7)
                .map(|d| tr.area_1mmh(d as f64 * 86_400.0 + hour * 3600.0))
                .collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals[3] // median of 7 days
        };
        assert!(sample(15.0) > sample(3.0));
    }
}
