//! Fugaku node-allocation arithmetic (paper §5, §6.2).

use serde::{Deserialize, Serialize};

/// The exclusive-node allocation of the BDA2021 campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeAllocation {
    /// Total exclusive nodes (11,580 normally; 13,854 from Jul 27 to Aug 8
    /// when technical issues forced a larger set).
    pub total: usize,
    /// Outer-domain SCALE ensemble (Fig. 3b).
    pub outer_domain: usize,
    /// Inner domain, part <1>: LETKF + 1000-member 30-s forecasts.
    pub inner_part1: usize,
    /// Inner domain, part <2>: 11-member 30-minute forecasts.
    pub inner_part2: usize,
    /// Analysis ensemble size sharing part <1>.
    pub ensemble_size: usize,
    /// Forecast ensemble size sharing part <2>.
    pub forecast_members: usize,
    /// 30-minute forecast duration / cycle interval: how many forecasts run
    /// concurrently on part <2> (a ~2.5-minute time-to-solution launched
    /// every 30 s keeps ~5 in flight; one spare slot absorbs the slow-cycle
    /// tail — the efficient allocation of §5).
    pub forecast_slots: usize,
    /// Cores per Fugaku node (A64FX: 48 compute cores).
    pub cores_per_node: usize,
}

impl NodeAllocation {
    /// The paper's configuration.
    pub fn bda2021() -> Self {
        Self {
            total: 11_580,
            outer_domain: 2_002,
            inner_part1: 8_008,
            inner_part2: 880,
            ensemble_size: 1000,
            forecast_members: 11,
            forecast_slots: 6,
            cores_per_node: 48,
        }
    }

    /// The enlarged allocation used July 27 – August 8.
    pub fn bda2021_enlarged() -> Self {
        Self {
            total: 13_854,
            ..Self::bda2021()
        }
    }

    /// Inner-domain nodes (the paper's 8888).
    pub fn inner_total(&self) -> usize {
        self.inner_part1 + self.inner_part2
    }

    /// Total CPU cores on the inner domain (the paper's 426,624).
    pub fn inner_cores(&self) -> usize {
        self.inner_total() * self.cores_per_node
    }

    /// Nodes per analysis member on part <1>.
    pub fn nodes_per_analysis_member(&self) -> f64 {
        self.inner_part1 as f64 / self.ensemble_size as f64
    }

    /// Nodes per 30-minute forecast member, accounting for concurrent
    /// forecast slots sharing part <2>.
    pub fn nodes_per_forecast_member(&self) -> f64 {
        self.inner_part2 as f64 / (self.forecast_members * self.forecast_slots) as f64
    }

    /// Fraction of the full Fugaku (158,976 nodes) this allocation uses —
    /// the paper's "~7% of the full system".
    pub fn fugaku_fraction(&self) -> f64 {
        self.total as f64 / 158_976.0
    }

    pub fn validate(&self) {
        assert!(
            self.outer_domain + self.inner_total() <= self.total,
            "allocation exceeds exclusive node count"
        );
        assert!(self.forecast_slots >= 1);
        assert!(self.ensemble_size >= self.forecast_members);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let a = NodeAllocation::bda2021();
        a.validate();
        assert_eq!(a.inner_total(), 8_888);
        assert_eq!(a.inner_cores(), 426_624); // paper: "426,624 CPU cores"
        assert_eq!(a.total, 11_580);
        assert_eq!(a.outer_domain, 2_002);
    }

    #[test]
    fn seven_percent_of_fugaku() {
        let a = NodeAllocation::bda2021();
        let f = a.fugaku_fraction();
        assert!((0.065..0.08).contains(&f), "fraction = {f:.4}");
    }

    #[test]
    fn eight_nodes_per_analysis_member() {
        let a = NodeAllocation::bda2021();
        assert!((a.nodes_per_analysis_member() - 8.008).abs() < 1e-9);
    }

    #[test]
    fn forecast_members_fit_in_part2() {
        let a = NodeAllocation::bda2021();
        assert!(a.nodes_per_forecast_member() >= 1.0);
    }

    #[test]
    fn enlarged_allocation_is_larger() {
        let a = NodeAllocation::bda2021_enlarged();
        assert_eq!(a.total, 13_854);
        a.validate();
    }

    #[test]
    #[should_panic]
    fn overcommitted_allocation_rejected() {
        let mut a = NodeAllocation::bda2021();
        a.total = 5000;
        a.validate();
    }
}
