//! # bda-workflow — the real-time 30-second cycle
//!
//! Two complementary reproductions of the paper's workflow (Figs. 2 and 4):
//!
//! * **Live pipeline** ([`pipeline`]) — a real multi-threaded implementation
//!   of the scan → transfer → assimilate → forecast loop using crossbeam
//!   channels, with per-stage wall-clock timing segmented exactly as Fig. 4
//!   defines time-to-solution. The reduced-scale OSSE drives it with the
//!   actual model/filter computation.
//! * **Campaign performance model** ([`campaign`], [`perfmodel`]) — a
//!   discrete-event simulation of the month-long Fugaku deployment at full
//!   scale: node allocation (2002 outer + 8008 part <1> + 880 part <2> of
//!   11,580 exclusive nodes), component-time distributions calibrated to
//!   the paper (~3 s JIT-DT, ~15 s LETKF, ~2 min 30-minute forecast),
//!   rain-area-dependent load, scheduled and random outages — regenerating
//!   the Fig. 5 time-to-solution series and histogram.
//!
//! A third layer hardens the live pipeline for unattended operation:
//! [`supervisor`] wraps the same three-thread layout with panic isolation,
//! transfer stall watchdogs with retry, per-stage deadlines,
//! newest-scan-wins supersession, and a graceful-degradation ladder —
//! driven by the deterministic fault-injection plans of [`fault`].
//!
//! Supporting modules: [`nodes`] (the Fugaku allocation arithmetic),
//! [`raintrace`] (the synthetic rain-area series standing in for the JMA
//! rain analysis curves of Fig. 5), [`outage`] (gray-shading windows).

pub mod backoff;
pub mod campaign;
pub mod fault;
pub mod nodes;
pub mod outage;
pub mod perfmodel;
pub mod pipeline;
pub mod raintrace;
pub mod shard_supervisor;
pub mod supervisor;

pub use backoff::Backoff;
pub use campaign::{
    CampaignConfig, CampaignResult, CampaignTermination, CycleApp, ResumableCampaign, ResumableRun,
};
pub use fault::{Fault, FaultPlan, FaultRates, Stage};
pub use nodes::NodeAllocation;
pub use perfmodel::{PerfModel, TimeToSolution};
pub use pipeline::{CycleTiming, RealtimePipeline};
pub use shard_supervisor::{
    FederationBus, FederationReport, LinkHealth, ShardCycleReport, ShardHealth, ShardProcess,
    ShardSupervisor, ShardSupervisorConfig,
};
pub use supervisor::{
    CycleDisposition, CycleReport, CycleSupervisor, DegradedMode, ForecastInput, SkipCause,
    StageError, SupervisorReport,
};
