//! Deterministic fault injection for the live pipeline.
//!
//! A [`FaultPlan`] declares, per cycle, which failures the supervised
//! pipeline must absorb: stage panics, transfer stalls, corrupted volume
//! payloads, and dropped scans. Plans are built explicitly (tests), parsed
//! from a compact spec string (the `--inject` flag of the realtime example),
//! or generated from a seed — so every failure scenario is reproducible
//! bit-for-bit, which is what makes degraded-mode behaviour testable at all.

use bda_num::rng::SplitMix64;
use std::collections::BTreeMap;

/// The pipeline stages a fault can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    Scan,
    Transfer,
    Assimilation,
    Forecast,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stage::Scan => "scan",
            Stage::Transfer => "transfer",
            Stage::Assimilation => "assimilation",
            Stage::Forecast => "forecast",
        };
        f.write_str(s)
    }
}

/// One injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the named stage closure (scan, assimilation or
    /// forecast; transfer has no user closure to panic in).
    StagePanic(Stage),
    /// The transfer appears stalled: the receiver's first `timeouts`
    /// watchdog windows elapse without data before the volume shows up.
    TransferStall { timeouts: usize },
    /// The volume payload is corrupted after the scan-time checksum is
    /// taken, so the assimilation side must reject it.
    CorruptVolume,
    /// The scan produces nothing at all (radar outage for one cycle).
    DropScan,
    /// The volume is sent twice with the same sequence number — a transfer
    /// daemon replay. The receiver must drop the second copy.
    DuplicateVolume,
    /// The volume carries a scan timestamp far older than the staleness
    /// horizon — a backlogged delivery. The receiver must reject it with a
    /// typed stale outcome rather than assimilate old weather.
    StaleScan,
    /// Member `member`'s forecast state is poisoned with NaN at the start
    /// of the cycle — the health scan must quarantine and respawn it.
    MemberNan { member: usize },
    /// Member `member`'s forecast state is seeded with an Inf so its
    /// integration blows up — surfaces as a typed `MemberError`.
    MemberBlowUp { member: usize },
    /// The whole process dies abruptly at the start of the cycle, before
    /// any checkpoint for it is taken — the in-process stand-in for
    /// `kill -9`, exercised by the checkpoint/resume path.
    Crash,
    /// `n` egress subscribers stop draining their sockets starting this
    /// cycle — the serve layer must evict them instead of letting the
    /// broadcast stall.
    SlowClients { n: usize },
    /// `n` extra subscribers connect (or reconnect) in a burst during this
    /// cycle — an egress connection storm the acceptor must absorb without
    /// missing the publish deadline.
    ConnStorm { n: usize },
    /// Federation shard `shard` is SIGKILLed at the start of this cycle —
    /// the supervisor must respawn it and the shard must resume from its
    /// own scoped checkpoint while its peers keep cycling.
    ShardKill { shard: usize },
    /// Federation shard `shard` misses its halo deadline this cycle (it
    /// publishes a stall marker instead of its analyzed strip) — peers
    /// must step the degradation ladder, not block.
    ShardStall { shard: usize },
    /// Federation shard `shard`'s halo for this cycle is dropped in
    /// transit — receivers reuse the previous-cycle halo, flagged.
    HaloDrop { shard: usize },
    /// Network partition between shards `a` and `b` for this cycle: every
    /// message of the cycle is dropped in both directions on that link
    /// (halos, replay requests, heartbeats). Both ends must step their
    /// degradation ladder for each other while the rest of the federation
    /// keeps exchanging normally. Canonicalized so `a < b`.
    Partition { a: usize, b: usize },
    /// Shard `shard`'s egress is stalled in-network for this cycle: its
    /// messages are delayed past the receivers' halo deadline and released
    /// late (reordered behind newer traffic). Peers must degrade, then
    /// discard the late arrival as stale — never apply it backwards.
    NetStall { shard: usize },
    /// Shard `shard`'s egress is mangled on the wire for this cycle:
    /// garbage bytes injected mid-stream, frame bytes corrupted,
    /// truncation. Receivers must resync at the next frame magic and type
    /// the damage — no panic, nothing corrupt applied.
    WireGarbage { shard: usize },
}

/// Per-cycle fault schedule. Ordered map so iteration (and therefore any
/// behaviour derived from it) is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    by_cycle: BTreeMap<usize, Vec<Fault>>,
}

/// Per-cycle probabilities for [`FaultPlan::random`].
#[derive(Clone, Copy, Debug)]
pub struct FaultRates {
    pub panic_assimilation: f64,
    pub panic_forecast: f64,
    pub panic_scan: f64,
    pub stall: f64,
    pub corrupt: f64,
    pub drop_scan: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        Self {
            panic_assimilation: 0.03,
            panic_forecast: 0.02,
            panic_scan: 0.02,
            stall: 0.05,
            corrupt: 0.03,
            drop_scan: 0.03,
        }
    }
}

impl FaultPlan {
    /// The empty plan: nothing is injected, the pipeline runs clean.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no cycle has any fault scheduled.
    pub fn is_empty(&self) -> bool {
        self.by_cycle.is_empty()
    }

    fn push(&mut self, cycle: usize, fault: Fault) {
        self.by_cycle.entry(cycle).or_default().push(fault);
    }

    /// Panic inside `stage` on `cycle`.
    pub fn panic_at(mut self, stage: Stage, cycle: usize) -> Self {
        self.push(cycle, Fault::StagePanic(stage));
        self
    }

    /// Corrupt the volume payload of `cycle` after its checksum is taken.
    pub fn corrupt_volume(mut self, cycle: usize) -> Self {
        self.push(cycle, Fault::CorruptVolume);
        self
    }

    /// Stall `cycle`'s transfer for `timeouts` watchdog windows.
    pub fn stall_transfer(mut self, cycle: usize, timeouts: usize) -> Self {
        self.push(cycle, Fault::TransferStall { timeouts });
        self
    }

    /// Drop `cycle`'s scan entirely.
    pub fn drop_scan(mut self, cycle: usize) -> Self {
        self.push(cycle, Fault::DropScan);
        self
    }

    /// Send `cycle`'s volume twice (replayed delivery).
    pub fn duplicate_volume(mut self, cycle: usize) -> Self {
        self.push(cycle, Fault::DuplicateVolume);
        self
    }

    /// Back-date `cycle`'s scan timestamp past the staleness horizon.
    pub fn stale_scan(mut self, cycle: usize) -> Self {
        self.push(cycle, Fault::StaleScan);
        self
    }

    /// Poison `member`'s state with NaN at the start of `cycle`.
    pub fn nan_member(mut self, cycle: usize, member: usize) -> Self {
        self.push(cycle, Fault::MemberNan { member });
        self
    }

    /// Seed `member`'s state with Inf at the start of `cycle`.
    pub fn blowup_member(mut self, cycle: usize, member: usize) -> Self {
        self.push(cycle, Fault::MemberBlowUp { member });
        self
    }

    /// Kill the process abruptly at the start of `cycle`.
    pub fn crash_at(mut self, cycle: usize) -> Self {
        self.push(cycle, Fault::Crash);
        self
    }

    /// Make `n` egress subscribers stop draining from `cycle` on.
    pub fn slow_clients(mut self, cycle: usize, n: usize) -> Self {
        self.push(cycle, Fault::SlowClients { n });
        self
    }

    /// Burst-connect `n` extra egress subscribers during `cycle`.
    pub fn conn_storm(mut self, cycle: usize, n: usize) -> Self {
        self.push(cycle, Fault::ConnStorm { n });
        self
    }

    /// SIGKILL federation shard `shard` at the start of `cycle`.
    pub fn shard_kill(mut self, cycle: usize, shard: usize) -> Self {
        self.push(cycle, Fault::ShardKill { shard });
        self
    }

    /// Make shard `shard` miss its halo deadline on `cycle`.
    pub fn shard_stall(mut self, cycle: usize, shard: usize) -> Self {
        self.push(cycle, Fault::ShardStall { shard });
        self
    }

    /// Drop shard `shard`'s halo for `cycle` in transit.
    pub fn halo_drop(mut self, cycle: usize, shard: usize) -> Self {
        self.push(cycle, Fault::HaloDrop { shard });
        self
    }

    /// Partition the link between shards `a` and `b` for `cycle` (order
    /// of the endpoints is irrelevant; stored canonically).
    pub fn partition(mut self, cycle: usize, a: usize, b: usize) -> Self {
        self.push(
            cycle,
            Fault::Partition {
                a: a.min(b),
                b: a.max(b),
            },
        );
        self
    }

    /// Stall shard `shard`'s network egress for `cycle` (delay + reorder).
    pub fn net_stall(mut self, cycle: usize, shard: usize) -> Self {
        self.push(cycle, Fault::NetStall { shard });
        self
    }

    /// Mangle shard `shard`'s wire traffic for `cycle` (garbage,
    /// corruption, truncation).
    pub fn wire_garbage(mut self, cycle: usize, shard: usize) -> Self {
        self.push(cycle, Fault::WireGarbage { shard });
        self
    }

    /// Faults scheduled for `cycle` (empty slice when none).
    pub fn faults_for(&self, cycle: usize) -> &[Fault] {
        self.by_cycle.get(&cycle).map(Vec::as_slice).unwrap_or(&[])
    }

    /// First `TransferStall` scheduled for `cycle`, as a timeout count.
    pub fn stall_timeouts(&self, cycle: usize) -> usize {
        self.faults_for(cycle)
            .iter()
            .find_map(|f| match f {
                Fault::TransferStall { timeouts } => Some(*timeouts),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Whether `cycle` has `fault` scheduled.
    pub fn has(&self, cycle: usize, fault: Fault) -> bool {
        self.faults_for(cycle).contains(&fault)
    }

    /// Members scheduled for NaN poisoning on `cycle`.
    pub fn member_nans(&self, cycle: usize) -> Vec<usize> {
        self.faults_for(cycle)
            .iter()
            .filter_map(|f| match f {
                Fault::MemberNan { member } => Some(*member),
                _ => None,
            })
            .collect()
    }

    /// Members scheduled for blow-up seeding on `cycle`.
    pub fn member_blowups(&self, cycle: usize) -> Vec<usize> {
        self.faults_for(cycle)
            .iter()
            .filter_map(|f| match f {
                Fault::MemberBlowUp { member } => Some(*member),
                _ => None,
            })
            .collect()
    }

    /// Whether `cycle` has a process crash scheduled.
    pub fn has_crash(&self, cycle: usize) -> bool {
        self.has(cycle, Fault::Crash)
    }

    /// Total egress subscribers scheduled to go slow on `cycle` (summed
    /// across `slowclient` tokens, mirroring `member_nans`' accumulation).
    pub fn slow_clients_at(&self, cycle: usize) -> usize {
        self.faults_for(cycle)
            .iter()
            .map(|f| match f {
                Fault::SlowClients { n } => *n,
                _ => 0,
            })
            .sum()
    }

    /// Total burst connections scheduled for `cycle`.
    pub fn conn_storm_at(&self, cycle: usize) -> usize {
        self.faults_for(cycle)
            .iter()
            .map(|f| match f {
                Fault::ConnStorm { n } => *n,
                _ => 0,
            })
            .sum()
    }

    /// Shards scheduled for SIGKILL on `cycle`.
    pub fn shard_kills(&self, cycle: usize) -> Vec<usize> {
        self.faults_for(cycle)
            .iter()
            .filter_map(|f| match f {
                Fault::ShardKill { shard } => Some(*shard),
                _ => None,
            })
            .collect()
    }

    /// Shards scheduled to miss their halo deadline on `cycle`.
    pub fn shard_stalls(&self, cycle: usize) -> Vec<usize> {
        self.faults_for(cycle)
            .iter()
            .filter_map(|f| match f {
                Fault::ShardStall { shard } => Some(*shard),
                _ => None,
            })
            .collect()
    }

    /// Shards whose halo is dropped in transit on `cycle`.
    pub fn halo_drops(&self, cycle: usize) -> Vec<usize> {
        self.faults_for(cycle)
            .iter()
            .filter_map(|f| match f {
                Fault::HaloDrop { shard } => Some(*shard),
                _ => None,
            })
            .collect()
    }

    /// Shard pairs whose link is partitioned on `cycle` (canonical order).
    pub fn partitions(&self, cycle: usize) -> Vec<(usize, usize)> {
        self.faults_for(cycle)
            .iter()
            .filter_map(|f| match f {
                Fault::Partition { a, b } => Some((*a, *b)),
                _ => None,
            })
            .collect()
    }

    /// Shards whose network egress is stalled on `cycle`.
    pub fn net_stalls(&self, cycle: usize) -> Vec<usize> {
        self.faults_for(cycle)
            .iter()
            .filter_map(|f| match f {
                Fault::NetStall { shard } => Some(*shard),
                _ => None,
            })
            .collect()
    }

    /// Shards whose wire traffic is mangled on `cycle`.
    pub fn wire_garbages(&self, cycle: usize) -> Vec<usize> {
        self.faults_for(cycle)
            .iter()
            .filter_map(|f| match f {
                Fault::WireGarbage { shard } => Some(*shard),
                _ => None,
            })
            .collect()
    }

    /// Total number of scheduled faults.
    pub fn len(&self) -> usize {
        self.by_cycle.values().map(Vec::len).sum()
    }

    /// Seed-driven plan over `n_cycles`: each fault class fires
    /// independently per cycle with its [`FaultRates`] probability. The
    /// same `(seed, n_cycles, rates)` always yields the same plan.
    pub fn random(seed: u64, n_cycles: usize, rates: FaultRates) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::none();
        for cycle in 0..n_cycles {
            if rng.next_uniform() < rates.panic_scan {
                plan.push(cycle, Fault::StagePanic(Stage::Scan));
            }
            if rng.next_uniform() < rates.panic_assimilation {
                plan.push(cycle, Fault::StagePanic(Stage::Assimilation));
            }
            if rng.next_uniform() < rates.panic_forecast {
                plan.push(cycle, Fault::StagePanic(Stage::Forecast));
            }
            if rng.next_uniform() < rates.stall {
                let timeouts = 1 + rng.next_index(2); // 1 or 2 windows
                plan.push(cycle, Fault::TransferStall { timeouts });
            }
            if rng.next_uniform() < rates.corrupt {
                plan.push(cycle, Fault::CorruptVolume);
            }
            if rng.next_uniform() < rates.drop_scan {
                plan.push(cycle, Fault::DropScan);
            }
        }
        plan
    }

    /// Parse the compact `--inject` spec: comma-separated tokens, each one
    /// of
    ///
    /// * `panic:scan@C` / `panic:assim@C` / `panic:fcst@C` — panic in that
    ///   stage on cycle `C`;
    /// * `stall@CxN` — stall cycle `C`'s transfer for `N` watchdog windows
    ///   (`stall@C` means one window);
    /// * `corrupt@C` — corrupt cycle `C`'s volume payload;
    /// * `drop@C` — drop cycle `C`'s scan;
    /// * `dup@C` — deliver cycle `C`'s volume twice (replay);
    /// * `stale@C` — back-date cycle `C`'s scan past the staleness horizon;
    /// * `nan:M@C` — poison member `M` with NaN at the start of cycle `C`;
    /// * `blowup:M@C` — seed member `M` with Inf at the start of cycle `C`;
    /// * `crash@C` — kill the process abruptly at the start of cycle `C`;
    /// * `slowclient:N@C` — `N` egress subscribers stop draining from
    ///   cycle `C` on;
    /// * `connstorm:N@C` — `N` extra egress subscribers burst-connect
    ///   during cycle `C`;
    /// * `shardkill:S@C` — SIGKILL federation shard `S` at the start of
    ///   cycle `C`;
    /// * `shardstall:S@C` — shard `S` misses its halo deadline on cycle
    ///   `C`;
    /// * `halodrop:S@C` — shard `S`'s halo for cycle `C` is dropped in
    ///   transit;
    /// * `partition:A-B@C` — the network link between shards `A` and `B`
    ///   is cut for cycle `C` (both directions);
    /// * `netstall:S@C` — shard `S`'s network egress is delayed past the
    ///   halo deadline on cycle `C` and released late (reordered);
    /// * `wiregarbage:S@C` — shard `S`'s wire traffic is mangled on cycle
    ///   `C` (garbage injection, corruption, truncation);
    /// * `random:SEED` — a seed-driven plan at default rates (requires the
    ///   caller to know `n_cycles`, so it takes it via [`FaultPlan::random`]
    ///   — here it is expanded with `n_cycles` passed in).
    pub fn parse(spec: &str, n_cycles: usize) -> Result<Self, String> {
        let mut plan = Self::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(seed) = token.strip_prefix("random:") {
                let seed: u64 = seed.parse().map_err(|_| format!("bad seed in `{token}`"))?;
                let random = Self::random(seed, n_cycles, FaultRates::default());
                for (cycle, faults) in random.by_cycle {
                    for f in faults {
                        plan.push(cycle, f);
                    }
                }
                continue;
            }
            let (kind, at) = token
                .split_once('@')
                .ok_or_else(|| format!("missing `@cycle` in `{token}`"))?;
            match kind {
                "panic:scan" | "panic:assim" | "panic:fcst" => {
                    let cycle: usize = at.parse().map_err(|_| format!("bad cycle in `{token}`"))?;
                    let stage = match kind {
                        "panic:scan" => Stage::Scan,
                        "panic:assim" => Stage::Assimilation,
                        _ => Stage::Forecast,
                    };
                    plan.push(cycle, Fault::StagePanic(stage));
                }
                "stall" => {
                    let (cycle, timeouts) = match at.split_once('x') {
                        Some((c, n)) => (
                            c.parse().map_err(|_| format!("bad cycle in `{token}`"))?,
                            n.parse().map_err(|_| format!("bad count in `{token}`"))?,
                        ),
                        None => (
                            at.parse().map_err(|_| format!("bad cycle in `{token}`"))?,
                            1usize,
                        ),
                    };
                    plan.push(cycle, Fault::TransferStall { timeouts });
                }
                "corrupt" => {
                    let cycle: usize = at.parse().map_err(|_| format!("bad cycle in `{token}`"))?;
                    plan.push(cycle, Fault::CorruptVolume);
                }
                "drop" => {
                    let cycle: usize = at.parse().map_err(|_| format!("bad cycle in `{token}`"))?;
                    plan.push(cycle, Fault::DropScan);
                }
                "dup" => {
                    let cycle: usize = at.parse().map_err(|_| format!("bad cycle in `{token}`"))?;
                    plan.push(cycle, Fault::DuplicateVolume);
                }
                "stale" => {
                    let cycle: usize = at.parse().map_err(|_| format!("bad cycle in `{token}`"))?;
                    plan.push(cycle, Fault::StaleScan);
                }
                "crash" => {
                    let cycle: usize = at.parse().map_err(|_| format!("bad cycle in `{token}`"))?;
                    plan.push(cycle, Fault::Crash);
                }
                other => {
                    // `partition` is the one kind whose argument is a pair.
                    if let Some(pair) = other.strip_prefix("partition:") {
                        let (a, b) = pair
                            .split_once('-')
                            .ok_or_else(|| format!("missing `A-B` pair in `{token}`"))?;
                        let a: usize = a.parse().map_err(|_| format!("bad shard in `{token}`"))?;
                        let b: usize = b.parse().map_err(|_| format!("bad shard in `{token}`"))?;
                        if a == b {
                            return Err(format!("partition endpoints equal in `{token}`"));
                        }
                        let cycle: usize =
                            at.parse().map_err(|_| format!("bad cycle in `{token}`"))?;
                        plan = plan.partition(cycle, a, b);
                        continue;
                    }
                    let member_fault = other.split_once(':').and_then(|(kind, m)| {
                        let arg: usize = m.parse().ok()?;
                        match kind {
                            "nan" => Some(Fault::MemberNan { member: arg }),
                            "blowup" => Some(Fault::MemberBlowUp { member: arg }),
                            "slowclient" => Some(Fault::SlowClients { n: arg }),
                            "connstorm" => Some(Fault::ConnStorm { n: arg }),
                            "shardkill" => Some(Fault::ShardKill { shard: arg }),
                            "shardstall" => Some(Fault::ShardStall { shard: arg }),
                            "halodrop" => Some(Fault::HaloDrop { shard: arg }),
                            "netstall" => Some(Fault::NetStall { shard: arg }),
                            "wiregarbage" => Some(Fault::WireGarbage { shard: arg }),
                            _ => None,
                        }
                    });
                    match member_fault {
                        Some(fault) => {
                            let cycle: usize =
                                at.parse().map_err(|_| format!("bad cycle in `{token}`"))?;
                            plan.push(cycle, fault);
                        }
                        None => return Err(format!("unknown fault kind `{other}` in `{token}`")),
                    }
                }
            }
        }
        Ok(plan)
    }

    /// Serialize the plan back to the compact spec grammar accepted by
    /// [`FaultPlan::parse`]. For any plan, `parse(&plan.to_spec(), n)`
    /// reconstructs an equal plan — the round-trip contract the parse
    /// tests pin down.
    pub fn to_spec(&self) -> String {
        let mut tokens = Vec::with_capacity(self.len());
        for (&cycle, faults) in &self.by_cycle {
            for f in faults {
                tokens.push(match *f {
                    Fault::StagePanic(Stage::Scan) => format!("panic:scan@{cycle}"),
                    Fault::StagePanic(Stage::Assimilation) => format!("panic:assim@{cycle}"),
                    Fault::StagePanic(Stage::Forecast) | Fault::StagePanic(Stage::Transfer) => {
                        format!("panic:fcst@{cycle}")
                    }
                    Fault::TransferStall { timeouts: 1 } => format!("stall@{cycle}"),
                    Fault::TransferStall { timeouts } => format!("stall@{cycle}x{timeouts}"),
                    Fault::CorruptVolume => format!("corrupt@{cycle}"),
                    Fault::DropScan => format!("drop@{cycle}"),
                    Fault::DuplicateVolume => format!("dup@{cycle}"),
                    Fault::StaleScan => format!("stale@{cycle}"),
                    Fault::MemberNan { member } => format!("nan:{member}@{cycle}"),
                    Fault::MemberBlowUp { member } => format!("blowup:{member}@{cycle}"),
                    Fault::Crash => format!("crash@{cycle}"),
                    Fault::SlowClients { n } => format!("slowclient:{n}@{cycle}"),
                    Fault::ConnStorm { n } => format!("connstorm:{n}@{cycle}"),
                    Fault::ShardKill { shard } => format!("shardkill:{shard}@{cycle}"),
                    Fault::ShardStall { shard } => format!("shardstall:{shard}@{cycle}"),
                    Fault::HaloDrop { shard } => format!("halodrop:{shard}@{cycle}"),
                    Fault::Partition { a, b } => format!("partition:{a}-{b}@{cycle}"),
                    Fault::NetStall { shard } => format!("netstall:{shard}@{cycle}"),
                    Fault::WireGarbage { shard } => format!("wiregarbage:{shard}@{cycle}"),
                });
            }
        }
        tokens.join(", ")
    }

    /// Deterministically corrupt a payload in place (used by the injector:
    /// flips one bit past the point where the scan-time checksum was taken).
    pub fn corrupt_payload(payload: &mut [u8]) {
        if payload.is_empty() {
            return;
        }
        let mid = payload.len() / 2;
        payload[mid] ^= 0x5A;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_per_cycle() {
        let plan = FaultPlan::none()
            .panic_at(Stage::Assimilation, 3)
            .corrupt_volume(3)
            .stall_transfer(5, 2)
            .drop_scan(7);
        assert_eq!(plan.len(), 4);
        assert!(plan.has(3, Fault::StagePanic(Stage::Assimilation)));
        assert!(plan.has(3, Fault::CorruptVolume));
        assert_eq!(plan.stall_timeouts(5), 2);
        assert_eq!(plan.stall_timeouts(3), 0);
        assert!(plan.has(7, Fault::DropScan));
        assert!(plan.faults_for(0).is_empty());
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "panic:assim@3, corrupt@5, stall@2x3, drop@7, panic:fcst@9",
            16,
        )
        .unwrap();
        assert!(plan.has(3, Fault::StagePanic(Stage::Assimilation)));
        assert!(plan.has(5, Fault::CorruptVolume));
        assert_eq!(plan.stall_timeouts(2), 3);
        assert!(plan.has(7, Fault::DropScan));
        assert!(plan.has(9, Fault::StagePanic(Stage::Forecast)));
    }

    #[test]
    fn parse_member_faults_and_crash() {
        let plan = FaultPlan::parse("nan:2@3, blowup:0@5, crash@7, nan:4@3", 16).unwrap();
        assert_eq!(plan.member_nans(3), vec![2, 4]);
        assert_eq!(plan.member_blowups(5), vec![0]);
        assert!(plan.has_crash(7));
        assert!(!plan.has_crash(3));
        assert!(plan.member_nans(5).is_empty());
        assert!(FaultPlan::parse("nan:x@3", 8).is_err());
        assert!(FaultPlan::parse("blowup:1@y", 8).is_err());
    }

    #[test]
    fn builder_member_faults() {
        let plan = FaultPlan::none()
            .nan_member(2, 1)
            .blowup_member(2, 3)
            .crash_at(4);
        assert_eq!(plan.member_nans(2), vec![1]);
        assert_eq!(plan.member_blowups(2), vec![3]);
        assert!(plan.has_crash(4));
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn parse_ingest_faults() {
        let plan = FaultPlan::parse("dup@2, stale@4", 8).unwrap();
        assert!(plan.has(2, Fault::DuplicateVolume));
        assert!(plan.has(4, Fault::StaleScan));
        assert!(!plan.has(2, Fault::StaleScan));
        let built = FaultPlan::none().duplicate_volume(1).stale_scan(3);
        assert!(built.has(1, Fault::DuplicateVolume));
        assert!(built.has(3, Fault::StaleScan));
        assert!(FaultPlan::parse("dup@x", 8).is_err());
        assert!(FaultPlan::parse("stale@", 8).is_err());
    }

    #[test]
    fn parse_egress_faults_compose_with_ingest() {
        let plan = FaultPlan::parse(
            "slowclient:50@2, connstorm:200@4, drop@2, slowclient:10@2",
            8,
        )
        .unwrap();
        assert_eq!(plan.slow_clients_at(2), 60);
        assert_eq!(plan.conn_storm_at(4), 200);
        assert_eq!(plan.conn_storm_at(2), 0);
        assert!(plan.has(2, Fault::DropScan));
        let built = FaultPlan::none().slow_clients(1, 5).conn_storm(1, 7);
        assert_eq!(built.slow_clients_at(1), 5);
        assert_eq!(built.conn_storm_at(1), 7);
        assert!(FaultPlan::parse("slowclient:x@2", 8).is_err());
        assert!(FaultPlan::parse("connstorm:3@y", 8).is_err());
    }

    #[test]
    fn parse_shard_faults() {
        let plan = FaultPlan::parse(
            "shardkill:1@4, shardstall:0@6, halodrop:2@6, shardkill:3@4",
            16,
        )
        .unwrap();
        assert_eq!(plan.shard_kills(4), vec![1, 3]);
        assert_eq!(plan.shard_stalls(6), vec![0]);
        assert_eq!(plan.halo_drops(6), vec![2]);
        assert!(plan.shard_kills(6).is_empty());
        assert!(plan.halo_drops(4).is_empty());
        let built = FaultPlan::none()
            .shard_kill(2, 1)
            .shard_stall(3, 0)
            .halo_drop(3, 1);
        assert_eq!(built.shard_kills(2), vec![1]);
        assert_eq!(built.shard_stalls(3), vec![0]);
        assert_eq!(built.halo_drops(3), vec![1]);
        assert!(FaultPlan::parse("shardkill:x@2", 8).is_err());
        assert!(FaultPlan::parse("halodrop:1@y", 8).is_err());
        assert!(FaultPlan::parse("shardstall:@2", 8).is_err());
    }

    #[test]
    fn parse_network_faults() {
        let plan = FaultPlan::parse(
            "partition:0-2@3, netstall:1@4, wiregarbage:2@4, partition:3-1@3",
            8,
        )
        .unwrap();
        // Pairs canonicalize to (low, high) no matter the spec order.
        assert_eq!(plan.partitions(3), vec![(0, 2), (1, 3)]);
        assert_eq!(plan.net_stalls(4), vec![1]);
        assert_eq!(plan.wire_garbages(4), vec![2]);
        assert!(plan.partitions(4).is_empty());
        assert!(plan.net_stalls(3).is_empty());
        let built = FaultPlan::none()
            .partition(1, 2, 0)
            .net_stall(2, 0)
            .wire_garbage(2, 1);
        assert_eq!(built.partitions(1), vec![(0, 2)]);
        assert_eq!(built.net_stalls(2), vec![0]);
        assert_eq!(built.wire_garbages(2), vec![1]);
        assert!(FaultPlan::parse("partition:0@2", 8).is_err());
        assert!(FaultPlan::parse("partition:1-1@2", 8).is_err());
        assert!(FaultPlan::parse("partition:a-b@2", 8).is_err());
        assert!(FaultPlan::parse("partition:0-1@x", 8).is_err());
        assert!(FaultPlan::parse("netstall:x@2", 8).is_err());
        assert!(FaultPlan::parse("wiregarbage:1@y", 8).is_err());
    }

    #[test]
    fn network_fault_specs_round_trip_canonically() {
        let plan = FaultPlan::none()
            .partition(2, 3, 1)
            .net_stall(3, 0)
            .wire_garbage(4, 2);
        assert_eq!(
            plan.to_spec(),
            "partition:1-3@2, netstall:0@3, wiregarbage:2@4"
        );
        assert_eq!(FaultPlan::parse(&plan.to_spec(), 8).unwrap(), plan);
    }

    #[test]
    fn spec_round_trips_through_parser() {
        let spec = "panic:assim@1, stall@2x3, stall@3, corrupt@4, drop@5, dup@6, stale@7, \
                    nan:2@8, blowup:0@9, crash@10, slowclient:50@11, connstorm:200@12, \
                    shardkill:1@13, shardstall:0@14, halodrop:2@15, partition:0-1@2, \
                    netstall:1@5, wiregarbage:0@6";
        let plan = FaultPlan::parse(spec, 16).unwrap();
        let reparsed = FaultPlan::parse(&plan.to_spec(), 16).unwrap();
        assert_eq!(plan, reparsed);
        // And a seed-driven plan survives the trip too.
        let random = FaultPlan::random(42, 64, FaultRates::default());
        assert_eq!(FaultPlan::parse(&random.to_spec(), 64).unwrap(), random);
    }

    #[test]
    fn to_spec_of_shard_faults_is_canonical() {
        let plan = FaultPlan::none().shard_kill(3, 1).halo_drop(5, 0);
        assert_eq!(plan.to_spec(), "shardkill:1@3, halodrop:0@5");
        assert_eq!(FaultPlan::none().to_spec(), "");
    }

    #[test]
    fn parse_stall_default_one_window() {
        let plan = FaultPlan::parse("stall@4", 8).unwrap();
        assert_eq!(plan.stall_timeouts(4), 1);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        assert!(FaultPlan::parse("explode@3", 8).is_err());
        assert!(FaultPlan::parse("corrupt@x", 8).is_err());
        assert!(FaultPlan::parse("corrupt", 8).is_err());
        assert!(FaultPlan::parse("random:notanumber", 8).is_err());
    }

    #[test]
    fn parse_empty_spec_is_empty_plan() {
        assert!(FaultPlan::parse("", 8).unwrap().is_empty());
        assert!(FaultPlan::parse(" , ", 8).unwrap().is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_in_seed() {
        let a = FaultPlan::random(42, 200, FaultRates::default());
        let b = FaultPlan::random(42, 200, FaultRates::default());
        let c = FaultPlan::random(43, 200, FaultRates::default());
        for cycle in 0..200 {
            assert_eq!(a.faults_for(cycle), b.faults_for(cycle));
        }
        assert!(
            (0..200).any(|cy| a.faults_for(cy) != c.faults_for(cy)),
            "different seeds produced identical plans"
        );
        assert!(
            !a.is_empty(),
            "default rates over 200 cycles injected nothing"
        );
    }

    #[test]
    fn corrupt_payload_flips_exactly_one_bit() {
        let mut p = vec![0u8; 9];
        FaultPlan::corrupt_payload(&mut p);
        assert_eq!(p.iter().filter(|&&b| b != 0).count(), 1);
        assert_eq!(p[4], 0x5A);
        let mut empty: Vec<u8> = vec![];
        FaultPlan::corrupt_payload(&mut empty); // must not panic
    }
}
