//! Component-time performance model, calibrated to the paper.
//!
//! §7: "On average, JIT-DT sends ~100 MB data in ~3 seconds, and <1>
//! SCALE-LETKF takes ~15 seconds, and <2> SCALE 30-minute forecast takes
//! ~2 minutes. We would expect some variations of compute time depending on
//! the area of rain." The time-to-solution anatomy follows Fig. 4: file
//! creation + JIT-DT + <1-1> LETKF + <2> 30-minute forecast.

use bda_jitdt::JitDt;
use bda_num::SplitMix64;
use serde::{Deserialize, Serialize};

/// One cycle's time-to-solution, segmented as in Fig. 4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeToSolution {
    /// MP-PAWR data file creation at Saitama, s.
    pub file_creation: f64,
    /// JIT-DT transfer, s.
    pub transfer: f64,
    /// Part <1>: LETKF analysis (+ implicit 30-s ensemble forecast overlap).
    pub assimilation: f64,
    /// Part <2>: 11-member 30-minute forecast + product output.
    pub forecast: f64,
}

impl TimeToSolution {
    /// Total wall-clock from `T_obs` to product file creation, s.
    pub fn total(&self) -> f64 {
        self.file_creation + self.transfer + self.assimilation + self.forecast
    }

    /// Total in minutes (the Fig. 5 axis).
    pub fn total_minutes(&self) -> f64 {
        self.total() / 60.0
    }
}

/// Stochastic component-time model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfModel {
    /// Mean MP-PAWR volume-file creation time, s.
    pub file_creation_mean: f64,
    pub file_creation_sd: f64,
    /// JIT-DT transfer engine (link model, watchdog).
    pub jitdt: JitDt,
    /// Volume size shipped per cycle, bytes.
    pub scan_bytes: usize,
    /// LETKF base time at zero rain, s.
    pub letkf_base: f64,
    /// LETKF rain sensitivity: extra fraction at full-domain rain. More
    /// echo means more observations pass QC and more grid points carry
    /// full-size local problems.
    pub letkf_rain_factor: f64,
    pub letkf_sd: f64,
    /// 30-minute forecast base time, s.
    pub forecast_base: f64,
    /// Forecast rain sensitivity (microphysics load).
    pub forecast_rain_factor: f64,
    pub forecast_sd: f64,
    /// Probability of a transient system hiccup per cycle (I/O contention,
    /// JIT-DT restart, node stall) — the isolated spikes of Fig. 5.
    pub hiccup_probability: f64,
    /// Mean extra delay of a hiccup, s (exponentially distributed).
    pub hiccup_mean_s: f64,
}

impl PerfModel {
    /// Calibration reproducing the paper's reported means.
    pub fn bda2021() -> Self {
        Self {
            file_creation_mean: 8.0,
            file_creation_sd: 1.5,
            jitdt: JitDt::bda2021(),
            scan_bytes: 100 * 1024 * 1024,
            letkf_base: 13.0,
            letkf_rain_factor: 1.0,
            letkf_sd: 1.2,
            forecast_base: 115.0,
            forecast_rain_factor: 0.3,
            forecast_sd: 6.0,
            hiccup_probability: 0.04,
            hiccup_mean_s: 55.0,
        }
    }

    /// Sample one cycle. `rain_load` in [0, 1] is the rain-area fraction;
    /// deterministic in `seed`.
    ///
    /// Returns `None` when the transfer watchdog gave up (cycle lost — a
    /// gray gap in Fig. 5 even outside scheduled outages).
    pub fn sample(&self, rain_load: f64, seed: u64) -> Option<TimeToSolution> {
        let mut rng = SplitMix64::new(seed);
        let file_creation =
            (self.file_creation_mean + self.file_creation_sd * rng.next_gaussian::<f64>()).max(1.0);
        let transfer_outcome = self.jitdt.transfer(self.scan_bytes, rng.next_u64());
        if !transfer_outcome.completed {
            return None;
        }
        let assimilation = (self.letkf_base * (1.0 + self.letkf_rain_factor * rain_load)
            + self.letkf_sd * rng.next_gaussian::<f64>())
        .max(2.0);
        let mut forecast = (self.forecast_base * (1.0 + self.forecast_rain_factor * rain_load)
            + self.forecast_sd * rng.next_gaussian::<f64>())
        .max(30.0);
        if rng.next_uniform() < self.hiccup_probability {
            forecast += -self.hiccup_mean_s * (1.0 - rng.next_uniform()).ln();
        }
        Some(TimeToSolution {
            file_creation,
            transfer: transfer_outcome.duration_s,
            assimilation,
            forecast,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_means_match_paper() {
        // `sample` returning None is an outage cycle, not an error: skip it
        // and average the completed ones, exactly as the campaign does.
        let m = PerfModel::bda2021();
        let mut n = 0usize;
        let mut tr = 0.0;
        let mut asml = 0.0;
        let mut fc = 0.0;
        for seed in 0..400 {
            let Some(t) = m.sample(0.05, seed) else {
                continue;
            };
            n += 1;
            tr += t.transfer;
            asml += t.assimilation;
            fc += t.forecast;
        }
        assert!(
            n > 300,
            "only {n} of 400 cycles completed on a healthy link"
        );
        let (tr, asml, fc) = (tr / n as f64, asml / n as f64, fc / n as f64);
        assert!(
            (2.0..4.5).contains(&tr),
            "JIT-DT mean {tr:.2} s, paper ~3 s"
        );
        assert!(
            (12.0..18.0).contains(&asml),
            "LETKF mean {asml:.1} s, paper ~15 s"
        );
        assert!(
            (100.0..140.0).contains(&fc),
            "forecast mean {fc:.0} s, paper ~2 min"
        );
    }

    #[test]
    fn typical_total_is_under_three_minutes() {
        let m = PerfModel::bda2021();
        let mut below = 0;
        let n = 500;
        for seed in 0..n {
            if let Some(t) = m.sample(0.05, seed) {
                if t.total_minutes() < 3.0 {
                    below += 1;
                }
            }
        }
        let frac = below as f64 / n as f64;
        assert!(frac > 0.9, "only {:.0}% under 3 min", frac * 100.0);
    }

    #[test]
    fn heavy_rain_slows_the_cycle() {
        let m = PerfModel::bda2021();
        let mean_total = |load: f64| -> f64 {
            (0..200)
                .filter_map(|s| m.sample(load, s).map(|t| t.total()))
                .sum::<f64>()
                / 200.0
        };
        let quiet = mean_total(0.0);
        let stormy = mean_total(0.8);
        assert!(
            stormy > quiet + 10.0,
            "rain sensitivity missing: {quiet:.1} vs {stormy:.1}"
        );
    }

    #[test]
    fn degraded_link_surfaces_outages_not_panics() {
        // Regression: an exhausted transfer watchdog must come back as
        // None (an outage cycle) and never abort the sampling loop.
        let mut m = PerfModel::bda2021();
        m.jitdt.link.stall_probability = 0.6;
        m.jitdt.link.stall_mean_s = 60.0;
        m.jitdt.stall_timeout_s = 1.0;
        m.jitdt.max_restarts = 1;
        let mut outages = 0usize;
        let mut completed = 0usize;
        for seed in 0..200 {
            match m.sample(0.05, seed) {
                None => outages += 1,
                Some(t) => {
                    completed += 1;
                    assert!(t.total() > 0.0);
                }
            }
        }
        assert!(
            outages > 0,
            "a link this bad must lose cycles ({completed} completed)"
        );
        assert_eq!(outages + completed, 200);
    }

    #[test]
    fn sample_is_deterministic() {
        let m = PerfModel::bda2021();
        assert_eq!(m.sample(0.3, 99), m.sample(0.3, 99));
    }

    #[test]
    fn total_sums_segments() {
        let t = TimeToSolution {
            file_creation: 1.0,
            transfer: 2.0,
            assimilation: 3.0,
            forecast: 4.0,
        };
        assert_eq!(t.total(), 10.0);
        assert!((t.total_minutes() - 1.0 / 6.0).abs() < 1e-12);
    }
}
