//! Month-long campaign simulation — regenerates Fig. 5.

use crate::nodes::NodeAllocation;
use crate::outage::OutageSchedule;
use crate::perfmodel::{PerfModel, TimeToSolution};
use crate::raintrace::RainTrace;
use bda_num::stats::Histogram;
use bda_num::SplitMix64;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One exclusive-access period (Fig. 5a: Olympics, 5b: Paralympics).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignPeriod {
    pub name: String,
    pub duration_s: f64,
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    pub periods: Vec<CampaignPeriod>,
    /// Cycle interval, s (30 s refresh).
    pub cycle_interval: f64,
    /// Target system availability (net uptime fraction).
    pub availability: f64,
    pub perf: PerfModel,
    /// Node allocation; `forecast_slots` bounds how many 30-minute
    /// forecasts can run concurrently on part <2> (§5's "efficient node
    /// allocation to initialize the expensive part <2> ... every 30
    /// seconds"). A cycle whose forecast cannot get a slot is skipped.
    pub nodes: NodeAllocation,
    pub seed: u64,
}

impl CampaignConfig {
    /// The 2021 deployment: Olympics July 20 – August 8 (19 days wall) and
    /// Paralympics August 25 – September 5 (11 days wall), 30-s cycles,
    /// availability tuned to the paper's net 26 d 3 h 4 m of production.
    pub fn bda2021() -> Self {
        Self {
            periods: vec![
                CampaignPeriod {
                    name: "Olympics (Jul 20 - Aug 8)".into(),
                    duration_s: 19.0 * 86_400.0,
                },
                CampaignPeriod {
                    name: "Paralympics (Aug 25 - Sep 5)".into(),
                    duration_s: 11.0 * 86_400.0,
                },
            ],
            cycle_interval: 30.0,
            availability: 0.871, // 26d03h04m / 30d
            perf: PerfModel::bda2021(),
            nodes: NodeAllocation::bda2021(),
            seed: 2021,
        }
    }

    /// A short campaign for tests/examples.
    pub fn short(hours: f64, seed: u64) -> Self {
        Self {
            periods: vec![CampaignPeriod {
                name: format!("test ({hours} h)"),
                duration_s: hours * 3600.0,
            }],
            cycle_interval: 30.0,
            availability: 0.9,
            perf: PerfModel::bda2021(),
            nodes: NodeAllocation::bda2021(),
            seed,
        }
    }
}

/// One cycle's record.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Cycle time, s from period start.
    pub t: f64,
    /// None during outages (the gray shading).
    pub tts: Option<TimeToSolution>,
    /// Rain areas, km^2 (the cyan/blue curves).
    pub rain_area_1mmh: f64,
    pub rain_area_20mmh: f64,
}

/// One period's simulation output.
#[derive(Clone, Debug)]
pub struct PeriodResult {
    pub name: String,
    pub records: Vec<CycleRecord>,
    pub outages: OutageSchedule,
    /// Cycles whose 30-minute forecast found no free part <2> slot.
    pub skipped_no_slot: usize,
}

impl PeriodResult {
    pub fn forecasts_issued(&self) -> usize {
        self.records.iter().filter(|r| r.tts.is_some()).count()
    }
}

/// Full campaign output.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    pub periods: Vec<PeriodResult>,
}

impl CampaignResult {
    /// Total forecasts issued (paper: 75,248).
    pub fn total_forecasts(&self) -> usize {
        self.periods
            .iter()
            .map(PeriodResult::forecasts_issued)
            .sum()
    }

    /// All time-to-solution samples, minutes.
    pub fn tts_minutes(&self) -> Vec<f64> {
        self.periods
            .iter()
            .flat_map(|p| p.records.iter())
            .filter_map(|r| r.tts.map(|t| t.total_minutes()))
            .collect()
    }

    /// Fraction of forecasts under `minutes` (Fig. 5c: ~97% under 3).
    pub fn fraction_below(&self, minutes: f64) -> f64 {
        let tts = self.tts_minutes();
        if tts.is_empty() {
            return 0.0;
        }
        tts.iter().filter(|&&t| t < minutes).count() as f64 / tts.len() as f64
    }

    /// The Fig. 5c histogram.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        for t in self.tts_minutes() {
            h.add(t);
        }
        h
    }

    /// Net production time, s.
    pub fn net_uptime(&self) -> f64 {
        self.periods
            .iter()
            .map(|p| p.records.iter().filter(|r| r.tts.is_some()).count() as f64 * 30.0)
            .sum()
    }

    /// Export the Fig. 5 series (time, time-to-solution, rain areas) as CSV
    /// for external plotting — one file per period, subsampled by `stride`
    /// cycles. Returns the written paths.
    pub fn export_csv(
        &self,
        dir: impl AsRef<std::path::Path>,
        stride: usize,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        use std::io::Write;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let stride = stride.max(1);
        let mut paths = Vec::new();
        for (pi, p) in self.periods.iter().enumerate() {
            let path = dir.join(format!("fig5_period{pi}.csv"));
            let mut f = std::fs::File::create(&path)?;
            writeln!(f, "t_s,tts_min,rain_area_1mmh_km2,rain_area_20mmh_km2")?;
            for r in p.records.iter().step_by(stride) {
                let tts = r
                    .tts
                    .map(|t| format!("{:.4}", t.total_minutes()))
                    .unwrap_or_default();
                writeln!(
                    f,
                    "{:.0},{},{:.1},{:.1}",
                    r.t, tts, r.rain_area_1mmh, r.rain_area_20mmh
                )?;
            }
            paths.push(path);
        }
        Ok(paths)
    }

    /// A Fig. 5-style text report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for p in &self.periods {
            out.push_str(&format!(
                "{}: {} forecasts, availability {:.1}%\n",
                p.name,
                p.forecasts_issued(),
                p.outages.availability() * 100.0
            ));
        }
        let tts = self.tts_minutes();
        let mean = tts.iter().sum::<f64>() / tts.len().max(1) as f64;
        out.push_str(&format!(
            "total {} forecasts; mean time-to-solution {:.2} min; {:.1}% under 3 min\n",
            self.total_forecasts(),
            mean,
            self.fraction_below(3.0) * 100.0
        ));
        out.push_str("\nTime-to-solution histogram (minutes):\n");
        out.push_str(&self.histogram(1.5, 4.0, 25).ascii(40));
        out
    }
}

/// Run the campaign simulation.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let mut periods = Vec::new();
    let mut rng = SplitMix64::new(cfg.seed);
    for (pi, period) in cfg.periods.iter().enumerate() {
        let seed_p = rng.next_u64() ^ (pi as u64);
        let trace = RainTrace::generate(period.duration_s, seed_p);
        let outages =
            OutageSchedule::generate(period.duration_s, cfg.availability, seed_p ^ 0xABCD);
        let n_cycles = (period.duration_s / cfg.cycle_interval) as usize;
        let mut records = Vec::with_capacity(n_cycles);
        // Completion times of in-flight part <2> forecasts (slot scheduler).
        let mut in_flight: VecDeque<f64> = VecDeque::new();
        let mut skipped_no_slot = 0usize;
        for c in 0..n_cycles {
            let t = c as f64 * cfg.cycle_interval;
            let a1 = trace.area_1mmh(t);
            let a20 = trace.area_20mmh(t);
            let tts = if outages.is_down(t) {
                None
            } else if let Some(sample) = cfg
                .perf
                .sample(trace.load_factor(t), seed_p.wrapping_add(c as u64))
            {
                // Part <2> nodes are busy only while a 30-minute forecast
                // actually runs (transfer and analysis live on part <1>).
                // Free the slots of forecasts done by this launch time.
                let launch = t + sample.file_creation + sample.transfer + sample.assimilation;
                while let Some(&done) = in_flight.front() {
                    if done <= launch {
                        in_flight.pop_front();
                    } else {
                        break;
                    }
                }
                if in_flight.len() >= cfg.nodes.forecast_slots {
                    skipped_no_slot += 1;
                    None
                } else {
                    in_flight.push_back(launch + sample.forecast);
                    Some(sample)
                }
            } else {
                None
            };
            records.push(CycleRecord {
                t,
                tts,
                rain_area_1mmh: a1,
                rain_area_20mmh: a20,
            });
        }
        periods.push(PeriodResult {
            name: period.name.clone(),
            records,
            outages,
            skipped_no_slot,
        });
    }
    CampaignResult { periods }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_campaign_produces_forecasts_with_gaps() {
        let cfg = CampaignConfig::short(6.0, 1);
        let r = run_campaign(&cfg);
        let issued = r.total_forecasts();
        let cycles = 6 * 3600 / 30;
        assert!(issued > 0 && issued <= cycles);
        // Availability ~0.9: at least some gap, not too many.
        assert!(issued as f64 / cycles as f64 > 0.6);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = CampaignConfig::short(2.0, 7);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.total_forecasts(), b.total_forecasts());
        assert_eq!(a.tts_minutes(), b.tts_minutes());
    }

    #[test]
    fn most_forecasts_beat_three_minutes() {
        let cfg = CampaignConfig::short(12.0, 3);
        let r = run_campaign(&cfg);
        let frac = r.fraction_below(3.0);
        assert!(frac > 0.85, "only {:.1}% under 3 min", frac * 100.0);
    }

    #[test]
    fn rain_areas_recorded_for_every_cycle() {
        let cfg = CampaignConfig::short(1.0, 5);
        let r = run_campaign(&cfg);
        for rec in &r.periods[0].records {
            assert!(rec.rain_area_1mmh >= rec.rain_area_20mmh);
            assert!(rec.rain_area_1mmh >= 0.0);
        }
    }

    #[test]
    fn report_mentions_key_statistics() {
        let cfg = CampaignConfig::short(2.0, 9);
        let r = run_campaign(&cfg);
        let rep = r.report();
        assert!(rep.contains("forecasts"));
        assert!(rep.contains("under 3 min"));
        assert!(rep.contains("histogram"));
    }

    #[test]
    fn bda2021_config_has_two_periods_of_30_days() {
        let cfg = CampaignConfig::bda2021();
        assert_eq!(cfg.periods.len(), 2);
        let total: f64 = cfg.periods.iter().map(|p| p.duration_s).sum();
        assert!((total - 30.0 * 86_400.0).abs() < 1.0);
        assert_eq!(cfg.cycle_interval, 30.0);
    }

    #[test]
    fn csv_export_writes_one_file_per_period() {
        let cfg = CampaignConfig::short(1.0, 21);
        let r = run_campaign(&cfg);
        let dir = std::env::temp_dir().join(format!("bda_fig5_csv_{}", std::process::id()));
        let paths = r.export_csv(&dir, 10).unwrap();
        assert_eq!(paths.len(), 1);
        let content = std::fs::read_to_string(&paths[0]).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert!(lines[0].starts_with("t_s,tts_min"));
        // 1 h / 30 s = 120 cycles, stride 10 -> 12 data rows + header.
        assert_eq!(lines.len(), 13);
        // Outage rows have an empty tts field but still carry rain areas.
        assert!(lines[1].split(',').count() == 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn starved_forecast_slots_skip_most_cycles() {
        let mut cfg = CampaignConfig::short(2.0, 13);
        cfg.nodes.forecast_slots = 1;
        let r = run_campaign(&cfg);
        let skipped = r.periods[0].skipped_no_slot;
        let issued = r.total_forecasts();
        // A ~2.5-minute forecast holding the only slot admits roughly one
        // cycle in five.
        assert!(skipped > issued, "skipped {skipped} vs issued {issued}");
        assert!(issued > 0);
    }

    #[test]
    fn default_slots_rarely_skip() {
        let cfg = CampaignConfig::short(6.0, 13);
        let r = run_campaign(&cfg);
        let skipped = r.periods[0].skipped_no_slot;
        let issued = r.total_forecasts();
        assert!(
            (skipped as f64) < 0.05 * issued as f64,
            "skipped {skipped} of {issued}"
        );
    }

    #[test]
    fn degraded_link_campaign_records_outage_cycles() {
        // Regression: exhausted transfers must land as tts == None rows
        // (gray Fig. 5 bands), never abort the campaign run.
        let mut cfg = CampaignConfig::short(2.0, 17);
        cfg.availability = 1.0; // isolate link losses from scheduled outages
        cfg.perf.jitdt.link.stall_probability = 0.05;
        cfg.perf.jitdt.link.stall_mean_s = 10.0;
        cfg.perf.jitdt.stall_timeout_s = 5.0;
        cfg.perf.jitdt.max_restarts = 1;
        let r = run_campaign(&cfg);
        let records = &r.periods[0].records;
        let lost = records.iter().filter(|rec| rec.tts.is_none()).count();
        assert!(lost > 0, "a link this bad must lose cycles");
        assert!(r.total_forecasts() > 0, "not every cycle should be lost");
        assert_eq!(records.len(), (2.0 * 3600.0 / 30.0) as usize);
    }

    #[test]
    fn net_uptime_consistent_with_forecast_count() {
        let cfg = CampaignConfig::short(3.0, 11);
        let r = run_campaign(&cfg);
        assert!((r.net_uptime() - r.total_forecasts() as f64 * 30.0).abs() < 1e-9);
    }
}
