//! Month-long campaign simulation — regenerates Fig. 5 — plus the
//! checkpointed cycling campaign ([`ResumableCampaign`]) that survives
//! `kill -9` and resumes bit-for-bit from the last valid snapshot.

use crate::fault::FaultPlan;
use crate::nodes::NodeAllocation;
use crate::outage::OutageSchedule;
use crate::perfmodel::{PerfModel, TimeToSolution};
use crate::raintrace::RainTrace;
use bda_io::checkpoint::{
    latest_checkpoint, read_checkpoint, write_checkpoint, CampaignSnapshot, CheckpointError,
    OutcomeRecord,
};
use bda_num::stats::Histogram;
use bda_num::{Real, SplitMix64};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::PathBuf;

/// One exclusive-access period (Fig. 5a: Olympics, 5b: Paralympics).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignPeriod {
    pub name: String,
    pub duration_s: f64,
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    pub periods: Vec<CampaignPeriod>,
    /// Cycle interval, s (30 s refresh).
    pub cycle_interval: f64,
    /// Target system availability (net uptime fraction).
    pub availability: f64,
    pub perf: PerfModel,
    /// Node allocation; `forecast_slots` bounds how many 30-minute
    /// forecasts can run concurrently on part <2> (§5's "efficient node
    /// allocation to initialize the expensive part <2> ... every 30
    /// seconds"). A cycle whose forecast cannot get a slot is skipped.
    pub nodes: NodeAllocation,
    pub seed: u64,
}

impl CampaignConfig {
    /// The 2021 deployment: Olympics July 20 – August 8 (19 days wall) and
    /// Paralympics August 25 – September 5 (11 days wall), 30-s cycles,
    /// availability tuned to the paper's net 26 d 3 h 4 m of production.
    pub fn bda2021() -> Self {
        Self {
            periods: vec![
                CampaignPeriod {
                    name: "Olympics (Jul 20 - Aug 8)".into(),
                    duration_s: 19.0 * 86_400.0,
                },
                CampaignPeriod {
                    name: "Paralympics (Aug 25 - Sep 5)".into(),
                    duration_s: 11.0 * 86_400.0,
                },
            ],
            cycle_interval: 30.0,
            availability: 0.871, // 26d03h04m / 30d
            perf: PerfModel::bda2021(),
            nodes: NodeAllocation::bda2021(),
            seed: 2021,
        }
    }

    /// A short campaign for tests/examples.
    pub fn short(hours: f64, seed: u64) -> Self {
        Self {
            periods: vec![CampaignPeriod {
                name: format!("test ({hours} h)"),
                duration_s: hours * 3600.0,
            }],
            cycle_interval: 30.0,
            availability: 0.9,
            perf: PerfModel::bda2021(),
            nodes: NodeAllocation::bda2021(),
            seed,
        }
    }
}

/// One cycle's record.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CycleRecord {
    /// Cycle time, s from period start.
    pub t: f64,
    /// None during outages (the gray shading).
    pub tts: Option<TimeToSolution>,
    /// Rain areas, km^2 (the cyan/blue curves).
    pub rain_area_1mmh: f64,
    pub rain_area_20mmh: f64,
}

/// One period's simulation output.
#[derive(Clone, Debug)]
pub struct PeriodResult {
    pub name: String,
    pub records: Vec<CycleRecord>,
    pub outages: OutageSchedule,
    /// Cycles whose 30-minute forecast found no free part <2> slot.
    pub skipped_no_slot: usize,
}

impl PeriodResult {
    pub fn forecasts_issued(&self) -> usize {
        self.records.iter().filter(|r| r.tts.is_some()).count()
    }
}

/// Full campaign output.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    pub periods: Vec<PeriodResult>,
}

impl CampaignResult {
    /// Total forecasts issued (paper: 75,248).
    pub fn total_forecasts(&self) -> usize {
        self.periods
            .iter()
            .map(PeriodResult::forecasts_issued)
            .sum()
    }

    /// All time-to-solution samples, minutes.
    pub fn tts_minutes(&self) -> Vec<f64> {
        self.periods
            .iter()
            .flat_map(|p| p.records.iter())
            .filter_map(|r| r.tts.map(|t| t.total_minutes()))
            .collect()
    }

    /// Fraction of forecasts under `minutes` (Fig. 5c: ~97% under 3).
    pub fn fraction_below(&self, minutes: f64) -> f64 {
        let tts = self.tts_minutes();
        if tts.is_empty() {
            return 0.0;
        }
        tts.iter().filter(|&&t| t < minutes).count() as f64 / tts.len() as f64
    }

    /// The Fig. 5c histogram.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        for t in self.tts_minutes() {
            h.add(t);
        }
        h
    }

    /// Net production time, s.
    pub fn net_uptime(&self) -> f64 {
        self.periods
            .iter()
            .map(|p| p.records.iter().filter(|r| r.tts.is_some()).count() as f64 * 30.0)
            .sum()
    }

    /// Export the Fig. 5 series (time, time-to-solution, rain areas) as CSV
    /// for external plotting — one file per period, subsampled by `stride`
    /// cycles. Returns the written paths.
    pub fn export_csv(
        &self,
        dir: impl AsRef<std::path::Path>,
        stride: usize,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        use std::io::Write;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let stride = stride.max(1);
        let mut paths = Vec::new();
        for (pi, p) in self.periods.iter().enumerate() {
            let path = dir.join(format!("fig5_period{pi}.csv"));
            let mut f = std::fs::File::create(&path)?;
            writeln!(f, "t_s,tts_min,rain_area_1mmh_km2,rain_area_20mmh_km2")?;
            for r in p.records.iter().step_by(stride) {
                let tts = r
                    .tts
                    .map(|t| format!("{:.4}", t.total_minutes()))
                    .unwrap_or_default();
                writeln!(
                    f,
                    "{:.0},{},{:.1},{:.1}",
                    r.t, tts, r.rain_area_1mmh, r.rain_area_20mmh
                )?;
            }
            paths.push(path);
        }
        Ok(paths)
    }

    /// A Fig. 5-style text report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for p in &self.periods {
            out.push_str(&format!(
                "{}: {} forecasts, availability {:.1}%\n",
                p.name,
                p.forecasts_issued(),
                p.outages.availability() * 100.0
            ));
        }
        let tts = self.tts_minutes();
        let mean = tts.iter().sum::<f64>() / tts.len().max(1) as f64;
        out.push_str(&format!(
            "total {} forecasts; mean time-to-solution {:.2} min; {:.1}% under 3 min\n",
            self.total_forecasts(),
            mean,
            self.fraction_below(3.0) * 100.0
        ));
        out.push_str("\nTime-to-solution histogram (minutes):\n");
        out.push_str(&self.histogram(1.5, 4.0, 25).ascii(40));
        out
    }
}

/// Run the campaign simulation.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let mut periods = Vec::new();
    let mut rng = SplitMix64::new(cfg.seed);
    for (pi, period) in cfg.periods.iter().enumerate() {
        let seed_p = rng.next_u64() ^ (pi as u64);
        let trace = RainTrace::generate(period.duration_s, seed_p);
        let outages =
            OutageSchedule::generate(period.duration_s, cfg.availability, seed_p ^ 0xABCD);
        let n_cycles = (period.duration_s / cfg.cycle_interval) as usize;
        let mut records = Vec::with_capacity(n_cycles);
        // Completion times of in-flight part <2> forecasts (slot scheduler).
        let mut in_flight: VecDeque<f64> = VecDeque::new();
        let mut skipped_no_slot = 0usize;
        for c in 0..n_cycles {
            let t = c as f64 * cfg.cycle_interval;
            let a1 = trace.area_1mmh(t);
            let a20 = trace.area_20mmh(t);
            let tts = if outages.is_down(t) {
                None
            } else if let Some(sample) = cfg
                .perf
                .sample(trace.load_factor(t), seed_p.wrapping_add(c as u64))
            {
                // Part <2> nodes are busy only while a 30-minute forecast
                // actually runs (transfer and analysis live on part <1>).
                // Free the slots of forecasts done by this launch time.
                let launch = t + sample.file_creation + sample.transfer + sample.assimilation;
                while let Some(&done) = in_flight.front() {
                    if done <= launch {
                        in_flight.pop_front();
                    } else {
                        break;
                    }
                }
                if in_flight.len() >= cfg.nodes.forecast_slots {
                    skipped_no_slot += 1;
                    None
                } else {
                    in_flight.push_back(launch + sample.forecast);
                    Some(sample)
                }
            } else {
                None
            };
            records.push(CycleRecord {
                t,
                tts,
                rain_area_1mmh: a1,
                rain_area_20mmh: a20,
            });
        }
        periods.push(PeriodResult {
            name: period.name.clone(),
            records,
            outages,
            skipped_no_slot,
        });
    }
    CampaignResult { periods }
}

/// The application side of a checkpointed cycling campaign: the campaign
/// driver owns the loop, the cadence, and the snapshot files; the app owns
/// the actual state (ensemble, RNG streams, clocks) and how one cycle runs.
///
/// The contract that makes `kill -9` + resume bit-for-bit exact:
/// `snapshot` must capture *everything* `run_cycle` reads or mutates, and
/// `restore(snapshot(..))` must be an identity on that state. Outcome
/// records must be deterministic (no wall-clock, no unseeded randomness).
pub trait CycleApp<T: Real> {
    /// Execute cycle `cycle` and report its deterministic outcome.
    fn run_cycle(&mut self, cycle: usize) -> OutcomeRecord;
    /// Capture the full campaign state; the driver fills in `next_cycle`
    /// and the outcome log around this call, so the app only needs its own
    /// state (members, RNG streams, clocks).
    fn snapshot(&self) -> CampaignSnapshot<T>;
    /// Restore the state captured by [`CycleApp::snapshot`].
    fn restore(&mut self, snap: &CampaignSnapshot<T>);
}

/// How a [`ResumableCampaign`] run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignTermination {
    /// All cycles ran.
    Completed,
    /// An injected [`crate::fault::Fault::Crash`] killed the process at the
    /// start of this cycle — before any checkpoint for it was taken, so a
    /// resume replays from the last snapshot.
    Crashed { at_cycle: usize },
}

/// Outcome of one (possibly resumed, possibly crashed) campaign run.
#[derive(Clone, Debug)]
pub struct ResumableRun {
    /// First cycle executed by *this* process (0 on a fresh start).
    pub start_cycle: usize,
    /// Whether state was restored from a checkpoint.
    pub resumed_from: Option<PathBuf>,
    /// Outcome log covering every cycle from 0 — pre-crash records come
    /// from the restored snapshot, the rest from this run.
    pub outcomes: Vec<OutcomeRecord>,
    pub termination: CampaignTermination,
    /// Snapshots written by this run.
    pub checkpoints_written: usize,
}

impl ResumableRun {
    /// Deterministic per-cycle outcome table — deliberately timing-free so
    /// an interrupted-and-resumed campaign can be diffed byte-for-byte
    /// against an uninterrupted one.
    pub fn table(&self) -> String {
        let mut out = String::from("cycle  outcome    retries  detail\n");
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:5}  {:<9} {:7}  {}\n",
                o.cycle, o.label, o.retries, o.detail
            ));
        }
        let completed = self
            .outcomes
            .iter()
            .filter(|o| o.label == "completed")
            .count();
        out.push_str(&format!(
            "{} cycles: {} completed, {} other\n",
            self.outcomes.len(),
            completed,
            self.outcomes.len() - completed,
        ));
        out
    }
}

/// Sequential checkpointed campaign driver.
///
/// Unlike the overlapped three-thread live pipeline, cycles run strictly in
/// order so every checkpoint lands on a clean cycle boundary: snapshot the
/// state *before* cycle `c`, then run `c`. An injected crash fires before
/// the cycle's checkpoint, so resuming replays from the last snapshot and —
/// because the snapshot carries the RNG streams — reproduces the exact same
/// trajectory the uninterrupted run would have taken.
#[derive(Clone, Debug, Default)]
pub struct ResumableCampaign {
    /// Total cycles in the campaign.
    pub n_cycles: usize,
    /// Snapshot directory; `None` disables checkpointing (and resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot cadence in cycles (min 1). A snapshot is taken before every
    /// cycle whose index is a multiple of this, plus a final one at the end.
    pub checkpoint_every: usize,
    /// Deterministic fault schedule (member faults are the app's business
    /// via [`FaultPlan::member_nans`]; the driver handles `Crash`).
    pub faults: FaultPlan,
}

impl ResumableCampaign {
    pub fn new(n_cycles: usize) -> Self {
        Self {
            n_cycles,
            checkpoint_dir: None,
            checkpoint_every: 1,
            faults: FaultPlan::none(),
        }
    }

    fn snapshot_of<T: Real, A: CycleApp<T>>(
        app: &A,
        next_cycle: usize,
        outcomes: &[OutcomeRecord],
    ) -> CampaignSnapshot<T> {
        let mut snap = app.snapshot();
        snap.next_cycle = next_cycle as u64;
        snap.outcomes = outcomes.to_vec();
        snap
    }

    /// Run from the newest valid checkpoint if one exists (fresh start
    /// otherwise). Crash faults only fire on a fresh start: the resumed
    /// process *is* the restart after the kill, and re-killing it would
    /// loop forever.
    pub fn run<T: Real, A: CycleApp<T>>(
        &self,
        app: &mut A,
    ) -> Result<ResumableRun, CheckpointError> {
        let restored = match &self.checkpoint_dir {
            Some(dir) => latest_checkpoint::<T>(dir)?,
            None => None,
        };
        self.run_inner(app, restored)
    }

    /// Run resuming from one specific checkpoint file (the `--resume`
    /// flag). Fails if the file is missing or corrupt rather than silently
    /// starting over.
    pub fn resume<T: Real, A: CycleApp<T>>(
        &self,
        app: &mut A,
        path: &std::path::Path,
    ) -> Result<ResumableRun, CheckpointError> {
        let snap = read_checkpoint::<T>(path)?;
        self.run_inner(app, Some((path.to_path_buf(), snap)))
    }

    fn run_inner<T: Real, A: CycleApp<T>>(
        &self,
        app: &mut A,
        restored: Option<(PathBuf, CampaignSnapshot<T>)>,
    ) -> Result<ResumableRun, CheckpointError> {
        let every = self.checkpoint_every.max(1);
        let (start_cycle, resumed_from, mut outcomes) = match restored {
            Some((path, snap)) => {
                let start = snap.next_cycle as usize;
                let outcomes = snap.outcomes.clone();
                app.restore(&snap);
                (start, Some(path), outcomes)
            }
            None => (0, None, Vec::new()),
        };
        // Replayed cycles (possible when a crash predates the last
        // checkpoint's cadence) would duplicate records otherwise.
        outcomes.retain(|o| (o.cycle as usize) < start_cycle);
        let mut checkpoints_written = 0usize;
        for cycle in start_cycle..self.n_cycles {
            if resumed_from.is_none() && self.faults.has_crash(cycle) {
                return Ok(ResumableRun {
                    start_cycle,
                    resumed_from,
                    outcomes,
                    termination: CampaignTermination::Crashed { at_cycle: cycle },
                    checkpoints_written,
                });
            }
            if let Some(dir) = &self.checkpoint_dir {
                if cycle % every == 0 {
                    write_checkpoint(dir, &Self::snapshot_of(app, cycle, &outcomes))?;
                    checkpoints_written += 1;
                }
            }
            outcomes.push(app.run_cycle(cycle));
        }
        if let Some(dir) = &self.checkpoint_dir {
            write_checkpoint(dir, &Self::snapshot_of(app, self.n_cycles, &outcomes))?;
            checkpoints_written += 1;
        }
        Ok(ResumableRun {
            start_cycle,
            resumed_from,
            outcomes,
            termination: CampaignTermination::Completed,
            checkpoints_written,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_campaign_produces_forecasts_with_gaps() {
        let cfg = CampaignConfig::short(6.0, 1);
        let r = run_campaign(&cfg);
        let issued = r.total_forecasts();
        let cycles = 6 * 3600 / 30;
        assert!(issued > 0 && issued <= cycles);
        // Availability ~0.9: at least some gap, not too many.
        assert!(issued as f64 / cycles as f64 > 0.6);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = CampaignConfig::short(2.0, 7);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.total_forecasts(), b.total_forecasts());
        assert_eq!(a.tts_minutes(), b.tts_minutes());
    }

    #[test]
    fn most_forecasts_beat_three_minutes() {
        let cfg = CampaignConfig::short(12.0, 3);
        let r = run_campaign(&cfg);
        let frac = r.fraction_below(3.0);
        assert!(frac > 0.85, "only {:.1}% under 3 min", frac * 100.0);
    }

    #[test]
    fn rain_areas_recorded_for_every_cycle() {
        let cfg = CampaignConfig::short(1.0, 5);
        let r = run_campaign(&cfg);
        for rec in &r.periods[0].records {
            assert!(rec.rain_area_1mmh >= rec.rain_area_20mmh);
            assert!(rec.rain_area_1mmh >= 0.0);
        }
    }

    #[test]
    fn report_mentions_key_statistics() {
        let cfg = CampaignConfig::short(2.0, 9);
        let r = run_campaign(&cfg);
        let rep = r.report();
        assert!(rep.contains("forecasts"));
        assert!(rep.contains("under 3 min"));
        assert!(rep.contains("histogram"));
    }

    #[test]
    fn bda2021_config_has_two_periods_of_30_days() {
        let cfg = CampaignConfig::bda2021();
        assert_eq!(cfg.periods.len(), 2);
        let total: f64 = cfg.periods.iter().map(|p| p.duration_s).sum();
        assert!((total - 30.0 * 86_400.0).abs() < 1.0);
        assert_eq!(cfg.cycle_interval, 30.0);
    }

    #[test]
    fn csv_export_writes_one_file_per_period() {
        let cfg = CampaignConfig::short(1.0, 21);
        let r = run_campaign(&cfg);
        let dir = std::env::temp_dir().join(format!("bda_fig5_csv_{}", std::process::id()));
        let paths = r.export_csv(&dir, 10).unwrap();
        assert_eq!(paths.len(), 1);
        let content = std::fs::read_to_string(&paths[0]).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert!(lines[0].starts_with("t_s,tts_min"));
        // 1 h / 30 s = 120 cycles, stride 10 -> 12 data rows + header.
        assert_eq!(lines.len(), 13);
        // Outage rows have an empty tts field but still carry rain areas.
        assert!(lines[1].split(',').count() == 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn starved_forecast_slots_skip_most_cycles() {
        let mut cfg = CampaignConfig::short(2.0, 13);
        cfg.nodes.forecast_slots = 1;
        let r = run_campaign(&cfg);
        let skipped = r.periods[0].skipped_no_slot;
        let issued = r.total_forecasts();
        // A ~2.5-minute forecast holding the only slot admits roughly one
        // cycle in five.
        assert!(skipped > issued, "skipped {skipped} vs issued {issued}");
        assert!(issued > 0);
    }

    #[test]
    fn default_slots_rarely_skip() {
        let cfg = CampaignConfig::short(6.0, 13);
        let r = run_campaign(&cfg);
        let skipped = r.periods[0].skipped_no_slot;
        let issued = r.total_forecasts();
        assert!(
            (skipped as f64) < 0.05 * issued as f64,
            "skipped {skipped} of {issued}"
        );
    }

    #[test]
    fn degraded_link_campaign_records_outage_cycles() {
        // Regression: exhausted transfers must land as tts == None rows
        // (gray Fig. 5 bands), never abort the campaign run.
        let mut cfg = CampaignConfig::short(2.0, 17);
        cfg.availability = 1.0; // isolate link losses from scheduled outages
        cfg.perf.jitdt.link.stall_probability = 0.05;
        cfg.perf.jitdt.link.stall_mean_s = 10.0;
        cfg.perf.jitdt.stall_timeout_s = 5.0;
        cfg.perf.jitdt.max_restarts = 1;
        let r = run_campaign(&cfg);
        let records = &r.periods[0].records;
        let lost = records.iter().filter(|rec| rec.tts.is_none()).count();
        assert!(lost > 0, "a link this bad must lose cycles");
        assert!(r.total_forecasts() > 0, "not every cycle should be lost");
        assert_eq!(records.len(), (2.0 * 3600.0 / 30.0) as usize);
    }

    #[test]
    fn net_uptime_consistent_with_forecast_count() {
        let cfg = CampaignConfig::short(3.0, 11);
        let r = run_campaign(&cfg);
        assert!((r.net_uptime() - r.total_forecasts() as f64 * 30.0).abs() < 1e-9);
    }

    /// Minimal stateful app: an RNG-driven random walk whose trajectory is
    /// exquisitely sensitive to the RNG stream position — if resume does
    /// not restore state bit-for-bit, the outcome details diverge.
    struct ToyApp {
        state: Vec<f64>,
        rng: SplitMix64,
        time: f64,
    }

    impl ToyApp {
        fn new(seed: u64) -> Self {
            Self {
                state: vec![0.0; 4],
                rng: SplitMix64::new(seed),
                time: 0.0,
            }
        }
    }

    impl CycleApp<f64> for ToyApp {
        fn run_cycle(&mut self, cycle: usize) -> OutcomeRecord {
            for v in &mut self.state {
                *v += self.rng.next_uniform() - 0.5;
            }
            self.time += 30.0;
            let sum: f64 = self.state.iter().sum();
            OutcomeRecord {
                cycle: cycle as u64,
                label: "completed".into(),
                detail: format!("sum {sum:.12}"),
                retries: 0,
            }
        }

        fn snapshot(&self) -> CampaignSnapshot<f64> {
            CampaignSnapshot {
                next_cycle: 0,
                time: self.time,
                rng_states: vec![self.rng.state()],
                members: vec![self.state.clone()],
                member_times: vec![self.time],
                outcomes: Vec::new(),
            }
        }

        fn restore(&mut self, snap: &CampaignSnapshot<f64>) {
            self.state = snap.members[0].clone();
            self.rng = SplitMix64::from_state(snap.rng_states[0]);
            self.time = snap.time;
        }
    }

    fn tmp_ckpt_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bda-resume-{tag}-{}", std::process::id()))
    }

    #[test]
    fn uncheckpointed_campaign_runs_all_cycles() {
        let mut app = ToyApp::new(5);
        let run = ResumableCampaign::new(6).run(&mut app).unwrap();
        assert_eq!(run.termination, CampaignTermination::Completed);
        assert_eq!(run.outcomes.len(), 6);
        assert_eq!(run.checkpoints_written, 0);
        assert!(run.resumed_from.is_none());
        assert!(run.table().contains("6 cycles: 6 completed"));
    }

    #[test]
    fn crash_then_resume_matches_uninterrupted_run() {
        let dir = tmp_ckpt_dir("crash");
        let _ = std::fs::remove_dir_all(&dir);

        // Reference: uninterrupted campaign.
        let mut ref_app = ToyApp::new(99);
        let reference = ResumableCampaign::new(8).run(&mut ref_app).unwrap();

        // Interrupted: crash at cycle 5, checkpoint every 2 cycles.
        let campaign = ResumableCampaign {
            n_cycles: 8,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            faults: FaultPlan::none().crash_at(5),
        };
        let mut app = ToyApp::new(99);
        let first = campaign.run(&mut app).unwrap();
        assert_eq!(
            first.termination,
            CampaignTermination::Crashed { at_cycle: 5 }
        );
        assert_eq!(first.outcomes.len(), 5);

        // "Restart the process": a fresh app resumes from the newest
        // checkpoint (cycle 4) and replays 4..8.
        let mut app2 = ToyApp::new(12345); // seed irrelevant: restore overwrites
        let second = campaign.run(&mut app2).unwrap();
        assert_eq!(second.termination, CampaignTermination::Completed);
        assert_eq!(second.start_cycle, 4);
        assert!(second.resumed_from.is_some());

        // Bit-for-bit: outcome tables and final states identical.
        assert_eq!(second.table(), reference.table());
        assert_eq!(app2.state, ref_app.state);
        assert_eq!(app2.rng.state(), ref_app.rng.state());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_explicit_path_and_reject_corrupt() {
        let dir = tmp_ckpt_dir("explicit");
        let _ = std::fs::remove_dir_all(&dir);
        let campaign = ResumableCampaign {
            n_cycles: 4,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            faults: FaultPlan::none(),
        };
        let mut app = ToyApp::new(7);
        campaign.run(&mut app).unwrap();
        let path = dir.join(bda_io::checkpoint::checkpoint_file_name(2));
        let mut app2 = ToyApp::new(7);
        let run = campaign.resume(&mut app2, &path).unwrap();
        assert_eq!(run.start_cycle, 2);
        assert_eq!(app2.state, app.state);
        // Corrupt file: resume must fail loudly, not restart silently.
        std::fs::write(&path, b"junk").unwrap();
        assert!(campaign.resume(&mut ToyApp::new(7), &path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
