//! Dichotomous contingency tables and categorical scores.

use bda_num::Real;
use serde::{Deserialize, Serialize};

/// Counts of a 2x2 forecast/observation contingency table at a threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContingencyTable {
    /// Forecast yes, observed yes.
    pub hits: u64,
    /// Forecast no, observed yes.
    pub misses: u64,
    /// Forecast yes, observed no.
    pub false_alarms: u64,
    /// Forecast no, observed no.
    pub correct_negatives: u64,
}

impl ContingencyTable {
    /// Build from paired forecast/observation fields at `threshold`
    /// (event = value >= threshold). Cells where `mask` is false (radar
    /// no-data regions) are excluded, matching the paper's verification
    /// against MP-PAWR coverage.
    pub fn from_fields<T: Real>(
        forecast: &[T],
        observed: &[T],
        threshold: T,
        mask: Option<&[bool]>,
    ) -> Self {
        assert_eq!(forecast.len(), observed.len());
        if let Some(m) = mask {
            assert_eq!(m.len(), forecast.len());
        }
        let mut t = Self::default();
        for idx in 0..forecast.len() {
            if let Some(m) = mask {
                if !m[idx] {
                    continue;
                }
            }
            let f = forecast[idx] >= threshold;
            let o = observed[idx] >= threshold;
            match (f, o) {
                (true, true) => t.hits += 1,
                (false, true) => t.misses += 1,
                (true, false) => t.false_alarms += 1,
                (false, false) => t.correct_negatives += 1,
            }
        }
        t
    }

    /// Merge another table into this one (aggregation across cases).
    pub fn merge(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.false_alarms += other.false_alarms;
        self.correct_negatives += other.correct_negatives;
    }

    pub fn total(&self) -> u64 {
        self.hits + self.misses + self.false_alarms + self.correct_negatives
    }

    /// Threat score (critical success index): hits / (hits + misses + false
    /// alarms). The Fig. 7 metric. 1 when either there are no events and no
    /// false alarms is undefined — returns `None` then.
    pub fn threat_score(&self) -> Option<f64> {
        let denom = self.hits + self.misses + self.false_alarms;
        if denom == 0 {
            None
        } else {
            Some(self.hits as f64 / denom as f64)
        }
    }

    /// Probability of detection.
    pub fn pod(&self) -> Option<f64> {
        let denom = self.hits + self.misses;
        if denom == 0 {
            None
        } else {
            Some(self.hits as f64 / denom as f64)
        }
    }

    /// False alarm ratio.
    pub fn far(&self) -> Option<f64> {
        let denom = self.hits + self.false_alarms;
        if denom == 0 {
            None
        } else {
            Some(self.false_alarms as f64 / denom as f64)
        }
    }

    /// Frequency bias: forecast event count / observed event count.
    pub fn bias(&self) -> Option<f64> {
        let denom = self.hits + self.misses;
        if denom == 0 {
            None
        } else {
            Some((self.hits + self.false_alarms) as f64 / denom as f64)
        }
    }

    /// Equitable threat score (Gilbert skill score).
    pub fn ets(&self) -> Option<f64> {
        let n = self.total();
        if n == 0 {
            return None;
        }
        let hits_random =
            (self.hits + self.misses) as f64 * (self.hits + self.false_alarms) as f64 / n as f64;
        let denom = (self.hits + self.misses + self.false_alarms) as f64 - hits_random;
        if denom.abs() < 1e-12 {
            None
        } else {
            Some((self.hits as f64 - hits_random) / denom)
        }
    }

    /// All scores bundled.
    pub fn scores(&self) -> Scores {
        Scores {
            threat: self.threat_score(),
            pod: self.pod(),
            far: self.far(),
            bias: self.bias(),
            ets: self.ets(),
        }
    }
}

/// Bundle of categorical scores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Scores {
    pub threat: Option<f64>,
    pub pod: Option<f64>,
    pub far: Option<f64>,
    pub bias: Option<f64>,
    pub ets: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_has_threat_one() {
        let obs = vec![35.0_f64, 10.0, 45.0, 0.0];
        let t = ContingencyTable::from_fields(&obs, &obs, 30.0, None);
        assert_eq!(t.hits, 2);
        assert_eq!(t.correct_negatives, 2);
        assert_eq!(t.threat_score(), Some(1.0));
        assert_eq!(t.pod(), Some(1.0));
        assert_eq!(t.far(), Some(0.0));
        assert_eq!(t.bias(), Some(1.0));
    }

    #[test]
    fn completely_wrong_forecast_has_threat_zero() {
        let fcst = vec![35.0_f64, 35.0, 0.0, 0.0];
        let obs = vec![0.0_f64, 0.0, 35.0, 35.0];
        let t = ContingencyTable::from_fields(&fcst, &obs, 30.0, None);
        assert_eq!(t.threat_score(), Some(0.0));
        assert_eq!(t.pod(), Some(0.0));
        assert_eq!(t.far(), Some(1.0));
    }

    #[test]
    fn known_mixed_case() {
        // hits=1 (idx0), miss=1 (idx1), false alarm=1 (idx2), cn=1 (idx3).
        let fcst = vec![40.0_f64, 10.0, 40.0, 10.0];
        let obs = vec![40.0_f64, 40.0, 10.0, 10.0];
        let t = ContingencyTable::from_fields(&fcst, &obs, 30.0, None);
        assert_eq!(
            t,
            ContingencyTable {
                hits: 1,
                misses: 1,
                false_alarms: 1,
                correct_negatives: 1
            }
        );
        assert_eq!(t.threat_score(), Some(1.0 / 3.0));
        assert_eq!(t.bias(), Some(1.0));
    }

    #[test]
    fn mask_excludes_no_data_cells() {
        let fcst = vec![40.0_f64, 40.0];
        let obs = vec![10.0_f64, 40.0];
        let mask = vec![false, true]; // first cell is radar no-data
        let t = ContingencyTable::from_fields(&fcst, &obs, 30.0, Some(&mask));
        assert_eq!(t.total(), 1);
        assert_eq!(t.threat_score(), Some(1.0));
    }

    #[test]
    fn no_events_anywhere_is_undefined() {
        let quiet = vec![0.0_f64; 10];
        let t = ContingencyTable::from_fields(&quiet, &quiet, 30.0, None);
        assert_eq!(t.threat_score(), None);
        assert_eq!(t.pod(), None);
        assert_eq!(t.bias(), None);
    }

    #[test]
    fn merge_accumulates() {
        let a = ContingencyTable {
            hits: 1,
            misses: 2,
            false_alarms: 3,
            correct_negatives: 4,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.hits, 2);
        assert_eq!(b.total(), 20);
    }

    #[test]
    fn ets_is_below_threat_when_random_hits_exist() {
        let t = ContingencyTable {
            hits: 50,
            misses: 20,
            false_alarms: 30,
            correct_negatives: 100,
        };
        let ts = t.threat_score().unwrap();
        let ets = t.ets().unwrap();
        assert!(ets < ts, "ets {ets} vs ts {ts}");
        assert!(ets > 0.0);
    }

    #[test]
    fn f32_fields_work() {
        let fcst = vec![40.0_f32, 10.0];
        let obs = vec![40.0_f32, 40.0];
        let t = ContingencyTable::from_fields(&fcst, &obs, 30.0, None);
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
    }
}
