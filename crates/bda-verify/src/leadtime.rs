//! Score aggregation as a function of forecast lead time — the Fig. 7 curve.

use crate::contingency::ContingencyTable;
use serde::{Deserialize, Serialize};

/// Accumulates contingency tables per lead-time bin over many forecast
/// cases and reports the aggregate threat-score curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LeadTimeSeries {
    /// Lead times, s (bin labels).
    lead_times: Vec<f64>,
    tables: Vec<ContingencyTable>,
    cases: Vec<u64>,
}

impl LeadTimeSeries {
    /// Uniform lead-time bins: `0, dt, 2 dt, ..., (n-1) dt`.
    pub fn new(n_leads: usize, dt: f64) -> Self {
        Self {
            lead_times: (0..n_leads).map(|i| i as f64 * dt).collect(),
            tables: vec![ContingencyTable::default(); n_leads],
            cases: vec![0; n_leads],
        }
    }

    pub fn n_leads(&self) -> usize {
        self.lead_times.len()
    }

    pub fn lead_times(&self) -> &[f64] {
        &self.lead_times
    }

    /// Add one case's table at lead index `lead`.
    pub fn add(&mut self, lead: usize, table: &ContingencyTable) {
        self.tables[lead].merge(table);
        self.cases[lead] += 1;
    }

    /// Number of cases accumulated at each lead.
    pub fn case_counts(&self) -> &[u64] {
        &self.cases
    }

    /// Aggregate threat score per lead time (None where undefined).
    pub fn threat_scores(&self) -> Vec<Option<f64>> {
        self.tables.iter().map(|t| t.threat_score()).collect()
    }

    /// The aggregate table at one lead.
    pub fn table(&self, lead: usize) -> &ContingencyTable {
        &self.tables[lead]
    }

    /// Is the curve monotonically non-increasing (the paper's "monotonic
    /// decline of forecast skill", treating undefined scores as gaps)?
    pub fn is_monotone_decline(&self, tolerance: f64) -> bool {
        let scores: Vec<f64> = self.threat_scores().into_iter().flatten().collect();
        scores.windows(2).all(|w| w[1] <= w[0] + tolerance)
    }

    /// Render a two-curve comparison table (Fig. 7 style) as text.
    pub fn comparison_report(&self, label_self: &str, other: &Self, label_other: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>9} | {:>12} | {:>12}\n",
            "lead (s)", label_self, label_other
        ));
        let fmt = |s: Option<f64>| match s {
            Some(v) => format!("{v:.3}"),
            None => "--".to_string(),
        };
        for (i, &lt) in self.lead_times.iter().enumerate() {
            let a = self.threat_scores()[i];
            let b = other.threat_scores().get(i).copied().flatten();
            out.push_str(&format!("{lt:>9.0} | {:>12} | {:>12}\n", fmt(a), fmt(b)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(hits: u64, misses: u64, fa: u64) -> ContingencyTable {
        ContingencyTable {
            hits,
            misses,
            false_alarms: fa,
            correct_negatives: 100,
        }
    }

    #[test]
    fn aggregation_over_cases() {
        let mut s = LeadTimeSeries::new(3, 30.0);
        s.add(0, &table(10, 0, 0));
        s.add(0, &table(10, 10, 0));
        s.add(1, &table(5, 5, 0));
        assert_eq!(s.case_counts(), &[2, 1, 0]);
        let ts = s.threat_scores();
        assert_eq!(ts[0], Some(20.0 / 30.0));
        assert_eq!(ts[1], Some(0.5));
        assert_eq!(ts[2], None);
    }

    #[test]
    fn lead_times_are_uniform() {
        let s = LeadTimeSeries::new(4, 30.0);
        assert_eq!(s.lead_times(), &[0.0, 30.0, 60.0, 90.0]);
        assert_eq!(s.n_leads(), 4);
    }

    #[test]
    fn monotone_decline_detection() {
        let mut s = LeadTimeSeries::new(3, 30.0);
        s.add(0, &table(9, 1, 0));
        s.add(1, &table(7, 3, 0));
        s.add(2, &table(5, 5, 0));
        assert!(s.is_monotone_decline(1e-9));
        let mut r = LeadTimeSeries::new(2, 30.0);
        r.add(0, &table(5, 5, 0));
        r.add(1, &table(9, 1, 0));
        assert!(!r.is_monotone_decline(1e-9));
    }

    #[test]
    fn comparison_report_contains_both_labels() {
        let mut a = LeadTimeSeries::new(2, 30.0);
        a.add(0, &table(1, 0, 0));
        let b = LeadTimeSeries::new(2, 30.0);
        let rep = a.comparison_report("BDA", &b, "persistence");
        assert!(rep.contains("BDA"));
        assert!(rep.contains("persistence"));
        assert!(rep.contains("1.000"));
        assert!(rep.contains("--"));
    }
}
