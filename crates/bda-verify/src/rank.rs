//! Talagrand (rank) histograms — ensemble calibration diagnosis.
//!
//! For a calibrated k-member ensemble, the verifying truth is equally
//! likely to fall in any of the k+1 intervals defined by the sorted member
//! values. A U-shaped histogram reveals underdispersion (the spread
//! collapse RTPP fights), a dome overdispersion, a slope bias.

use bda_num::Real;
use serde::{Deserialize, Serialize};

/// Accumulated rank histogram for a k-member ensemble.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankHistogram {
    counts: Vec<u64>,
}

impl RankHistogram {
    /// Histogram for a `k`-member ensemble (k + 1 bins).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            counts: vec![0; k + 1],
        }
    }

    pub fn ensemble_size(&self) -> usize {
        self.counts.len() - 1
    }

    /// Add one (truth, member values) verification pair. Ties are broken
    /// low (truth equal to a member counts below it), which is standard for
    /// continuous fields.
    pub fn add<T: Real>(&mut self, truth: T, members: &[T]) {
        assert_eq!(members.len(), self.ensemble_size());
        let rank = members.iter().filter(|&&m| m < truth).count();
        self.counts[rank] += 1;
    }

    /// Add every grid point of a truth/ensemble field set, optionally
    /// masked. `member_fields[m]` is member m's field.
    pub fn add_fields<T: Real>(
        &mut self,
        truth: &[T],
        member_fields: &[Vec<T>],
        mask: Option<&[bool]>,
    ) {
        assert_eq!(member_fields.len(), self.ensemble_size());
        for mf in member_fields {
            assert_eq!(mf.len(), truth.len());
        }
        let mut vals = vec![T::zero(); self.ensemble_size()];
        for idx in 0..truth.len() {
            if let Some(m) = mask {
                if !m[idx] {
                    continue;
                }
            }
            for (v, mf) in vals.iter_mut().zip(member_fields) {
                *v = mf[idx];
            }
            self.add(truth[idx], &vals);
        }
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of cases where the truth fell outside the ensemble envelope
    /// (rank 0 or rank k) — 2/(k+1) for a calibrated ensemble.
    pub fn outlier_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.counts[0] + self.counts[self.counts.len() - 1]) as f64 / t as f64
    }

    /// Expected outlier fraction for a calibrated ensemble.
    pub fn calibrated_outlier_fraction(&self) -> f64 {
        2.0 / self.counts.len() as f64
    }

    /// Normalized departure from flatness: chi-square statistic divided by
    /// the sample count (0 = perfectly flat).
    pub fn flatness_deficit(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let expected = t as f64 / self.counts.len() as f64;
        self.counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum::<f64>()
            / t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_num::SplitMix64;

    #[test]
    fn calibrated_ensemble_is_roughly_flat() {
        let k = 9;
        let mut h = RankHistogram::new(k);
        let mut rng = SplitMix64::new(3);
        // Truth and members drawn from the same distribution.
        for _ in 0..20_000 {
            let truth: f64 = rng.gaussian(0.0, 1.0);
            let members: Vec<f64> = (0..k).map(|_| rng.gaussian(0.0, 1.0)).collect();
            h.add(truth, &members);
        }
        assert_eq!(h.total(), 20_000);
        let expected = 20_000.0 / (k + 1) as f64;
        for (r, &c) in h.counts().iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "bin {r}: {c} vs {expected}");
        }
        assert!((h.outlier_fraction() - h.calibrated_outlier_fraction()).abs() < 0.03);
        assert!(h.flatness_deficit() < 0.01);
    }

    #[test]
    fn underdispersive_ensemble_is_u_shaped() {
        let k = 9;
        let mut h = RankHistogram::new(k);
        let mut rng = SplitMix64::new(5);
        for _ in 0..10_000 {
            let truth: f64 = rng.gaussian(0.0, 2.0);
            // Members far too tight.
            let members: Vec<f64> = (0..k).map(|_| rng.gaussian(0.0, 0.3)).collect();
            h.add(truth, &members);
        }
        assert!(
            h.outlier_fraction() > 3.0 * h.calibrated_outlier_fraction(),
            "outliers {:.2} not elevated",
            h.outlier_fraction()
        );
        assert!(h.flatness_deficit() > 0.5);
    }

    #[test]
    fn biased_ensemble_is_sloped() {
        let k = 5;
        let mut h = RankHistogram::new(k);
        let mut rng = SplitMix64::new(7);
        for _ in 0..5_000 {
            let truth: f64 = rng.gaussian(1.5, 1.0); // truth above members
            let members: Vec<f64> = (0..k).map(|_| rng.gaussian(0.0, 1.0)).collect();
            h.add(truth, &members);
        }
        // Top rank dominates the bottom rank.
        assert!(h.counts()[k] > 3 * h.counts()[0].max(1));
    }

    #[test]
    fn add_fields_respects_mask() {
        let mut h = RankHistogram::new(2);
        let truth = vec![0.5, 10.0, -10.0];
        let members = vec![vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]];
        let mask = vec![true, false, true];
        h.add_fields(&truth, &members, Some(&mask));
        assert_eq!(h.total(), 2);
        // 0.5 between members -> rank 1; -10 below both -> rank 0.
        assert_eq!(h.counts(), &[1, 1, 0]);
    }

    #[test]
    fn rank_boundaries() {
        let mut h = RankHistogram::new(3);
        h.add(-5.0, &[0.0, 1.0, 2.0]); // below all -> rank 0
        h.add(5.0, &[0.0, 1.0, 2.0]); // above all -> rank 3
        h.add(1.5, &[0.0, 1.0, 2.0]); // between 2nd and 3rd -> rank 2
        assert_eq!(h.counts(), &[1, 0, 1, 1]);
    }
}
