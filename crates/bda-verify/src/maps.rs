//! Map products: reflectivity images with no-data hatching.
//!
//! The production system published map-view rain images (Fig. 1a) and the
//! paper compares forecast vs observed reflectivity maps at the 2-km level
//! (Fig. 6). This module renders 2-D fields as portable graymap (PGM) files
//! and as ASCII maps with the Fig. 6b hatching for radar no-data regions.

use bda_num::Real;
use std::io::Write;
use std::path::Path;

/// Write a 2-D field (row-major, `width * height`) as an 8-bit PGM image,
/// linearly mapping `[lo, hi]` to [0, 255]. Masked-out cells render black.
pub fn write_pgm<T: Real>(
    path: impl AsRef<Path>,
    field: &[T],
    width: usize,
    height: usize,
    lo: f64,
    hi: f64,
    mask: Option<&[bool]>,
) -> std::io::Result<()> {
    assert_eq!(field.len(), width * height);
    assert!(hi > lo);
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P5")?;
    writeln!(f, "{width} {height}")?;
    writeln!(f, "255")?;
    let mut row = Vec::with_capacity(width);
    for j in (0..height).rev() {
        row.clear();
        for i in 0..width {
            let idx = j * width + i;
            let visible = mask.map(|m| m[idx]).unwrap_or(true);
            let px = if visible {
                let t = ((field[idx].f64() - lo) / (hi - lo)).clamp(0.0, 1.0);
                (t * 255.0) as u8
            } else {
                0
            };
            row.push(px);
        }
        f.write_all(&row)?;
    }
    Ok(())
}

/// Reflectivity shading characters, Fig. 6-style: space below 10 dBZ,
/// then '.', ':', '+', '*', '#' every 10 dBZ, '/' for no-data hatching.
pub fn ascii_map<T: Real>(
    field: &[T],
    width: usize,
    height: usize,
    mask: Option<&[bool]>,
) -> String {
    assert_eq!(field.len(), width * height);
    let mut out = String::with_capacity((width + 1) * height);
    for j in (0..height).rev() {
        for i in 0..width {
            let idx = j * width + i;
            let visible = mask.map(|m| m[idx]).unwrap_or(true);
            let c = if !visible {
                '/'
            } else {
                let dbz = field[idx].f64();
                match dbz {
                    d if d < 10.0 => ' ',
                    d if d < 20.0 => '.',
                    d if d < 30.0 => ':',
                    d if d < 40.0 => '+',
                    d if d < 50.0 => '*',
                    _ => '#',
                }
            };
            out.push(c);
        }
        out.push('\n');
    }
    out
}

/// Fraction of (visible) cells at or above a dBZ threshold — the "rain
/// area" statistic plotted alongside Fig. 5.
pub fn area_fraction<T: Real>(field: &[T], threshold: f64, mask: Option<&[bool]>) -> f64 {
    let mut total = 0usize;
    let mut above = 0usize;
    for (idx, v) in field.iter().enumerate() {
        if let Some(m) = mask {
            if !m[idx] {
                continue;
            }
        }
        total += 1;
        if v.f64() >= threshold {
            above += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        above as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_file_has_correct_header_and_size() {
        let dir = std::env::temp_dir().join(format!("bda_maps_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pgm");
        let field: Vec<f64> = (0..12).map(|i| i as f64 * 5.0).collect();
        write_pgm(&path, &field, 4, 3, 0.0, 55.0, None).unwrap();
        let data = std::fs::read(&path).unwrap();
        let header = String::from_utf8_lossy(&data[..11]);
        assert!(header.starts_with("P5"));
        assert!(header.contains("4 3"));
        // 12 pixels after the header.
        assert_eq!(data.len(), data.len() - 12 + 12);
        assert!(data.ends_with(&{
            // Bottom row is written last... top row (j=2) first. Last byte
            // corresponds to (j=0, i=3) -> value 15 -> 15/55*255 = 69.
            [((15.0 / 55.0) * 255.0) as u8]
        }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ascii_map_shades_by_intensity_and_hatches_mask() {
        let field = vec![5.0_f64, 25.0, 45.0, 60.0];
        let mask = vec![true, true, true, false];
        let map = ascii_map(&field, 2, 2, Some(&mask));
        let lines: Vec<&str> = map.lines().collect();
        // Top row is j=1: values [45, 60] -> '*', but 60 masked -> '/'.
        assert_eq!(lines[0], "*/");
        // Bottom row j=0: [5, 25] -> ' ', ':'.
        assert_eq!(lines[1], " :");
    }

    #[test]
    fn area_fraction_counts_visible_cells_only() {
        let field = vec![40.0_f64, 40.0, 10.0, 10.0];
        assert_eq!(area_fraction(&field, 30.0, None), 0.5);
        let mask = vec![true, false, true, false];
        assert_eq!(area_fraction(&field, 30.0, Some(&mask)), 0.5);
        let none = vec![false; 4];
        assert_eq!(area_fraction(&field, 30.0, Some(&none)), 0.0);
    }

    #[test]
    fn pgm_clamps_out_of_range_values() {
        let dir = std::env::temp_dir().join(format!("bda_maps2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clamp.pgm");
        let field = vec![-100.0_f64, 1e9];
        write_pgm(&path, &field, 2, 1, 0.0, 60.0, None).unwrap();
        let data = std::fs::read(&path).unwrap();
        let n = data.len();
        assert_eq!(&data[n - 2..], &[0u8, 255u8]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
