//! # bda-verify — forecast verification
//!
//! The paper evaluates forecast quality with the threat score (critical
//! success index) for radar reflectivity at the 30-dBZ threshold, comparing
//! the BDA forecast against a persistence baseline over 120 consecutive
//! forecast cases (Fig. 7, §6.1). This crate implements:
//!
//! * [`contingency`] — dichotomous contingency tables and the derived scores
//!   (threat score/CSI, POD, FAR, frequency bias, equitable threat score);
//! * [`leadtime`] — aggregation of scores as a function of forecast lead
//!   time over many cases (the Fig. 7 curves);
//! * [`persistence`] — the persistence baseline ("initial rain patterns are
//!   taken from the MP-PAWR observation and do not evolve");
//! * [`maps`] — rendering of reflectivity maps with no-data hatching for the
//!   Fig. 1 / Fig. 6 products (PGM files and ASCII art).

pub mod contingency;
pub mod fss;
pub mod leadtime;
pub mod maps;
pub mod persistence;
pub mod rank;

pub use contingency::{ContingencyTable, Scores};
pub use fss::fss;
pub use leadtime::LeadTimeSeries;
pub use persistence::PersistenceForecast;
pub use rank::RankHistogram;
