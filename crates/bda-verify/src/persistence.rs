//! The persistence baseline.
//!
//! §6.1: "In the persistence forecast, the initial rain patterns are taken
//! from the MP-PAWR observation and do not evolve." At lead 0 it is
//! therefore perfect by construction (the paper's "only exception"), and it
//! degrades as the true field evolves — the baseline the BDA forecast must
//! beat at every positive lead.

use bda_num::Real;

/// A persistence forecast of one 2-D field.
#[derive(Clone, Debug, PartialEq)]
pub struct PersistenceForecast<T> {
    initial: Vec<T>,
}

impl<T: Real> PersistenceForecast<T> {
    /// Freeze the observed field at initialization time.
    pub fn new(observed_at_init: &[T]) -> Self {
        Self {
            initial: observed_at_init.to_vec(),
        }
    }

    /// The forecast at any lead time is the initial field.
    pub fn at_lead(&self, _lead_s: f64) -> &[T] {
        &self.initial
    }

    pub fn len(&self) -> usize {
        self.initial.len()
    }

    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contingency::ContingencyTable;

    #[test]
    fn forecast_never_evolves() {
        let obs = vec![10.0_f64, 35.0, 42.0];
        let p = PersistenceForecast::new(&obs);
        assert_eq!(p.at_lead(0.0), obs.as_slice());
        assert_eq!(p.at_lead(1800.0), obs.as_slice());
    }

    #[test]
    fn perfect_at_lead_zero() {
        let obs = vec![10.0_f64, 35.0, 42.0, 5.0];
        let p = PersistenceForecast::new(&obs);
        let t = ContingencyTable::from_fields(p.at_lead(0.0), &obs, 30.0, None);
        assert_eq!(t.threat_score(), Some(1.0));
    }

    #[test]
    fn degrades_when_truth_moves() {
        // Rain feature moves one cell: persistence scores 0 at the new time.
        let obs_t0 = vec![40.0_f64, 0.0, 0.0];
        let obs_t1 = vec![0.0_f64, 40.0, 0.0];
        let p = PersistenceForecast::new(&obs_t0);
        let t = ContingencyTable::from_fields(p.at_lead(30.0), &obs_t1, 30.0, None);
        assert_eq!(t.threat_score(), Some(0.0));
    }
}
