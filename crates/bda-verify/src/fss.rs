//! Fractions skill score (Roberts & Lean 2008).
//!
//! The standard neighborhood verification metric for convective-scale
//! forecasts: point-wise threat scores double-penalize small displacement
//! errors that are meteorologically acceptable at 500-m resolution, so
//! skill is also assessed on event *fractions* within a neighborhood.
//! FSS = 1 - MSE(fractions) / MSE(worst case); 1 is perfect, 0 is no skill,
//! and FSS > 0.5 + f0/2 is the usual "useful" threshold.

use bda_num::Real;

/// Event fractions within a square neighborhood of half-width `radius`
/// cells, via a summed-area table. Row-major `width x height` input.
fn fractions<T: Real>(
    field: &[T],
    width: usize,
    height: usize,
    threshold: T,
    radius: usize,
) -> Vec<f64> {
    assert_eq!(field.len(), width * height);
    // Summed-area table of the event indicator.
    let mut sat = vec![0u32; (width + 1) * (height + 1)];
    for j in 0..height {
        for i in 0..width {
            let e = u32::from(field[j * width + i] >= threshold);
            sat[(j + 1) * (width + 1) + (i + 1)] =
                e + sat[j * (width + 1) + (i + 1)] + sat[(j + 1) * (width + 1) + i]
                    - sat[j * (width + 1) + i];
        }
    }
    let mut out = Vec::with_capacity(width * height);
    for j in 0..height {
        for i in 0..width {
            let i0 = i.saturating_sub(radius);
            let j0 = j.saturating_sub(radius);
            let i1 = (i + radius + 1).min(width);
            let j1 = (j + radius + 1).min(height);
            let count = sat[j1 * (width + 1) + i1] + sat[j0 * (width + 1) + i0]
                - sat[j0 * (width + 1) + i1]
                - sat[j1 * (width + 1) + i0];
            let area = (i1 - i0) * (j1 - j0);
            out.push(count as f64 / area as f64);
        }
    }
    out
}

/// Fractions skill score of `forecast` against `observed` at `threshold`
/// with a neighborhood half-width of `radius` cells. Returns `None` when
/// neither field has any event (FSS undefined).
pub fn fss<T: Real>(
    forecast: &[T],
    observed: &[T],
    width: usize,
    height: usize,
    threshold: T,
    radius: usize,
) -> Option<f64> {
    assert_eq!(forecast.len(), observed.len());
    let ff = fractions(forecast, width, height, threshold, radius);
    let fo = fractions(observed, width, height, threshold, radius);
    let n = ff.len() as f64;
    let mse: f64 = ff
        .iter()
        .zip(&fo)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        / n;
    let mse_ref: f64 = ff
        .iter()
        .zip(&fo)
        .map(|(a, b)| a.powi(2) + b.powi(2))
        .sum::<f64>()
        / n;
    if mse_ref <= 0.0 {
        None
    } else {
        Some(1.0 - mse / mse_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(width: usize, height: usize, ci: usize, cj: usize, r: usize) -> Vec<f64> {
        let mut f = vec![0.0; width * height];
        for j in 0..height {
            for i in 0..width {
                if i.abs_diff(ci) <= r && j.abs_diff(cj) <= r {
                    f[j * width + i] = 40.0;
                }
            }
        }
        f
    }

    #[test]
    fn perfect_forecast_has_fss_one() {
        let o = blob(20, 20, 10, 10, 3);
        let s = fss(&o, &o, 20, 20, 30.0, 2).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_events_anywhere_is_undefined() {
        let z = vec![0.0_f64; 400];
        assert_eq!(fss(&z, &z, 20, 20, 30.0, 2), None);
    }

    #[test]
    fn complete_miss_far_away_scores_zero() {
        let f = blob(30, 30, 5, 5, 2);
        let o = blob(30, 30, 24, 24, 2);
        let s = fss(&f, &o, 30, 30, 30.0, 1).unwrap();
        assert!(s < 0.05, "fss = {s}");
    }

    #[test]
    fn neighborhood_forgives_small_displacement() {
        // Forecast displaced by 2 cells: pointwise threat is poor, but FSS
        // with a radius >= displacement recovers skill.
        let f = blob(30, 30, 14, 15, 3);
        let o = blob(30, 30, 16, 15, 3);
        let tight = fss(&f, &o, 30, 30, 30.0, 0).unwrap();
        let wide = fss(&f, &o, 30, 30, 30.0, 4).unwrap();
        assert!(wide > tight + 0.2, "tight {tight:.2}, wide {wide:.2}");
        assert!(wide > 0.8);
    }

    #[test]
    fn fss_increases_monotonically_with_radius_for_displaced_blobs() {
        let f = blob(40, 40, 17, 20, 3);
        let o = blob(40, 40, 23, 20, 3);
        let mut prev = -1.0;
        for radius in [0usize, 2, 4, 8] {
            let s = fss(&f, &o, 40, 40, 30.0, radius).unwrap();
            assert!(s >= prev - 1e-9, "fss not monotone at radius {radius}");
            prev = s;
        }
    }

    #[test]
    fn fractions_match_brute_force() {
        let field = blob(9, 7, 4, 3, 1);
        let r = 2;
        let fast = fractions(&field, 9, 7, 30.0, r);
        for j in 0..7usize {
            for i in 0..9usize {
                let mut count = 0;
                let mut area = 0;
                for jj in j.saturating_sub(r)..(j + r + 1).min(7) {
                    for ii in i.saturating_sub(r)..(i + r + 1).min(9) {
                        area += 1;
                        if field[jj * 9 + ii] >= 30.0 {
                            count += 1;
                        }
                    }
                }
                let want = count as f64 / area as f64;
                assert!(
                    (fast[j * 9 + i] - want).abs() < 1e-12,
                    "({i},{j}): {} vs {want}",
                    fast[j * 9 + i]
                );
            }
        }
    }
}
