//! Table 1: operational regional NWP systems vs the BDA system.
//!
//! The paper's headline systems comparison: grid spacing of a few km,
//! hourly-or-slower refresh, ~40-member ensemble DA, indirect radar use —
//! against BDA2021's 500 m / 30 s / 1000 members / direct reflectivity +
//! Doppler assimilation, a two-orders-of-magnitude increase in problem size.

use serde::{Deserialize, Serialize};

/// How a system uses radar data (Table 1, "Use of radar data").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RadarUsage {
    /// Humidity retrieved from reflectivity is assimilated.
    RelativeHumidity,
    /// Latent-heating nudging / specified heating.
    LatentHeating,
    /// Reflectivity and Doppler velocity assimilated directly (BDA).
    Direct,
}

/// One row of Table 1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OperationalSystem {
    pub name: &'static str,
    pub center: &'static str,
    pub da_method: &'static str,
    /// DA ensemble size (1 for purely variational systems).
    pub da_members: usize,
    /// Forecast grid spacing, m.
    pub grid_spacing_m: f64,
    /// Forecast grid points (nx * ny * nz).
    pub grid_points: u64,
    /// Initialization refresh interval, s.
    pub refresh_s: f64,
    pub radar_usage: RadarUsage,
    /// Ensemble forecast members (0 = none).
    pub ens_forecast_members: usize,
}

impl OperationalSystem {
    /// Data-assimilation problem-size rate: analysis grid points times DA
    /// ensemble members per second of refresh interval — the quantity in
    /// which the BDA system is two orders of magnitude bigger (§5).
    pub fn problem_size_rate(&self) -> f64 {
        self.grid_points as f64 * self.da_members as f64 / self.refresh_s
    }

    /// Refresh-rate speedup of `self` relative to `other`.
    pub fn refresh_speedup_vs(&self, other: &Self) -> f64 {
        other.refresh_s / self.refresh_s
    }
}

/// The rows of Table 1 (operational systems as of early 2023).
pub const TABLE1: [OperationalSystem; 6] = [
    OperationalSystem {
        name: "LFM",
        center: "JMA, Japan",
        da_method: "Hybrid 3DVar, 5-km grid spacing",
        da_members: 1,
        grid_spacing_m: 2000.0,
        grid_points: 1581 * 1301 * 76,
        refresh_s: 3600.0,
        radar_usage: RadarUsage::RelativeHumidity,
        ens_forecast_members: 0,
    },
    OperationalSystem {
        name: "HRRR v4",
        center: "NCEP, US",
        da_method: "Hybrid 3D EnVar, 36 members",
        da_members: 36,
        grid_spacing_m: 3000.0,
        grid_points: 1799 * 1059 * 51,
        refresh_s: 3600.0,
        radar_usage: RadarUsage::LatentHeating,
        ens_forecast_members: 0,
    },
    OperationalSystem {
        name: "HRDPS 6.0.0",
        center: "ECCC, Canada",
        da_method: "4DEnVar, perturbations from global ensemble",
        da_members: 1,
        grid_spacing_m: 2500.0,
        grid_points: 2576 * 1456 * 62,
        refresh_s: 6.0 * 3600.0,
        radar_usage: RadarUsage::LatentHeating,
        ens_forecast_members: 0,
    },
    OperationalSystem {
        name: "UKV",
        center: "Met Office, UK",
        da_method: "4DVar",
        da_members: 1,
        grid_spacing_m: 1500.0,
        grid_points: 622 * 810 * 70,
        refresh_s: 3600.0,
        radar_usage: RadarUsage::LatentHeating,
        ens_forecast_members: 3,
    },
    OperationalSystem {
        name: "AROME France",
        center: "Meteo-France",
        da_method: "3DVar",
        da_members: 1,
        grid_spacing_m: 1250.0,
        grid_points: 2801 * 1791 * 90,
        refresh_s: 3600.0,
        radar_usage: RadarUsage::RelativeHumidity,
        ens_forecast_members: 12,
    },
    OperationalSystem {
        name: "ICON-D2",
        center: "DWD, Germany",
        da_method: "LETKF, 40 members",
        da_members: 40,
        grid_spacing_m: 2200.0,
        grid_points: 542_040 * 65,
        refresh_s: 3600.0,
        radar_usage: RadarUsage::LatentHeating,
        ens_forecast_members: 20,
    },
];

/// The BDA2021 row (bottom of Table 1).
pub fn bda2021() -> OperationalSystem {
    OperationalSystem {
        name: "BDA2021",
        center: "RIKEN, Japan",
        da_method: "LETKF, 1000 members",
        da_members: 1000,
        grid_spacing_m: 500.0,
        grid_points: 256 * 256 * 60,
        refresh_s: 30.0,
        radar_usage: RadarUsage::Direct,
        ens_forecast_members: 11,
    }
}

/// Render Table 1 (+ the BDA row) as text with the problem-size column.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<16} {:>10} {:>8} {:>12} {:>10} {:>16}\n",
        "system", "center", "dx (km)", "members", "refresh (s)", "radar", "DA size rate"
    ));
    let mut rows: Vec<OperationalSystem> = TABLE1.to_vec();
    rows.push(bda2021());
    for s in rows {
        out.push_str(&format!(
            "{:<14} {:<16} {:>10.2} {:>8} {:>12.0} {:>10} {:>16.3e}\n",
            s.name,
            s.center,
            s.grid_spacing_m / 1000.0,
            s.da_members,
            s.refresh_s,
            match s.radar_usage {
                RadarUsage::RelativeHumidity => "RH",
                RadarUsage::LatentHeating => "LH",
                RadarUsage::Direct => "Z+Vr",
            },
            s.problem_size_rate()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bda_refresh_is_120x_faster_than_hourly_systems() {
        let bda = bda2021();
        let hourly = &TABLE1[0]; // LFM
        assert_eq!(bda.refresh_speedup_vs(hourly), 120.0);
    }

    #[test]
    fn problem_size_is_two_orders_of_magnitude_bigger() {
        // §5: "the BDA system offers two orders of magnitude increase in
        // problem size" over the largest operational ensemble-DA systems.
        let bda = bda2021().problem_size_rate();
        let best_other = TABLE1
            .iter()
            .map(OperationalSystem::problem_size_rate)
            .fold(0.0, f64::max);
        let ratio = bda / best_other;
        assert!(
            (90.0..1000.0).contains(&ratio),
            "ratio = {ratio:.0} (expected ~O(100))"
        );
    }

    #[test]
    fn table_has_six_operational_rows() {
        assert_eq!(TABLE1.len(), 6);
        // Grid spacings all <= 5 km as the caption says.
        for s in &TABLE1 {
            assert!(s.grid_spacing_m <= 5000.0, "{}", s.name);
            assert!(
                s.refresh_s >= 3600.0,
                "{} refreshes faster than hourly",
                s.name
            );
        }
    }

    #[test]
    fn bda_row_matches_tables_2_and_3() {
        let bda = bda2021();
        assert_eq!(bda.grid_points, 256 * 256 * 60);
        assert_eq!(bda.da_members, 1000);
        assert_eq!(bda.refresh_s, 30.0);
        assert_eq!(bda.ens_forecast_members, 11);
        assert_eq!(bda.radar_usage, RadarUsage::Direct);
    }

    #[test]
    fn only_bda_assimilates_radar_directly() {
        assert!(TABLE1.iter().all(|s| s.radar_usage != RadarUsage::Direct));
        assert_eq!(bda2021().radar_usage, RadarUsage::Direct);
    }

    #[test]
    fn rendered_table_contains_every_system() {
        let t = render_table1();
        for s in &TABLE1 {
            assert!(t.contains(s.name), "missing {}", s.name);
        }
        assert!(t.contains("BDA2021"));
    }

    #[test]
    fn icon_d2_is_the_biggest_operational_da() {
        let max = TABLE1
            .iter()
            .max_by(|a, b| a.problem_size_rate().total_cmp(&b.problem_size_rate()))
            .unwrap();
        // HRRR and ICON-D2 are the two ensemble-DA systems; one of them must
        // be the largest.
        assert!(max.name == "ICON-D2" || max.name == "HRRR v4");
    }
}
