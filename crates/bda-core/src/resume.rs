//! Checkpointed OSSE campaigns: the bridge between the [`crate::osse`]
//! cycling system and the generic checkpoint/resume driver in
//! [`bda_workflow::campaign`].
//!
//! [`OsseCampaign`] implements [`CycleApp`]: each `run_cycle` injects any
//! scheduled member faults, runs one full 30-second OSSE cycle, and distils
//! the outcome into a deterministic, timing-free [`OutcomeRecord`] — so the
//! final outcome table of a killed-and-resumed campaign can be diffed
//! byte-for-byte against an uninterrupted one.

use crate::osse::{CycleOutcome, Osse};
use bda_io::checkpoint::{CampaignSnapshot, OutcomeRecord};
use bda_num::Real;
use bda_workflow::{CycleApp, FaultPlan};

/// An OSSE wired for checkpointed, fault-injected campaign cycling.
pub struct OsseCampaign<T: Real> {
    pub osse: Osse<T>,
    /// Member faults (`nan:M@C`, `blowup:M@C`) are applied here, at the
    /// start of the cycle; `crash@C` is the driver's business.
    pub faults: FaultPlan,
    /// Full per-cycle outcomes of *this process* (not checkpointed — the
    /// durable cross-restart record is the [`OutcomeRecord`] log).
    pub outcomes: Vec<CycleOutcome>,
}

impl<T: Real> OsseCampaign<T> {
    pub fn new(osse: Osse<T>, faults: FaultPlan) -> Self {
        Self {
            osse,
            faults,
            outcomes: Vec::new(),
        }
    }

    /// Deterministic one-line summary of a cycle: everything in it is a
    /// pure function of the (seeded) model trajectory, never of wall-clock
    /// timing. RMSEs are printed to full precision so even one-ulp
    /// divergence between an interrupted and an uninterrupted campaign
    /// shows up in the table diff.
    fn record_of(cycle: usize, out: &CycleOutcome) -> OutcomeRecord {
        let label = if out.below_quorum {
            "below-quorum"
        } else if out.n_obs_used == 0 {
            "forecast-only"
        } else if out.ensemble_degraded() {
            "degraded"
        } else {
            "completed"
        };
        let mut detail = format!(
            "alive {}, obs {}/{}, {}, rmse {:.9e}->{:.9e}",
            out.n_alive,
            out.n_obs_used,
            out.n_obs_scanned,
            out.qc.summary(),
            out.prior_rmse_dbz,
            out.posterior_rmse_dbz
        );
        if !out.respawned.is_empty() {
            detail.push_str(&format!(", respawned {:?}", out.respawned));
        }
        for e in &out.member_errors {
            detail.push_str(&format!(", {e}"));
        }
        OutcomeRecord {
            cycle: cycle as u64,
            label: label.into(),
            detail,
            retries: 0,
        }
    }
}

impl<T: Real> CycleApp<T> for OsseCampaign<T> {
    fn run_cycle(&mut self, cycle: usize) -> OutcomeRecord {
        for m in self.faults.member_nans(cycle) {
            self.osse.ensemble.inject_nan(m);
        }
        for m in self.faults.member_blowups(cycle) {
            self.osse.ensemble.inject_blowup(m);
        }
        let out = self.osse.cycle();
        let record = Self::record_of(cycle, &out);
        self.outcomes.push(out);
        record
    }

    fn snapshot(&self) -> CampaignSnapshot<T> {
        self.osse.snapshot_state()
    }

    fn restore(&mut self, snap: &CampaignSnapshot<T>) {
        self.osse.restore_state(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osse::OsseConfig;
    use bda_workflow::{CampaignTermination, ResumableCampaign};
    use std::path::PathBuf;

    fn small_campaign(faults: FaultPlan) -> OsseCampaign<f32> {
        OsseCampaign::new(Osse::new(OsseConfig::reduced(10, 8, 6, 2, 11)), faults)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bda-osse-resume-{tag}-{}", std::process::id()))
    }

    #[test]
    fn member_nan_fault_yields_finite_analysis_and_respawn() {
        // The ISSUE's acceptance scenario: `nan:2@2` over a short campaign —
        // every cycle must deliver a finite analysis, the dead member must
        // be respawned, and the outcome log must carry the quorum evidence.
        let mut app = small_campaign(FaultPlan::none().nan_member(2, 2));
        let run = ResumableCampaign::new(4).run(&mut app).unwrap();
        assert_eq!(run.termination, CampaignTermination::Completed);
        assert_eq!(run.outcomes.len(), 4);
        for (c, out) in app.outcomes.iter().enumerate() {
            assert!(
                out.prior_rmse_dbz.is_finite() && out.posterior_rmse_dbz.is_finite(),
                "cycle {c} produced a non-finite analysis"
            );
            assert!(
                out.analysis.points_analyzed > 0,
                "cycle {c} skipped analysis"
            );
        }
        assert_eq!(app.outcomes[2].n_alive, 5);
        assert_eq!(app.outcomes[2].respawned, vec![2]);
        assert_eq!(app.outcomes[3].n_alive, 6);
        assert_eq!(run.outcomes[2].label, "degraded");
        assert!(run.outcomes[2].detail.contains("alive 5"));
        assert!(run.outcomes[2].detail.contains("respawned [2]"));
        for m in &app.osse.ensemble.members {
            assert!(m.all_finite());
        }
    }

    #[test]
    fn killed_campaign_resumes_bit_for_bit() {
        let dir = tmp_dir("kill");
        let _ = std::fs::remove_dir_all(&dir);

        // Reference: the uninterrupted campaign.
        let mut ref_app = small_campaign(FaultPlan::none());
        let reference = ResumableCampaign::new(4).run(&mut ref_app).unwrap();

        // Same campaign, checkpoint every cycle, killed at cycle 2.
        let campaign = ResumableCampaign {
            n_cycles: 4,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            faults: FaultPlan::none().crash_at(2),
        };
        let mut app = small_campaign(campaign.faults.clone());
        let first = campaign.run(&mut app).unwrap();
        assert_eq!(
            first.termination,
            CampaignTermination::Crashed { at_cycle: 2 }
        );

        // "Process restart": a freshly constructed OSSE resumes from disk.
        let mut app2 = small_campaign(campaign.faults.clone());
        let second = campaign.run(&mut app2).unwrap();
        assert_eq!(second.termination, CampaignTermination::Completed);
        // The crash predates cycle 2's checkpoint, so the newest snapshot
        // is the one taken before cycle 1 — that cycle is replayed.
        assert_eq!(second.start_cycle, 1);

        // The outcome tables — full-precision RMSEs included — match.
        assert_eq!(second.table(), reference.table());
        // And the final prognostic states are identical bit-for-bit.
        let final_a = ref_app.osse.snapshot_state();
        let final_b = app2.osse.snapshot_state();
        assert_eq!(final_a.members, final_b.members);
        assert_eq!(final_a.rng_states, final_b.rng_states);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
