//! The OSSE harness: the full BDA cycle against a simulated truth.
//!
//! An Observing System Simulation Experiment replaces the real atmosphere
//! with a model "nature run": the radar simulator observes it, the ensemble
//! assimilates those observations, and forecasts are verified against the
//! known truth. This is the standard methodology when the real observing
//! system is unavailable, and it preserves the paper's experiment structure:
//!
//! * part <1-1> — LETKF analysis of reflectivity + Doppler velocity;
//! * part <1-2> — 30-second ensemble forecasts between analyses;
//! * part <2> — 30-minute forecasts from the mean + random members.

use crate::products::reflectivity_map;
use bda_io::checkpoint::CampaignSnapshot;
use bda_letkf::diagnostics::{innovation_statistics, InnovationStats};
use bda_letkf::obs::{QcPipeline, QcReport};
use bda_letkf::{
    analyze_quorum_region, AnalysisError, AnalysisStats, LetkfConfig, ObsEnsemble, StateLayout,
};
use bda_num::{Real, SplitMix64};
use bda_pawr::operator::ensemble_equivalents;
use bda_pawr::{PawrSimulator, RadarConfig, RadarNetwork};
use bda_scale::base::Sounding;
use bda_scale::forcing::TriggerSchedule;
use bda_scale::model::Boundary;
use bda_scale::state::PrognosticVar;
use bda_scale::{
    BaseState, Ensemble, HealthBounds, MemberError, Model, ModelConfig, ModelState, ANALYZED_VARS,
};

/// OSSE configuration.
#[derive(Clone, Debug)]
pub struct OsseConfig {
    pub model: ModelConfig,
    pub letkf: LetkfConfig,
    pub radar: RadarConfig,
    /// Analysis cycle interval, s (the 30-second refresh).
    pub cycle_interval: f64,
    pub seed: u64,
    /// Initial ensemble perturbation magnitudes.
    pub init_theta_sd: f64,
    pub init_qv_sd: f64,
    /// Convection triggers injected into the nature run.
    pub nature_triggers: TriggerSchedule,
    /// Environmental sounding shared by truth and ensemble.
    pub sounding: Sounding,
    /// Optional multi-radar network replacing the single radar — the dual
    /// MP-PAWR coverage of §8 / Maejima et al. (2022).
    pub network: Option<RadarNetwork>,
}

impl OsseConfig {
    /// Full-scale BDA2021 configuration (256x256x60, 1000 members) — used
    /// for problem-size accounting; run the reduced one on a laptop.
    pub fn bda2021() -> Self {
        let model = ModelConfig::inner_bda2021();
        let radar = RadarConfig::mp_pawr_bda2021();
        let triggers = TriggerSchedule::random_multicell(
            model.grid.lx(),
            model.grid.ly(),
            0.0,
            3600.0,
            8,
            2021,
        );
        Self {
            model,
            letkf: LetkfConfig::bda2021(),
            radar,
            cycle_interval: 30.0,
            seed: 2021,
            init_theta_sd: 0.5,
            init_qv_sd: 3e-4,
            nature_triggers: triggers,
            sounding: Sounding::convective(),
            network: None,
        }
    }

    /// Reduced configuration preserving the full code path.
    ///
    /// Small domains run as doubly-periodic convection boxes: with a Davies
    /// rim, most of a 10–20-cell domain would sit inside the relaxation
    /// layer and convection could never develop. The production clamp+rim
    /// configuration is kept for domains of 48+ cells.
    pub fn reduced(nx: usize, nz: usize, members: usize, n_triggers: usize, seed: u64) -> Self {
        let mut model = ModelConfig::reduced(nx, nx, nz);
        if nx >= 48 {
            model.davies_width = 5;
        } else {
            model.halo = bda_grid::halo::HaloPolicy::Periodic;
            model.davies_width = 0;
        }
        let radar = RadarConfig::reduced(model.grid.lx(), model.grid.ly());
        let triggers = TriggerSchedule::random_multicell(
            model.grid.lx(),
            model.grid.ly(),
            0.0,
            300.0,
            n_triggers,
            seed,
        );
        let mut letkf = LetkfConfig::reduced(members);
        // Scale the analysis ceiling to the reduced domain top.
        letkf.analysis_z_max = letkf.analysis_z_max.min(model.grid.vertical.z_top() * 0.8);
        Self {
            model,
            letkf,
            radar,
            cycle_interval: 30.0,
            seed,
            init_theta_sd: 0.5,
            init_qv_sd: 3e-4,
            nature_triggers: triggers,
            sounding: Sounding::convective(),
            network: None,
        }
    }

    /// Switch to dual-radar coverage (RadarNetwork::dual over the domain).
    pub fn with_dual_radar(mut self) -> Self {
        self.network = Some(RadarNetwork::dual(&self.model.grid));
        self
    }
}

/// Outcome of one 30-second cycle.
#[derive(Clone, Debug)]
pub struct CycleOutcome {
    /// Analysis (valid) time, s.
    pub time: f64,
    /// Observations produced by the scan.
    pub n_obs_scanned: usize,
    /// Observations surviving QC.
    pub n_obs_used: usize,
    /// Per-stage QC accounting (gross bounds / innovation / departure).
    pub qc: QcReport,
    pub analysis: AnalysisStats,
    /// Innovation statistics after QC, per observation kind — the filter
    /// health check (consistency ratio ~1 when spread matches error).
    pub innovation_reflectivity: InnovationStats,
    pub innovation_doppler: InnovationStats,
    /// RMSE of the ensemble-mean 2-km reflectivity against truth, before
    /// and after the analysis (visible cells only).
    pub prior_rmse_dbz: f64,
    pub posterior_rmse_dbz: f64,
    /// Members that survived the post-forecast health scan and entered the
    /// analysis (equals the ensemble size on a healthy cycle).
    pub n_alive: usize,
    /// Typed errors behind every quarantined member this cycle.
    pub member_errors: Vec<MemberError>,
    /// Members respawned from the analysis mean after quarantine.
    pub respawned: Vec<usize>,
    /// The surviving-member count fell below the configured quorum, so the
    /// analysis was skipped (the supervisor's ladder handles the cycle).
    pub below_quorum: bool,
}

impl CycleOutcome {
    /// True when the cycle ran without an analysis because no observation
    /// survived the scan + QC (radar outage, dropped scan, total rejection).
    /// The ensemble still advanced — this is a forecast-only cycle, the
    /// in-model end of the workflow supervisor's degradation ladder.
    pub fn analysis_skipped(&self) -> bool {
        self.n_obs_used == 0 || self.below_quorum
    }

    /// True when at least one member was quarantined this cycle.
    pub fn ensemble_degraded(&self) -> bool {
        !self.member_errors.is_empty()
    }
}

/// A cycle paused between its own analysis and its posterior diagnostics —
/// the seam the shard federation splits the cycle at.
///
/// [`Osse::cycle_begin`] advances truth and ensemble, scans, QCs, analyzes
/// a (possibly region-restricted) strip and respawns quarantined members,
/// returning this handle. A federated shard then publishes its analyzed
/// strip, applies its peers' strips via [`Osse::apply_analyzed_flats`],
/// calls [`PendingCycle::note_exchanged_points`], and finally
/// [`Osse::cycle_finish`] computes the posterior diagnostics over the
/// assembled state. `cycle_begin(None)` + `cycle_finish` is bit-identical
/// to [`Osse::cycle`].
#[derive(Clone, Debug)]
pub struct PendingCycle {
    time: f64,
    n_obs_scanned: usize,
    n_obs_used: usize,
    qc: QcReport,
    analysis: AnalysisStats,
    innovation_reflectivity: InnovationStats,
    innovation_doppler: InnovationStats,
    prior_rmse_dbz: f64,
    n_alive: usize,
    member_errors: Vec<MemberError>,
    respawned: Vec<usize>,
    below_quorum: bool,
    mask: Vec<bool>,
    truth_map: Vec<f64>,
    /// Analyzed points applied from peers' halos (0 in single-process mode).
    extra_points_analyzed: usize,
}

impl PendingCycle {
    /// Analysis (valid) time of the paused cycle, s.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Observations surviving QC this cycle.
    pub fn n_obs_used(&self) -> usize {
        self.n_obs_used
    }

    /// Grid points analyzed by this process (own region only).
    pub fn points_analyzed(&self) -> usize {
        self.analysis.points_analyzed
    }

    /// Members that survived the health scan.
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    /// Members respawned from the analysis mean this cycle.
    pub fn respawned(&self) -> &[usize] {
        &self.respawned
    }

    /// Whether the analysis was skipped for lack of quorum.
    pub fn below_quorum(&self) -> bool {
        self.below_quorum
    }

    /// Record `n` analyzed points applied from peer shards' halos, so the
    /// posterior diagnostics know the assembled state carries an analysis
    /// even when this shard's own strip analyzed nothing.
    pub fn note_exchanged_points(&mut self, n: usize) {
        self.extra_points_analyzed += n;
    }
}

/// One 30-minute forecast case with verification data at each lead — the
/// raw material for Figs. 6 and 7.
#[derive(Clone, Debug)]
pub struct ForecastCase {
    /// Forecast lead times, s.
    pub leads: Vec<f64>,
    /// Ensemble-mean forecast 2-km reflectivity per lead (j-outer maps).
    pub forecast_dbz: Vec<Vec<f64>>,
    /// Truth 2-km reflectivity at the verifying times.
    pub truth_dbz: Vec<Vec<f64>>,
    /// The (noisy) observed map at initialization — the persistence base.
    pub observed_dbz_init: Vec<f64>,
    /// Radar visibility mask at 2 km (false = hatched no-data).
    pub mask: Vec<bool>,
}

/// Jitter a trigger schedule for one ensemble member: storms exist in every
/// member's world, but displaced, re-timed and re-scaled.
fn jitter_triggers(
    triggers: &TriggerSchedule,
    grid: &bda_grid::GridSpec,
    seed: u64,
    member: u64,
) -> TriggerSchedule {
    let mut rng = SplitMix64::new(seed).split(member);
    let events = triggers
        .events()
        .iter()
        .map(|e| {
            let mut j = *e;
            j.x = (e.x + rng.gaussian(0.0f64, 1500.0)).clamp(0.0, grid.lx());
            j.y = (e.y + rng.gaussian(0.0f64, 1500.0)).clamp(0.0, grid.ly());
            j.time = (e.time + rng.gaussian(0.0f64, 45.0)).max(0.0);
            j.amplitude = e.amplitude * rng.uniform_in(0.75, 1.25);
            j
        })
        .collect();
    TriggerSchedule::new(events)
}

/// The full OSSE system.
pub struct Osse<T: Real> {
    pub cfg: OsseConfig,
    base: BaseState<T>,
    /// Truth integration engine (owns the nature state).
    nature: Model<T>,
    pub ensemble: Ensemble<T>,
    sim: PawrSimulator,
    layout: StateLayout,
    pub time: f64,
    rng: SplitMix64,
    /// Physical-plausibility bounds for the per-cycle member health scan.
    pub health_bounds: HealthBounds,
    /// Minimum surviving members for an analysis; below it the cycle
    /// degrades to forecast-only and the supervisor's ladder takes over.
    pub min_quorum: usize,
    /// Dedicated stream for respawn perturbations, so quarantine/respawn
    /// stays reproducible (and checkpointable) independently of other draws.
    respawn_rng: SplitMix64,
}

impl<T: Real> Osse<T> {
    pub fn new(cfg: OsseConfig) -> Self {
        cfg.model.validate();
        cfg.letkf.validate();
        let base = BaseState::from_sounding(
            &cfg.sounding,
            &cfg.model.grid.vertical,
            cfg.model.sound_speed,
        );
        let mut nature = Model::from_parts(cfg.model.clone(), base.clone());
        nature.triggers = cfg.nature_triggers.clone();
        nature.boundary = Boundary::BaseState;

        let init = ModelState::init_from_base(&cfg.model.grid, &base);
        let ensemble = Ensemble::from_perturbations(
            &init,
            &cfg.model,
            cfg.letkf.ensemble_size,
            cfg.seed,
            cfg.init_theta_sd,
            cfg.init_qv_sd,
        );
        let grid = &cfg.model.grid;
        let layout = StateLayout {
            nx: grid.nx,
            ny: grid.ny,
            nz: grid.nz(),
            nvar: ANALYZED_VARS.len(),
            dx: grid.dx,
            z_center: grid.vertical.z_center.clone(),
        };
        let sim = PawrSimulator::new(cfg.radar.clone());
        let rng = SplitMix64::new(cfg.seed ^ 0x0553);
        let respawn_rng = SplitMix64::new(cfg.seed ^ 0xDEAD);
        let min_quorum = (cfg.letkf.ensemble_size / 2).max(2);
        Self {
            base,
            nature,
            ensemble,
            sim,
            layout,
            time: 0.0,
            cfg,
            rng,
            health_bounds: HealthBounds::default(),
            min_quorum,
            respawn_rng,
        }
    }

    /// Respawn-stream state, for checkpointing.
    pub fn respawn_rng_state(&self) -> u64 {
        self.respawn_rng.state()
    }

    /// Restore the respawn stream from a checkpointed state.
    pub fn set_respawn_rng_state(&mut self, state: u64) {
        self.respawn_rng = SplitMix64::from_state(state);
    }

    /// Truth state (for verification only — the DA never touches it).
    pub fn truth(&self) -> &ModelState<T> {
        &self.nature.state
    }

    /// Capture the full cycling state for a campaign checkpoint.
    ///
    /// Layout convention: entry 0 is the nature (truth) state, entries
    /// `1..=k` are the ensemble members; only prognostic interiors are
    /// stored — halos are refilled from the interior at the start of every
    /// model step, so they carry no information. RNG streams are entry 0 =
    /// forecast-member selection, entry 1 = respawn perturbations. The
    /// driver fills in `next_cycle` and the outcome log.
    pub fn snapshot_state(&self) -> CampaignSnapshot<T> {
        let mut members = Vec::with_capacity(1 + self.ensemble.size());
        let mut member_times = Vec::with_capacity(1 + self.ensemble.size());
        members.push(self.nature.state.to_flat(&PrognosticVar::ALL));
        member_times.push(self.nature.state.time);
        for m in &self.ensemble.members {
            members.push(m.to_flat(&PrognosticVar::ALL));
            member_times.push(m.time);
        }
        CampaignSnapshot {
            next_cycle: 0,
            time: self.time,
            rng_states: vec![self.rng.state(), self.respawn_rng.state()],
            members,
            member_times,
            outcomes: Vec::new(),
        }
    }

    /// Restore the state captured by [`Osse::snapshot_state`]. The OSSE
    /// must have been constructed with the same configuration (grid and
    /// ensemble size are asserted; physics parameters are on the caller).
    pub fn restore_state(&mut self, snap: &CampaignSnapshot<T>) {
        assert_eq!(
            snap.members.len(),
            1 + self.ensemble.size(),
            "snapshot holds {} states, this OSSE needs {}",
            snap.members.len(),
            1 + self.ensemble.size()
        );
        assert_eq!(
            snap.rng_states.len(),
            2,
            "snapshot must carry 2 RNG streams"
        );
        self.nature
            .state
            .from_flat(&PrognosticVar::ALL, &snap.members[0]);
        self.nature.state.time = snap.member_times[0];
        for (i, m) in self.ensemble.members.iter_mut().enumerate() {
            m.from_flat(&PrognosticVar::ALL, &snap.members[i + 1]);
            m.time = snap.member_times[i + 1];
        }
        self.time = snap.time;
        self.rng = SplitMix64::from_state(snap.rng_states[0]);
        self.respawn_rng = SplitMix64::from_state(snap.rng_states[1]);
    }

    /// Advance only the truth, letting its convection mature before the DA
    /// starts — the standard OSSE "perfect model, imperfect initial state"
    /// setup. The ensemble stays at its initial perturbed state, so the
    /// first analyses face a real tracking problem.
    pub fn spinup_truth(&mut self, seconds: f64) {
        self.nature
            .integrate(seconds)
            // Truth divergence invalidates the whole OSSE; fatal by design.
            .expect("nature run blew up during spin-up"); // bda-check: allow(unwrap)
    }

    /// Spin up the whole system: truth and ensemble advance together, each
    /// member seeing a *jittered* copy of the nature triggers (displaced,
    /// re-timed, re-scaled). After spin-up every member carries its own
    /// version of the storms, so the ensemble has the reflectivity spread
    /// radar assimilation needs — the state the continuously cycling
    /// production system maintained at all times.
    pub fn spinup_system(&mut self, seconds: f64) {
        self.nature
            .integrate(seconds)
            // Truth divergence invalidates the whole OSSE; fatal by design.
            .expect("nature run blew up during spin-up"); // bda-check: allow(unwrap)
        let triggers = self.cfg.nature_triggers.clone();
        let seed = self.cfg.seed ^ 0x51F0;
        let grid = self.cfg.model.grid.clone();
        self.ensemble
            .forecast_with(&self.cfg.model, &self.base, seconds, |idx, engine| {
                engine.boundary = Boundary::BaseState;
                engine.triggers = jitter_triggers(&triggers, &grid, seed, idx as u64);
            })
            // Spin-up happens before the fault-tolerant cycle loop exists;
            // a member dying here means the configuration itself is broken.
            .expect("ensemble member blew up during spin-up"); // bda-check: allow(unwrap)
        self.time += seconds;
    }

    /// Maximum truth reflectivity anywhere in the volume, dBZ (diagnostic
    /// for "has convection developed yet?").
    pub fn truth_max_dbz(&self) -> f64 {
        let grid = &self.cfg.model.grid;
        let mut m = f64::NEG_INFINITY;
        for k in 0..grid.nz() {
            for j in 0..grid.ny {
                for i in 0..grid.nx {
                    m = m.max(bda_pawr::operator::h_reflectivity(
                        self.truth(),
                        &self.base,
                        i,
                        j,
                        k,
                        -30.0,
                    ));
                }
            }
        }
        m
    }

    pub fn base(&self) -> &BaseState<T> {
        &self.base
    }

    pub fn radar(&self) -> &PawrSimulator {
        &self.sim
    }

    /// Radar coverage mask at height `z` (network-aware).
    pub fn coverage_mask(&self, z: f64) -> Vec<bool> {
        match &self.cfg.network {
            Some(net) => net.visibility_mask(&self.cfg.model.grid, z),
            None => self.sim.visibility_mask(&self.cfg.model.grid, z),
        }
    }

    /// Ensemble calibration check: rank histogram of the truth reflectivity
    /// against the member reflectivities at height `z`, over the radar-
    /// covered cells. A flat histogram means the spread is trustworthy.
    pub fn rank_histogram(&self, z: f64) -> bda_verify::RankHistogram {
        let grid = &self.cfg.model.grid;
        let floor = self.cfg.radar.min_detectable_dbz;
        let truth = self.truth_reflectivity_map(z);
        let member_maps: Vec<Vec<f64>> = self
            .ensemble
            .members
            .iter()
            .map(|m| reflectivity_map(m, &self.base, grid, z, floor))
            .collect();
        // Exclude cells where truth and every member sit exactly at the
        // clear-air floor: ties there are not evidence about the spread.
        let mut mask = self.coverage_mask(z);
        for (idx, m) in mask.iter_mut().enumerate() {
            if *m {
                let any_echo = truth[idx] > floor || member_maps.iter().any(|mm| mm[idx] > floor);
                *m = any_echo;
            }
        }
        let mut h = bda_verify::RankHistogram::new(self.ensemble.size());
        h.add_fields(&truth, &member_maps, Some(&mask));
        h
    }

    /// Ensemble-mean 2-km reflectivity map.
    pub fn mean_reflectivity_map(&self, z: f64) -> Vec<f64> {
        let mean = self.ensemble.mean();
        reflectivity_map(
            &mean,
            &self.base,
            &self.cfg.model.grid,
            z,
            self.cfg.radar.min_detectable_dbz,
        )
    }

    /// Truth 2-km reflectivity map.
    pub fn truth_reflectivity_map(&self, z: f64) -> Vec<f64> {
        reflectivity_map(
            self.truth(),
            &self.base,
            &self.cfg.model.grid,
            z,
            self.cfg.radar.min_detectable_dbz,
        )
    }

    fn masked_rmse(&self, a: &[f64], b: &[f64], mask: &[bool]) -> f64 {
        let mut ss = 0.0;
        let mut n = 0usize;
        for i in 0..a.len() {
            if mask[i] {
                ss += (a[i] - b[i]).powi(2);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (ss / n as f64).sqrt()
        }
    }

    /// One full 30-second cycle: advance truth and ensemble, scan the truth,
    /// QC, health-scan the members, analyze the surviving quorum, respawn
    /// quarantined members from the analysis mean.
    pub fn cycle(&mut self) -> CycleOutcome {
        let pending = self.cycle_begin(None);
        self.cycle_finish(pending)
    }

    /// The analysis state layout (`ANALYZED_VARS` over the model grid) —
    /// what [`Osse::analyzed_flats`] vectors are indexed by.
    pub fn layout(&self) -> &StateLayout {
        &self.layout
    }

    /// Flatten every member's current `ANALYZED_VARS` state — called by a
    /// federated shard after [`Osse::cycle_begin`] to extract its analyzed
    /// strip (including respawned members) for halo publication.
    pub fn analyzed_flats(&self) -> Vec<Vec<T>> {
        self.ensemble
            .members
            .iter()
            .map(|m| m.to_flat(&ANALYZED_VARS))
            .collect()
    }

    /// Overwrite every member's `ANALYZED_VARS` state from `flats` — the
    /// halo-application inverse of [`Osse::analyzed_flats`]. Deliberately
    /// does **not** re-clamp: incoming values are post-analysis,
    /// post-clamp (alive members) or respawn output (respawned members,
    /// never clamped in single-process mode either), so clamping here
    /// would break bit-parity with the unsharded cycle.
    pub fn apply_analyzed_flats(&mut self, flats: &[Vec<T>]) {
        assert_eq!(
            flats.len(),
            self.ensemble.size(),
            "flats for {} members, ensemble has {}",
            flats.len(),
            self.ensemble.size()
        );
        for (m, flat) in self.ensemble.members.iter_mut().zip(flats) {
            m.from_flat(&ANALYZED_VARS, flat);
        }
    }

    /// First half of [`Osse::cycle`], with the analysis optionally
    /// restricted to the x-strip `region = Some((i0, i1))` — the shard
    /// federation's entry point. Runs forecast, scan, QC, the (restricted)
    /// analysis and member respawn, then pauses before the posterior
    /// diagnostics so a shard can exchange halos first.
    pub fn cycle_begin(&mut self, region: Option<(usize, usize)>) -> PendingCycle {
        let dt = self.cfg.cycle_interval;
        let grid = self.cfg.model.grid.clone();

        // Advance truth (part of "the real world" — if it blows up the whole
        // OSSE is meaningless, so this stays fatal) and the ensemble
        // (part <1-2>: 1000-member 30-s forecasts, per-member outcomes).
        // See the comment above: truth failure is fatal by design.
        self.nature.integrate(dt).expect("nature run blew up"); // bda-check: allow(unwrap)
        let forecast_results =
            self.ensemble
                .forecast_members(&self.cfg.model, &self.base, dt, |_| Boundary::BaseState);
        let health = self
            .ensemble
            .health_scan(&forecast_results, &self.health_bounds);
        self.time += dt;

        // Total ensemble death is unrecoverable in-model: there is no state
        // left to respawn from, so hand the cycle to the supervisor above.
        if health.n_alive() == 0 {
            return PendingCycle {
                time: self.time,
                n_obs_scanned: 0,
                n_obs_used: 0,
                qc: QcReport::default(),
                analysis: AnalysisStats::default(),
                innovation_reflectivity: InnovationStats::default(),
                innovation_doppler: InnovationStats::default(),
                prior_rmse_dbz: f64::NAN,
                n_alive: 0,
                member_errors: health.errors,
                respawned: Vec::new(),
                below_quorum: true,
                mask: Vec::new(),
                truth_map: Vec::new(),
                extra_points_analyzed: 0,
            };
        }
        let alive_flags = health.alive_flags();
        let alive_idx = health.alive();

        // Scan the truth (the MP-PAWR volume at T_obs) and evaluate the
        // forward operator on every member, honoring each radar's geometry.
        let floor = self.cfg.radar.min_detectable_dbz;
        let (scan, hx) = if let Some(net) = &self.cfg.network {
            let (scan, counts) = net.scan_with_counts(
                &self.nature.state,
                &self.base,
                &grid,
                self.time,
                self.cfg.seed,
            );
            let hx = net.ensemble_equivalents(
                &scan.obs,
                &counts,
                &self.ensemble.members,
                &self.base,
                &grid,
                floor,
            );
            (scan, hx)
        } else {
            let scan = self.sim.scan(
                &self.nature.state,
                &self.base,
                &grid,
                self.time,
                self.cfg.seed,
            );
            let hx = ensemble_equivalents(
                &scan.obs,
                &self.ensemble.members,
                &self.base,
                &grid,
                &self.cfg.radar,
                floor,
            );
            (scan, hx)
        };
        let n_obs_scanned = scan.obs.len();
        // Quarantine: only surviving members contribute observation
        // equivalents — a NaN row from a dead member would poison the QC
        // innovation means for everyone.
        let hx: Vec<Vec<T>> = hx
            .into_iter()
            .zip(&alive_flags)
            .filter(|(_, &a)| a)
            .map(|(h, _)| h)
            .collect();
        let ens_obs = ObsEnsemble::new(scan.obs, hx);
        let (ens_obs, qc) = QcPipeline::new(&self.cfg.letkf).run(&ens_obs);
        let n_obs_used = ens_obs.len();
        let (innovation_reflectivity, innovation_doppler) = innovation_statistics(&ens_obs);

        // Diagnostics before the update (over surviving members only).
        let mask = self.coverage_mask(2000.0);
        let truth_map = self.truth_reflectivity_map(2000.0);
        let floor2 = self.cfg.radar.min_detectable_dbz;
        let prior_map = reflectivity_map(
            &self.ensemble.mean_of(&alive_idx),
            &self.base,
            &grid,
            2000.0,
            floor2,
        );
        let prior_rmse_dbz = self.masked_rmse(&prior_map, &truth_map, &mask);

        // Part <1-1>: the LETKF analysis on the surviving quorum. A cycle
        // with no usable observations — radar outage, dropped scan, or total
        // QC rejection — degrades to an ensemble-forecast-only cycle, as
        // does a quorum failure: the members continue unanalyzed and the
        // outcome reports zero points analyzed (see
        // `CycleOutcome::analysis_skipped`). Neither observation loss nor
        // member death must ever abort the 30-second cadence.
        let mut below_quorum = false;
        let analysis = if n_obs_used == 0 {
            AnalysisStats::default()
        } else {
            let mut flats: Vec<Vec<T>> = self
                .ensemble
                .members
                .iter()
                .map(|m| m.to_flat(&ANALYZED_VARS))
                .collect();
            match analyze_quorum_region(
                &mut flats,
                &alive_flags,
                self.layout.clone(),
                &ens_obs,
                &self.cfg.letkf,
                self.min_quorum,
                region,
            ) {
                Ok(q) => {
                    for &m in &alive_idx {
                        self.ensemble.members[m].from_flat(&ANALYZED_VARS, &flats[m]);
                        self.ensemble.members[m].clamp_physical();
                    }
                    q.stats
                }
                Err(AnalysisError::BelowQuorum { .. }) => {
                    below_quorum = true;
                    AnalysisStats::default()
                }
                Err(e) => {
                    // Localization / size errors are analysis-step failures,
                    // not member failures: degrade to forecast-only exactly
                    // like an empty scan.
                    debug_assert!(false, "analysis failed: {e}");
                    below_quorum = true;
                    AnalysisStats::default()
                }
            }
        };

        // Respawn quarantined members from the (analysis) mean of the
        // survivors plus re-inflated perturbations, so the ensemble
        // self-heals over the next cycles.
        let respawned = health.dead();
        if !respawned.is_empty() {
            let template = self.ensemble.mean_of(&alive_idx);
            for &m in &respawned {
                self.ensemble.respawn(
                    m,
                    &template,
                    &grid,
                    &mut self.respawn_rng,
                    self.cfg.init_theta_sd,
                    self.cfg.init_qv_sd,
                );
            }
        }

        PendingCycle {
            time: self.time,
            n_obs_scanned,
            n_obs_used,
            qc,
            analysis,
            innovation_reflectivity,
            innovation_doppler,
            prior_rmse_dbz,
            n_alive: alive_idx.len(),
            member_errors: health.errors,
            respawned,
            below_quorum,
            mask,
            truth_map,
            extra_points_analyzed: 0,
        }
    }

    /// Second half of [`Osse::cycle`]: posterior diagnostics over the
    /// (possibly halo-assembled) ensemble. The posterior is recomputed when
    /// any analyzed point reached the state — this shard's own
    /// ([`PendingCycle::points_analyzed`]) or applied from peers
    /// ([`PendingCycle::note_exchanged_points`]) — and otherwise equals the
    /// prior, exactly as the unsplit cycle reported forecast-only cycles.
    pub fn cycle_finish(&mut self, pending: PendingCycle) -> CycleOutcome {
        let PendingCycle {
            time,
            n_obs_scanned,
            n_obs_used,
            qc,
            analysis,
            innovation_reflectivity,
            innovation_doppler,
            prior_rmse_dbz,
            n_alive,
            member_errors,
            respawned,
            below_quorum,
            mask,
            truth_map,
            extra_points_analyzed,
        } = pending;
        let total_analyzed = analysis.points_analyzed + extra_points_analyzed;
        let posterior_rmse_dbz = if n_alive > 0 && total_analyzed > 0 {
            let post_map = self.mean_reflectivity_map(2000.0);
            self.masked_rmse(&post_map, &truth_map, &mask)
        } else {
            prior_rmse_dbz
        };

        CycleOutcome {
            time,
            n_obs_scanned,
            n_obs_used,
            qc,
            analysis,
            innovation_reflectivity,
            innovation_doppler,
            prior_rmse_dbz,
            posterior_rmse_dbz,
            n_alive,
            member_errors,
            respawned,
            below_quorum,
        }
    }

    /// Run `n` consecutive cycles, returning all outcomes.
    pub fn run_cycles(&mut self, n: usize) -> Vec<CycleOutcome> {
        (0..n).map(|_| self.cycle()).collect()
    }

    /// Part <2>: launch a 30-minute (or `duration`) forecast from the mean
    /// analysis + `extra_members` random members, verified against a cloned
    /// continuation of the truth at each lead in `leads`.
    ///
    /// The OSSE's own truth and ensemble are *not* advanced — this matches
    /// the real system where part <2> runs on separate nodes while cycling
    /// continues.
    pub fn run_forecast_case(&mut self, leads: &[f64], extra_members: usize) -> ForecastCase {
        assert!(!leads.is_empty());
        let grid = self.cfg.model.grid.clone();
        let duration_max = leads.iter().cloned().fold(0.0, f64::max);

        // Forecast ensemble: mean + random members (the paper's 1 + 10).
        let mean = self.ensemble.mean();
        let idx = self
            .ensemble
            .random_member_indices(extra_members.min(self.ensemble.size()), &mut self.rng);
        let mut fc_members = vec![mean];
        fc_members.extend(idx.into_iter().map(|i| self.ensemble.members[i].clone()));
        let mut fc_ens = Ensemble {
            members: fc_members,
        };

        // Clone the truth engine to produce verifying fields.
        let mut truth_engine = Model::from_parts(self.cfg.model.clone(), self.base.clone());
        truth_engine.triggers = self.cfg.nature_triggers.clone();
        let _ = truth_engine.swap_state(self.truth().clone());

        let mask = self.coverage_mask(2000.0);
        let floor = self.cfg.radar.min_detectable_dbz;

        // Persistence base: the noisy observed map at initialization.
        let mut obs_rng = SplitMix64::new(self.cfg.seed ^ 0x0B5E).split(self.time.to_bits());
        let truth_init = reflectivity_map(self.truth(), &self.base, &grid, 2000.0, floor);
        let observed_dbz_init: Vec<f64> = truth_init
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if mask[i] && v > floor {
                    (v + obs_rng.gaussian(0.0, self.cfg.radar.noise_reflectivity_dbz)).max(floor)
                } else {
                    v
                }
            })
            .collect();

        let mut forecast_dbz = Vec::with_capacity(leads.len());
        let mut truth_dbz = Vec::with_capacity(leads.len());
        let mut t_prev = 0.0;
        for &lead in leads {
            assert!(lead >= t_prev, "leads must be ascending");
            let step = lead - t_prev;
            if step > 0.0 {
                // A blown-up forecast member is dropped from the (mean +
                // random members) ensemble rather than aborting part <2>.
                let results = fc_ens
                    .forecast_members(&self.cfg.model, &self.base, step, |_| Boundary::BaseState);
                let health = fc_ens.health_scan(&results, &self.health_bounds);
                let alive = health.alive();
                assert!(!alive.is_empty(), "every forecast member blew up");
                if alive.len() < fc_ens.size() {
                    fc_ens = fc_ens.subset(&alive);
                }
                // bda-check: allow(unwrap) — truth failure is fatal by design.
                truth_engine.integrate(step).expect("truth clone blew up");
            }
            let fc_mean = fc_ens.mean();
            forecast_dbz.push(reflectivity_map(&fc_mean, &self.base, &grid, 2000.0, floor));
            truth_dbz.push(reflectivity_map(
                &truth_engine.state,
                &self.base,
                &grid,
                2000.0,
                floor,
            ));
            t_prev = lead;
        }
        let _ = duration_max;

        ForecastCase {
            leads: leads.to_vec(),
            forecast_dbz,
            truth_dbz,
            observed_dbz_init,
            mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Osse<f32> {
        Osse::new(OsseConfig::reduced(10, 8, 6, 2, 11))
    }

    #[test]
    fn cycle_produces_observations_and_analysis() {
        let mut osse = small();
        let out = osse.cycle();
        assert!(out.n_obs_scanned > 0, "radar saw nothing");
        assert!(out.n_obs_used > 0, "QC rejected everything");
        assert!(out.n_obs_used <= out.n_obs_scanned);
        assert!(out.analysis.points_analyzed > 0, "no grid points analyzed");
        assert!((out.time - 30.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_survives_total_observation_loss() {
        // A radar that can see nothing (1 m range) models a scan outage:
        // the cycle must still advance every clock, skip the analysis, and
        // report an unchanged posterior instead of panicking.
        let mut cfg = OsseConfig::reduced(10, 8, 6, 2, 11);
        cfg.radar.range_max = 1.0;
        let mut osse = Osse::<f32>::new(cfg);
        let out = osse.cycle();
        assert_eq!(out.n_obs_scanned, 0);
        assert_eq!(out.n_obs_used, 0);
        assert!(out.analysis_skipped());
        assert_eq!(out.analysis, AnalysisStats::default());
        assert_eq!(out.posterior_rmse_dbz, out.prior_rmse_dbz);
        assert!((out.time - 30.0).abs() < 1e-9);
        assert!((osse.truth().time - 30.0).abs() < 1e-6);
        for m in &osse.ensemble.members {
            assert!((m.time - 30.0).abs() < 1e-6);
        }
        // A later healthy cycle resumes analysis from the degraded state.
        osse.cfg.radar.range_max =
            RadarConfig::reduced(osse.cfg.model.grid.lx(), osse.cfg.model.grid.ly()).range_max;
        osse.sim = PawrSimulator::new(osse.cfg.radar.clone());
        let healthy = osse.cycle();
        assert!(healthy.n_obs_used > 0);
        assert!(!healthy.analysis_skipped());
    }

    #[test]
    fn nan_poisoned_member_is_quarantined_and_respawned() {
        let mut osse = small();
        osse.cycle();
        osse.ensemble.inject_nan(2);
        let out = osse.cycle();
        assert_eq!(out.n_alive, 5);
        assert_eq!(out.respawned, vec![2]);
        assert!(out.ensemble_degraded());
        assert!(out.member_errors.iter().any(|e| e.member() == 2));
        // The surviving quorum still produced a real analysis...
        assert!(out.analysis.points_analyzed > 0);
        assert!(!out.below_quorum);
        assert!(out.posterior_rmse_dbz.is_finite());
        // ...and after the respawn every member is finite again.
        for m in &osse.ensemble.members {
            assert!(m.all_finite());
        }
        // The next cycle runs at full strength.
        let next = osse.cycle();
        assert_eq!(next.n_alive, 6);
        assert!(next.respawned.is_empty());
        assert!(!next.ensemble_degraded());
        for m in &osse.ensemble.members {
            assert!((m.time - 3.0 * 30.0).abs() < 1e-6);
        }
    }

    #[test]
    fn quarantine_and_respawn_are_deterministic() {
        let run = || {
            let mut osse = small();
            osse.cycle();
            osse.ensemble.inject_nan(1);
            osse.cycle();
            osse.cycle();
            osse.ensemble
                .members
                .iter()
                .map(|m| m.to_flat(&ANALYZED_VARS))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn below_quorum_skips_analysis_but_still_respawns() {
        let mut osse = small(); // 6 members
        osse.min_quorum = 6; // any death now breaks quorum
        osse.ensemble.inject_nan(0);
        let out = osse.cycle();
        assert!(out.below_quorum);
        assert!(out.analysis_skipped());
        assert_eq!(out.analysis, AnalysisStats::default());
        assert_eq!(out.respawned, vec![0]);
        assert_eq!(out.posterior_rmse_dbz, out.prior_rmse_dbz);
        for m in &osse.ensemble.members {
            assert!(m.all_finite());
        }
    }

    fn flats_bits(osse: &Osse<f32>) -> Vec<Vec<u32>> {
        osse.analyzed_flats()
            .iter()
            .map(|f| f.iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn split_cycle_is_bit_identical_to_cycle() {
        let mut a = small();
        let mut b = small();
        for _ in 0..2 {
            let out_a = a.cycle();
            let pending = b.cycle_begin(None);
            let out_b = b.cycle_finish(pending);
            assert_eq!(flats_bits(&a), flats_bits(&b));
            assert_eq!(
                out_a.posterior_rmse_dbz.to_bits(),
                out_b.posterior_rmse_dbz.to_bits()
            );
            assert_eq!(
                out_a.prior_rmse_dbz.to_bits(),
                out_b.prior_rmse_dbz.to_bits()
            );
            assert_eq!(out_a.n_obs_used, out_b.n_obs_used);
            assert_eq!(
                out_a.analysis.points_analyzed,
                out_b.analysis.points_analyzed
            );
        }
        assert_eq!(a.rng.state(), b.rng.state());
        assert_eq!(a.respawn_rng.state(), b.respawn_rng.state());
    }

    #[test]
    fn region_sharded_cycle_assembles_to_the_full_analysis() {
        // Two replicas each analyze one x-strip, exchange analyzed flats,
        // and must reconstruct the single-process analysis bit-for-bit —
        // the core parity claim of the shard federation, in miniature.
        let mut reference = small();
        let ref_out = reference.cycle();

        let nx = 10;
        let mut shards: Vec<Osse<f32>> = (0..2).map(|_| small()).collect();
        let regions = [(0usize, nx / 2), (nx / 2, nx)];
        let mut pendings = Vec::new();
        let mut strips = Vec::new();
        for (s, osse) in shards.iter_mut().enumerate() {
            let pending = osse.cycle_begin(Some(regions[s]));
            strips.push(osse.analyzed_flats());
            pendings.push(pending);
        }
        // Exchange: each shard overwrites the peer's strip columns. The
        // flat layout is ((v * nx + i) * ny + j) * nz + k, so an x-strip is
        // per-variable contiguous.
        let layout = reference.layout().clone();
        let (ny, nz, nvar) = (layout.ny, layout.nz, layout.nvar);
        for (s, osse) in shards.iter_mut().enumerate() {
            let peer = 1 - s;
            let (i0, i1) = regions[peer];
            let mut flats = strips[s].clone();
            for (m, flat) in flats.iter_mut().enumerate() {
                for v in 0..nvar {
                    let a = (v * nx + i0) * ny * nz;
                    let b = (v * nx + i1) * ny * nz;
                    flat[a..b].copy_from_slice(&strips[peer][m][a..b]);
                }
            }
            osse.apply_analyzed_flats(&flats);
            pendings[s].note_exchanged_points(ref_out.analysis.points_analyzed);
        }
        for (s, osse) in shards.iter_mut().enumerate() {
            let out = osse.cycle_finish(pendings[s].clone());
            assert_eq!(flats_bits(osse), flats_bits(&reference), "shard {s} state");
            assert_eq!(
                out.posterior_rmse_dbz.to_bits(),
                ref_out.posterior_rmse_dbz.to_bits(),
                "shard {s} posterior"
            );
        }
    }

    #[test]
    fn cycling_advances_all_clocks_together() {
        let mut osse = small();
        osse.run_cycles(2);
        assert!((osse.time - 60.0).abs() < 1e-9);
        assert!((osse.truth().time - 60.0).abs() < 1e-6);
        for m in &osse.ensemble.members {
            assert!((m.time - 60.0).abs() < 1e-6);
        }
    }

    #[test]
    fn analysis_does_not_degrade_reflectivity_rmse() {
        // With rain in the truth and clear-air obs everywhere, the analysis
        // should pull the mean toward the truth (or at worst hold level).
        let mut osse = small();
        let outs = osse.run_cycles(3);
        let last = outs.last().unwrap();
        assert!(
            last.posterior_rmse_dbz <= last.prior_rmse_dbz + 0.5,
            "analysis degraded RMSE: {} -> {}",
            last.prior_rmse_dbz,
            last.posterior_rmse_dbz
        );
    }

    #[test]
    fn forecast_case_has_consistent_shapes() {
        let mut osse = small();
        osse.cycle();
        let case = osse.run_forecast_case(&[0.0, 30.0, 60.0], 2);
        assert_eq!(case.leads.len(), 3);
        assert_eq!(case.forecast_dbz.len(), 3);
        assert_eq!(case.truth_dbz.len(), 3);
        let n = 10 * 10;
        assert_eq!(case.forecast_dbz[0].len(), n);
        assert_eq!(case.mask.len(), n);
        assert_eq!(case.observed_dbz_init.len(), n);
        // OSSE state untouched by the forecast case.
        assert!((osse.time - 30.0).abs() < 1e-9);
        assert!((osse.truth().time - 30.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn descending_leads_rejected() {
        let mut osse = small();
        let _ = osse.run_forecast_case(&[30.0, 0.0], 1);
    }

    #[test]
    fn rank_histogram_has_one_bin_per_interval_and_counts_covered_cells() {
        let mut osse = small();
        osse.cycle();
        let h = osse.rank_histogram(2000.0);
        assert_eq!(h.ensemble_size(), 6);
        assert_eq!(h.counts().len(), 7);
        // Counts only echo-bearing covered cells, so bounded by coverage.
        let covered = osse.coverage_mask(2000.0).iter().filter(|&&v| v).count();
        assert!(h.total() as usize <= covered);
    }

    #[test]
    fn reduced_config_is_valid_and_full_scale_parameters_survive() {
        let r = OsseConfig::reduced(12, 10, 8, 3, 5);
        assert_eq!(r.letkf.ensemble_size, 8);
        assert_eq!(r.cycle_interval, 30.0);
        let f = OsseConfig::bda2021();
        assert_eq!(f.letkf.ensemble_size, 1000);
        assert_eq!(f.model.grid.nx, 256);
        assert_eq!(f.radar.range_max, 60_000.0);
    }
}
