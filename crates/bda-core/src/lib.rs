//! # bda-core — the Big Data Assimilation system
//!
//! The public API tying the whole reproduction together:
//!
//! * [`systems`] — the operational-NWP comparison of Table 1 and the
//!   "two orders of magnitude increase in problem size" computation.
//! * [`osse`] — the Observing System Simulation Experiment harness: a
//!   nature run with triggered convection is scanned by the MP-PAWR
//!   simulator every 30 s, the 1000-member (configurably reduced) LETKF
//!   assimilates reflectivity and Doppler velocity, and 30-minute ensemble
//!   forecasts are launched from the mean + random members — parts <1-1>,
//!   <1-2> and <2> of Fig. 2.
//! * [`products`] — the final products: 2-km reflectivity maps with radar
//!   no-data hatching (Figs. 1, 6) and 3-D reflectivity structure dumps
//!   (Fig. 8).
//! * [`sensitivity`] — the configuration sweeps of §5 (localization scale,
//!   ensemble size; Taylor et al. 2023).
//!
//! ## Quickstart
//!
//! ```
//! use bda_core::osse::{Osse, OsseConfig};
//!
//! // A laptop-scale configuration: same code path as BDA2021, smaller numbers.
//! let cfg = OsseConfig::reduced(10, 10, 8, 6, 42);
//! let mut osse = Osse::<f32>::new(cfg);
//! let outcome = osse.cycle();
//! assert!(outcome.n_obs_used > 0);
//! ```

pub mod osse;
pub mod products;
pub mod resume;
pub mod sensitivity;
pub mod systems;

pub use osse::{CycleOutcome, Osse, OsseConfig, PendingCycle};
pub use resume::OsseCampaign;
pub use systems::{OperationalSystem, TABLE1};
