//! Final products: reflectivity maps and 3-D structure views.

use bda_grid::GridSpec;
use bda_num::Real;
use bda_pawr::operator::h_reflectivity;
use bda_pawr::PawrSimulator;
use bda_scale::{BaseState, ModelState};

/// Simulated-reflectivity map (dBZ) at the model level closest to height
/// `z` (Fig. 6 uses 2 km). Row order is j-outer/i-inner, matching
/// [`PawrSimulator::visibility_mask`].
pub fn reflectivity_map<T: Real>(
    state: &ModelState<T>,
    base: &BaseState<T>,
    grid: &GridSpec,
    z: f64,
    floor_dbz: f64,
) -> Vec<f64> {
    let k = grid.vertical.level_of(z);
    let mut out = Vec::with_capacity(grid.nx * grid.ny);
    for j in 0..grid.ny {
        for i in 0..grid.nx {
            out.push(h_reflectivity(state, base, i, j, k, floor_dbz));
        }
    }
    out
}

/// Column-maximum reflectivity map (the "composite" product of Fig. 1a).
pub fn composite_reflectivity_map<T: Real>(
    state: &ModelState<T>,
    base: &BaseState<T>,
    grid: &GridSpec,
    floor_dbz: f64,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(grid.nx * grid.ny);
    for j in 0..grid.ny {
        for i in 0..grid.nx {
            let mut m = floor_dbz;
            for k in 0..grid.nz() {
                m = m.max(h_reflectivity(state, base, i, j, k, floor_dbz));
            }
            out.push(m);
        }
    }
    out
}

/// Fig. 8-style 3-D bird's-eye view: for each dBZ band (every 10 dBZ from
/// 10 to 50), an ASCII layer map of where the band's echo tops sit.
pub fn volume_view<T: Real>(
    state: &ModelState<T>,
    base: &BaseState<T>,
    grid: &GridSpec,
    sim: &PawrSimulator,
) -> String {
    let mut out = String::new();
    for band in (10..=50).step_by(10) {
        // Echo-top height (km) of this band per column.
        let mut any = false;
        let mut map = String::new();
        for j in (0..grid.ny).rev() {
            for i in 0..grid.nx {
                let mut top: Option<usize> = None;
                for k in (0..grid.nz()).rev() {
                    if h_reflectivity(state, base, i, j, k, -30.0) >= band as f64 {
                        top = Some(k);
                        break;
                    }
                }
                let c = match top {
                    Some(k) => {
                        any = true;
                        let z_km = grid.vertical.z_center[k] / 1000.0;
                        // Digit = echo-top height in km (capped at 9).
                        std::char::from_digit((z_km as u32).min(9), 10).unwrap_or('9')
                    }
                    None => {
                        let vis = bda_pawr::geometry::visibility(
                            &sim.cfg,
                            grid.x_center(i),
                            grid.y_center(j),
                            2000.0,
                        )
                        .is_ok();
                        if vis {
                            '.'
                        } else {
                            '/'
                        }
                    }
                };
                map.push(c);
            }
            map.push('\n');
        }
        out.push_str(&format!(">= {band} dBZ (digits: echo-top height, km)\n"));
        out.push_str(&map);
        if !any {
            out.push_str("(no echo in this band)\n");
        }
        out.push('\n');
    }
    out
}

/// Probability-of-exceedance map from an ensemble of member states: the
/// fraction of members whose reflectivity at height `z` meets `threshold`
/// dBZ — the probabilistic product an 11-member forecast ensemble supports
/// (the paper's part <2> disseminated products, Fig. 1).
pub fn exceedance_probability_map<T: Real>(
    members: &[ModelState<T>],
    base: &BaseState<T>,
    grid: &GridSpec,
    z: f64,
    threshold: f64,
) -> Vec<f64> {
    assert!(!members.is_empty());
    let k = grid.vertical.level_of(z);
    let mut out = vec![0.0; grid.nx * grid.ny];
    for m in members {
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                if h_reflectivity(m, base, i, j, k, -30.0) >= threshold {
                    out[j * grid.nx + i] += 1.0;
                }
            }
        }
    }
    let kf = members.len() as f64;
    for v in &mut out {
        *v /= kf;
    }
    out
}

/// Write a reflectivity map as a color PPM (P6) using the standard radar
/// palette (gray < 10, green 10–25, yellow 25–35, orange 35–45, red 45–55,
/// magenta above; black = no data) — the Fig. 1a webpage product.
pub fn write_ppm_reflectivity(
    path: impl AsRef<std::path::Path>,
    dbz: &[f64],
    width: usize,
    height: usize,
    mask: Option<&[bool]>,
) -> std::io::Result<()> {
    use std::io::Write;
    assert_eq!(dbz.len(), width * height);
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P6")?;
    writeln!(f, "{width} {height}")?;
    writeln!(f, "255")?;
    let color = |v: f64| -> [u8; 3] {
        match v {
            v if v < 10.0 => [40, 40, 48],
            v if v < 25.0 => [60, 170, 60],
            v if v < 35.0 => [230, 220, 50],
            v if v < 45.0 => [240, 150, 40],
            v if v < 55.0 => [220, 50, 40],
            _ => [230, 60, 200],
        }
    };
    let mut row = Vec::with_capacity(width * 3);
    for j in (0..height).rev() {
        row.clear();
        for i in 0..width {
            let idx = j * width + i;
            let visible = mask.map(|m| m[idx]).unwrap_or(true);
            let px = if visible { color(dbz[idx]) } else { [0, 0, 0] };
            row.extend_from_slice(&px);
        }
        f.write_all(&row)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_pawr::RadarConfig;
    use bda_scale::base::Sounding;

    fn setup() -> (GridSpec, BaseState<f64>, ModelState<f64>) {
        let grid = GridSpec::reduced(10, 10, 8);
        let base = BaseState::from_sounding(&Sounding::convective(), &grid.vertical, 340.0);
        let state = ModelState::init_from_base(&grid, &base);
        (grid, base, state)
    }

    #[test]
    fn map_shapes_and_floor() {
        let (grid, base, state) = setup();
        let m = reflectivity_map(&state, &base, &grid, 2000.0, 5.0);
        assert_eq!(m.len(), 100);
        assert!(m.iter().all(|&v| v == 5.0), "dry state must be at floor");
    }

    #[test]
    fn rain_appears_at_the_right_place_in_map_order() {
        let (grid, base, mut state) = setup();
        let k2km = grid.vertical.level_of(2000.0);
        state.qr.set(3, 7, k2km, 2e-3);
        let m = reflectivity_map(&state, &base, &grid, 2000.0, 5.0);
        // j-outer, i-inner: index = j * nx + i.
        assert!(m[7 * 10 + 3] > 40.0);
        assert_eq!(m[0], 5.0);
    }

    #[test]
    fn composite_sees_rain_at_any_level() {
        let (grid, base, mut state) = setup();
        state.qg.set(5, 5, 7, 3e-3); // high level
        let at2km = reflectivity_map(&state, &base, &grid, 2000.0, 5.0);
        let composite = composite_reflectivity_map(&state, &base, &grid, 5.0);
        assert_eq!(at2km[5 * 10 + 5], 5.0);
        assert!(composite[5 * 10 + 5] > 30.0);
    }

    #[test]
    fn exceedance_probability_counts_members() {
        let (grid, base, state) = setup();
        let k2km = grid.vertical.level_of(2000.0);
        let mut wet = state.clone();
        wet.qr.set(3, 3, k2km, 3e-3); // > 40 dBZ
                                      // 1 of 4 members exceeds at (3,3); none elsewhere.
        let members = vec![state.clone(), state.clone(), state.clone(), wet];
        let p = exceedance_probability_map(&members, &base, &grid, 2000.0, 30.0);
        assert!((p[3 * 10 + 3] - 0.25).abs() < 1e-12);
        assert_eq!(p[0], 0.0);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn ppm_product_writes_valid_header_and_size() {
        let dir = std::env::temp_dir().join(format!("bda_ppm_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.ppm");
        let dbz = vec![5.0, 30.0, 47.0, 60.0];
        let mask = vec![true, true, true, false];
        write_ppm_reflectivity(&path, &dbz, 2, 2, Some(&mask)).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6"));
        // 4 pixels x 3 bytes after the header.
        let header_len = data.len() - 12;
        assert!(header_len > 0);
        // Masked pixel is black; it is the last of the top row (j=1 written
        // first): pixel order is (0,1),(1,1),(0,0),(1,0) -> masked (1,1)
        // is the second pixel.
        let px = &data[data.len() - 12 + 3..data.len() - 12 + 6];
        assert_eq!(px, &[0, 0, 0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn volume_view_lists_all_bands_and_marks_echo_tops() {
        let (grid, base, mut state) = setup();
        for k in 2..6 {
            state.qr.set(4, 4, k, 3e-3);
        }
        let sim = PawrSimulator::new(RadarConfig::reduced(grid.lx(), grid.ly()));
        let view = volume_view(&state, &base, &grid, &sim);
        for band in ["10 dBZ", "20 dBZ", "30 dBZ", "40 dBZ", "50 dBZ"] {
            assert!(view.contains(band), "missing band {band}");
        }
        // Some digit must appear (an echo top).
        assert!(view.chars().any(|c| c.is_ascii_digit() && c != '0'));
    }
}
