//! Configuration sensitivity sweeps (§5; Taylor et al. 2023).
//!
//! "Selecting proper configurations for the SCALE-LETKF is not a trivial
//! task. We performed comprehensive sensitivity tests with various choices
//! of grid spacings, ensemble sizes, LETKF localization scales, and boundary
//! data options." This module provides the sweep harness: it runs short
//! reduced-scale OSSEs across a parameter grid and reports analysis skill
//! (posterior RMSE) and wall-clock cost — the accuracy/time trade-off the
//! paper's production configuration settled.

use crate::osse::{Osse, OsseConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One sweep point's result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepPoint {
    pub label: String,
    pub ensemble_size: usize,
    pub loc_horizontal_m: f64,
    /// Mean posterior 2-km reflectivity RMSE over the cycled window, dBZ.
    pub posterior_rmse_dbz: f64,
    /// Mean prior RMSE (for the improvement ratio).
    pub prior_rmse_dbz: f64,
    /// Wall-clock per cycle, s.
    pub seconds_per_cycle: f64,
}

impl SweepPoint {
    /// Analysis improvement: prior minus posterior RMSE (positive = the
    /// filter helps).
    pub fn improvement(&self) -> f64 {
        self.prior_rmse_dbz - self.posterior_rmse_dbz
    }
}

/// Sweep specification.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Base OSSE configuration to perturb.
    pub base: OsseConfig,
    pub ensemble_sizes: Vec<usize>,
    pub localization_scales_m: Vec<f64>,
    /// Cycles per sweep point.
    pub cycles: usize,
    /// System spin-up before cycling, s (truth + jittered-member storms).
    pub spinup_s: f64,
}

impl SweepSpec {
    /// A quick laptop sweep.
    pub fn quick(seed: u64) -> Self {
        Self {
            base: OsseConfig::reduced(10, 8, 8, 2, seed),
            ensemble_sizes: vec![4, 8, 16],
            localization_scales_m: vec![1000.0, 2000.0, 4000.0],
            cycles: 2,
            spinup_s: 600.0,
        }
    }
}

/// Run the full cross-product sweep.
pub fn run_sweep(spec: &SweepSpec) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &k in &spec.ensemble_sizes {
        for &loc in &spec.localization_scales_m {
            let mut cfg = spec.base.clone();
            cfg.letkf.ensemble_size = k;
            cfg.letkf.loc_horizontal = loc;
            cfg.letkf.loc_vertical = loc;
            let mut osse = Osse::<f32>::new(cfg);
            if spec.spinup_s > 0.0 {
                osse.spinup_system(spec.spinup_s);
            }
            let t0 = Instant::now(); // bda-check: allow(wallclock) — wall-time telemetry column
            let outcomes = osse.run_cycles(spec.cycles);
            let wall = t0.elapsed().as_secs_f64();
            let mean = |f: &dyn Fn(&crate::osse::CycleOutcome) -> f64| -> f64 {
                outcomes.iter().map(f).sum::<f64>() / outcomes.len() as f64
            };
            out.push(SweepPoint {
                label: format!("k={k}, loc={:.0}m", loc),
                ensemble_size: k,
                loc_horizontal_m: loc,
                posterior_rmse_dbz: mean(&|o| o.posterior_rmse_dbz),
                prior_rmse_dbz: mean(&|o| o.prior_rmse_dbz),
                seconds_per_cycle: wall / spec.cycles as f64,
            });
        }
    }
    out
}

/// Render sweep results as a text table.
pub fn render_sweep(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}\n",
        "configuration", "prior RMSE", "post RMSE", "improvement", "s/cycle"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<22} {:>12.3} {:>12.3} {:>12.3} {:>10.2}\n",
            p.label,
            p.prior_rmse_dbz,
            p.posterior_rmse_dbz,
            p.improvement(),
            p.seconds_per_cycle
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_the_cross_product() {
        let mut spec = SweepSpec::quick(3);
        spec.ensemble_sizes = vec![4, 6];
        spec.localization_scales_m = vec![2000.0];
        spec.cycles = 1;
        spec.spinup_s = 0.0;
        let points = run_sweep(&spec);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].ensemble_size, 4);
        assert_eq!(points[1].ensemble_size, 6);
        for p in &points {
            assert!(p.seconds_per_cycle > 0.0);
            assert!(p.posterior_rmse_dbz.is_finite());
        }
    }

    #[test]
    fn bigger_ensembles_cost_more_time() {
        let mut spec = SweepSpec::quick(7);
        spec.ensemble_sizes = vec![2, 12];
        spec.localization_scales_m = vec![2000.0];
        spec.cycles = 1;
        spec.spinup_s = 0.0;
        let points = run_sweep(&spec);
        assert!(
            points[1].seconds_per_cycle > points[0].seconds_per_cycle,
            "k=12 ({:.3} s) not slower than k=2 ({:.3} s)",
            points[1].seconds_per_cycle,
            points[0].seconds_per_cycle
        );
    }

    #[test]
    fn render_lists_all_points() {
        let pts = vec![SweepPoint {
            label: "k=8, loc=2000m".into(),
            ensemble_size: 8,
            loc_horizontal_m: 2000.0,
            posterior_rmse_dbz: 3.2,
            prior_rmse_dbz: 4.0,
            seconds_per_cycle: 0.5,
        }];
        let t = render_sweep(&pts);
        assert!(t.contains("k=8, loc=2000m"));
        assert!(t.contains("0.800") || t.contains("0.8"));
    }
}
