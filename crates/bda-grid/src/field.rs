//! 3-D field storage with horizontal halos.

use bda_num::Real;
use rayon::prelude::*;

/// A scalar field on an `nx x ny x nz` grid with `halo` extra cells on each
/// horizontal side. Storage is `k`-fastest, so every vertical column —
/// including halo columns — is one contiguous `nz`-long slice.
#[derive(Clone, Debug, PartialEq)]
pub struct Field3<T> {
    nx: usize,
    ny: usize,
    nz: usize,
    halo: usize,
    data: Vec<T>,
}

impl<T: Real> Field3<T> {
    /// Zero-filled field.
    pub fn zeros(nx: usize, ny: usize, nz: usize, halo: usize) -> Self {
        let total = (nx + 2 * halo) * (ny + 2 * halo) * nz;
        Self {
            nx,
            ny,
            nz,
            halo,
            data: vec![T::zero(); total],
        }
    }

    /// Constant-filled field.
    pub fn constant(nx: usize, ny: usize, nz: usize, halo: usize, v: T) -> Self {
        let mut f = Self::zeros(nx, ny, nz, halo);
        f.data.fill(v);
        f
    }

    /// Build from a function of interior indices; halos are zero.
    pub fn from_fn(
        nx: usize,
        ny: usize,
        nz: usize,
        halo: usize,
        mut f: impl FnMut(usize, usize, usize) -> T,
    ) -> Self {
        let mut out = Self::zeros(nx, ny, nz, halo);
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let v = f(i, j, k);
                    out.set(i as isize, j as isize, k, v);
                }
            }
        }
        out
    }

    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }
    #[inline]
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Flat index for interior-or-halo coordinates. `i` and `j` may range in
    /// `-halo .. n + halo`.
    #[inline]
    pub fn idx(&self, i: isize, j: isize, k: usize) -> usize {
        debug_assert!(i >= -(self.halo as isize) && i < (self.nx + self.halo) as isize);
        debug_assert!(j >= -(self.halo as isize) && j < (self.ny + self.halo) as isize);
        debug_assert!(k < self.nz);
        let ih = (i + self.halo as isize) as usize;
        let jh = (j + self.halo as isize) as usize;
        (ih * (self.ny + 2 * self.halo) + jh) * self.nz + k
    }

    /// Read a value (interior or halo).
    #[inline]
    pub fn at(&self, i: isize, j: isize, k: usize) -> T {
        self.data[self.idx(i, j, k)]
    }

    /// Write a value (interior or halo).
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, k: usize, v: T) {
        let idx = self.idx(i, j, k);
        self.data[idx] = v;
    }

    /// Add to a value in place.
    #[inline]
    pub fn add_at(&mut self, i: isize, j: isize, k: usize, v: T) {
        let idx = self.idx(i, j, k);
        self.data[idx] += v;
    }

    /// Contiguous vertical column at (i, j), halo columns allowed.
    #[inline]
    pub fn column(&self, i: isize, j: isize) -> &[T] {
        let base = self.idx(i, j, 0);
        &self.data[base..base + self.nz]
    }

    /// Mutable contiguous vertical column at (i, j).
    #[inline]
    pub fn column_mut(&mut self, i: isize, j: isize) -> &mut [T] {
        let base = self.idx(i, j, 0);
        &mut self.data[base..base + self.nz]
    }

    /// Raw storage (including halos) — used by the I/O layer.
    pub fn raw(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw storage (including halos).
    pub fn raw_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Fill everything (halos included) with a constant.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// Copy interior and halos from another identically-shaped field.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.shape(), other.shape());
        self.data.copy_from_slice(&other.data);
    }

    /// `(nx, ny, nz, halo)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.nx, self.ny, self.nz, self.halo)
    }

    /// `self += alpha * other` over the full storage.
    pub fn axpy(&mut self, alpha: T, other: &Self) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = alpha.mul_add(b, *a);
        }
    }

    /// Multiply everything by a scalar.
    pub fn scale(&mut self, s: T) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Interior mean.
    pub fn interior_mean(&self) -> T {
        let mut sum = T::zero();
        for i in 0..self.nx {
            for j in 0..self.ny {
                let col = self.column(i as isize, j as isize);
                for &v in col {
                    sum += v;
                }
            }
        }
        sum / T::of_usize(self.nx * self.ny * self.nz)
    }

    /// Maximum absolute interior value.
    pub fn interior_max_abs(&self) -> T {
        let mut m = T::zero();
        for i in 0..self.nx {
            for j in 0..self.ny {
                for &v in self.column(i as isize, j as isize) {
                    m = m.max(v.abs());
                }
            }
        }
        m
    }

    /// One-pass combined finiteness + magnitude scan of the interior:
    /// `None` if any interior value is non-finite, otherwise the maximum
    /// absolute value. The member health scan runs this per variable every
    /// cycle, so it must stay a single sweep over the data.
    pub fn interior_finite_max_abs(&self) -> Option<T> {
        let mut m = T::zero();
        for i in 0..self.nx {
            for j in 0..self.ny {
                for &v in self.column(i as isize, j as isize) {
                    if !v.is_finite() {
                        return None;
                    }
                    m = m.max(v.abs());
                }
            }
        }
        Some(m)
    }

    /// Are all interior values finite? (Blow-up detector for the model.)
    pub fn interior_all_finite(&self) -> bool {
        for i in 0..self.nx {
            for j in 0..self.ny {
                for &v in self.column(i as isize, j as isize) {
                    if !v.is_finite() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Gather the interior into a flat `Vec` in (i, j, k) k-fastest order —
    /// the canonical state-vector layout used by the LETKF and the I/O layer.
    pub fn interior_to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.nx * self.ny * self.nz);
        for i in 0..self.nx {
            for j in 0..self.ny {
                out.extend_from_slice(self.column(i as isize, j as isize));
            }
        }
        out
    }

    /// Scatter a flat interior vector (layout of [`Self::interior_to_vec`])
    /// back into the field.
    pub fn interior_from_vec(&mut self, v: &[T]) {
        assert_eq!(v.len(), self.nx * self.ny * self.nz);
        let nz = self.nz;
        for i in 0..self.nx {
            for j in 0..self.ny {
                let src = &v[(i * self.ny + j) * nz..(i * self.ny + j + 1) * nz];
                self.column_mut(i as isize, j as isize).copy_from_slice(src);
            }
        }
    }

    /// Visit every interior column in parallel. The closure receives
    /// `(i, j, column)` — the shape of all column-physics loops.
    pub fn par_columns_mut(&mut self, f: impl Fn(usize, usize, &mut [T]) + Sync) {
        let nyh = self.ny + 2 * self.halo;
        let nz = self.nz;
        let halo = self.halo;
        let nx = self.nx;
        let ny = self.ny;
        self.data
            .par_chunks_mut(nz)
            .enumerate()
            .for_each(|(ci, col)| {
                let ih = ci / nyh;
                let jh = ci % nyh;
                if ih >= halo && ih < nx + halo && jh >= halo && jh < ny + halo {
                    f(ih - halo, jh - halo, col);
                }
            });
    }

    /// Horizontal slice at level `k` as a dense row-major (`i`-major)
    /// interior-only vector — used for map products (Figs. 1 and 6).
    pub fn level_slice(&self, k: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(self.nx * self.ny);
        for j in 0..self.ny {
            for i in 0..self.nx {
                out.push(self.at(i as isize, j as isize, k));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_contiguous_and_indexed_correctly() {
        let mut f = Field3::<f64>::zeros(3, 4, 5, 2);
        f.set(1, 2, 3, 42.0);
        assert_eq!(f.at(1, 2, 3), 42.0);
        assert_eq!(f.column(1, 2)[3], 42.0);
        f.column_mut(0, 0)[0] = 7.0;
        assert_eq!(f.at(0, 0, 0), 7.0);
    }

    #[test]
    fn halo_cells_are_addressable() {
        let mut f = Field3::<f32>::zeros(4, 4, 3, 2);
        f.set(-2, -2, 0, 1.5);
        f.set(5, 5, 2, 2.5);
        assert_eq!(f.at(-2, -2, 0), 1.5);
        assert_eq!(f.at(5, 5, 2), 2.5);
    }

    #[test]
    fn from_fn_fills_interior_only() {
        let f = Field3::<f64>::from_fn(2, 2, 2, 1, |i, j, k| (i * 100 + j * 10 + k) as f64);
        assert_eq!(f.at(1, 1, 1), 111.0);
        assert_eq!(f.at(-1, 0, 0), 0.0);
    }

    #[test]
    fn interior_roundtrip_through_vec() {
        let f = Field3::<f64>::from_fn(3, 4, 5, 1, |i, j, k| (i + 10 * j + 100 * k) as f64);
        let v = f.interior_to_vec();
        assert_eq!(v.len(), 60);
        let mut g = Field3::<f64>::zeros(3, 4, 5, 1);
        g.interior_from_vec(&v);
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    assert_eq!(
                        g.at(i as isize, j as isize, k),
                        f.at(i as isize, j as isize, k)
                    );
                }
            }
        }
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Field3::<f64>::constant(2, 2, 2, 1, 1.0);
        let b = Field3::<f64>::constant(2, 2, 2, 1, 2.0);
        a.axpy(3.0, &b);
        assert_eq!(a.at(0, 0, 0), 7.0);
        a.scale(0.5);
        assert_eq!(a.at(1, 1, 1), 3.5);
    }

    #[test]
    fn interior_statistics() {
        let f = Field3::<f64>::from_fn(2, 2, 1, 3, |i, j, _| (i + j) as f64);
        // values: 0,1,1,2 -> mean 1.0, max abs 2.0
        assert!((f.interior_mean() - 1.0).abs() < 1e-12);
        assert_eq!(f.interior_max_abs(), 2.0);
        assert!(f.interior_all_finite());
    }

    #[test]
    fn detects_nonfinite() {
        let mut f = Field3::<f32>::zeros(2, 2, 2, 0);
        f.set(1, 1, 1, f32::NAN);
        assert!(!f.interior_all_finite());
    }

    #[test]
    fn par_columns_visit_exactly_interior() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut f = Field3::<f64>::zeros(5, 7, 3, 2);
        let count = AtomicUsize::new(0);
        f.par_columns_mut(|i, j, col| {
            assert!(i < 5 && j < 7);
            assert_eq!(col.len(), 3);
            col[0] = (i + j) as f64;
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 35);
        assert_eq!(f.at(4, 6, 0), 10.0);
    }

    #[test]
    fn level_slice_is_row_major_j_outer() {
        let f = Field3::<f64>::from_fn(2, 3, 2, 1, |i, j, k| (i + 10 * j + 100 * k) as f64);
        let s = f.level_slice(1);
        // j-major rows: (i=0..2, j fixed), j=0 first.
        assert_eq!(s, vec![100.0, 101.0, 110.0, 111.0, 120.0, 121.0]);
    }

    #[test]
    fn copy_from_matches() {
        let a = Field3::<f64>::from_fn(2, 2, 2, 1, |i, _, _| i as f64);
        let mut b = Field3::<f64>::zeros(2, 2, 2, 1);
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn copy_from_rejects_shape_mismatch() {
        let a = Field3::<f64>::zeros(2, 2, 2, 1);
        let mut b = Field3::<f64>::zeros(2, 2, 3, 1);
        b.copy_from(&a);
    }
}
