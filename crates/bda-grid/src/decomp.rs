//! 2-D horizontal tile decomposition.
//!
//! The paper runs SCALE-LETKF over thousands of Fugaku nodes with a 2-D
//! horizontal domain decomposition; inside one address space the same
//! structure drives Rayon work partitioning and lets the workflow performance
//! model reason about per-node tile sizes.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One rectangular tile of the horizontal domain: `i0 <= i < i1`,
/// `j0 <= j < j1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    pub i0: usize,
    pub i1: usize,
    pub j0: usize,
    pub j1: usize,
}

impl Tile {
    pub fn cells(&self) -> usize {
        (self.i1 - self.i0) * (self.j1 - self.j0)
    }

    pub fn contains(&self, i: usize, j: usize) -> bool {
        i >= self.i0 && i < self.i1 && j >= self.j0 && j < self.j1
    }

    /// Iterate the (i, j) pairs of this tile.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.i0..self.i1).flat_map(move |i| (self.j0..self.j1).map(move |j| (i, j)))
    }
}

/// A decomposition of an `nx x ny` horizontal domain into `px x py` tiles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TileDecomp {
    pub nx: usize,
    pub ny: usize,
    pub px: usize,
    pub py: usize,
    tiles: Vec<Tile>,
}

impl TileDecomp {
    /// Split as evenly as possible; earlier tiles get the remainder cells,
    /// matching the MPI decomposition convention.
    pub fn new(nx: usize, ny: usize, px: usize, py: usize) -> Self {
        assert!(px > 0 && py > 0 && px <= nx && py <= ny);
        let cuts = |n: usize, p: usize| -> Vec<usize> {
            let base = n / p;
            let rem = n % p;
            let mut edges = Vec::with_capacity(p + 1);
            let mut acc = 0;
            edges.push(0);
            for r in 0..p {
                acc += base + usize::from(r < rem);
                edges.push(acc);
            }
            edges
        };
        let xe = cuts(nx, px);
        let ye = cuts(ny, py);
        let mut tiles = Vec::with_capacity(px * py);
        for a in 0..px {
            for b in 0..py {
                tiles.push(Tile {
                    i0: xe[a],
                    i1: xe[a + 1],
                    j0: ye[b],
                    j1: ye[b + 1],
                });
            }
        }
        Self {
            nx,
            ny,
            px,
            py,
            tiles,
        }
    }

    /// Square-ish decomposition into roughly `n` tiles (for "one tile per
    /// worker" setups).
    pub fn roughly(nx: usize, ny: usize, n: usize) -> Self {
        let n = n.max(1).min(nx * ny);
        let mut best = (1, n);
        let mut best_score = usize::MAX;
        for px in 1..=n {
            if !n.is_multiple_of(px) {
                continue;
            }
            let py = n / px;
            if px > nx || py > ny {
                continue;
            }
            // Prefer aspect ratios matching the domain.
            let score = (px * ny).abs_diff(py * nx);
            if score < best_score {
                best_score = score;
                best = (px, py);
            }
        }
        Self::new(nx, ny, best.0, best.1)
    }

    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    pub fn ntiles(&self) -> usize {
        self.tiles.len()
    }

    /// Which tile owns cell (i, j)? `None` if the cell lies outside the
    /// decomposed domain.
    pub fn owner(&self, i: usize, j: usize) -> Option<usize> {
        self.tiles.iter().position(|t| t.contains(i, j))
    }

    /// Run a closure over every tile in parallel, collecting the results in
    /// tile order.
    pub fn par_map<R: Send>(&self, f: impl Fn(usize, &Tile) -> R + Sync) -> Vec<R> {
        self.tiles
            .par_iter()
            .enumerate()
            .map(|(idx, t)| f(idx, t))
            .collect()
    }

    /// Largest tile size in cells — the load-balance figure the node
    /// allocation model uses.
    pub fn max_tile_cells(&self) -> usize {
        self.tiles.iter().map(Tile::cells).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_partition_domain_exactly() {
        let d = TileDecomp::new(10, 7, 3, 2);
        let total: usize = d.tiles().iter().map(Tile::cells).sum();
        assert_eq!(total, 70);
        // Every cell owned exactly once.
        for i in 0..10 {
            for j in 0..7 {
                let owners = d.tiles().iter().filter(|t| t.contains(i, j)).count();
                assert_eq!(owners, 1, "cell ({i},{j}) owned {owners} times");
            }
        }
    }

    #[test]
    fn uneven_split_puts_remainder_first() {
        let d = TileDecomp::new(10, 10, 3, 1);
        let widths: Vec<usize> = d.tiles().iter().map(|t| t.i1 - t.i0).collect();
        assert_eq!(widths, vec![4, 3, 3]);
    }

    #[test]
    fn owner_is_consistent_with_contains() {
        let d = TileDecomp::new(8, 8, 2, 2);
        assert!(d.tiles()[d.owner(0, 0).unwrap()].contains(0, 0));
        assert!(d.tiles()[d.owner(7, 7).unwrap()].contains(7, 7));
    }

    #[test]
    fn par_map_preserves_tile_order() {
        let d = TileDecomp::new(16, 16, 4, 4);
        let ids = d.par_map(|idx, _| idx);
        assert_eq!(ids, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn roughly_produces_requested_count_when_divisible() {
        let d = TileDecomp::roughly(64, 64, 16);
        assert_eq!(d.ntiles(), 16);
        assert_eq!(d.px, 4);
        assert_eq!(d.py, 4);
    }

    #[test]
    fn tile_iter_covers_cells() {
        let t = Tile {
            i0: 1,
            i1: 3,
            j0: 0,
            j1: 2,
        };
        let cells: Vec<_> = t.iter().collect();
        assert_eq!(cells, vec![(1, 0), (1, 1), (2, 0), (2, 1)]);
        assert_eq!(t.cells(), 4);
    }

    #[test]
    fn max_tile_cells_reflects_imbalance() {
        let d = TileDecomp::new(10, 1, 3, 1);
        assert_eq!(d.max_tile_cells(), 4);
    }
}
