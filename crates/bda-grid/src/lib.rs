//! # bda-grid — grids, fields and domain decomposition
//!
//! The spatial substrate shared by the SCALE-RM analogue model, the radar
//! simulator and the LETKF:
//!
//! * [`GridSpec`] — a regular limited-area grid with uniform horizontal
//!   spacing and a (possibly stretched) vertical coordinate, matching the
//!   paper's inner domain (128 km x 128 km x 16.4 km, 500 m / 60 levels) and
//!   outer domain (1.5 km spacing).
//! * [`Field3`] — contiguous 3-D scalar storage with horizontal halo cells,
//!   `k`-fastest ordering so each vertical column is a contiguous slice (the
//!   HEVI implicit solver and the column physics both work column-wise).
//! * [`halo`] — halo filling policies (periodic for idealized tests, edge
//!   replication for the nested regional configuration).
//! * [`decomp`] — 2-D tile decomposition used to drive Rayon parallelism the
//!   way the paper distributes horizontal tiles over Fugaku nodes.
//! * [`boundary`] — Davies relaxation weights for one-way nesting.
//!
//! ## Staggering convention (Arakawa C)
//!
//! All fields are stored with identical dimensions; the interpretation is
//! staggered: `u(i,j,k)` lives on the x-face between cells `i-1` and `i`,
//! `v(i,j,k)` on the y-face between `j-1` and `j`, `w(i,j,k)` on the z-face
//! between levels `k-1` and `k` (so `w(_, _, 0)` is the surface face), and
//! all scalars at cell centers.

pub mod boundary;
pub mod decomp;
pub mod field;
pub mod halo;
pub mod spec;

pub use boundary::DaviesWeights;
pub use decomp::TileDecomp;
pub use field::Field3;
pub use spec::{GridSpec, VerticalCoord};
