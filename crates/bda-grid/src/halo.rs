//! Halo filling policies.
//!
//! The production system exchanges halos over the Tofu-D interconnect between
//! Fugaku nodes; within one address space the exchange degenerates to copies,
//! but the *policies* still matter: doubly-periodic for idealized dynamics
//! tests, edge replication (zero-gradient) for the nested regional domains
//! whose true boundary values come from the Davies relaxation layer.

use crate::field::Field3;
use bda_num::Real;

/// Fill halos as if the domain were doubly periodic in x and y.
pub fn fill_periodic<T: Real>(f: &mut Field3<T>) {
    let (nx, ny, nz, h) = f.shape();
    let hi = h as isize;
    let nxi = nx as isize;
    let nyi = ny as isize;
    // x halos (including corner strips later via the y pass reading x halos).
    for g in 1..=hi {
        for j in 0..nyi {
            for k in 0..nz {
                let west = f.at(nxi - g, j, k);
                f.set(-g, j, k, west);
                let east = f.at(g - 1, j, k);
                f.set(nxi + g - 1, j, k, east);
            }
        }
    }
    // y halos, reading the already-filled x halos so corners are correct.
    for g in 1..=hi {
        for i in -hi..(nxi + hi) {
            for k in 0..nz {
                let south = f.at(i, nyi - g, k);
                f.set(i, -g, k, south);
                let north = f.at(i, g - 1, k);
                f.set(i, nyi + g - 1, k, north);
            }
        }
    }
}

/// Fill halos by replicating the nearest interior edge value (zero-gradient).
pub fn fill_clamp<T: Real>(f: &mut Field3<T>) {
    let (nx, ny, nz, h) = f.shape();
    let hi = h as isize;
    let nxi = nx as isize;
    let nyi = ny as isize;
    for g in 1..=hi {
        for j in 0..nyi {
            for k in 0..nz {
                let west = f.at(0, j, k);
                f.set(-g, j, k, west);
                let east = f.at(nxi - 1, j, k);
                f.set(nxi + g - 1, j, k, east);
            }
        }
    }
    for g in 1..=hi {
        for i in -hi..(nxi + hi) {
            for k in 0..nz {
                let south = f.at(i, 0, k);
                f.set(i, -g, k, south);
                let north = f.at(i, nyi - 1, k);
                f.set(i, nyi + g - 1, k, north);
            }
        }
    }
}

/// Halo policy selector carried in model configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HaloPolicy {
    /// Doubly periodic (idealized squall-line / convection tests).
    Periodic,
    /// Zero-gradient replication (nested regional run; Davies layer supplies
    /// the real boundary forcing).
    Clamp,
}

impl HaloPolicy {
    pub fn fill<T: Real>(self, f: &mut Field3<T>) {
        match self {
            HaloPolicy::Periodic => fill_periodic(f),
            HaloPolicy::Clamp => fill_clamp(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(nx: usize, ny: usize) -> Field3<f64> {
        Field3::from_fn(nx, ny, 2, 2, |i, j, k| (100 * i + 10 * j + k) as f64)
    }

    #[test]
    fn periodic_wraps_x_and_y() {
        let mut f = ramp(4, 4);
        fill_periodic(&mut f);
        // West halo = east interior.
        assert_eq!(f.at(-1, 0, 0), f.at(3, 0, 0));
        assert_eq!(f.at(-2, 2, 1), f.at(2, 2, 1));
        // East halo = west interior.
        assert_eq!(f.at(4, 1, 0), f.at(0, 1, 0));
        // South halo = north interior.
        assert_eq!(f.at(1, -1, 1), f.at(1, 3, 1));
        // Corner: halo (-1,-1) should equal interior (3,3).
        assert_eq!(f.at(-1, -1, 0), f.at(3, 3, 0));
    }

    #[test]
    fn clamp_replicates_edges() {
        let mut f = ramp(4, 4);
        fill_clamp(&mut f);
        assert_eq!(f.at(-1, 2, 0), f.at(0, 2, 0));
        assert_eq!(f.at(-2, 2, 0), f.at(0, 2, 0));
        assert_eq!(f.at(5, 1, 1), f.at(3, 1, 1));
        assert_eq!(f.at(2, -2, 0), f.at(2, 0, 0));
        // Corner clamps to the nearest interior corner.
        assert_eq!(f.at(-1, -1, 0), f.at(0, 0, 0));
        assert_eq!(f.at(5, 5, 1), f.at(3, 3, 1));
    }

    #[test]
    fn policy_dispatch() {
        let mut a = ramp(3, 3);
        let mut b = ramp(3, 3);
        HaloPolicy::Periodic.fill(&mut a);
        fill_periodic(&mut b);
        assert_eq!(a, b);
        let mut c = ramp(3, 3);
        let mut d = ramp(3, 3);
        HaloPolicy::Clamp.fill(&mut c);
        fill_clamp(&mut d);
        assert_eq!(c, d);
    }

    #[test]
    fn periodic_preserves_interior() {
        let orig = ramp(5, 3);
        let mut f = orig.clone();
        fill_periodic(&mut f);
        for i in 0..5 {
            for j in 0..3 {
                for k in 0..2 {
                    assert_eq!(
                        f.at(i as isize, j as isize, k),
                        orig.at(i as isize, j as isize, k)
                    );
                }
            }
        }
    }
}
