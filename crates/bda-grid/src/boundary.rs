//! Davies relaxation boundary for one-way nesting.
//!
//! The inner 500-m domain receives its lateral boundary condition from the
//! outer 1.5-km ensemble forecast (Fig. 3b). As in SCALE-RM, the coupling is
//! a Davies (1976) relaxation layer: in a rim of `width` cells the prognostic
//! fields are nudged toward the driving data with a weight that decays
//! smoothly from 1 at the boundary to 0 at the inner edge of the rim.

use crate::field::Field3;
use bda_num::Real;
use serde::{Deserialize, Serialize};

/// Precomputed relaxation weights for an `nx x ny` horizontal domain.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DaviesWeights {
    nx: usize,
    ny: usize,
    width: usize,
    /// Row-major (i-major) weight per horizontal cell, in [0, 1].
    w: Vec<f64>,
}

impl DaviesWeights {
    /// Cosine-ramp weights over a rim of `width` cells.
    pub fn new(nx: usize, ny: usize, width: usize) -> Self {
        assert!(
            width * 2 <= nx && width * 2 <= ny,
            "rim too wide for domain"
        );
        let mut w = vec![0.0; nx * ny];
        for i in 0..nx {
            for j in 0..ny {
                let d = distance_to_boundary(i, j, nx, ny);
                w[i * ny + j] = rim_weight(d, width);
            }
        }
        Self { nx, ny, width, w }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    /// Weight at cell (i, j).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.w[i * self.ny + j]
    }

    /// Relax `field` toward `target` with per-step strength `alpha_dt`
    /// (typically `dt / tau`): `x += w * alpha_dt * (target - x)`.
    pub fn relax<T: Real>(&self, field: &mut Field3<T>, target: &Field3<T>, alpha_dt: T) {
        let (nx, ny, nz, _) = field.shape();
        assert_eq!((nx, ny), (self.nx, self.ny));
        assert_eq!(field.shape(), target.shape());
        for i in 0..nx {
            for j in 0..ny {
                let w = T::of(self.at(i, j));
                if w == T::zero() {
                    continue;
                }
                let c = w * alpha_dt;
                for k in 0..nz {
                    let x = field.at(i as isize, j as isize, k);
                    let t = target.at(i as isize, j as isize, k);
                    field.set(i as isize, j as isize, k, x + c * (t - x));
                }
            }
        }
    }

    /// Relax toward a single vertical profile (used when the driving data is
    /// horizontally homogeneous, e.g. the synthetic large-scale forcing).
    pub fn relax_to_profile<T: Real>(&self, field: &mut Field3<T>, profile: &[T], alpha_dt: T) {
        let (nx, ny, nz, _) = field.shape();
        assert_eq!((nx, ny), (self.nx, self.ny));
        assert_eq!(profile.len(), nz);
        for i in 0..nx {
            for j in 0..ny {
                let w = T::of(self.at(i, j));
                if w == T::zero() {
                    continue;
                }
                let c = w * alpha_dt;
                let col = field.column_mut(i as isize, j as isize);
                for (k, x) in col.iter_mut().enumerate() {
                    *x += c * (profile[k] - *x);
                }
            }
        }
    }
}

/// Distance in cells from (i, j) to the nearest lateral boundary.
fn distance_to_boundary(i: usize, j: usize, nx: usize, ny: usize) -> usize {
    i.min(nx - 1 - i).min(j).min(ny - 1 - j)
}

/// Cosine ramp: 1 at the boundary (d = 0), 0 for d >= width.
fn rim_weight(d: usize, width: usize) -> f64 {
    if width == 0 || d >= width {
        return 0.0;
    }
    let t = d as f64 / width as f64;
    0.5 * (1.0 + (std::f64::consts::PI * t).cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_one_at_edge_zero_inside() {
        let w = DaviesWeights::new(20, 20, 5);
        assert!((w.at(0, 10) - 1.0).abs() < 1e-12);
        assert!((w.at(10, 0) - 1.0).abs() < 1e-12);
        assert_eq!(w.at(10, 10), 0.0);
        assert_eq!(w.at(5, 10), 0.0); // exactly at rim edge
    }

    #[test]
    fn weights_decay_monotonically_inward() {
        let w = DaviesWeights::new(30, 30, 8);
        for d in 1..8 {
            assert!(
                w.at(d, 15) < w.at(d - 1, 15),
                "weight not decaying at d={d}"
            );
        }
    }

    #[test]
    fn corner_uses_nearest_boundary() {
        let w = DaviesWeights::new(20, 20, 5);
        assert_eq!(w.at(2, 10), w.at(10, 2));
        assert_eq!(w.at(2, 2), w.at(2, 10)); // corner distance = min(2,2) = 2
    }

    #[test]
    fn relax_moves_rim_toward_target_only() {
        let w = DaviesWeights::new(12, 12, 3);
        let mut f = Field3::<f64>::constant(12, 12, 4, 1, 0.0);
        let target = Field3::<f64>::constant(12, 12, 4, 1, 10.0);
        w.relax(&mut f, &target, 0.5);
        // Boundary cell fully weighted: moved by 0.5 * 10.
        assert!((f.at(0, 6, 0) - 5.0).abs() < 1e-12);
        // Interior untouched.
        assert_eq!(f.at(6, 6, 0), 0.0);
    }

    #[test]
    fn full_strength_relaxation_pins_boundary() {
        let w = DaviesWeights::new(10, 10, 2);
        let mut f = Field3::<f64>::constant(10, 10, 2, 0, 1.0);
        let target = Field3::<f64>::constant(10, 10, 2, 0, -3.0);
        w.relax(&mut f, &target, 1.0);
        assert!((f.at(0, 5, 0) - (-3.0)).abs() < 1e-12);
    }

    #[test]
    fn relax_to_profile_matches_relax_for_uniform_target() {
        let w = DaviesWeights::new(8, 8, 2);
        let mut a = Field3::<f64>::constant(8, 8, 3, 0, 2.0);
        let mut b = a.clone();
        let target = Field3::<f64>::constant(8, 8, 3, 0, 6.0);
        w.relax(&mut a, &target, 0.25);
        w.relax_to_profile(&mut b, &[6.0, 6.0, 6.0], 0.25);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn rim_wider_than_half_domain_rejected() {
        let _ = DaviesWeights::new(8, 8, 5);
    }
}
