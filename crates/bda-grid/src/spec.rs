//! Grid geometry specification.

use serde::{Deserialize, Serialize};

/// Vertical coordinate: cell-center heights and layer thicknesses.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VerticalCoord {
    /// Height of cell centers (m), length `nz`.
    pub z_center: Vec<f64>,
    /// Height of cell faces (m), length `nz + 1`; `z_face[0]` is the surface.
    pub z_face: Vec<f64>,
}

impl VerticalCoord {
    /// Uniform spacing up to `z_top`.
    pub fn uniform(nz: usize, z_top: f64) -> Self {
        assert!(nz > 0 && z_top > 0.0);
        let dz = z_top / nz as f64;
        let z_face: Vec<f64> = (0..=nz).map(|k| k as f64 * dz).collect();
        let z_center: Vec<f64> = (0..nz).map(|k| (k as f64 + 0.5) * dz).collect();
        Self { z_center, z_face }
    }

    /// Stretched spacing: thin layers near the surface growing geometrically
    /// by `ratio` per layer until `z_top` — the usual NWP arrangement (the
    /// paper's 60 levels over 16.4 km are bottom-refined).
    pub fn stretched(nz: usize, z_top: f64, ratio: f64) -> Self {
        assert!(nz > 0 && z_top > 0.0 && ratio >= 1.0);
        // First thickness chosen so the geometric sum reaches exactly z_top.
        let sum_ratio: f64 = if (ratio - 1.0).abs() < 1e-12 {
            nz as f64
        } else {
            (ratio.powi(nz as i32) - 1.0) / (ratio - 1.0)
        };
        let dz0 = z_top / sum_ratio;
        let mut z_face = Vec::with_capacity(nz + 1);
        z_face.push(0.0);
        let mut dz = dz0;
        let mut prev = 0.0;
        for _ in 0..nz {
            prev += dz;
            z_face.push(prev);
            dz *= ratio;
        }
        // Snap the top face to exactly z_top against rounding drift.
        if let Some(top) = z_face.last_mut() {
            *top = z_top;
        }
        let z_center = (0..nz).map(|k| 0.5 * (z_face[k] + z_face[k + 1])).collect();
        Self { z_center, z_face }
    }

    pub fn nz(&self) -> usize {
        self.z_center.len()
    }

    /// Layer thickness at level `k`.
    pub fn dz(&self, k: usize) -> f64 {
        self.z_face[k + 1] - self.z_face[k]
    }

    pub fn z_top(&self) -> f64 {
        self.z_face.last().copied().unwrap_or(0.0)
    }

    /// Index of the level whose center is closest to height `z` (m).
    pub fn level_of(&self, z: f64) -> usize {
        let mut best = 0;
        let mut bd = f64::INFINITY;
        for (k, &zc) in self.z_center.iter().enumerate() {
            let d = (zc - z).abs();
            if d < bd {
                bd = d;
                best = k;
            }
        }
        best
    }
}

/// A regular limited-area grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    pub nx: usize,
    pub ny: usize,
    /// Horizontal grid spacing (m); dx = dy as in the paper's domains.
    pub dx: f64,
    pub vertical: VerticalCoord,
}

impl GridSpec {
    pub fn new(nx: usize, ny: usize, dx: f64, vertical: VerticalCoord) -> Self {
        assert!(nx > 0 && ny > 0 && dx > 0.0);
        Self {
            nx,
            ny,
            dx,
            vertical,
        }
    }

    /// The paper's inner BDA2021 domain: 256 x 256 x 60 at 500 m over
    /// 128 km x 128 km x 16.4 km (Table 3).
    pub fn inner_bda2021() -> Self {
        Self::new(
            256,
            256,
            500.0,
            VerticalCoord::stretched(60, 16_400.0, 1.04),
        )
    }

    /// The paper's outer domain at 1.5 km grid spacing (Fig. 3b). The paper
    /// does not print the outer extents; we size it to comfortably contain
    /// the inner domain with nesting margin.
    pub fn outer_bda2021() -> Self {
        Self::new(
            192,
            192,
            1500.0,
            VerticalCoord::stretched(60, 16_400.0, 1.04),
        )
    }

    /// A reduced grid preserving aspect ratios, for tests and live examples.
    pub fn reduced(nx: usize, ny: usize, nz: usize) -> Self {
        Self::new(nx, ny, 500.0, VerticalCoord::stretched(nz, 16_400.0, 1.08))
    }

    pub fn nz(&self) -> usize {
        self.vertical.nz()
    }

    pub fn ncells(&self) -> usize {
        self.nx * self.ny * self.nz()
    }

    /// Physical x-coordinate of cell center `i` (m).
    pub fn x_center(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.dx
    }

    /// Physical y-coordinate of cell center `j` (m).
    pub fn y_center(&self, j: usize) -> f64 {
        (j as f64 + 0.5) * self.dx
    }

    /// Domain extent in x (m).
    pub fn lx(&self) -> f64 {
        self.nx as f64 * self.dx
    }

    /// Domain extent in y (m).
    pub fn ly(&self) -> f64 {
        self.ny as f64 * self.dx
    }

    /// Cell index containing physical point (x, y), if inside the domain.
    pub fn cell_of(&self, x: f64, y: f64) -> Option<(usize, usize)> {
        if x < 0.0 || y < 0.0 {
            return None;
        }
        let i = (x / self.dx) as usize;
        let j = (y / self.dx) as usize;
        if i < self.nx && j < self.ny {
            Some((i, j))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_vertical_has_constant_dz() {
        let v = VerticalCoord::uniform(10, 1000.0);
        assert_eq!(v.nz(), 10);
        for k in 0..10 {
            assert!((v.dz(k) - 100.0).abs() < 1e-9);
        }
        assert_eq!(v.z_top(), 1000.0);
        assert!((v.z_center[0] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn stretched_vertical_grows_and_hits_top() {
        let v = VerticalCoord::stretched(60, 16_400.0, 1.04);
        assert_eq!(v.nz(), 60);
        assert!((v.z_top() - 16_400.0).abs() < 1e-6);
        // Monotone growth of layer thickness.
        for k in 1..59 {
            assert!(v.dz(k) >= v.dz(k - 1) - 1e-9, "dz shrank at {k}");
        }
        // Bottom layer much thinner than the uniform average.
        assert!(v.dz(0) < 16_400.0 / 60.0);
    }

    #[test]
    fn stretched_with_ratio_one_is_uniform() {
        let a = VerticalCoord::stretched(8, 800.0, 1.0);
        let b = VerticalCoord::uniform(8, 800.0);
        for k in 0..8 {
            assert!((a.dz(k) - b.dz(k)).abs() < 1e-9);
        }
    }

    #[test]
    fn level_of_picks_nearest_center() {
        let v = VerticalCoord::uniform(4, 400.0); // centers 50,150,250,350
        assert_eq!(v.level_of(0.0), 0);
        assert_eq!(v.level_of(160.0), 1);
        assert_eq!(v.level_of(1e9), 3);
    }

    #[test]
    fn inner_bda2021_matches_table3() {
        let g = GridSpec::inner_bda2021();
        assert_eq!((g.nx, g.ny, g.nz()), (256, 256, 60));
        assert_eq!(g.dx, 500.0);
        assert!((g.lx() - 128_000.0).abs() < 1e-6);
        assert!((g.ly() - 128_000.0).abs() < 1e-6);
        assert!((g.vertical.z_top() - 16_400.0).abs() < 1e-6);
    }

    #[test]
    fn cell_of_boundaries() {
        let g = GridSpec::reduced(10, 10, 4);
        assert_eq!(g.cell_of(0.0, 0.0), Some((0, 0)));
        assert_eq!(g.cell_of(4999.0, 250.0), Some((9, 0)));
        assert_eq!(g.cell_of(5000.0, 0.0), None);
        assert_eq!(g.cell_of(-1.0, 0.0), None);
    }

    #[test]
    fn centers_are_offset_half_cell() {
        let g = GridSpec::reduced(4, 4, 2);
        assert!((g.x_center(0) - 250.0).abs() < 1e-9);
        assert!((g.y_center(3) - 1750.0).abs() < 1e-9);
    }
}
