//! Property-based invariants of the grid substrate.

use bda_grid::halo::{fill_clamp, fill_periodic};
use bda_grid::{DaviesWeights, Field3, GridSpec, TileDecomp, VerticalCoord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interior set/get roundtrip for arbitrary in-range indices.
    #[test]
    fn field_set_get_roundtrip(
        nx in 1usize..12,
        ny in 1usize..12,
        nz in 1usize..8,
        halo in 0usize..3,
        v in -1e6f64..1e6,
    ) {
        let mut f = Field3::<f64>::zeros(nx, ny, nz, halo);
        let (i, j, k) = (nx / 2, ny / 2, nz / 2);
        f.set(i as isize, j as isize, k, v);
        prop_assert_eq!(f.at(i as isize, j as isize, k), v);
        // Every other interior cell untouched.
        for ii in 0..nx {
            for jj in 0..ny {
                for kk in 0..nz {
                    if (ii, jj, kk) != (i, j, k) {
                        prop_assert_eq!(f.at(ii as isize, jj as isize, kk), 0.0);
                    }
                }
            }
        }
    }

    /// interior_to_vec / interior_from_vec is a bijection.
    #[test]
    fn interior_vec_roundtrip(
        nx in 1usize..8,
        ny in 1usize..8,
        nz in 1usize..6,
        halo in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = bda_num::SplitMix64::new(seed);
        let f = Field3::<f32>::from_fn(nx, ny, nz, halo, |_, _, _| rng.gaussian(0.0f32, 5.0));
        let v = f.interior_to_vec();
        prop_assert_eq!(v.len(), nx * ny * nz);
        let mut g = Field3::<f32>::zeros(nx, ny, nz, halo);
        g.interior_from_vec(&v);
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    prop_assert_eq!(
                        g.at(i as isize, j as isize, k),
                        f.at(i as isize, j as isize, k)
                    );
                }
            }
        }
    }

    /// Halo filling is idempotent and preserves the interior.
    #[test]
    fn halo_fill_idempotent(
        nx in 2usize..10,
        ny in 2usize..10,
        periodic in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rng = bda_num::SplitMix64::new(seed);
        let mut f = Field3::<f64>::from_fn(nx, ny, 3, 2, |_, _, _| rng.gaussian(0.0, 1.0));
        let interior = f.interior_to_vec();
        let fill = |f: &mut Field3<f64>| if periodic { fill_periodic(f) } else { fill_clamp(f) };
        fill(&mut f);
        let once = f.clone();
        fill(&mut f);
        prop_assert_eq!(&f, &once, "halo fill not idempotent");
        prop_assert_eq!(f.interior_to_vec(), interior, "interior changed");
    }

    /// Davies weights are in [0, 1], 1 on the boundary ring, 0 deep inside.
    #[test]
    fn davies_weights_bounded(
        n in 8usize..30,
        width_frac in 1usize..4,
    ) {
        let width = (n / 2 / width_frac).max(1).min(n / 2);
        let w = DaviesWeights::new(n, n, width);
        for i in 0..n {
            for j in 0..n {
                let v = w.at(i, j);
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        prop_assert!((w.at(0, n / 2) - 1.0).abs() < 1e-12);
        if n / 2 > width {
            prop_assert_eq!(w.at(n / 2, n / 2), 0.0);
        }
    }

    /// Tile decompositions partition the domain exactly.
    #[test]
    fn tiles_partition(
        nx in 1usize..20,
        ny in 1usize..20,
        px in 1usize..5,
        py in 1usize..5,
    ) {
        prop_assume!(px <= nx && py <= ny);
        let d = TileDecomp::new(nx, ny, px, py);
        let total: usize = d.tiles().iter().map(|t| t.cells()).sum();
        prop_assert_eq!(total, nx * ny);
        // Spot-check ownership uniqueness on a few cells.
        for (i, j) in [(0, 0), (nx - 1, ny - 1), (nx / 2, ny / 2)] {
            let owners = d.tiles().iter().filter(|t| t.contains(i, j)).count();
            prop_assert_eq!(owners, 1);
        }
    }

    /// Stretched vertical coordinates always hit the requested top with
    /// positive, monotone thicknesses.
    #[test]
    fn vertical_coordinate_sane(
        nz in 2usize..80,
        z_top in 1000.0f64..20_000.0,
        ratio in 1.0f64..1.15,
    ) {
        let vc = VerticalCoord::stretched(nz, z_top, ratio);
        prop_assert!((vc.z_top() - z_top).abs() < 1e-6 * z_top);
        for k in 0..nz {
            prop_assert!(vc.dz(k) > 0.0);
            prop_assert!(vc.z_center[k] > vc.z_face[k]);
            prop_assert!(vc.z_center[k] < vc.z_face[k + 1]);
        }
        let g = GridSpec::new(4, 4, 500.0, vc);
        prop_assert_eq!(g.ncells(), 16 * nz);
    }
}
