//! Property-based invariants of the radar geometry and codec.

use bda_letkf::{ObsKind, Observation};
use bda_pawr::codec::{decode_volume_salvage, ValueBounds};
use bda_pawr::fuzz::VolumeMutator;
use bda_pawr::geometry::{beam_to, visibility, Invisibility};
use bda_pawr::reflectivity::{fall_speed, to_dbz, z_rain, z_total};
use bda_pawr::scan::ScanResult;
use bda_pawr::{decode_volume, encode_volume, RadarConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Beam direction is always a unit vector; range/azimuth/elevation are
    /// consistent with the Cartesian offset.
    #[test]
    fn beam_geometry_consistent(
        dx in -50_000.0f64..50_000.0,
        dy in -50_000.0f64..50_000.0,
        dz in 10.0f64..15_000.0,
    ) {
        let cfg = RadarConfig::mp_pawr_bda2021();
        let b = beam_to(&cfg, cfg.x + dx, cfg.y + dy, cfg.z + dz);
        let norm = (b.dir.0 * b.dir.0 + b.dir.1 * b.dir.1 + b.dir.2 * b.dir.2).sqrt();
        prop_assert!((norm - 1.0).abs() < 1e-9);
        let range = (dx * dx + dy * dy + dz * dz).sqrt();
        prop_assert!((b.range - range).abs() < 1e-6 * range.max(1.0));
        prop_assert!((0.0..360.0).contains(&b.azimuth_deg));
        prop_assert!((-90.0..=90.0).contains(&b.elevation_deg));
        // Elevation positive for targets above the antenna.
        prop_assert!(b.elevation_deg > 0.0);
    }

    /// Visibility is azimuth-symmetric when there is no blockage: rotating
    /// a target around the radar never changes the verdict.
    #[test]
    fn visibility_rotation_invariant_without_blockage(
        r in 500.0f64..80_000.0,
        z in 50.0f64..15_000.0,
        az1 in 0.0f64..360.0,
        az2 in 0.0f64..360.0,
    ) {
        let mut cfg = RadarConfig::mp_pawr_bda2021();
        cfg.blockage.clear();
        let at = |az: f64| {
            let (s, c) = az.to_radians().sin_cos();
            visibility(&cfg, cfg.x + r * c, cfg.y + r * s, z)
        };
        let v1 = at(az1).map(|_| ());
        let v2 = at(az2).map(|_| ());
        prop_assert_eq!(v1.is_ok(), v2.is_ok());
        if let (Err(a), Err(b)) = (v1, v2) {
            prop_assert_eq!(a, b);
        }
    }

    /// Out-of-range targets are always invisible; close mid-level targets
    /// inside the elevation window are always visible.
    #[test]
    fn range_limit_is_hard(
        extra in 1.0f64..100_000.0,
        az in 0.0f64..360.0,
    ) {
        let mut cfg = RadarConfig::mp_pawr_bda2021();
        cfg.blockage.clear();
        let r = cfg.range_max + extra;
        let (s, c) = az.to_radians().sin_cos();
        // Keep elevation inside the window so range is the only reason.
        let z = cfg.z + r * (10.0f64).to_radians().tan();
        let v = visibility(&cfg, cfg.x + r * c, cfg.y + r * s, z);
        prop_assert_eq!(v.unwrap_err(), Invisibility::OutOfRange);
    }

    /// Reflectivity physics: z_total additive and monotone; dBZ monotone in
    /// Z; fall speed bounded by the fastest species cap.
    #[test]
    fn reflectivity_physics_bounds(
        rain in 0.0f64..10.0,
        snow in 0.0f64..10.0,
        graupel in 0.0f64..10.0,
    ) {
        let z = z_total(rain, snow, graupel);
        prop_assert!(z >= z_rain(rain));
        prop_assert!(z.is_finite() && z >= 0.0);
        let dbz = to_dbz(z, -30.0);
        let dbz_more = to_dbz(z * 2.0, -30.0);
        prop_assert!(dbz_more >= dbz);
        let vt = fall_speed(rain, snow, graupel);
        prop_assert!((0.0..=12.0).contains(&vt), "vt = {vt}");
    }

    /// The volume codec roundtrips arbitrary scans and its size is exactly
    /// linear in the record count.
    #[test]
    fn codec_size_and_roundtrip(
        n in 0usize..80,
        seed in any::<u64>(),
    ) {
        let mut rng = bda_num::SplitMix64::new(seed);
        let obs: Vec<Observation<f32>> = (0..n)
            .map(|i| Observation {
                kind: if i % 3 == 0 { ObsKind::DopplerVelocity } else { ObsKind::Reflectivity },
                x: rng.uniform_in(0.0, 128_000.0),
                y: rng.uniform_in(0.0, 128_000.0),
                z: rng.uniform_in(100.0, 16_000.0),
                value: rng.gaussian(20.0f32, 15.0),
                error_sd: 5.0,
            })
            .collect();
        let scan = ScanResult {
            time: rng.uniform_in(0.0, 1e6),
            obs,
            n_reflectivity: 0,
            n_doppler: 0,
            n_clear_air: 0,
            raw_bytes: 0,
        };
        let bytes = encode_volume(&scan);
        // Header 22 + trailer 8 + 21 per record.
        prop_assert_eq!(bytes.len(), 30 + 21 * n);
        let dec = decode_volume::<f32>(&bytes).unwrap();
        prop_assert_eq!(dec.time, scan.time);
        prop_assert_eq!(dec.obs.len(), n);
        for (a, b) in dec.obs.iter().zip(&scan.obs) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.value, b.value);
            prop_assert!((a.x - b.x).abs() < 0.02); // f32 position quantization
        }
    }

    /// The same wire bytes decode into f64 observations without loss beyond
    /// the f32 wire precision — the decoder is generic over the target Real.
    #[test]
    fn codec_roundtrips_into_f64(
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = bda_num::SplitMix64::new(seed);
        let obs: Vec<Observation<f32>> = (0..n)
            .map(|i| Observation {
                kind: if i % 2 == 0 { ObsKind::Reflectivity } else { ObsKind::DopplerVelocity },
                x: rng.uniform_in(0.0, 128_000.0),
                y: rng.uniform_in(0.0, 128_000.0),
                z: rng.uniform_in(100.0, 16_000.0),
                value: rng.uniform_in(-20.0, 60.0) as f32,
                error_sd: 5.0,
            })
            .collect();
        let scan = ScanResult {
            time: rng.uniform_in(0.0, 1e6),
            obs,
            n_reflectivity: 0,
            n_doppler: 0,
            n_clear_air: 0,
            raw_bytes: 0,
        };
        let bytes = encode_volume(&scan);
        let dec = decode_volume::<f64>(&bytes).unwrap();
        prop_assert_eq!(dec.obs.len(), n);
        for (a, b) in dec.obs.iter().zip(&scan.obs) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert!((a.value - b.value as f64).abs() < 1e-6);
            prop_assert!((a.z - b.z).abs() < 0.02);
        }
    }

    /// Decoding is total over the corruption corpus: any mutated buffer
    /// yields either a volume or a typed error — never a panic — and
    /// salvage never keeps an out-of-bounds record.
    #[test]
    fn decode_never_panics_on_mutated_volumes(
        seed in any::<u64>(),
        case in 0u64..4096,
    ) {
        let mut rng = bda_num::SplitMix64::new(seed);
        let obs: Vec<Observation<f32>> = (0..16)
            .map(|_| Observation {
                kind: ObsKind::Reflectivity,
                x: rng.uniform_in(0.0, 128_000.0),
                y: rng.uniform_in(0.0, 128_000.0),
                z: rng.uniform_in(100.0, 16_000.0),
                value: rng.uniform_in(-10.0, 40.0) as f32,
                error_sd: 5.0,
            })
            .collect();
        let scan = ScanResult {
            time: 30.0,
            obs,
            n_reflectivity: 0,
            n_doppler: 0,
            n_clear_air: 0,
            raw_bytes: 0,
        };
        let clean = encode_volume(&scan);
        let mutant = VolumeMutator::new(&clean, seed).mutate(case);
        // No catch_unwind needed: a panic fails the test. The property is
        // that both decoders return *something* typed for arbitrary bytes.
        let _ = decode_volume::<f32>(&mutant.bytes);
        let bounds = ValueBounds::default();
        if let Ok((vol, report)) = decode_volume_salvage::<f32>(&mutant.bytes, &bounds) {
            prop_assert!(report.kept <= report.parseable);
            for o in &vol.obs {
                let v = o.value as f64;
                prop_assert!(v.is_finite());
                prop_assert!((bounds.dbz_min..=bounds.dbz_max).contains(&v)
                    || v.abs() <= bounds.doppler_abs_max);
            }
        }
    }
}
