//! Radar observable physics: Z–q relations and hydrometeor fall speeds.
//!
//! Lin-type power laws relating hydrometeor water content to equivalent
//! radar reflectivity factor, as used by the SCALE-LETKF radar operator
//! (Honda et al. 2022). Water contents are in g/m^3; Z in mm^6/m^3.

/// Rain: Z = 2.53e4 * (rho*qr)^1.84.
pub fn z_rain(rho_q_gm3: f64) -> f64 {
    if rho_q_gm3 <= 0.0 {
        0.0
    } else {
        2.53e4 * rho_q_gm3.powf(1.84)
    }
}

/// Snow (dry): Z = 3.48e3 * (rho*qs)^1.66.
pub fn z_snow(rho_q_gm3: f64) -> f64 {
    if rho_q_gm3 <= 0.0 {
        0.0
    } else {
        3.48e3 * rho_q_gm3.powf(1.66)
    }
}

/// Graupel (dry): Z = 8.18e3 * (rho*qg)^1.50.
pub fn z_graupel(rho_q_gm3: f64) -> f64 {
    if rho_q_gm3 <= 0.0 {
        0.0
    } else {
        8.18e3 * rho_q_gm3.powf(1.50)
    }
}

/// Total equivalent reflectivity (mm^6/m^3) from the three precipitating
/// species' water contents (g/m^3).
pub fn z_total(rain: f64, snow: f64, graupel: f64) -> f64 {
    z_rain(rain) + z_snow(snow) + z_graupel(graupel)
}

/// Convert Z (mm^6/m^3) to dBZ with a floor.
pub fn to_dbz(z: f64, floor_dbz: f64) -> f64 {
    if z <= 0.0 {
        return floor_dbz;
    }
    (10.0 * z.log10()).max(floor_dbz)
}

/// Reflectivity-weighted mean hydrometeor fall speed (m/s, positive
/// downward) — what biases the Doppler velocity measurement.
pub fn fall_speed(rain: f64, snow: f64, graupel: f64) -> f64 {
    let zr = z_rain(rain);
    let zs = z_snow(snow);
    let zg = z_graupel(graupel);
    let ztot = zr + zs + zg;
    if ztot <= 0.0 {
        return 0.0;
    }
    // Bulk terminal velocities per species (m/s), same power-law family as
    // the microphysics (inputs here are g/m^3 = 1e-3 kg/m^3).
    let vt = |coeff: f64, q_gm3: f64, cap: f64| -> f64 {
        if q_gm3 <= 0.0 {
            0.0
        } else {
            (coeff * (q_gm3 * 1e-3).powf(0.125)).min(cap)
        }
    };
    (zr * vt(16.0, rain, 10.0) + zs * vt(4.0, snow, 2.5) + zg * vt(22.0, graupel, 12.0)) / ztot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_gram_of_rain_is_about_44_dbz() {
        // Z = 2.53e4 -> 10 log10 = 44.0 dBZ: the textbook heavy-rain value.
        let dbz = to_dbz(z_rain(1.0), -20.0);
        assert!((dbz - 44.0).abs() < 0.1, "dbz = {dbz}");
    }

    #[test]
    fn reflectivity_monotone_in_content() {
        let mut prev = 0.0;
        for i in 1..=20 {
            let q = i as f64 * 0.2;
            let z = z_total(q, q / 2.0, q / 4.0);
            assert!(z > prev);
            prev = z;
        }
    }

    #[test]
    fn snow_reflects_less_than_rain_at_same_content() {
        assert!(z_snow(1.0) < z_rain(1.0));
        assert!(z_graupel(1.0) < z_rain(1.0));
    }

    #[test]
    fn dbz_floor_applies() {
        assert_eq!(to_dbz(0.0, 5.0), 5.0);
        assert_eq!(to_dbz(1e-12, 5.0), 5.0);
        assert!(to_dbz(1e6, 5.0) > 5.0);
    }

    #[test]
    fn heavy_rain_exceeds_40_dbz_threshold() {
        // Fig. 6's orange shading is > 40 dBZ; ~0.6 g/m^3 of rain suffices.
        let dbz = to_dbz(z_rain(0.7), 0.0);
        assert!(dbz > 40.0, "dbz = {dbz}");
    }

    #[test]
    fn fall_speed_weighted_toward_dominant_species() {
        // Pure rain ~ 6-7 m/s at 0.5 g/m^3.
        let vr = fall_speed(0.5, 0.0, 0.0);
        assert!((4.0..10.0).contains(&vr), "vr = {vr}");
        // Pure snow much slower.
        let vs = fall_speed(0.0, 0.5, 0.0);
        assert!(vs < 2.6);
        // Mixture lies between.
        let vm = fall_speed(0.5, 0.5, 0.0);
        assert!(vm > vs && vm < vr);
        // Nothing falling -> zero.
        assert_eq!(fall_speed(0.0, 0.0, 0.0), 0.0);
    }
}
