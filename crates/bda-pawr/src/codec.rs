//! Binary volume-file codec.
//!
//! The real MP-PAWR writes each 30-second volume as a file on a server at
//! Saitama University, which JIT-DT then ships to Fugaku. This codec defines
//! the equivalent self-describing binary format: a magic/version header, the
//! scan timestamp, fixed-width observation records, and a trailing FNV-1a
//! checksum that the transfer layer verifies end-to-end.
//!
//! The decoder treats the wire as hostile. The checksum only catches
//! accidental corruption; a forged-but-checksummed volume must still be
//! unable to crash, abort, or smuggle unphysical values into the
//! assimilation, so every header field and every record field is validated
//! before it is used:
//!
//! * the record count is multiplied with [`usize::checked_mul`] and capped
//!   at [`MAX_RECORDS`], so a forged count can neither wrap the `Truncated`
//!   comparison nor drive `Vec::with_capacity` into an OOM abort;
//! * every float field must be finite and inside generous physical bounds
//!   ([`ValueBounds`]), rejected with a typed per-record [`RecordError`];
//! * [`decode_volume_salvage`] additionally recovers the good records from a
//!   torn or partially poisoned volume instead of discarding it whole.

use crate::scan::ScanResult;
use bda_letkf::{ObsKind, Observation};
use bda_num::{fnv1a, Real};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"PAWR";
const VERSION: u16 = 1;
/// Bytes per observation record: kind(1) + x,y,z,value,error (5 x f32).
pub const RECORD_BYTES: usize = 1 + 5 * 4;
/// Header bytes before the record section: magic + version + time + count.
pub const HEADER_BYTES: usize = 4 + 2 + 8 + 8;

/// Hard ceiling on the declared record count, independent of buffer size.
///
/// A full-resolution MP-PAWR volume regridded to 500 m over the 128 km
/// domain is a few million observations; 64 Mi records (~1.3 GiB decoded)
/// is over an order of magnitude of headroom while keeping a forged count
/// from requesting an absurd allocation.
pub const MAX_RECORDS: u64 = 1 << 26;

/// Generous physical validity bounds for decoded fields, per record.
///
/// These are ingest sanity limits, intentionally far wider than anything the
/// radar can produce (MP-PAWR reflectivity saturates well below 80 dBZ and
/// the Nyquist velocity is tens of m/s); anything outside them is garbage
/// bytes, not weather. Fine-grained screening happens later in the
/// observation QC pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueBounds {
    pub dbz_min: f64,
    pub dbz_max: f64,
    pub doppler_abs_max: f64,
    /// Horizontal coordinate magnitude ceiling, m.
    pub coord_abs_max: f64,
    pub z_min: f64,
    pub z_max: f64,
    pub error_sd_max: f64,
}

impl Default for ValueBounds {
    fn default() -> Self {
        Self {
            dbz_min: -60.0,
            dbz_max: 100.0,
            doppler_abs_max: 150.0,
            coord_abs_max: 1.0e6,
            z_min: -1_000.0,
            z_max: 50_000.0,
            error_sd_max: 1.0e3,
        }
    }
}

/// Which decoded field a record-level rejection refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldId {
    X,
    Y,
    Z,
    Value,
    ErrorSd,
}

impl std::fmt::Display for FieldId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FieldId::X => "x",
            FieldId::Y => "y",
            FieldId::Z => "z",
            FieldId::Value => "value",
            FieldId::ErrorSd => "error_sd",
        };
        f.write_str(s)
    }
}

/// Typed per-record decode rejection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecordError {
    UnknownKind(u8),
    NonFinite(FieldId),
    OutOfRange {
        field: FieldId,
        value: f64,
    },
    /// `error_sd` must be strictly positive (it is squared and inverted in
    /// the filter).
    NonPositiveErrorSd(f64),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::UnknownKind(k) => write!(f, "unknown observation kind {k}"),
            RecordError::NonFinite(field) => write!(f, "non-finite {field}"),
            RecordError::OutOfRange { field, value } => {
                write!(f, "{field} out of physical range: {value}")
            }
            RecordError::NonPositiveErrorSd(v) => write!(f, "non-positive error_sd {v}"),
        }
    }
}

/// Decoding errors.
#[derive(Clone, Debug, PartialEq)]
pub enum DecodeError {
    TooShort,
    BadMagic,
    UnsupportedVersion(u16),
    ChecksumMismatch,
    Truncated,
    /// Declared record count exceeds [`MAX_RECORDS`] or overflows the
    /// byte-length computation.
    CountOverflow {
        declared: u64,
    },
    /// Scan timestamp is not a finite number.
    BadTimestamp,
    /// A record failed field validation (strict mode only; salvage mode
    /// counts and skips instead).
    BadRecord {
        index: usize,
        error: RecordError,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "volume file too short"),
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::ChecksumMismatch => write!(f, "checksum mismatch"),
            DecodeError::Truncated => write!(f, "truncated record section"),
            DecodeError::CountOverflow { declared } => {
                write!(f, "declared record count {declared} exceeds limits")
            }
            DecodeError::BadTimestamp => write!(f, "non-finite scan timestamp"),
            DecodeError::BadRecord { index, error } => {
                write!(f, "record {index}: {error}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decoded volume: timestamp and observations.
#[derive(Clone, Debug)]
pub struct DecodedVolume<T> {
    pub time: f64,
    pub obs: Vec<Observation<T>>,
}

/// What [`decode_volume_salvage`] recovered and what it had to drop.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SalvageReport {
    /// Records declared by the (possibly forged) header.
    pub declared: u64,
    /// Records actually parseable from the bytes present.
    pub parseable: usize,
    pub kept: usize,
    pub rejected_unknown_kind: usize,
    pub rejected_non_finite: usize,
    pub rejected_out_of_range: usize,
    pub rejected_bad_error_sd: usize,
    /// The trailing checksum did not match (records were still field-
    /// validated individually).
    pub checksum_mismatch: bool,
    /// The record section was shorter than the declared count.
    pub truncated: bool,
}

impl SalvageReport {
    pub fn rejected(&self) -> usize {
        self.rejected_unknown_kind
            + self.rejected_non_finite
            + self.rejected_out_of_range
            + self.rejected_bad_error_sd
    }

    /// True when every declared record was recovered intact.
    pub fn clean(&self) -> bool {
        !self.checksum_mismatch
            && !self.truncated
            && self.rejected() == 0
            && self.declared == self.kept as u64
    }
}

/// Encode a scan into its on-wire volume file.
pub fn encode_volume<T: Real>(scan: &ScanResult<T>) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + scan.obs.len() * RECORD_BYTES + 8);
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_f64(scan.time);
    buf.put_u64(scan.obs.len() as u64);
    for o in &scan.obs {
        buf.put_u8(match o.kind {
            ObsKind::Reflectivity => 0,
            ObsKind::DopplerVelocity => 1,
        });
        buf.put_f32(o.x as f32);
        buf.put_f32(o.y as f32);
        buf.put_f32(o.z as f32);
        buf.put_f32(o.value.f64() as f32);
        buf.put_f32(o.error_sd.f64() as f32);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64(checksum);
    buf.freeze()
}

/// Validate one decoded record against the bounds; `Ok` gives the typed
/// observation.
fn validate_record<T: Real>(
    kind_byte: u8,
    x: f64,
    y: f64,
    z: f64,
    value: f64,
    error_sd: f64,
    bounds: &ValueBounds,
) -> Result<Observation<T>, RecordError> {
    let kind = match kind_byte {
        0 => ObsKind::Reflectivity,
        1 => ObsKind::DopplerVelocity,
        k => return Err(RecordError::UnknownKind(k)),
    };
    for (field, v) in [
        (FieldId::X, x),
        (FieldId::Y, y),
        (FieldId::Z, z),
        (FieldId::Value, value),
        (FieldId::ErrorSd, error_sd),
    ] {
        if !v.is_finite() {
            return Err(RecordError::NonFinite(field));
        }
    }
    if x.abs() > bounds.coord_abs_max {
        return Err(RecordError::OutOfRange {
            field: FieldId::X,
            value: x,
        });
    }
    if y.abs() > bounds.coord_abs_max {
        return Err(RecordError::OutOfRange {
            field: FieldId::Y,
            value: y,
        });
    }
    if z < bounds.z_min || z > bounds.z_max {
        return Err(RecordError::OutOfRange {
            field: FieldId::Z,
            value: z,
        });
    }
    let in_range = match kind {
        ObsKind::Reflectivity => (bounds.dbz_min..=bounds.dbz_max).contains(&value),
        ObsKind::DopplerVelocity => value.abs() <= bounds.doppler_abs_max,
    };
    if !in_range {
        return Err(RecordError::OutOfRange {
            field: FieldId::Value,
            value,
        });
    }
    if error_sd <= 0.0 {
        return Err(RecordError::NonPositiveErrorSd(error_sd));
    }
    if error_sd > bounds.error_sd_max {
        return Err(RecordError::OutOfRange {
            field: FieldId::ErrorSd,
            value: error_sd,
        });
    }
    Ok(Observation {
        kind,
        x,
        y,
        z,
        value: T::of(value),
        error_sd: T::of(error_sd),
    })
}

/// Parsed-and-verified header portion of a volume.
struct Header<'a> {
    time: f64,
    declared: u64,
    /// Record section bytes (everything between the header and trailer).
    records: &'a [u8],
    checksum_ok: bool,
}

/// Parse the fixed header, verify the checksum, and bound the record count.
/// Never allocates proportionally to any attacker-declared length.
fn parse_header(data: &[u8]) -> Result<Header<'_>, DecodeError> {
    if data.len() < HEADER_BYTES + 8 {
        return Err(DecodeError::TooShort);
    }
    let (payload, tail) = data.split_at(data.len() - 8);
    let expect = u64::from_be_bytes(tail.try_into().map_err(|_| DecodeError::TooShort)?);
    let checksum_ok = fnv1a(payload) == expect;
    let mut buf = payload;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let time = buf.get_f64();
    if !time.is_finite() {
        return Err(DecodeError::BadTimestamp);
    }
    let declared = buf.get_u64();
    if declared > MAX_RECORDS {
        return Err(DecodeError::CountOverflow { declared });
    }
    Ok(Header {
        time,
        declared,
        records: buf,
        checksum_ok,
    })
}

/// Decode and integrity-check a volume file (strict mode).
///
/// Every record must validate; the first bad record fails the whole volume
/// with a typed [`DecodeError::BadRecord`]. Use [`decode_volume_salvage`]
/// to recover the good records from a partially bad volume instead.
pub fn decode_volume<T: Real>(data: &[u8]) -> Result<DecodedVolume<T>, DecodeError> {
    let h = parse_header(data)?;
    if !h.checksum_ok {
        return Err(DecodeError::ChecksumMismatch);
    }
    // `declared <= MAX_RECORDS` holds, so the multiplication cannot
    // overflow u64 arithmetic; `checked_mul` still guards the usize
    // conversion on 32-bit targets.
    let need =
        (h.declared as usize)
            .checked_mul(RECORD_BYTES)
            .ok_or(DecodeError::CountOverflow {
                declared: h.declared,
            })?;
    let mut buf = h.records;
    if buf.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    // Capacity is bounded by the bytes actually present, never by the
    // declared count alone.
    let n = (h.declared as usize).min(buf.remaining() / RECORD_BYTES);
    let mut obs = Vec::with_capacity(n);
    for index in 0..n {
        let kind_byte = buf.get_u8();
        let x = buf.get_f32() as f64;
        let y = buf.get_f32() as f64;
        let z = buf.get_f32() as f64;
        let value = buf.get_f32() as f64;
        let error_sd = buf.get_f32() as f64;
        let o = validate_record(kind_byte, x, y, z, value, error_sd, &ValueBounds::default())
            .map_err(|error| DecodeError::BadRecord { index, error })?;
        obs.push(o);
    }
    Ok(DecodedVolume { time: h.time, obs })
}

/// Decode a volume, keeping every record that parses and validates.
///
/// Salvage proceeds through checksum mismatches and record-section
/// truncation (both are recorded in the report) so that a torn transfer
/// still yields its intact prefix; it only gives up when the fixed header
/// itself is unusable (too short, bad magic, wrong version, non-finite
/// timestamp, or an absurd record count).
pub fn decode_volume_salvage<T: Real>(
    data: &[u8],
    bounds: &ValueBounds,
) -> Result<(DecodedVolume<T>, SalvageReport), DecodeError> {
    let h = parse_header(data)?;
    let mut report = SalvageReport {
        declared: h.declared,
        checksum_mismatch: !h.checksum_ok,
        ..SalvageReport::default()
    };
    let mut buf = h.records;
    let parseable = (h.declared as usize).min(buf.remaining() / RECORD_BYTES);
    report.parseable = parseable;
    report.truncated = (parseable as u64) < h.declared;
    let mut obs = Vec::with_capacity(parseable);
    for _ in 0..parseable {
        let kind_byte = buf.get_u8();
        let x = buf.get_f32() as f64;
        let y = buf.get_f32() as f64;
        let z = buf.get_f32() as f64;
        let value = buf.get_f32() as f64;
        let error_sd = buf.get_f32() as f64;
        match validate_record(kind_byte, x, y, z, value, error_sd, bounds) {
            Ok(o) => {
                obs.push(o);
                report.kept += 1;
            }
            Err(RecordError::UnknownKind(_)) => report.rejected_unknown_kind += 1,
            Err(RecordError::NonFinite(_)) => report.rejected_non_finite += 1,
            Err(RecordError::OutOfRange { .. }) => report.rejected_out_of_range += 1,
            Err(RecordError::NonPositiveErrorSd(_)) => report.rejected_bad_error_sd += 1,
        }
    }
    Ok((DecodedVolume { time: h.time, obs }, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scan() -> ScanResult<f64> {
        ScanResult {
            time: 1234.5,
            obs: vec![
                Observation {
                    kind: ObsKind::Reflectivity,
                    x: 1000.0,
                    y: 2000.0,
                    z: 1500.0,
                    value: 37.5,
                    error_sd: 5.0,
                },
                Observation {
                    kind: ObsKind::DopplerVelocity,
                    x: 1000.0,
                    y: 2000.0,
                    z: 1500.0,
                    value: -4.25,
                    error_sd: 3.0,
                },
            ],
            n_reflectivity: 1,
            n_doppler: 1,
            n_clear_air: 0,
            raw_bytes: 1024,
        }
    }

    /// Recompute the trailing checksum after tampering with the payload, so
    /// the tampered field — not the checksum — is what the decoder sees.
    fn fixup_checksum(buf: &mut [u8]) {
        let n = buf.len();
        let sum = fnv1a(&buf[..n - 8]);
        buf[n - 8..].copy_from_slice(&sum.to_be_bytes());
    }

    #[test]
    fn roundtrip_preserves_observations() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        let dec: DecodedVolume<f64> = decode_volume(&bytes).unwrap();
        assert_eq!(dec.time, 1234.5);
        assert_eq!(dec.obs.len(), 2);
        assert_eq!(dec.obs[0].kind, ObsKind::Reflectivity);
        assert_eq!(dec.obs[0].value, 37.5);
        assert_eq!(dec.obs[1].kind, ObsKind::DopplerVelocity);
        assert_eq!(dec.obs[1].value, -4.25);
        assert_eq!(dec.obs[1].error_sd, 3.0);
    }

    #[test]
    fn corruption_is_detected() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        let mut corrupted = bytes.to_vec();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        assert_eq!(
            decode_volume::<f64>(&corrupted).unwrap_err(),
            DecodeError::ChecksumMismatch
        );
    }

    #[test]
    fn truncation_is_detected() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        // Chop off some records but keep a (now wrong) tail.
        let short = &bytes[..bytes.len() - 20];
        assert!(decode_volume::<f64>(short).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        fixup_checksum(&mut bad);
        assert_eq!(
            decode_volume::<f64>(&bad).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn empty_scan_roundtrips() {
        let scan = ScanResult::<f64> {
            time: 0.0,
            obs: vec![],
            n_reflectivity: 0,
            n_doppler: 0,
            n_clear_air: 0,
            raw_bytes: 0,
        };
        let dec: DecodedVolume<f64> = decode_volume(&encode_volume(&scan)).unwrap();
        assert!(dec.obs.is_empty());
    }

    #[test]
    fn too_short_input() {
        assert_eq!(
            decode_volume::<f64>(&[1, 2, 3]).unwrap_err(),
            DecodeError::TooShort
        );
    }

    #[test]
    fn encoded_size_is_linear_in_records() {
        let scan = sample_scan();
        let b2 = encode_volume(&scan).len();
        let mut bigger = sample_scan();
        bigger.obs.extend_from_slice(&scan.obs.clone());
        let b4 = encode_volume(&bigger).len();
        assert_eq!(b4 - b2, 2 * RECORD_BYTES);
    }

    /// Regression for the forged-length OOM: a record count chosen so that
    /// `n * RECORD_BYTES` wraps usize used to pass the `Truncated` check and
    /// abort inside `Vec::with_capacity`. With a valid checksum the forged
    /// count — not the checksum — is what the decoder must catch.
    #[test]
    fn forged_record_count_cannot_overflow_or_allocate() {
        let scan = sample_scan();
        for forged in [
            u64::MAX,
            u64::MAX / RECORD_BYTES as u64 + 1,
            (usize::MAX / RECORD_BYTES) as u64 + 1,
            MAX_RECORDS + 1,
        ] {
            let mut bad = encode_volume(&scan).to_vec();
            bad[14..22].copy_from_slice(&forged.to_be_bytes());
            fixup_checksum(&mut bad);
            assert_eq!(
                decode_volume::<f64>(&bad).unwrap_err(),
                DecodeError::CountOverflow { declared: forged },
                "forged count {forged} must be rejected before any allocation"
            );
        }
        // A large-but-legal count against a tiny buffer is Truncated, and
        // must not allocate for the declared count either.
        let mut bad = encode_volume(&scan).to_vec();
        bad[14..22].copy_from_slice(&MAX_RECORDS.to_be_bytes());
        fixup_checksum(&mut bad);
        assert_eq!(
            decode_volume::<f64>(&bad).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn non_finite_fields_rejected_with_typed_error() {
        let scan = sample_scan();
        let mut bad = encode_volume(&scan).to_vec();
        // Record 0 value field: header(22) + kind(1) + x,y,z(12) = offset 35.
        bad[35..39].copy_from_slice(&f32::NAN.to_be_bytes());
        fixup_checksum(&mut bad);
        match decode_volume::<f64>(&bad).unwrap_err() {
            DecodeError::BadRecord {
                index: 0,
                error: RecordError::NonFinite(FieldId::Value),
            } => {}
            other => panic!("expected NonFinite(Value), got {other:?}"),
        }
    }

    #[test]
    fn out_of_physical_range_rejected() {
        let scan = sample_scan();
        let mut bad = encode_volume(&scan).to_vec();
        // Record 1 value field: 22 + 21 + 13 = offset 56. 900 m/s is no wind.
        bad[56..60].copy_from_slice(&900.0f32.to_be_bytes());
        fixup_checksum(&mut bad);
        match decode_volume::<f64>(&bad).unwrap_err() {
            DecodeError::BadRecord {
                index: 1,
                error:
                    RecordError::OutOfRange {
                        field: FieldId::Value,
                        ..
                    },
            } => {}
            other => panic!("expected OutOfRange(Value), got {other:?}"),
        }
    }

    #[test]
    fn non_finite_timestamp_rejected() {
        let mut scan = sample_scan();
        scan.time = f64::INFINITY;
        let bytes = encode_volume(&scan);
        assert_eq!(
            decode_volume::<f64>(&bytes).unwrap_err(),
            DecodeError::BadTimestamp
        );
    }

    #[test]
    fn salvage_keeps_good_records_from_poisoned_volume() {
        let scan = sample_scan();
        let mut bad = encode_volume(&scan).to_vec();
        // Poison record 0's value; record 1 stays intact.
        bad[35..39].copy_from_slice(&f32::NAN.to_be_bytes());
        fixup_checksum(&mut bad);
        assert!(decode_volume::<f64>(&bad).is_err());
        let (dec, report) = decode_volume_salvage::<f64>(&bad, &ValueBounds::default()).unwrap();
        assert_eq!(dec.obs.len(), 1);
        assert_eq!(dec.obs[0].kind, ObsKind::DopplerVelocity);
        assert_eq!(report.kept, 1);
        assert_eq!(report.rejected_non_finite, 1);
        assert!(!report.clean());
        assert!(!report.truncated);
    }

    #[test]
    fn salvage_recovers_intact_prefix_of_torn_volume() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        // Tear mid-record-1: record 0 survives; checksum and count no
        // longer match what's present.
        let torn = &bytes[..HEADER_BYTES + RECORD_BYTES + 10];
        assert!(decode_volume::<f64>(torn).is_err());
        let (dec, report) = decode_volume_salvage::<f64>(torn, &ValueBounds::default()).unwrap();
        assert_eq!(dec.obs.len(), 1);
        assert_eq!(dec.obs[0].value, 37.5);
        assert!(report.truncated);
        assert!(report.checksum_mismatch);
        assert_eq!(report.declared, 2);
        assert_eq!(report.parseable, 1);
    }

    #[test]
    fn salvage_on_clean_volume_is_lossless() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        let (dec, report) = decode_volume_salvage::<f64>(&bytes, &ValueBounds::default()).unwrap();
        assert_eq!(dec.obs.len(), 2);
        assert!(report.clean());
    }
}
