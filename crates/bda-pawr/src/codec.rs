//! Binary volume-file codec.
//!
//! The real MP-PAWR writes each 30-second volume as a file on a server at
//! Saitama University, which JIT-DT then ships to Fugaku. This codec defines
//! the equivalent self-describing binary format: a magic/version header, the
//! scan timestamp, fixed-width observation records, and a trailing FNV-1a
//! checksum that the transfer layer verifies end-to-end.

use crate::scan::ScanResult;
use bda_letkf::{ObsKind, Observation};
use bda_num::Real;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"PAWR";
const VERSION: u16 = 1;
/// Bytes per observation record: kind(1) + x,y,z,value,error (5 x f32).
const RECORD_BYTES: usize = 1 + 5 * 4;

/// FNV-1a over a byte slice.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Encode a scan into its on-wire volume file.
pub fn encode_volume<T: Real>(scan: &ScanResult<T>) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 2 + 8 + 8 + scan.obs.len() * RECORD_BYTES + 8);
    buf.put_slice(MAGIC);
    buf.put_u16(VERSION);
    buf.put_f64(scan.time);
    buf.put_u64(scan.obs.len() as u64);
    for o in &scan.obs {
        buf.put_u8(match o.kind {
            ObsKind::Reflectivity => 0,
            ObsKind::DopplerVelocity => 1,
        });
        buf.put_f32(o.x as f32);
        buf.put_f32(o.y as f32);
        buf.put_f32(o.z as f32);
        buf.put_f32(o.value.f64() as f32);
        buf.put_f32(o.error_sd.f64() as f32);
    }
    let checksum = fnv1a(&buf);
    buf.put_u64(checksum);
    buf.freeze()
}

/// Decoding errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    TooShort,
    BadMagic,
    UnsupportedVersion(u16),
    ChecksumMismatch,
    Truncated,
    UnknownKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "volume file too short"),
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::ChecksumMismatch => write!(f, "checksum mismatch"),
            DecodeError::Truncated => write!(f, "truncated record section"),
            DecodeError::UnknownKind(k) => write!(f, "unknown observation kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decoded volume: timestamp and observations.
#[derive(Clone, Debug)]
pub struct DecodedVolume<T> {
    pub time: f64,
    pub obs: Vec<Observation<T>>,
}

/// Decode and integrity-check a volume file.
pub fn decode_volume<T: Real>(data: &[u8]) -> Result<DecodedVolume<T>, DecodeError> {
    if data.len() < 4 + 2 + 8 + 8 + 8 {
        return Err(DecodeError::TooShort);
    }
    let (payload, tail) = data.split_at(data.len() - 8);
    let expect = u64::from_be_bytes(tail.try_into().unwrap());
    if fnv1a(payload) != expect {
        return Err(DecodeError::ChecksumMismatch);
    }
    let mut buf = payload;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let time = buf.get_f64();
    let n = buf.get_u64() as usize;
    if buf.remaining() < n * RECORD_BYTES {
        return Err(DecodeError::Truncated);
    }
    let mut obs = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = match buf.get_u8() {
            0 => ObsKind::Reflectivity,
            1 => ObsKind::DopplerVelocity,
            k => return Err(DecodeError::UnknownKind(k)),
        };
        let x = buf.get_f32() as f64;
        let y = buf.get_f32() as f64;
        let z = buf.get_f32() as f64;
        let value = T::of(buf.get_f32() as f64);
        let error_sd = T::of(buf.get_f32() as f64);
        obs.push(Observation {
            kind,
            x,
            y,
            z,
            value,
            error_sd,
        });
    }
    Ok(DecodedVolume { time, obs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scan() -> ScanResult<f64> {
        ScanResult {
            time: 1234.5,
            obs: vec![
                Observation {
                    kind: ObsKind::Reflectivity,
                    x: 1000.0,
                    y: 2000.0,
                    z: 1500.0,
                    value: 37.5,
                    error_sd: 5.0,
                },
                Observation {
                    kind: ObsKind::DopplerVelocity,
                    x: 1000.0,
                    y: 2000.0,
                    z: 1500.0,
                    value: -4.25,
                    error_sd: 3.0,
                },
            ],
            n_reflectivity: 1,
            n_doppler: 1,
            n_clear_air: 0,
            raw_bytes: 1024,
        }
    }

    #[test]
    fn roundtrip_preserves_observations() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        let dec: DecodedVolume<f64> = decode_volume(&bytes).unwrap();
        assert_eq!(dec.time, 1234.5);
        assert_eq!(dec.obs.len(), 2);
        assert_eq!(dec.obs[0].kind, ObsKind::Reflectivity);
        assert_eq!(dec.obs[0].value, 37.5);
        assert_eq!(dec.obs[1].kind, ObsKind::DopplerVelocity);
        assert_eq!(dec.obs[1].value, -4.25);
        assert_eq!(dec.obs[1].error_sd, 3.0);
    }

    #[test]
    fn corruption_is_detected() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        let mut corrupted = bytes.to_vec();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0xFF;
        assert_eq!(
            decode_volume::<f64>(&corrupted).unwrap_err(),
            DecodeError::ChecksumMismatch
        );
    }

    #[test]
    fn truncation_is_detected() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        // Chop off some records but keep a (now wrong) tail.
        let short = &bytes[..bytes.len() - 20];
        assert!(decode_volume::<f64>(short).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let scan = sample_scan();
        let bytes = encode_volume(&scan);
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        // Fix up the checksum so the magic check is what fires.
        let n = bad.len();
        let sum = fnv1a(&bad[..n - 8]);
        bad[n - 8..].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(
            decode_volume::<f64>(&bad).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn empty_scan_roundtrips() {
        let scan = ScanResult::<f64> {
            time: 0.0,
            obs: vec![],
            n_reflectivity: 0,
            n_doppler: 0,
            n_clear_air: 0,
            raw_bytes: 0,
        };
        let dec: DecodedVolume<f64> = decode_volume(&encode_volume(&scan)).unwrap();
        assert!(dec.obs.is_empty());
    }

    #[test]
    fn too_short_input() {
        assert_eq!(
            decode_volume::<f64>(&[1, 2, 3]).unwrap_err(),
            DecodeError::TooShort
        );
    }

    #[test]
    fn encoded_size_is_linear_in_records() {
        let scan = sample_scan();
        let b2 = encode_volume(&scan).len();
        let mut bigger = sample_scan();
        bigger.obs.extend_from_slice(&scan.obs.clone());
        let b4 = encode_volume(&bigger).len();
        assert_eq!(b4 - b2, 2 * RECORD_BYTES);
    }
}
