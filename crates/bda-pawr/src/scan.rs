//! The volume scanner: observe a nature run every 30 seconds.

use crate::config::RadarConfig;
use crate::geometry::visibility;
use crate::operator::{h_doppler, h_reflectivity};
use bda_grid::GridSpec;
use bda_letkf::{ObsKind, Observation};
use bda_num::{Real, SplitMix64};
use bda_scale::{BaseState, ModelState};

/// One completed 3-D volume scan.
#[derive(Clone, Debug)]
pub struct ScanResult<T> {
    /// Scan completion time (the paper's `T_obs`), s.
    pub time: f64,
    /// Superobbed observations on the analysis grid.
    pub obs: Vec<Observation<T>>,
    pub n_reflectivity: usize,
    pub n_doppler: usize,
    /// Reflectivity observations at the clear-air floor value.
    pub n_clear_air: usize,
    /// Raw (polar) data volume this scan represents, bytes — what JIT-DT
    /// has to move (~100 MB at full scale).
    pub raw_bytes: usize,
}

/// The MP-PAWR simulator.
#[derive(Clone, Debug)]
pub struct PawrSimulator {
    pub cfg: RadarConfig,
}

impl PawrSimulator {
    pub fn new(cfg: RadarConfig) -> Self {
        cfg.validate();
        Self { cfg }
    }

    /// Scan a nature-run state, producing noisy superobbed observations on
    /// the model grid (Table 2: 500-m regridded resolution). Deterministic
    /// in `(seed, time)`.
    pub fn scan<T: Real>(
        &self,
        state: &ModelState<T>,
        base: &BaseState<T>,
        grid: &GridSpec,
        time: f64,
        seed: u64,
    ) -> ScanResult<T> {
        let _timer = bda_num::timing::guard(bda_num::timing::Kernel::ObsOperator);
        let mut rng = SplitMix64::new(seed).split(time.to_bits());
        let mut obs = Vec::new();
        let mut n_reflectivity = 0;
        let mut n_doppler = 0;
        let mut n_clear_air = 0;

        for i in 0..grid.nx {
            for j in 0..grid.ny {
                let x = grid.x_center(i);
                let y = grid.y_center(j);
                for k in 0..grid.nz() {
                    let z = grid.vertical.z_center[k];
                    if visibility(&self.cfg, x, y, z).is_err() {
                        continue;
                    }
                    let true_dbz =
                        h_reflectivity(state, base, i, j, k, self.cfg.min_detectable_dbz);
                    let noisy_dbz = (true_dbz + rng.gaussian(0.0, self.cfg.noise_reflectivity_dbz))
                        .max(self.cfg.min_detectable_dbz);
                    if true_dbz <= self.cfg.min_detectable_dbz {
                        n_clear_air += 1;
                        // Clear-air observations report the floor exactly —
                        // "no rain here", which suppresses spurious cells.
                        obs.push(Observation {
                            kind: ObsKind::Reflectivity,
                            x,
                            y,
                            z,
                            value: T::of(self.cfg.min_detectable_dbz),
                            error_sd: T::of(self.cfg.noise_reflectivity_dbz),
                        });
                    } else {
                        obs.push(Observation {
                            kind: ObsKind::Reflectivity,
                            x,
                            y,
                            z,
                            value: T::of(noisy_dbz),
                            error_sd: T::of(self.cfg.noise_reflectivity_dbz),
                        });
                    }
                    n_reflectivity += 1;

                    if true_dbz >= self.cfg.doppler_min_dbz {
                        let vr = h_doppler(state, base, grid, &self.cfg, i, j, k)
                            + rng.gaussian(0.0, self.cfg.noise_doppler_ms);
                        obs.push(Observation {
                            kind: ObsKind::DopplerVelocity,
                            x,
                            y,
                            z,
                            value: T::of(vr),
                            error_sd: T::of(self.cfg.noise_doppler_ms),
                        });
                        n_doppler += 1;
                    }
                }
            }
        }

        ScanResult {
            time,
            obs,
            n_reflectivity,
            n_doppler,
            n_clear_air,
            raw_bytes: self.cfg.raw_scan_bytes,
        }
    }

    /// Horizontal visibility mask at height `z` (j-outer/i-inner order,
    /// matching `Field3::level_slice`): `false` cells are the hatched
    /// no-data regions of Fig. 6b.
    pub fn visibility_mask(&self, grid: &GridSpec, z: f64) -> Vec<bool> {
        let mut mask = Vec::with_capacity(grid.nx * grid.ny);
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                mask.push(visibility(&self.cfg, grid.x_center(i), grid.y_center(j), z).is_ok());
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_scale::base::Sounding;

    fn setup() -> (GridSpec, BaseState<f64>, ModelState<f64>, PawrSimulator) {
        let grid = GridSpec::reduced(16, 16, 12);
        let base = BaseState::from_sounding(&Sounding::convective(), &grid.vertical, 340.0);
        let state = ModelState::init_from_base(&grid, &base);
        let sim = PawrSimulator::new(RadarConfig::reduced(grid.lx(), grid.ly()));
        (grid, base, state, sim)
    }

    #[test]
    fn dry_atmosphere_yields_only_clear_air_reflectivity() {
        let (grid, base, state, sim) = setup();
        let r = sim.scan(&state, &base, &grid, 0.0, 1);
        assert!(r.n_reflectivity > 0, "no coverage at all");
        assert_eq!(r.n_doppler, 0);
        assert_eq!(r.n_clear_air, r.n_reflectivity);
        assert!(r.obs.iter().all(|o| o.kind == ObsKind::Reflectivity));
    }

    #[test]
    fn rain_produces_echo_and_doppler() {
        let (grid, base, mut state, sim) = setup();
        // Rain column near but not at the radar (avoid the cone of silence).
        let (i, j) = grid
            .cell_of(grid.lx() / 2.0 + 2500.0, grid.ly() / 2.0)
            .unwrap();
        for k in 2..8 {
            state.qr.set(i as isize, j as isize, k, 3e-3);
        }
        let r = sim.scan(&state, &base, &grid, 30.0, 1);
        assert!(r.n_doppler > 0, "no Doppler over rain");
        assert!(r.n_clear_air < r.n_reflectivity);
        let max_dbz = r
            .obs
            .iter()
            .filter(|o| o.kind == ObsKind::Reflectivity)
            .map(|o| o.value)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_dbz > 35.0, "max dbz = {max_dbz}");
    }

    #[test]
    fn scan_is_deterministic_in_seed_and_time() {
        let (grid, base, mut state, sim) = setup();
        // Rain somewhere so some observations carry actual noise (clear-air
        // obs report the floor exactly and would compare equal trivially).
        let (i, j) = grid
            .cell_of(grid.lx() / 2.0 + 2000.0, grid.ly() / 2.0)
            .unwrap();
        for k in 2..8 {
            state.qr.set(i as isize, j as isize, k, 2e-3);
        }
        let a = sim.scan(&state, &base, &grid, 60.0, 7);
        let b = sim.scan(&state, &base, &grid, 60.0, 7);
        assert_eq!(a.obs.len(), b.obs.len());
        for (x, y) in a.obs.iter().zip(&b.obs) {
            assert_eq!(x.value, y.value);
        }
        let c = sim.scan(&state, &base, &grid, 90.0, 7);
        let same = a.obs.iter().zip(&c.obs).all(|(x, y)| x.value == y.value);
        assert!(!same, "different scan times must draw different noise");
    }

    #[test]
    fn observations_lie_within_range() {
        let (grid, base, state, sim) = setup();
        let r = sim.scan(&state, &base, &grid, 0.0, 2);
        for o in &r.obs {
            let d = ((o.x - sim.cfg.x).powi(2) + (o.y - sim.cfg.y).powi(2)).sqrt();
            assert!(d <= sim.cfg.range_max + 1.0);
        }
    }

    #[test]
    fn visibility_mask_marks_cone_of_silence_and_far_field() {
        let (grid, _, _, sim) = setup();
        let mask_high = sim.visibility_mask(&grid, 10_000.0);
        // Directly above the radar at 10 km: cone of silence.
        let (ic, jc) = grid.cell_of(sim.cfg.x, sim.cfg.y).unwrap();
        assert!(!mask_high[jc * grid.nx + ic]);
        // Mask has both visible and invisible cells at low level.
        let mask_low = sim.visibility_mask(&grid, 100.0);
        assert!(mask_low.iter().any(|&m| m));
        assert!(mask_low.iter().any(|&m| !m));
    }

    #[test]
    fn raw_bytes_matches_config() {
        let (grid, base, state, sim) = setup();
        let r = sim.scan(&state, &base, &grid, 0.0, 3);
        assert_eq!(r.raw_bytes, sim.cfg.raw_scan_bytes);
    }

    #[test]
    fn full_scale_radar_reports_100mb() {
        assert_eq!(
            RadarConfig::mp_pawr_bda2021().raw_scan_bytes,
            100 * 1024 * 1024
        );
    }
}
