//! Deterministic corruption mutator for the volume wire format.
//!
//! Generates hostile variants of an encoded PAWR volume — the corpus the
//! ingest-hardening tests push through [`crate::codec::decode_volume`] and
//! the LETKF QC to prove that no corruption, however shaped, can panic the
//! decoder or smuggle an out-of-bounds observation into the analysis.
//!
//! Everything is seeded [`SplitMix64`]: the same `(seed, case index)` pair
//! always produces the same mutated buffer, so a CI failure is replayable
//! from its log line alone.

use crate::codec::{HEADER_BYTES, RECORD_BYTES};
use bda_num::{fnv1a, SplitMix64};

/// The corruption classes the mutator draws from. Exposed so tests can
/// assert coverage of each class, and so failure logs name the attack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Flip 1–64 random bits anywhere in the buffer.
    BitFlips,
    /// Cut the buffer short (possibly into the header).
    Truncate,
    /// Append random garbage bytes.
    Extend,
    /// Overwrite the declared record count with a hostile value
    /// (`u64::MAX`, just-past-overflow, or a huge-but-plausible count).
    ForgeCount,
    /// Scribble NaN/±Inf bit patterns over random record fields.
    PoisonFields,
    /// Overwrite record kind bytes with unknown discriminants.
    CorruptKind,
    /// Replace the payload wholesale with random bytes of random length.
    RandomBytes,
}

const CLASSES: [Corruption; 7] = [
    Corruption::BitFlips,
    Corruption::Truncate,
    Corruption::Extend,
    Corruption::ForgeCount,
    Corruption::PoisonFields,
    Corruption::CorruptKind,
    Corruption::RandomBytes,
];

/// One mutated volume plus the class that produced it.
#[derive(Clone, Debug)]
pub struct MutatedVolume {
    pub case: u64,
    pub class: Corruption,
    /// Whether the trailer checksum was recomputed after mutation — a
    /// forged-but-consistent volume that sails past the checksum and must
    /// be caught by field validation instead.
    pub checksum_fixed: bool,
    pub bytes: Vec<u8>,
}

/// Seeded corruption mutator over a clean encoded volume.
pub struct VolumeMutator<'a> {
    clean: &'a [u8],
    rng: SplitMix64,
}

impl<'a> VolumeMutator<'a> {
    pub fn new(clean: &'a [u8], seed: u64) -> Self {
        Self {
            clean,
            rng: SplitMix64::new(seed),
        }
    }

    /// Produce mutated case `case`. Deterministic: the stream is re-derived
    /// from the mutator seed and the case index, independent of call order.
    pub fn mutate(&self, case: u64) -> MutatedVolume {
        let mut rng = self.rng.split(case);
        let class = CLASSES[(rng.next_u64() % CLASSES.len() as u64) as usize];
        let mut bytes = self.clean.to_vec();
        match class {
            Corruption::BitFlips => {
                let flips = 1 + rng.next_u64() % 64;
                for _ in 0..flips {
                    let i = (rng.next_u64() as usize) % bytes.len();
                    bytes[i] ^= 1 << (rng.next_u64() % 8);
                }
            }
            Corruption::Truncate => {
                let keep = (rng.next_u64() as usize) % bytes.len();
                bytes.truncate(keep);
            }
            Corruption::Extend => {
                let extra = 1 + (rng.next_u64() as usize) % 256;
                for _ in 0..extra {
                    bytes.push(rng.next_u64() as u8);
                }
            }
            Corruption::ForgeCount => {
                let forged = match rng.next_u64() % 4 {
                    0 => u64::MAX,
                    1 => u64::MAX / RECORD_BYTES as u64 + 1,
                    2 => usize::MAX as u64 / RECORD_BYTES as u64 + 1,
                    _ => 1 + rng.next_u64() % (1 << 40),
                };
                bytes[14..22].copy_from_slice(&forged.to_be_bytes());
            }
            Corruption::PoisonFields => {
                let n_records = bytes.len().saturating_sub(HEADER_BYTES + 8) / RECORD_BYTES;
                if n_records == 0 {
                    let i = HEADER_BYTES.min(bytes.len() - 1);
                    bytes[i] ^= 0xFF;
                } else {
                    let hits = 1 + rng.next_u64() % 8;
                    for _ in 0..hits {
                        let r = (rng.next_u64() as usize) % n_records;
                        let f = (rng.next_u64() as usize) % 5;
                        let off = HEADER_BYTES + r * RECORD_BYTES + 1 + 4 * f;
                        let pattern: f32 = match rng.next_u64() % 3 {
                            0 => f32::NAN,
                            1 => f32::INFINITY,
                            _ => f32::NEG_INFINITY,
                        };
                        bytes[off..off + 4].copy_from_slice(&pattern.to_be_bytes());
                    }
                }
            }
            Corruption::CorruptKind => {
                let n_records = bytes.len().saturating_sub(HEADER_BYTES + 8) / RECORD_BYTES;
                if n_records == 0 {
                    bytes[0] ^= 0xFF;
                } else {
                    let r = (rng.next_u64() as usize) % n_records;
                    bytes[HEADER_BYTES + r * RECORD_BYTES] = 2 + (rng.next_u64() % 254) as u8;
                }
            }
            Corruption::RandomBytes => {
                let len = (rng.next_u64() as usize) % 512;
                bytes = (0..len).map(|_| rng.next_u64() as u8).collect();
            }
        }
        // ~75% of the time, recompute the trailer so the corruption is
        // checksum-consistent: the decoder's field validation — not the
        // checksum — has to be the thing that stops it.
        let checksum_fixed = bytes.len() > 8 && !rng.next_u64().is_multiple_of(4);
        if checksum_fixed {
            let body = bytes.len() - 8;
            let sum = fnv1a(&bytes[..body]);
            let tail = bytes.len();
            bytes[tail - 8..].copy_from_slice(&sum.to_be_bytes());
        }
        MutatedVolume {
            case,
            class,
            checksum_fixed,
            bytes,
        }
    }

    /// Iterator over cases `0..n`.
    pub fn corpus(&self, n: u64) -> impl Iterator<Item = MutatedVolume> + '_ {
        (0..n).map(move |case| self.mutate(case))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_volume;
    use crate::scan::ScanResult;

    fn clean_volume() -> Vec<u8> {
        use bda_letkf::{ObsKind, Observation};

        let mut rng = SplitMix64::new(7);
        let obs: Vec<Observation<f32>> = (0..40)
            .map(|i| Observation {
                kind: if i % 3 == 0 {
                    ObsKind::DopplerVelocity
                } else {
                    ObsKind::Reflectivity
                },
                x: rng.uniform_in(0.0, 128_000.0),
                y: rng.uniform_in(0.0, 128_000.0),
                z: rng.uniform_in(100.0, 16_000.0),
                value: rng.uniform_in(-10.0, 40.0) as f32,
                error_sd: 5.0,
            })
            .collect();
        let scan = ScanResult {
            time: 30.0,
            obs,
            n_reflectivity: 0,
            n_doppler: 0,
            n_clear_air: 0,
            raw_bytes: 0,
        };
        encode_volume(&scan).to_vec()
    }

    #[test]
    fn mutator_is_deterministic() {
        let clean = clean_volume();
        let a = VolumeMutator::new(&clean, 42);
        let b = VolumeMutator::new(&clean, 42);
        for case in 0..64 {
            let (x, y) = (a.mutate(case), b.mutate(case));
            assert_eq!(x.bytes, y.bytes, "case {case} not reproducible");
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    fn corpus_covers_every_class() {
        let clean = clean_volume();
        let m = VolumeMutator::new(&clean, 1);
        let mut seen = std::collections::HashSet::new();
        for v in m.corpus(256) {
            seen.insert(format!("{:?}", v.class));
        }
        assert_eq!(seen.len(), CLASSES.len(), "classes seen: {seen:?}");
    }

    #[test]
    fn most_mutations_actually_change_the_bytes() {
        let clean = clean_volume();
        let m = VolumeMutator::new(&clean, 9);
        let changed = m.corpus(128).filter(|v| v.bytes != clean).count();
        assert!(changed > 120, "only {changed}/128 mutants differ");
    }
}
