//! Beam geometry: range, azimuth, elevation and visibility.

use crate::config::RadarConfig;

/// Polar coordinates of a target relative to the radar.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BeamCoords {
    /// Slant range, m.
    pub range: f64,
    /// Azimuth, degrees in [0, 360), math convention (0 = +x, 90 = +y).
    pub azimuth_deg: f64,
    /// Elevation angle, degrees.
    pub elevation_deg: f64,
    /// Unit vector from radar to target (beam direction).
    pub dir: (f64, f64, f64),
}

/// Compute beam coordinates from the radar to a point.
pub fn beam_to(cfg: &RadarConfig, x: f64, y: f64, z: f64) -> BeamCoords {
    let dx = x - cfg.x;
    let dy = y - cfg.y;
    let dz = z - cfg.z;
    let rh = dx.hypot(dy);
    let range = rh.hypot(dz);
    let azimuth_deg = dy.atan2(dx).to_degrees().rem_euclid(360.0);
    let elevation_deg = dz.atan2(rh).to_degrees();
    let dir = if range > 0.0 {
        (dx / range, dy / range, dz / range)
    } else {
        (0.0, 0.0, 1.0)
    };
    BeamCoords {
        range,
        azimuth_deg,
        elevation_deg,
        dir,
    }
}

/// Why a cell is not observed (drives the Fig. 6b hatched no-data regions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invisibility {
    OutOfRange,
    BelowLowestBeam,
    ConeOfSilence,
    Blocked,
}

/// Check visibility of a point; `Ok(coords)` if observable.
pub fn visibility(cfg: &RadarConfig, x: f64, y: f64, z: f64) -> Result<BeamCoords, Invisibility> {
    let b = beam_to(cfg, x, y, z);
    if b.range > cfg.range_max {
        return Err(Invisibility::OutOfRange);
    }
    if b.elevation_deg < cfg.elev_min_deg {
        return Err(Invisibility::BelowLowestBeam);
    }
    if b.elevation_deg > cfg.elev_max_deg {
        return Err(Invisibility::ConeOfSilence);
    }
    for s in &cfg.blockage {
        let in_sector = if s.az_start_deg <= s.az_end_deg {
            b.azimuth_deg >= s.az_start_deg && b.azimuth_deg < s.az_end_deg
        } else {
            // Sector wrapping through 0 degrees.
            b.azimuth_deg >= s.az_start_deg || b.azimuth_deg < s.az_end_deg
        };
        if in_sector && b.elevation_deg < s.blocked_below_elev_deg {
            return Err(Invisibility::Blocked);
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BlockageSector;

    fn radar() -> RadarConfig {
        RadarConfig::mp_pawr_bda2021()
    }

    #[test]
    fn range_and_azimuth_basic() {
        let c = radar();
        let b = beam_to(&c, c.x + 3000.0, c.y + 4000.0, c.z);
        assert!((b.range - 5000.0).abs() < 1e-9);
        assert!((b.azimuth_deg - 53.130).abs() < 0.01);
        assert!(b.elevation_deg.abs() < 1e-9);
    }

    #[test]
    fn azimuth_wraps_into_0_360() {
        let c = radar();
        let b = beam_to(&c, c.x + 1000.0, c.y - 1000.0, c.z);
        assert!((b.azimuth_deg - 315.0).abs() < 1e-9);
    }

    #[test]
    fn direction_is_unit_vector() {
        let c = radar();
        let b = beam_to(&c, c.x + 5000.0, c.y - 2000.0, c.z + 3000.0);
        let norm = (b.dir.0.powi(2) + b.dir.1.powi(2) + b.dir.2.powi(2)).sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_invisible() {
        let c = radar();
        let r = visibility(&c, c.x + 100_000.0, c.y, 2000.0);
        assert_eq!(r.unwrap_err(), Invisibility::OutOfRange);
    }

    #[test]
    fn cone_of_silence_above_radar() {
        let c = radar();
        let r = visibility(&c, c.x + 100.0, c.y, 10_000.0);
        assert_eq!(r.unwrap_err(), Invisibility::ConeOfSilence);
    }

    #[test]
    fn below_lowest_beam_far_away() {
        let c = radar();
        // 50 km out at 100 m height: elevation ~ 0.08 deg < 0.8 deg.
        let r = visibility(&c, c.x + 50_000.0, c.y, 100.0);
        assert_eq!(r.unwrap_err(), Invisibility::BelowLowestBeam);
    }

    #[test]
    fn midlevel_midrange_visible() {
        let c = radar();
        let r = visibility(&c, c.x + 20_000.0, c.y + 5_000.0, 3000.0);
        assert!(r.is_ok());
    }

    #[test]
    fn blockage_sector_blocks_low_beams_only() {
        let c = radar();
        // Sector 200-215 deg blocked below 2 deg elevation.
        let az = 207.5_f64.to_radians();
        let (dx, dy) = (az.cos() * 20_000.0, az.sin() * 20_000.0);
        // Low target in the sector: blocked.
        let low = visibility(&c, c.x + dx, c.y + dy, 400.0);
        assert_eq!(low.unwrap_err(), Invisibility::Blocked);
        // High target in the same sector: visible (above the obstacle).
        let high = visibility(&c, c.x + dx, c.y + dy, 3000.0);
        assert!(high.is_ok());
    }

    #[test]
    fn wrapping_blockage_sector() {
        let mut c = radar();
        c.blockage = vec![BlockageSector {
            az_start_deg: 350.0,
            az_end_deg: 10.0,
            blocked_below_elev_deg: 5.0,
        }];
        // Azimuth 0 (due +x), low: inside the wrapped sector.
        let r = visibility(&c, c.x + 20_000.0, c.y, 1000.0);
        assert_eq!(r.unwrap_err(), Invisibility::Blocked);
        // Azimuth 90: outside.
        let r2 = visibility(&c, c.x, c.y + 20_000.0, 1000.0);
        assert!(r2.is_ok());
    }
}
