//! Forward observation operators: model state → radar observables.
//!
//! These are applied both to the nature run (with noise, by the scanner) and
//! to every ensemble member (noise-free, producing the `H(x_m)` equivalents
//! the LETKF consumes).

use crate::config::RadarConfig;
use crate::geometry::beam_to;
use crate::reflectivity::{fall_speed, to_dbz, z_total};
use bda_grid::GridSpec;
use bda_letkf::{ObsKind, Observation};
use bda_num::Real;
use bda_scale::{BaseState, ModelState};
use rayon::prelude::*;

/// Hydrometeor water contents (g/m^3) at a cell.
fn contents<T: Real>(
    state: &ModelState<T>,
    base: &BaseState<T>,
    i: isize,
    j: isize,
    k: usize,
) -> (f64, f64, f64) {
    let rho = base.rho0[k].f64();
    let g = |q: T| (rho * q.f64().max(0.0)) * 1000.0;
    (
        g(state.qr.at(i, j, k)),
        g(state.qs.at(i, j, k)),
        g(state.qg.at(i, j, k)),
    )
}

/// Model-equivalent reflectivity (dBZ) at a cell.
pub fn h_reflectivity<T: Real>(
    state: &ModelState<T>,
    base: &BaseState<T>,
    i: usize,
    j: usize,
    k: usize,
    floor_dbz: f64,
) -> f64 {
    let (r, s, g) = contents(state, base, i as isize, j as isize, k);
    to_dbz(z_total(r, s, g), floor_dbz)
}

/// Model-equivalent Doppler velocity (m/s, positive away from the radar) at
/// a cell: radial projection of the wind minus the reflectivity-weighted
/// hydrometeor fall speed.
pub fn h_doppler<T: Real>(
    state: &ModelState<T>,
    base: &BaseState<T>,
    grid: &GridSpec,
    radar: &RadarConfig,
    i: usize,
    j: usize,
    k: usize,
) -> f64 {
    let ii = i as isize;
    let jj = j as isize;
    // Cell-center winds from the staggered faces (clamped at the domain
    // edge so the operator never reads potentially stale halos).
    let ip = ((i + 1).min(grid.nx - 1)) as isize;
    let jp = ((j + 1).min(grid.ny - 1)) as isize;
    let u = (state.u.at(ii, jj, k).f64() + state.u.at(ip, jj, k).f64()) * 0.5;
    let v = (state.v.at(ii, jj, k).f64() + state.v.at(ii, jp, k).f64()) * 0.5;
    let w_below = state.w.at(ii, jj, k).f64();
    let w_above = if k + 1 < grid.nz() {
        state.w.at(ii, jj, k + 1).f64()
    } else {
        0.0
    };
    let w = 0.5 * (w_below + w_above);

    let (r, s, g) = contents(state, base, ii, jj, k);
    let vt = fall_speed(r, s, g);

    let b = beam_to(
        radar,
        grid.x_center(i),
        grid.y_center(j),
        grid.vertical.z_center[k],
    );
    u * b.dir.0 + v * b.dir.1 + (w - vt) * b.dir.2
}

/// Evaluate the forward operator for one member over a set of observations.
pub fn member_equivalents<T: Real>(
    obs: &[Observation<T>],
    state: &ModelState<T>,
    base: &BaseState<T>,
    grid: &GridSpec,
    radar: &RadarConfig,
    floor_dbz: f64,
) -> Vec<T> {
    obs.iter()
        .map(|o| {
            // Ingest QC rejects out-of-domain observations; if one slips
            // through anyway, a neutral equivalent (clear-air floor / zero
            // radial velocity) is returned instead of aborting the member.
            let v = match grid.cell_of(o.x, o.y) {
                Some((i, j)) => {
                    let k = grid.vertical.level_of(o.z);
                    match o.kind {
                        ObsKind::Reflectivity => h_reflectivity(state, base, i, j, k, floor_dbz),
                        ObsKind::DopplerVelocity => h_doppler(state, base, grid, radar, i, j, k),
                    }
                }
                None => match o.kind {
                    ObsKind::Reflectivity => floor_dbz,
                    ObsKind::DopplerVelocity => 0.0,
                },
            };
            T::of(v)
        })
        .collect()
}

/// Model equivalents `hx[m][i]` for a whole ensemble, member-parallel.
pub fn ensemble_equivalents<T: Real>(
    obs: &[Observation<T>],
    members: &[ModelState<T>],
    base: &BaseState<T>,
    grid: &GridSpec,
    radar: &RadarConfig,
    floor_dbz: f64,
) -> Vec<Vec<T>> {
    let _timer = bda_num::timing::guard(bda_num::timing::Kernel::ObsOperator);
    members
        .par_iter()
        .map(|state| member_equivalents(obs, state, base, grid, radar, floor_dbz))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_scale::base::Sounding;

    fn setup() -> (GridSpec, BaseState<f64>, ModelState<f64>, RadarConfig) {
        let grid = GridSpec::reduced(12, 12, 10);
        let base = BaseState::from_sounding(&Sounding::convective(), &grid.vertical, 340.0);
        let state = ModelState::init_from_base(&grid, &base);
        let radar = RadarConfig::reduced(grid.lx(), grid.ly());
        (grid, base, state, radar)
    }

    #[test]
    fn dry_cell_reports_floor_reflectivity() {
        let (_, base, state, _) = setup();
        assert_eq!(h_reflectivity(&state, &base, 3, 3, 2, 5.0), 5.0);
    }

    #[test]
    fn rainy_cell_reports_high_reflectivity() {
        let (_, base, mut state, _) = setup();
        state.qr.set(3, 3, 2, 2e-3); // 2 g/kg
        let dbz = h_reflectivity(&state, &base, 3, 3, 2, 5.0);
        assert!(dbz > 40.0, "dbz = {dbz}");
    }

    /// Uniform-vertical grid so beam elevations are easy to reason about.
    fn flat_setup() -> (GridSpec, BaseState<f64>, ModelState<f64>, RadarConfig) {
        let grid = GridSpec::new(12, 12, 500.0, bda_grid::VerticalCoord::uniform(10, 5000.0));
        let base = BaseState::from_sounding(&Sounding::convective(), &grid.vertical, 340.0);
        let state = ModelState::init_from_base(&grid, &base);
        let radar = RadarConfig::reduced(grid.lx(), grid.ly());
        (grid, base, state, radar)
    }

    #[test]
    fn doppler_sees_radial_wind_component() {
        let (grid, base, mut state, radar) = flat_setup();
        // Uniform eastward wind; a cell due east of the radar sees +u, a
        // cell due west sees -u, a cell due north sees ~0. Radar at (3000,
        // 3000); low level keeps the beam nearly horizontal.
        state.u.fill(10.0);
        state.v.fill(0.0);
        let k = 1; // z = 750 m
        let (ie, je) = grid.cell_of(5250.0, 2750.0).unwrap();
        let (iw, jw) = grid.cell_of(750.0, 2750.0).unwrap();
        let (in_, jn) = grid.cell_of(2750.0, 5250.0).unwrap();
        let ve = h_doppler(&state, &base, &grid, &radar, ie, je, k);
        let vw = h_doppler(&state, &base, &grid, &radar, iw, jw, k);
        let vn = h_doppler(&state, &base, &grid, &radar, in_, jn, k);
        assert!(ve > 7.0, "east {ve}");
        assert!(vw < -7.0, "west {vw}");
        assert!(vn.abs() < 2.0, "north {vn}");
    }

    #[test]
    fn falling_rain_biases_doppler_downward_component() {
        let (grid, base, mut state, radar) = flat_setup();
        state.u.fill(0.0);
        state.v.fill(0.0);
        // Rainy cell well above the radar: the beam has a large positive
        // vertical component, so falling rain gives a *negative* radial
        // velocity contribution.
        let (i, j) = grid.cell_of(4750.0, 2750.0).unwrap();
        let k = 8; // z = 4250 m
        let clear = h_doppler(&state, &base, &grid, &radar, i, j, k);
        state.qr.set(i as isize, j as isize, k, 3e-3);
        let rainy = h_doppler(&state, &base, &grid, &radar, i, j, k);
        assert!(rainy < clear, "fall speed missing: {clear} -> {rainy}");
    }

    #[test]
    fn ensemble_equivalents_shape_and_variability() {
        let (grid, base, state, radar) = setup();
        let mut m1 = state.clone();
        let mut m2 = state.clone();
        m1.qr.set(5, 5, 3, 1e-3);
        m2.qr.set(5, 5, 3, 4e-3);
        let obs = vec![Observation {
            kind: ObsKind::Reflectivity,
            x: grid.x_center(5),
            y: grid.y_center(5),
            z: grid.vertical.z_center[3],
            value: 40.0,
            error_sd: 5.0,
        }];
        let hx = ensemble_equivalents(&obs, &[m1, m2], &base, &grid, &radar, 5.0);
        assert_eq!(hx.len(), 2);
        assert_eq!(hx[0].len(), 1);
        assert!(hx[1][0] > hx[0][0], "more rain must mean more dBZ");
    }
}
