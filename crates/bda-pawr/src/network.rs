//! Multi-radar networks — the paper's §8 outlook, implemented.
//!
//! "We have new MP-PAWRs installed in Osaka and Kobe, and the dual coverage
//! is available. Our recent simulation study ... suggested that multiple
//! PAWR coverage be beneficial for disastrous heavy rain prediction"
//! (Maejima et al. 2022). A [`RadarNetwork`] scans the same truth with
//! several radars, merging their observations: regions seen by two radars
//! get two Doppler components (different beam angles resolve more of the
//! wind vector) and fewer blind spots.

use crate::config::RadarConfig;
use crate::geometry::visibility;
use crate::scan::{PawrSimulator, ScanResult};
use bda_grid::GridSpec;
use bda_letkf::Observation;
use bda_num::Real;
use bda_scale::{BaseState, ModelState};

/// A network of phased-array radars observing one domain.
#[derive(Clone, Debug)]
pub struct RadarNetwork {
    radars: Vec<PawrSimulator>,
}

impl RadarNetwork {
    pub fn new(configs: Vec<RadarConfig>) -> Self {
        assert!(!configs.is_empty(), "network needs at least one radar");
        Self {
            radars: configs.into_iter().map(PawrSimulator::new).collect(),
        }
    }

    /// The Expo-2025 style dual coverage: two radars on opposite sides of
    /// the domain, each covering most of it, overlapping in the middle.
    pub fn dual(grid: &GridSpec) -> Self {
        let mut a = RadarConfig::reduced(grid.lx(), grid.ly());
        let mut b = a.clone();
        a.x = grid.lx() * 0.3;
        a.y = grid.ly() * 0.35;
        b.x = grid.lx() * 0.7;
        b.y = grid.ly() * 0.65;
        a.range_max = grid.lx() * 0.75;
        b.range_max = grid.lx() * 0.75;
        Self::new(vec![a, b])
    }

    pub fn n_radars(&self) -> usize {
        self.radars.len()
    }

    pub fn radars(&self) -> &[PawrSimulator] {
        &self.radars
    }

    /// Scan the truth with every radar, merging the observation sets (each
    /// radar draws independent noise) and returning the per-radar
    /// observation counts needed to route the merged set back through the
    /// per-radar forward operators.
    pub fn scan_with_counts<T: Real>(
        &self,
        state: &ModelState<T>,
        base: &BaseState<T>,
        grid: &GridSpec,
        time: f64,
        seed: u64,
    ) -> (ScanResult<T>, Vec<usize>) {
        let mut merged: Option<ScanResult<T>> = None;
        let mut counts = Vec::with_capacity(self.radars.len());
        for (ri, sim) in self.radars.iter().enumerate() {
            let scan = sim.scan(state, base, grid, time, seed.wrapping_add(ri as u64 * 7919));
            counts.push(scan.obs.len());
            merged = Some(match merged {
                None => scan,
                Some(mut acc) => {
                    acc.obs.extend(scan.obs);
                    acc.n_reflectivity += scan.n_reflectivity;
                    acc.n_doppler += scan.n_doppler;
                    acc.n_clear_air += scan.n_clear_air;
                    acc.raw_bytes += scan.raw_bytes;
                    acc
                }
            });
        }
        // A network with zero radars merges to an empty scan rather than
        // aborting the cycle.
        let merged = merged.unwrap_or_else(|| ScanResult {
            time,
            obs: Vec::new(),
            n_reflectivity: 0,
            n_doppler: 0,
            n_clear_air: 0,
            raw_bytes: 0,
        });
        (merged, counts)
    }

    /// Merged scan without the count bookkeeping.
    pub fn scan<T: Real>(
        &self,
        state: &ModelState<T>,
        base: &BaseState<T>,
        grid: &GridSpec,
        time: f64,
        seed: u64,
    ) -> ScanResult<T> {
        self.scan_with_counts(state, base, grid, time, seed).0
    }

    /// Model equivalents for the merged observation set: each observation
    /// must be evaluated with the beam geometry of the radar that took it.
    /// Observations are ordered radar-by-radar, matching [`Self::scan`].
    pub fn ensemble_equivalents<T: Real>(
        &self,
        obs: &[Observation<T>],
        per_radar_counts: &[usize],
        members: &[ModelState<T>],
        base: &BaseState<T>,
        grid: &GridSpec,
        floor_dbz: f64,
    ) -> Vec<Vec<T>> {
        assert_eq!(per_radar_counts.len(), self.radars.len());
        assert_eq!(per_radar_counts.iter().sum::<usize>(), obs.len());
        let mut hx: Vec<Vec<T>> = vec![Vec::with_capacity(obs.len()); members.len()];
        let mut offset = 0;
        for (sim, &count) in self.radars.iter().zip(per_radar_counts) {
            let slice = &obs[offset..offset + count];
            let part = crate::operator::ensemble_equivalents(
                slice, members, base, grid, &sim.cfg, floor_dbz,
            );
            for (m, p) in hx.iter_mut().zip(part) {
                m.extend(p);
            }
            offset += count;
        }
        hx
    }

    /// Per-radar observation counts for one truth scan.
    pub fn scan_counts<T: Real>(
        &self,
        state: &ModelState<T>,
        base: &BaseState<T>,
        grid: &GridSpec,
        time: f64,
        seed: u64,
    ) -> Vec<usize> {
        self.scan_with_counts(state, base, grid, time, seed).1
    }

    /// Combined visibility mask at height `z`: a cell is covered if any
    /// radar sees it.
    pub fn visibility_mask(&self, grid: &GridSpec, z: f64) -> Vec<bool> {
        let mut mask = vec![false; grid.nx * grid.ny];
        for sim in &self.radars {
            for (m, v) in mask.iter_mut().zip(sim.visibility_mask(grid, z)) {
                *m |= v;
            }
        }
        mask
    }

    /// Number of radars covering each cell at height `z` (dual-Doppler
    /// retrieval needs >= 2).
    pub fn coverage_count(&self, grid: &GridSpec, z: f64) -> Vec<u8> {
        let mut count = vec![0u8; grid.nx * grid.ny];
        for sim in &self.radars {
            for j in 0..grid.ny {
                for i in 0..grid.nx {
                    if visibility(&sim.cfg, grid.x_center(i), grid.y_center(j), z).is_ok() {
                        count[j * grid.nx + i] += 1;
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_scale::base::Sounding;

    fn setup() -> (GridSpec, BaseState<f64>, ModelState<f64>) {
        let grid = GridSpec::reduced(16, 16, 10);
        let base = BaseState::from_sounding(&Sounding::convective(), &grid.vertical, 340.0);
        let state = ModelState::init_from_base(&grid, &base);
        (grid, base, state)
    }

    #[test]
    fn dual_network_covers_more_than_either_radar() {
        let (grid, _, _) = setup();
        let net = RadarNetwork::dual(&grid);
        assert_eq!(net.n_radars(), 2);
        let combined: usize = net
            .visibility_mask(&grid, 2000.0)
            .iter()
            .filter(|&&v| v)
            .count();
        for sim in net.radars() {
            let single: usize = sim
                .visibility_mask(&grid, 2000.0)
                .iter()
                .filter(|&&v| v)
                .count();
            assert!(combined >= single, "network lost coverage");
        }
        // Overlap exists: some cells see both radars (dual Doppler).
        let dual_cells = net
            .coverage_count(&grid, 2000.0)
            .iter()
            .filter(|&&c| c >= 2)
            .count();
        assert!(dual_cells > 0, "no dual-Doppler overlap region");
    }

    #[test]
    fn merged_scan_counts_add_up() {
        let (grid, base, mut state) = setup();
        state.qr.set(8, 8, 2, 2e-3);
        let net = RadarNetwork::dual(&grid);
        let scan = net.scan(&state, &base, &grid, 30.0, 5);
        let counts = net.scan_counts(&state, &base, &grid, 30.0, 5);
        assert_eq!(counts.len(), 2);
        assert_eq!(counts.iter().sum::<usize>(), scan.obs.len());
        assert!(scan.raw_bytes > net.radars()[0].cfg.raw_scan_bytes);
    }

    #[test]
    fn rain_cell_in_overlap_gets_two_doppler_views() {
        let (grid, base, mut state) = setup();
        // Rain near the domain center, in the dual-coverage overlap, with
        // wind so Doppler is informative.
        state.u.fill(8.0);
        let (i, j) = grid.cell_of(grid.lx() / 2.0, grid.ly() / 2.0).unwrap();
        for k in 1..4 {
            state.qr.set(i as isize, j as isize, k, 3e-3);
        }
        let net = RadarNetwork::dual(&grid);
        let scan = net.scan(&state, &base, &grid, 0.0, 9);
        // Doppler observations at the same location from the two radars
        // should report *different* radial velocities (different geometry).
        let x = grid.x_center(i);
        let y = grid.y_center(j);
        let dopplers: Vec<f64> = scan
            .obs
            .iter()
            .filter(|o| {
                o.kind == bda_letkf::ObsKind::DopplerVelocity
                    && (o.x - x).abs() < 1.0
                    && (o.y - y).abs() < 1.0
            })
            .map(|o| o.value)
            .collect();
        assert!(dopplers.len() >= 2, "no dual-Doppler pair: {dopplers:?}");
    }

    #[test]
    fn equivalents_respect_per_radar_geometry() {
        let (grid, base, mut state) = setup();
        state.u.fill(10.0);
        let (i, j) = grid.cell_of(grid.lx() / 2.0, grid.ly() / 2.0).unwrap();
        for k in 1..4 {
            state.qr.set(i as isize, j as isize, k, 3e-3);
        }
        let net = RadarNetwork::dual(&grid);
        let scan = net.scan(&state, &base, &grid, 0.0, 11);
        let counts = net.scan_counts(&state, &base, &grid, 0.0, 11);
        let hx = net.ensemble_equivalents(&scan.obs, &counts, &[state.clone()], &base, &grid, 5.0);
        assert_eq!(hx.len(), 1);
        assert_eq!(hx[0].len(), scan.obs.len());
        // Noise-free equivalents from the truth must be close to the noisy
        // observations (within a few sigma) for Doppler.
        for (o, &h) in scan.obs.iter().zip(&hx[0]) {
            if o.kind == bda_letkf::ObsKind::DopplerVelocity {
                assert!(
                    (o.value - h).abs() < 4.0 * 3.0,
                    "equivalent {h} far from obs {}",
                    o.value
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_network_rejected() {
        let _ = RadarNetwork::new(vec![]);
    }
}
