//! Radar configuration.

use serde::{Deserialize, Serialize};

/// An azimuthal blockage sector: beams with azimuth in `[az_start, az_end)`
/// (degrees, math convention from +x axis) are blocked below
/// `blocked_below_elev` degrees — terrain or buildings near the radar.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockageSector {
    pub az_start_deg: f64,
    pub az_end_deg: f64,
    pub blocked_below_elev_deg: f64,
}

/// MP-PAWR configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RadarConfig {
    /// Radar position in domain coordinates, m.
    pub x: f64,
    pub y: f64,
    /// Antenna height above the surface, m.
    pub z: f64,
    /// Maximum observing range, m (MP-PAWR: 60 km).
    pub range_max: f64,
    /// Minimum beam elevation, deg (ground clutter limit).
    pub elev_min_deg: f64,
    /// Maximum beam elevation, deg (the cone of silence lies above).
    pub elev_max_deg: f64,
    /// Scan repeat interval, s (MP-PAWR: 30 s).
    pub scan_interval: f64,
    /// Reflectivity noise SD, dBZ (matches the LETKF's assumed 5 dBZ).
    pub noise_reflectivity_dbz: f64,
    /// Doppler noise SD, m/s (matches the LETKF's assumed 3 m/s).
    pub noise_doppler_ms: f64,
    /// Minimum detectable / clear-air reflectivity floor, dBZ. Cells whose
    /// true reflectivity is below this report the floor value ("no rain"
    /// observations, which the BDA system assimilates to suppress spurious
    /// convection).
    pub min_detectable_dbz: f64,
    /// Reflectivity threshold above which Doppler velocity is measurable
    /// (needs scatterers), dBZ.
    pub doppler_min_dbz: f64,
    /// Blockage sectors.
    pub blockage: Vec<BlockageSector>,
    /// Raw (polar, pre-regridding) data volume per full scan, bytes — the
    /// quantity JIT-DT ships (~100 MB per 30-s scan in the paper).
    pub raw_scan_bytes: usize,
}

impl RadarConfig {
    /// The MP-PAWR as deployed for BDA2021, placed relative to the paper's
    /// 128 km x 128 km inner domain (Fig. 3a: the radar sits near the domain
    /// center at Saitama University).
    pub fn mp_pawr_bda2021() -> Self {
        Self {
            x: 64_000.0,
            y: 64_000.0,
            z: 30.0,
            range_max: 60_000.0,
            elev_min_deg: 0.8,
            elev_max_deg: 60.0,
            scan_interval: 30.0,
            noise_reflectivity_dbz: 5.0,
            noise_doppler_ms: 3.0,
            min_detectable_dbz: 5.0,
            doppler_min_dbz: 15.0,
            blockage: vec![BlockageSector {
                az_start_deg: 200.0,
                az_end_deg: 215.0,
                blocked_below_elev_deg: 2.0,
            }],
            raw_scan_bytes: 100 * 1024 * 1024,
        }
    }

    /// Scaled-down radar for reduced-domain tests: same geometry rules,
    /// centered on the given domain extent.
    pub fn reduced(lx: f64, ly: f64) -> Self {
        let mut c = Self::mp_pawr_bda2021();
        c.x = lx / 2.0;
        c.y = ly / 2.0;
        c.range_max = (lx.max(ly)) * 0.6;
        c.raw_scan_bytes = 2 * 1024 * 1024;
        c
    }

    pub fn validate(&self) {
        assert!(self.range_max > 0.0);
        assert!(self.elev_min_deg >= 0.0 && self.elev_max_deg > self.elev_min_deg);
        assert!(self.scan_interval > 0.0);
        assert!(self.min_detectable_dbz <= self.doppler_min_dbz);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bda2021_matches_paper_numbers() {
        let c = RadarConfig::mp_pawr_bda2021();
        assert_eq!(c.range_max, 60_000.0);
        assert_eq!(c.scan_interval, 30.0);
        assert_eq!(c.noise_reflectivity_dbz, 5.0);
        assert_eq!(c.noise_doppler_ms, 3.0);
        assert_eq!(c.raw_scan_bytes, 100 * 1024 * 1024);
        c.validate();
    }

    #[test]
    fn reduced_is_centered() {
        let c = RadarConfig::reduced(12_000.0, 12_000.0);
        assert_eq!(c.x, 6000.0);
        assert_eq!(c.y, 6000.0);
        assert!(c.range_max >= 6000.0);
        c.validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_inverted_elevations() {
        let mut c = RadarConfig::mp_pawr_bda2021();
        c.elev_max_deg = 0.1;
        c.validate();
    }
}
