//! # bda-pawr — multi-parameter phased array weather radar simulator
//!
//! Stand-in for the MP-PAWR at Saitama University (Takahashi et al. 2019)
//! that fed the BDA system: every 30 seconds it delivered a gap-free 3-D
//! volume of reflectivity and Doppler velocity out to 60 km, ~100 MB per
//! scan.
//!
//! This crate provides both halves of the radar's role in the workflow:
//!
//! * **Scanning** ([`scan`]) — observing a model "nature run" with real beam
//!   geometry: maximum range, elevation limits (cone of silence above the
//!   antenna, ground-clutter floor below the lowest beam), azimuthal
//!   blockage sectors, additive Gaussian observation noise with the paper's
//!   error standard deviations, and superobbing onto the 500-m analysis grid
//!   (Table 2: "Regridded observation resolution 500 m").
//! * **Forward operator** ([`operator`]) — the same reflectivity/Doppler
//!   observation operators applied to each ensemble member to produce the
//!   model equivalents `H(x_m)` the LETKF consumes. Reflectivity uses
//!   Lin-type Z–q power laws over rain/snow/graupel; Doppler projects the
//!   3-D wind (minus hydrometeor fall speed) onto the beam direction.
//! * **Volume codec** ([`codec`]) — a binary file format for scan volumes
//!   with the real system's data-rate characteristics, feeding the JIT-DT
//!   transfer simulation.

pub mod codec;
pub mod config;
pub mod fuzz;
pub mod geometry;
pub mod network;
pub mod operator;
pub mod reflectivity;
pub mod scan;

pub use codec::{decode_volume, decode_volume_salvage, encode_volume, SalvageReport, ValueBounds};
pub use config::RadarConfig;
pub use fuzz::{Corruption, MutatedVolume, VolumeMutator};
pub use network::RadarNetwork;
pub use scan::{PawrSimulator, ScanResult};
