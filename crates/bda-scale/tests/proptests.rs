//! Property-based invariants of the model physics and dynamics.

use bda_grid::halo::fill_periodic;
use bda_grid::{Field3, GridSpec, VerticalCoord};
use bda_num::SplitMix64;
use bda_scale::advect::{scalar_advection_upwind, Metrics};
use bda_scale::base::{BaseState, Sounding};
use bda_scale::microphys::{column_microphysics, ColumnView, MicrophysParams};
use bda_scale::surface::{bulk_fluxes, SurfaceParams};
use proptest::prelude::*;

fn random_field(nx: usize, nz: usize, scale: f64, seed: u64) -> Field3<f64> {
    let mut rng = SplitMix64::new(seed);
    let mut f = Field3::from_fn(nx, nx, nz, 2, |_, _, _| rng.gaussian(0.0, scale));
    fill_periodic(&mut f);
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Upwind advection conserves total rho0-weighted mass on a periodic
    /// domain for arbitrary smooth-ish wind and tracer fields.
    #[test]
    fn upwind_advection_conserves_mass(
        seed in any::<u64>(),
        wind in 0.5f64..15.0,
    ) {
        let nx = 8;
        let nz = 6;
        let grid = GridSpec::new(nx, nx, 500.0, VerticalCoord::uniform(nz, 3000.0));
        let m = Metrics::<f64>::new(&grid);
        let mut q = random_field(nx, nz, 1.0, seed);
        // Positive tracer.
        for x in q.raw_mut() {
            *x = x.abs();
        }
        fill_periodic(&mut q);
        let u = random_field(nx, nz, wind, seed ^ 1);
        let v = random_field(nx, nz, wind, seed ^ 2);
        let mut w = random_field(nx, nz, 1.0, seed ^ 3);
        // Zero the surface face (rigid lower boundary).
        for i in 0..nx as isize {
            for j in 0..nx as isize {
                w.set(i, j, 0, 0.0);
            }
        }
        fill_periodic(&mut w);
        let rho0 = vec![1.0; nz];
        let rho0f = vec![1.0; nz + 1];
        let mut tend = Field3::zeros(nx, nx, nz, 2);
        scalar_advection_upwind(&q, &u, &v, &w, &rho0, &rho0f, &m, &mut tend);
        // Total tendency integrates to zero (flux form on periodic domain,
        // uniform dz, rho0 = 1, zero boundary fluxes).
        let mut total = 0.0;
        for i in 0..nx as isize {
            for j in 0..nx as isize {
                for k in 0..nz {
                    total += tend.at(i, j, k);
                }
            }
        }
        prop_assert!(total.abs() < 1e-9, "mass tendency {total}");
    }

    /// Microphysics preserves non-negativity and column water balance for
    /// arbitrary (physical) inputs.
    #[test]
    fn microphysics_water_budget_closes(
        seed in any::<u64>(),
        qv_boost in 0.0f64..8e-3,
        qr0 in 0.0f64..5e-3,
        dt in 0.5f64..5.0,
    ) {
        let nz = 15;
        let vc = VerticalCoord::stretched(nz, 12_000.0, 1.06);
        let base = BaseState::<f64>::from_sounding(&Sounding::convective(), &vc, 340.0);
        let dz: Vec<f64> = (0..nz).map(|k| vc.dz(k)).collect();
        let mut rng = SplitMix64::new(seed);
        let mut th = vec![0.0; nz];
        let pi = vec![0.0; nz];
        let mut qv: Vec<f64> = (0..nz).map(|k| base.qv0[k] + rng.uniform_in(0.0, qv_boost)).collect();
        let mut qc: Vec<f64> = (0..nz).map(|_| rng.uniform_in(0.0, 1e-3)).collect();
        let mut qr: Vec<f64> = (0..nz).map(|_| rng.uniform_in(0.0, qr0)).collect();
        let mut qi: Vec<f64> = (0..nz).map(|_| rng.uniform_in(0.0, 5e-4)).collect();
        let mut qs: Vec<f64> = (0..nz).map(|_| rng.uniform_in(0.0, 5e-4)).collect();
        let mut qg: Vec<f64> = (0..nz).map(|_| rng.uniform_in(0.0, 5e-4)).collect();
        let column_water = |qv: &[f64], qc: &[f64], qr: &[f64], qi: &[f64], qs: &[f64], qg: &[f64]| -> f64 {
            (0..nz)
                .map(|k| base.rho0[k] * dz[k] * (qv[k] + qc[k] + qr[k] + qi[k] + qs[k] + qg[k]))
                .sum()
        };
        let before = column_water(&qv, &qc, &qr, &qi, &qs, &qg);
        let mut precip = 0.0;
        {
            let mut col = ColumnView {
                theta: &mut th,
                pi: &pi,
                qv: &mut qv,
                qc: &mut qc,
                qr: &mut qr,
                qi: &mut qi,
                qs: &mut qs,
                qg: &mut qg,
            };
            for _ in 0..5 {
                let r = column_microphysics(
                    &mut col,
                    &base,
                    &MicrophysParams::default(),
                    &dz,
                    dt,
                    &mut vec![0.0; dz.len()],
                );
                precip += r.rain_rate_mmh / 3600.0 * dt;
                prop_assert!(r.rain_rate_mmh >= 0.0);
            }
        }
        let after = column_water(&qv, &qc, &qr, &qi, &qs, &qg);
        let imbalance = (before - after - precip).abs();
        prop_assert!(
            imbalance < 1e-3 * before.max(1e-6),
            "water budget broken: {before} -> {after} + precip {precip}"
        );
        for k in 0..nz {
            for v in [qv[k], qc[k], qr[k], qi[k], qs[k], qg[k]] {
                prop_assert!(v >= 0.0 && v.is_finite());
            }
            prop_assert!(th[k].is_finite());
        }
    }

    /// Bulk surface fluxes always have drag >= 0, and heat flux signed by
    /// the air-sea temperature contrast.
    #[test]
    fn surface_fluxes_signed_correctly(
        t_air in 280.0f64..310.0,
        t_sfc in 280.0f64..310.0,
        wind in 0.0f64..25.0,
        qv1 in 0.0f64..0.02,
    ) {
        let f = bulk_fluxes(
            &SurfaceParams::default(),
            wind,
            0.0,
            t_air,
            qv1,
            50.0,
            t_sfc,
            101_325.0,
        );
        prop_assert!(f.drag >= 0.0 && f.drag.is_finite());
        // theta_sfc ~ t_sfc / exner(p_sfc); contrast dominated by t diff.
        if t_sfc > t_air + 2.0 {
            prop_assert!(f.theta_flux > 0.0, "warm surface must heat: {f:?}");
        }
        if t_sfc < t_air - 2.0 {
            prop_assert!(f.theta_flux < 0.0, "cold surface must cool: {f:?}");
        }
    }

    /// The balanced base state is hydrostatic and physical for a wide range
    /// of soundings.
    #[test]
    fn base_state_always_physical(
        theta_sfc in 285.0f64..305.0,
        lapse in 1.0e-3f64..6.0e-3,
        rh in 0.0f64..0.95,
    ) {
        let mut snd = Sounding::convective();
        snd.theta_surface = theta_sfc;
        snd.dtheta_dz_tropo = lapse;
        snd.rh_surface = rh;
        let vc = VerticalCoord::stretched(30, 16_400.0, 1.05);
        let b = BaseState::<f64>::from_sounding(&snd, &vc, 340.0);
        for k in 0..30 {
            prop_assert!(b.p0[k] > 0.0 && b.p0[k] < 102_000.0);
            prop_assert!(b.rho0[k] > 0.0 && b.rho0[k] < 1.5);
            prop_assert!(b.t0[k] > 150.0 && b.t0[k] < 330.0);
            prop_assert!(b.qv0[k] >= 0.0 && b.qv0[k] < 0.04);
            if k > 0 {
                prop_assert!(b.p0[k] < b.p0[k - 1], "pressure not monotone");
            }
        }
    }
}
