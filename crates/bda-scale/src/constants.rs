//! Physical constants (SI units), matching the values SCALE-RM uses.

/// Dry-air gas constant, J kg^-1 K^-1.
pub const RD: f64 = 287.04;
/// Water-vapor gas constant, J kg^-1 K^-1.
pub const RV: f64 = 461.5;
/// Specific heat of dry air at constant pressure, J kg^-1 K^-1.
pub const CP: f64 = 1004.64;
/// Specific heat of dry air at constant volume, J kg^-1 K^-1.
pub const CV: f64 = CP - RD;
/// Gravitational acceleration, m s^-2.
pub const GRAV: f64 = 9.80665;
/// Reference surface pressure, Pa.
pub const P00: f64 = 100_000.0;
/// Latent heat of vaporization at 0 C, J kg^-1.
pub const LV: f64 = 2.501e6;
/// Latent heat of fusion, J kg^-1.
pub const LF: f64 = 0.334e6;
/// Latent heat of sublimation, J kg^-1.
pub const LS: f64 = LV + LF;
/// Triple-point / melting temperature, K.
pub const T0: f64 = 273.15;
/// `RD / CP`.
pub const KAPPA: f64 = RD / CP;
/// Ratio `RD / RV` used in saturation humidity.
pub const EPS_VAP: f64 = RD / RV;
/// Von Karman constant.
pub const KARMAN: f64 = 0.4;
/// Density of liquid water, kg m^-3.
pub const RHO_WATER: f64 = 1000.0;

/// Saturation vapor pressure over liquid water (Tetens formula), Pa.
pub fn e_sat_liquid(t_kelvin: f64) -> f64 {
    let tc = t_kelvin - T0;
    611.2 * (17.67 * tc / (tc + 243.5)).exp()
}

/// Saturation vapor pressure over ice (Tetens, ice constants), Pa.
pub fn e_sat_ice(t_kelvin: f64) -> f64 {
    let tc = t_kelvin - T0;
    611.2 * (21.875 * tc / (tc + 265.5)).exp()
}

/// Saturation mixing ratio over liquid at temperature `t` (K) and pressure
/// `p` (Pa), kg/kg.
pub fn q_sat_liquid(t_kelvin: f64, p: f64) -> f64 {
    let es = e_sat_liquid(t_kelvin).min(0.99 * p);
    EPS_VAP * es / (p - (1.0 - EPS_VAP) * es)
}

/// Saturation mixing ratio over ice, kg/kg.
pub fn q_sat_ice(t_kelvin: f64, p: f64) -> f64 {
    let es = e_sat_ice(t_kelvin).min(0.99 * p);
    EPS_VAP * es / (p - (1.0 - EPS_VAP) * es)
}

/// Exner function `(p / p00)^kappa`.
pub fn exner(p: f64) -> f64 {
    (p / P00).powf(KAPPA)
}

/// Pressure from Exner function.
pub fn pressure_from_exner(pi: f64) -> f64 {
    P00 * pi.powf(1.0 / KAPPA)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_pressure_reference_points() {
        // ~611 Pa at 0 C, ~2.3 kPa at 20 C, ~7.4 kPa at 40 C.
        assert!((e_sat_liquid(T0) - 611.2).abs() < 1.0);
        let e20 = e_sat_liquid(T0 + 20.0);
        assert!((2000.0..2500.0).contains(&e20), "e_sat(20C) = {e20}");
        let e40 = e_sat_liquid(T0 + 40.0);
        assert!((7000.0..7800.0).contains(&e40), "e_sat(40C) = {e40}");
    }

    #[test]
    fn ice_saturation_below_liquid_below_freezing() {
        for dt in [-40.0, -20.0, -5.0] {
            let t = T0 + dt;
            assert!(e_sat_ice(t) < e_sat_liquid(t), "at {dt} C");
        }
        // Equal (by construction nearly) at the triple point.
        assert!((e_sat_ice(T0) - e_sat_liquid(T0)).abs() < 2.0);
    }

    #[test]
    fn q_sat_magnitudes() {
        // ~15 g/kg at 20 C / 1000 hPa is the textbook number.
        let q = q_sat_liquid(T0 + 20.0, 101_325.0);
        assert!((0.013..0.017).contains(&q), "q_sat = {q}");
        // Decreases with pressure drop? No — increases as p decreases.
        assert!(q_sat_liquid(T0 + 20.0, 80_000.0) > q);
    }

    #[test]
    fn exner_roundtrip() {
        for p in [30_000.0, 70_000.0, 101_325.0] {
            let pi = exner(p);
            assert!((pressure_from_exner(pi) - p).abs() / p < 1e-12);
        }
        assert!((exner(P00) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn cv_consistency() {
        assert!((CV - (CP - RD)).abs() < 1e-12);
        assert!((KAPPA - 0.2857).abs() < 1e-3);
    }
}
