//! Ensemble containers and Rayon-parallel propagation.
//!
//! The paper runs a 1000-member analysis ensemble (parts <1-1>/<1-2>) and an
//! 11-member forecast ensemble (part <2>), distributing members over Fugaku
//! nodes. Here members are distributed over Rayon workers: each worker owns a
//! private [`Model`] engine (workspaces included) and steps its members,
//! which is exactly the shared-nothing structure of the MPI original.

use crate::base::BaseState;
use crate::config::ModelConfig;
use crate::model::{BlowUp, Boundary, Model};
use crate::state::{ModelState, PrognosticVar};
use bda_num::{Real, SplitMix64};
use rayon::prelude::*;

/// An ensemble of model states sharing one configuration and base state.
pub struct Ensemble<T> {
    pub members: Vec<ModelState<T>>,
}

impl<T: Real> Ensemble<T> {
    /// Spin up an ensemble of perturbed copies of `initial`.
    pub fn from_perturbations(
        initial: &ModelState<T>,
        cfg: &ModelConfig,
        n: usize,
        seed: u64,
        theta_sd: f64,
        qv_sd: f64,
    ) -> Self {
        let parent = SplitMix64::new(seed);
        let members = (0..n)
            .into_par_iter()
            .map(|m| {
                let mut state = initial.clone();
                let mut rng = parent.split(m as u64);
                state.perturb(&cfg.grid, &mut rng, theta_sd, qv_sd);
                state
            })
            .collect();
        Self { members }
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Ensemble mean over all prognostic fields.
    pub fn mean(&self) -> ModelState<T> {
        assert!(!self.members.is_empty());
        let mut acc = self.members[0].clone();
        let w = T::one() / T::of_usize(self.members.len());
        acc.blend(w, &self.members[0], T::zero()); // scale first member by w
        for m in &self.members[1..] {
            acc.blend(T::one(), m, w);
        }
        acc.time = self.members[0].time;
        acc
    }

    /// Domain-mean ensemble spread (standard deviation) of one variable —
    /// the filter-health diagnostic.
    pub fn spread(&self, var: PrognosticVar) -> f64 {
        let k = self.members.len();
        assert!(k >= 2);
        let flats: Vec<Vec<T>> = self.members.iter().map(|m| m.to_flat(&[var])).collect();
        let n = flats[0].len();
        let mut total = 0.0;
        for idx in 0..n {
            let mean: f64 = flats.iter().map(|f| f[idx].f64()).sum::<f64>() / k as f64;
            let var_: f64 = flats
                .iter()
                .map(|f| (f[idx].f64() - mean).powi(2))
                .sum::<f64>()
                / (k - 1) as f64;
            total += var_;
        }
        (total / n as f64).sqrt()
    }

    /// Propagate every member forward by `duration` seconds in parallel.
    ///
    /// `boundary` builds a per-member boundary condition (e.g. from the
    /// matching outer-domain member, Fig. 3b). Returns the first blow-up if
    /// any member fails.
    pub fn forecast(
        &mut self,
        cfg: &ModelConfig,
        base: &BaseState<T>,
        duration: f64,
        boundary: impl Fn(usize) -> Boundary<T> + Sync,
    ) -> Result<(), BlowUp> {
        self.forecast_with(cfg, base, duration, |idx, engine| {
            engine.boundary = boundary(idx);
        })
    }

    /// Like [`Self::forecast`], but with full per-member engine setup —
    /// boundary conditions, trigger schedules, physics parameter
    /// perturbations (stochastic-physics style member diversity).
    pub fn forecast_with(
        &mut self,
        cfg: &ModelConfig,
        base: &BaseState<T>,
        duration: f64,
        setup: impl Fn(usize, &mut Model<T>) + Sync,
    ) -> Result<(), BlowUp> {
        let results: Vec<Result<(), BlowUp>> = self
            .members
            .par_iter_mut()
            .enumerate()
            .map(|(idx, member)| {
                let mut engine = Model::from_parts(cfg.clone(), base.clone());
                setup(idx, &mut engine);
                let placeholder =
                    engine.swap_state(std::mem::replace(member, ModelState::zeros(&cfg.grid)));
                drop(placeholder);
                let r = engine.integrate(duration);
                *member = engine.swap_state(ModelState::zeros(&cfg.grid));
                r
            })
            .collect();
        results.into_iter().collect()
    }

    /// Select members by index (e.g. the paper's "10 analyses randomly
    /// chosen from the 1000-member ensemble" + the mean for part <2>).
    pub fn subset(&self, indices: &[usize]) -> Ensemble<T> {
        Ensemble {
            members: indices.iter().map(|&i| self.members[i].clone()).collect(),
        }
    }

    /// Draw `k` distinct random member indices.
    pub fn random_member_indices(&self, k: usize, rng: &mut SplitMix64) -> Vec<usize> {
        rng.sample_distinct(self.members.len(), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Sounding;
    use crate::config::PhysicsSwitches;

    fn setup() -> (ModelConfig, BaseState<f32>, ModelState<f32>) {
        let mut cfg = ModelConfig::reduced(10, 10, 8);
        cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
        cfg.davies_width = 0;
        cfg.physics = PhysicsSwitches::dry();
        let base =
            BaseState::from_sounding(&Sounding::dry_stable(), &cfg.grid.vertical, cfg.sound_speed);
        let init = ModelState::init_from_base(&cfg.grid, &base);
        (cfg, base, init)
    }

    #[test]
    fn perturbed_members_differ_from_each_other() {
        let (cfg, _, init) = setup();
        let ens = Ensemble::from_perturbations(&init, &cfg, 4, 1, 0.5, 1e-4);
        assert_eq!(ens.size(), 4);
        let a = ens.members[0].to_flat(&[PrognosticVar::Theta]);
        let b = ens.members[1].to_flat(&[PrognosticVar::Theta]);
        assert_ne!(a, b);
    }

    #[test]
    fn ensemble_generation_is_reproducible() {
        let (cfg, _, init) = setup();
        let e1 = Ensemble::from_perturbations(&init, &cfg, 3, 9, 0.5, 1e-4);
        let e2 = Ensemble::from_perturbations(&init, &cfg, 3, 9, 0.5, 1e-4);
        for (a, b) in e1.members.iter().zip(&e2.members) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mean_of_identical_members_is_the_member() {
        let (_, _, init) = setup();
        let ens = Ensemble {
            members: vec![init.clone(), init.clone(), init.clone()],
        };
        let mean = ens.mean();
        let a = mean.to_flat(&[PrognosticVar::U, PrognosticVar::Qv]);
        let b = init.to_flat(&[PrognosticVar::U, PrognosticVar::Qv]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn spread_is_positive_for_perturbed_ensemble_and_zero_for_clones() {
        let (cfg, _, init) = setup();
        let ens = Ensemble::from_perturbations(&init, &cfg, 5, 2, 0.5, 1e-4);
        assert!(ens.spread(PrognosticVar::Theta) > 0.0);
        let clones = Ensemble {
            members: vec![init.clone(), init.clone()],
        };
        assert_eq!(clones.spread(PrognosticVar::Theta), 0.0);
    }

    #[test]
    fn parallel_forecast_advances_all_members() {
        let (cfg, base, init) = setup();
        let mut ens = Ensemble::from_perturbations(&init, &cfg, 3, 4, 0.3, 5e-5);
        ens.forecast(&cfg, &base, 5.0, |_| Boundary::BaseState)
            .expect("forecast failed");
        for m in &ens.members {
            assert!((m.time - 5.0).abs() < 1e-9);
            assert!(m.all_finite());
        }
    }

    #[test]
    fn forecast_divergence_grows_spread() {
        // Chaos seed: perturbed members integrated forward should not
        // collapse onto each other.
        let (cfg, base, mut init) = setup();
        let g = cfg.grid.clone();
        init.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 2000.0, 1000.0, 2.0);
        let mut ens = Ensemble::from_perturbations(&init, &cfg, 3, 8, 0.3, 5e-5);
        let before = ens.spread(PrognosticVar::W);
        ens.forecast(&cfg, &base, 30.0, |_| Boundary::BaseState)
            .unwrap();
        let after = ens.spread(PrognosticVar::W);
        assert!(after > 0.0);
        // w spread must have been created from zero initial w spread... the
        // perturbations had no w component, so any w spread is dynamical.
        assert!(after >= before);
    }

    #[test]
    fn subset_and_random_indices() {
        let (cfg, _, init) = setup();
        let ens = Ensemble::from_perturbations(&init, &cfg, 6, 3, 0.2, 1e-5);
        let mut rng = SplitMix64::new(1);
        let idx = ens.random_member_indices(3, &mut rng);
        assert_eq!(idx.len(), 3);
        let sub = ens.subset(&idx);
        assert_eq!(sub.size(), 3);
        assert_eq!(sub.members[0], ens.members[idx[0]]);
    }
}
