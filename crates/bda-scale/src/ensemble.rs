//! Ensemble containers and Rayon-parallel propagation.
//!
//! The paper runs a 1000-member analysis ensemble (parts <1-1>/<1-2>) and an
//! 11-member forecast ensemble (part <2>), distributing members over Fugaku
//! nodes. Here members are distributed over Rayon workers: each worker owns a
//! private [`Model`] engine (workspaces included) and steps its members,
//! which is exactly the shared-nothing structure of the MPI original.

use crate::base::BaseState;
use crate::config::ModelConfig;
use crate::model::{BlowUp, Boundary, Model};
use crate::state::{ModelState, PrognosticVar};
use bda_grid::GridSpec;
use bda_num::{Real, SplitMix64};
use rayon::prelude::*;

/// Why a member forecast is unusable — the typed replacement for the old
/// "one member panics the whole ensemble" behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberError {
    /// The model integration itself blew up (non-finite state mid-run).
    BlowUp { member: usize, step: usize },
    /// The post-forecast health scan found a non-finite value in `var`.
    NonFinite { member: usize, var: PrognosticVar },
    /// The member's integration panicked (e.g. a zero pivot in an implicit
    /// solver fed non-finite values); the panic was caught at the member
    /// boundary and the member's state is discarded.
    Panicked { member: usize },
}

impl MemberError {
    /// Which member this error belongs to.
    pub fn member(&self) -> usize {
        match *self {
            MemberError::BlowUp { member, .. } => member,
            MemberError::NonFinite { member, .. } => member,
            MemberError::Panicked { member } => member,
        }
    }
}

impl std::fmt::Display for MemberError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MemberError::BlowUp { member, step } => {
                write!(f, "member {member} blew up at step {step}")
            }
            MemberError::NonFinite { member, var } => {
                write!(f, "member {member} has non-finite {}", var.name())
            }
            MemberError::Panicked { member } => {
                write!(f, "member {member} panicked during integration")
            }
        }
    }
}

impl std::error::Error for MemberError {}

/// Per-member verdict from the post-forecast health scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemberHealth {
    /// Finite and inside all physical bounds.
    Healthy,
    /// Finite but outside a physical bound for `var` — still assimilated
    /// (the observations pull it back) but counted and reported.
    Suspect(PrognosticVar),
    /// Forecast failed or non-finite: quarantined from the analysis and
    /// respawned afterwards.
    Dead,
}

/// Physical-plausibility bounds for the member health scan. Values are
/// deliberately generous: they flag states that are numerically alive but
/// meteorologically absurd (a 150 m/s updraft), not marginal ones.
#[derive(Clone, Copy, Debug)]
pub struct HealthBounds {
    /// |u|, |v| ceiling, m/s.
    pub max_horizontal_wind: f64,
    /// |w| ceiling, m/s.
    pub max_w: f64,
    /// |theta'| ceiling, K.
    pub max_theta_pert: f64,
    /// Mixing-ratio ceiling for all water species, kg/kg.
    pub max_moisture: f64,
}

impl Default for HealthBounds {
    fn default() -> Self {
        Self {
            max_horizontal_wind: 150.0,
            max_w: 100.0,
            max_theta_pert: 60.0,
            max_moisture: 0.1,
        }
    }
}

/// Result of scanning every member after a forecast step.
#[derive(Clone, Debug)]
pub struct EnsembleHealth {
    /// Verdict per member, index-aligned with the ensemble.
    pub status: Vec<MemberHealth>,
    /// The typed errors behind every `Dead` verdict.
    pub errors: Vec<MemberError>,
}

impl EnsembleHealth {
    /// Indices of members that survive into the analysis.
    pub fn alive(&self) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&m| self.status[m] != MemberHealth::Dead)
            .collect()
    }

    /// Indices of quarantined members (to be respawned).
    pub fn dead(&self) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&m| self.status[m] == MemberHealth::Dead)
            .collect()
    }

    /// Survival flags, index-aligned with the ensemble.
    pub fn alive_flags(&self) -> Vec<bool> {
        self.status
            .iter()
            .map(|s| *s != MemberHealth::Dead)
            .collect()
    }

    pub fn n_alive(&self) -> usize {
        self.status
            .iter()
            .filter(|s| **s != MemberHealth::Dead)
            .count()
    }

    pub fn n_suspect(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, MemberHealth::Suspect(_)))
            .count()
    }

    pub fn all_healthy(&self) -> bool {
        self.status.iter().all(|s| *s == MemberHealth::Healthy)
    }

    /// One-line summary for cycle reports, e.g. `alive 3/4, dead [1]`.
    pub fn summary(&self) -> String {
        let mut s = format!("alive {}/{}", self.n_alive(), self.status.len());
        if self.n_suspect() > 0 {
            s.push_str(&format!(", suspect {}", self.n_suspect()));
        }
        let dead = self.dead();
        if !dead.is_empty() {
            s.push_str(&format!(", dead {dead:?}"));
        }
        s
    }
}

/// An ensemble of model states sharing one configuration and base state.
pub struct Ensemble<T> {
    pub members: Vec<ModelState<T>>,
}

impl<T: Real> Ensemble<T> {
    /// Spin up an ensemble of perturbed copies of `initial`.
    pub fn from_perturbations(
        initial: &ModelState<T>,
        cfg: &ModelConfig,
        n: usize,
        seed: u64,
        theta_sd: f64,
        qv_sd: f64,
    ) -> Self {
        let parent = SplitMix64::new(seed);
        let members = (0..n)
            .into_par_iter()
            .map(|m| {
                let mut state = initial.clone();
                let mut rng = parent.split(m as u64);
                state.perturb(&cfg.grid, &mut rng, theta_sd, qv_sd);
                state
            })
            .collect();
        Self { members }
    }

    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Ensemble mean over all prognostic fields.
    pub fn mean(&self) -> ModelState<T> {
        assert!(!self.members.is_empty());
        let mut acc = self.members[0].clone();
        let w = T::one() / T::of_usize(self.members.len());
        acc.blend(w, &self.members[0], T::zero()); // scale first member by w
        for m in &self.members[1..] {
            acc.blend(T::one(), m, w);
        }
        acc.time = self.members[0].time;
        acc
    }

    /// Domain-mean ensemble spread (standard deviation) of one variable —
    /// the filter-health diagnostic.
    pub fn spread(&self, var: PrognosticVar) -> f64 {
        let k = self.members.len();
        assert!(k >= 2);
        let flats: Vec<Vec<T>> = self.members.iter().map(|m| m.to_flat(&[var])).collect();
        let n = flats[0].len();
        let mut total = 0.0;
        for idx in 0..n {
            let mean: f64 = flats.iter().map(|f| f[idx].f64()).sum::<f64>() / k as f64;
            let var_: f64 = flats
                .iter()
                .map(|f| (f[idx].f64() - mean).powi(2))
                .sum::<f64>()
                / (k - 1) as f64;
            total += var_;
        }
        (total / n as f64).sqrt()
    }

    /// Propagate every member forward by `duration` seconds in parallel.
    ///
    /// `boundary` builds a per-member boundary condition (e.g. from the
    /// matching outer-domain member, Fig. 3b). Returns the first blow-up if
    /// any member fails.
    pub fn forecast(
        &mut self,
        cfg: &ModelConfig,
        base: &BaseState<T>,
        duration: f64,
        boundary: impl Fn(usize) -> Boundary<T> + Sync,
    ) -> Result<(), BlowUp> {
        self.forecast_with(cfg, base, duration, |idx, engine| {
            engine.boundary = boundary(idx);
        })
    }

    /// Like [`Self::forecast`], but with full per-member engine setup —
    /// boundary conditions, trigger schedules, physics parameter
    /// perturbations (stochastic-physics style member diversity).
    pub fn forecast_with(
        &mut self,
        cfg: &ModelConfig,
        base: &BaseState<T>,
        duration: f64,
        setup: impl Fn(usize, &mut Model<T>) + Sync,
    ) -> Result<(), BlowUp> {
        self.forecast_each(cfg, base, duration, setup)
            .into_iter()
            .try_for_each(|r| {
                r.map_err(|e| match e {
                    MemberError::BlowUp { step, .. } => BlowUp { step },
                    _ => BlowUp { step: 0 },
                })
            })
    }

    /// Propagate every member, keeping per-member outcomes: a failed member
    /// never aborts (or panics) the rest of the ensemble. This is the entry
    /// point for the quarantine path — pair it with [`Self::health_scan`].
    pub fn forecast_members(
        &mut self,
        cfg: &ModelConfig,
        base: &BaseState<T>,
        duration: f64,
        boundary: impl Fn(usize) -> Boundary<T> + Sync,
    ) -> Vec<Result<(), MemberError>> {
        self.forecast_each(cfg, base, duration, |idx, engine| {
            engine.boundary = boundary(idx);
        })
    }

    fn forecast_each(
        &mut self,
        cfg: &ModelConfig,
        base: &BaseState<T>,
        duration: f64,
        setup: impl Fn(usize, &mut Model<T>) + Sync,
    ) -> Vec<Result<(), MemberError>> {
        self.members
            .par_iter_mut()
            .enumerate()
            .map(|(idx, member)| {
                // Panic isolation at the member boundary: an implicit solver
                // fed NaN can panic (zero pivot), and without the catch one
                // poisoned member would tear down the whole Rayon forecast.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut engine = Model::from_parts(cfg.clone(), base.clone());
                    setup(idx, &mut engine);
                    let placeholder =
                        engine.swap_state(std::mem::replace(member, ModelState::zeros(&cfg.grid)));
                    drop(placeholder);
                    let r = engine.integrate(duration);
                    *member = engine.swap_state(ModelState::zeros(&cfg.grid));
                    r
                }));
                match caught {
                    Ok(Ok(())) => Ok(()),
                    Ok(Err(BlowUp { step })) => Err(MemberError::BlowUp { member: idx, step }),
                    // The member's state died with the panicked engine; the
                    // zeroed placeholder left behind is quarantined anyway.
                    Err(_) => Err(MemberError::Panicked { member: idx }),
                }
            })
            .collect()
    }

    /// Classify every member Healthy / Suspect / Dead after a
    /// [`Self::forecast_members`] round.
    ///
    /// A member is Dead if its forecast errored or any prognostic field
    /// contains a non-finite value; Suspect if finite but outside the
    /// physical bounds; Healthy otherwise. The scan is one pass per field
    /// (`Field3::interior_finite_max_abs`) and runs in parallel over
    /// members, so it is cheap relative to the forecast itself.
    pub fn health_scan(
        &self,
        results: &[Result<(), MemberError>],
        bounds: &HealthBounds,
    ) -> EnsembleHealth {
        assert_eq!(results.len(), self.members.len());
        let verdicts: Vec<(MemberHealth, Option<MemberError>)> = self
            .members
            .par_iter()
            .enumerate()
            .map(|(m, state)| {
                if let Err(e) = results[m] {
                    return (MemberHealth::Dead, Some(e));
                }
                let mut suspect: Option<PrognosticVar> = None;
                for var in PrognosticVar::ALL {
                    let max_abs = match state.field(var).interior_finite_max_abs() {
                        None => {
                            return (
                                MemberHealth::Dead,
                                Some(MemberError::NonFinite { member: m, var }),
                            )
                        }
                        Some(v) => v.f64(),
                    };
                    let bound = match var {
                        PrognosticVar::U | PrognosticVar::V => Some(bounds.max_horizontal_wind),
                        PrognosticVar::W => Some(bounds.max_w),
                        PrognosticVar::Theta => Some(bounds.max_theta_pert),
                        v if v.is_moisture() => Some(bounds.max_moisture),
                        _ => None, // Pi / TKE: finiteness only
                    };
                    if suspect.is_none() {
                        if let Some(b) = bound {
                            if max_abs > b {
                                suspect = Some(var);
                            }
                        }
                    }
                }
                match suspect {
                    Some(var) => (MemberHealth::Suspect(var), None),
                    None => (MemberHealth::Healthy, None),
                }
            })
            .collect();
        EnsembleHealth {
            status: verdicts.iter().map(|(h, _)| *h).collect(),
            errors: verdicts.into_iter().filter_map(|(_, e)| e).collect(),
        }
    }

    /// Ensemble mean over a subset of members (the surviving quorum).
    pub fn mean_of(&self, indices: &[usize]) -> ModelState<T> {
        assert!(!indices.is_empty(), "mean_of over empty member set");
        let w = T::one() / T::of_usize(indices.len());
        let first = &self.members[indices[0]];
        let mut acc = first.clone();
        acc.blend(w, first, T::zero()); // scale first member by w
        for &i in &indices[1..] {
            acc.blend(T::one(), &self.members[i], w);
        }
        acc.time = first.time;
        acc
    }

    /// Replace a quarantined member with `template` (normally the analysis
    /// mean of the surviving members) plus fresh re-inflated perturbations,
    /// so the ensemble self-heals over subsequent cycles. Draws from `rng`
    /// (checkpoint the stream for bit-for-bit restart).
    pub fn respawn(
        &mut self,
        member: usize,
        template: &ModelState<T>,
        grid: &GridSpec,
        rng: &mut SplitMix64,
        theta_sd: f64,
        qv_sd: f64,
    ) {
        let mut state = template.clone();
        state.perturb(grid, rng, theta_sd, qv_sd);
        state.time = template.time;
        self.members[member] = state;
    }

    /// Fault injection: poison one member with a NaN (health-scan path).
    pub fn inject_nan(&mut self, member: usize) {
        let nan = T::zero() / T::zero();
        self.members[member].w.set(0, 0, 0, nan);
    }

    /// Fault injection: seed one member with an infinite wind so its next
    /// forecast blows up (forecast-error path).
    pub fn inject_blowup(&mut self, member: usize) {
        self.members[member].u.set(0, 0, 0, T::infinity());
    }

    /// Select members by index (e.g. the paper's "10 analyses randomly
    /// chosen from the 1000-member ensemble" + the mean for part <2>).
    pub fn subset(&self, indices: &[usize]) -> Ensemble<T> {
        Ensemble {
            members: indices.iter().map(|&i| self.members[i].clone()).collect(),
        }
    }

    /// Draw `k` distinct random member indices.
    pub fn random_member_indices(&self, k: usize, rng: &mut SplitMix64) -> Vec<usize> {
        rng.sample_distinct(self.members.len(), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::Sounding;
    use crate::config::PhysicsSwitches;

    fn setup() -> (ModelConfig, BaseState<f32>, ModelState<f32>) {
        let mut cfg = ModelConfig::reduced(10, 10, 8);
        cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
        cfg.davies_width = 0;
        cfg.physics = PhysicsSwitches::dry();
        let base =
            BaseState::from_sounding(&Sounding::dry_stable(), &cfg.grid.vertical, cfg.sound_speed);
        let init = ModelState::init_from_base(&cfg.grid, &base);
        (cfg, base, init)
    }

    #[test]
    fn perturbed_members_differ_from_each_other() {
        let (cfg, _, init) = setup();
        let ens = Ensemble::from_perturbations(&init, &cfg, 4, 1, 0.5, 1e-4);
        assert_eq!(ens.size(), 4);
        let a = ens.members[0].to_flat(&[PrognosticVar::Theta]);
        let b = ens.members[1].to_flat(&[PrognosticVar::Theta]);
        assert_ne!(a, b);
    }

    #[test]
    fn ensemble_generation_is_reproducible() {
        let (cfg, _, init) = setup();
        let e1 = Ensemble::from_perturbations(&init, &cfg, 3, 9, 0.5, 1e-4);
        let e2 = Ensemble::from_perturbations(&init, &cfg, 3, 9, 0.5, 1e-4);
        for (a, b) in e1.members.iter().zip(&e2.members) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mean_of_identical_members_is_the_member() {
        let (_, _, init) = setup();
        let ens = Ensemble {
            members: vec![init.clone(), init.clone(), init.clone()],
        };
        let mean = ens.mean();
        let a = mean.to_flat(&[PrognosticVar::U, PrognosticVar::Qv]);
        let b = init.to_flat(&[PrognosticVar::U, PrognosticVar::Qv]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn spread_is_positive_for_perturbed_ensemble_and_zero_for_clones() {
        let (cfg, _, init) = setup();
        let ens = Ensemble::from_perturbations(&init, &cfg, 5, 2, 0.5, 1e-4);
        assert!(ens.spread(PrognosticVar::Theta) > 0.0);
        let clones = Ensemble {
            members: vec![init.clone(), init.clone()],
        };
        assert_eq!(clones.spread(PrognosticVar::Theta), 0.0);
    }

    #[test]
    fn parallel_forecast_advances_all_members() {
        let (cfg, base, init) = setup();
        let mut ens = Ensemble::from_perturbations(&init, &cfg, 3, 4, 0.3, 5e-5);
        let results = ens.forecast_members(&cfg, &base, 5.0, |_| Boundary::BaseState);
        assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
        for m in &ens.members {
            assert!((m.time - 5.0).abs() < 1e-9);
            assert!(m.all_finite());
        }
    }

    #[test]
    fn forecast_divergence_grows_spread() {
        // Chaos seed: perturbed members integrated forward should not
        // collapse onto each other.
        let (cfg, base, mut init) = setup();
        let g = cfg.grid.clone();
        init.add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 2000.0, 1000.0, 2.0);
        let mut ens = Ensemble::from_perturbations(&init, &cfg, 3, 8, 0.3, 5e-5);
        let before = ens.spread(PrognosticVar::W);
        let results = ens.forecast_members(&cfg, &base, 30.0, |_| Boundary::BaseState);
        assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
        let after = ens.spread(PrognosticVar::W);
        assert!(after > 0.0);
        // w spread must have been created from zero initial w spread... the
        // perturbations had no w component, so any w spread is dynamical.
        assert!(after >= before);
    }

    #[test]
    fn health_scan_flags_nan_member_as_dead() {
        let (cfg, _, init) = setup();
        let mut ens = Ensemble::from_perturbations(&init, &cfg, 4, 4, 0.3, 5e-5);
        ens.inject_nan(2);
        let results = vec![Ok(()); 4];
        let health = ens.health_scan(&results, &HealthBounds::default());
        assert_eq!(health.status[2], MemberHealth::Dead);
        assert_eq!(health.dead(), vec![2]);
        assert_eq!(health.alive(), vec![0, 1, 3]);
        assert_eq!(health.n_alive(), 3);
        assert_eq!(health.alive_flags(), vec![true, true, false, true]);
        assert_eq!(
            health.errors,
            vec![MemberError::NonFinite {
                member: 2,
                var: PrognosticVar::W
            }]
        );
        assert!(health.summary().contains("dead [2]"));
    }

    #[test]
    fn health_scan_flags_absurd_but_finite_member_as_suspect() {
        let (cfg, _, init) = setup();
        let mut ens = Ensemble::from_perturbations(&init, &cfg, 3, 4, 0.3, 5e-5);
        ens.members[1].w.set(1, 1, 1, 500.0); // finite but unphysical
        let results = vec![Ok(()); 3];
        let health = ens.health_scan(&results, &HealthBounds::default());
        assert_eq!(health.status[1], MemberHealth::Suspect(PrognosticVar::W));
        // Suspect members still count as alive (assimilation pulls them back).
        assert_eq!(health.n_alive(), 3);
        assert_eq!(health.n_suspect(), 1);
        assert!(!health.all_healthy());
    }

    #[test]
    fn blown_up_forecast_is_a_member_error_not_a_panic() {
        let (cfg, base, init) = setup();
        let mut ens = Ensemble::from_perturbations(&init, &cfg, 3, 4, 0.3, 5e-5);
        ens.inject_blowup(1);
        let results = ens.forecast_members(&cfg, &base, 5.0, |_| Boundary::BaseState);
        assert!(results[0].is_ok());
        // Depending on where the non-finite value bites, the failure is a
        // detected blow-up or a caught panic — either way it is member 1's
        // typed error, not a process abort.
        assert_eq!(results[1].unwrap_err().member(), 1);
        assert!(results[2].is_ok());
        let health = ens.health_scan(&results, &HealthBounds::default());
        assert_eq!(health.dead(), vec![1]);
    }

    #[test]
    fn respawn_replaces_dead_member_with_perturbed_template() {
        let (cfg, _, init) = setup();
        let mut ens = Ensemble::from_perturbations(&init, &cfg, 3, 4, 0.3, 5e-5);
        ens.inject_nan(0);
        let template = ens.mean_of(&[1, 2]);
        let mut rng = SplitMix64::new(77);
        ens.respawn(0, &template, &cfg.grid, &mut rng, 0.3, 5e-5);
        assert!(ens.members[0].all_finite());
        // Perturbed, so not identical to the template...
        assert_ne!(
            ens.members[0].to_flat(&[PrognosticVar::Theta]),
            template.to_flat(&[PrognosticVar::Theta])
        );
        // ...and deterministic given the same RNG stream.
        let mut ens2 = Ensemble {
            members: vec![ens.members[1].clone(), ens.members[2].clone()],
        };
        let mut rng2 = SplitMix64::new(77);
        ens2.respawn(0, &template, &cfg.grid, &mut rng2, 0.3, 5e-5);
        assert_eq!(ens.members[0], ens2.members[0]);
    }

    #[test]
    fn mean_of_subset_matches_full_mean_on_full_index_set() {
        let (cfg, _, init) = setup();
        let ens = Ensemble::from_perturbations(&init, &cfg, 4, 9, 0.3, 5e-5);
        let a = ens.mean().to_flat(&[PrognosticVar::Theta]);
        let b = ens.mean_of(&[0, 1, 2, 3]).to_flat(&[PrognosticVar::Theta]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn subset_and_random_indices() {
        let (cfg, _, init) = setup();
        let ens = Ensemble::from_perturbations(&init, &cfg, 6, 3, 0.2, 1e-5);
        let mut rng = SplitMix64::new(1);
        let idx = ens.random_member_indices(3, &mut rng);
        assert_eq!(idx.len(), 3);
        let sub = ens.subset(&idx);
        assert_eq!(sub.size(), 3);
        assert_eq!(sub.members[0], ens.members[idx[0]]);
    }
}
