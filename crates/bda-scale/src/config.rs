//! Model configuration, with defaults reproducing Table 3 of the paper.

use bda_grid::halo::HaloPolicy;
use bda_grid::GridSpec;
use serde::{Deserialize, Serialize};

/// Which physics parameterizations are active (Table 3's physics column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicsSwitches {
    /// Single-moment 6-category cloud microphysics (Tomita 2008 class).
    pub microphysics: bool,
    /// Two-band radiation (MSTRN-X stand-in).
    pub radiation: bool,
    /// Beljaars-type surface fluxes.
    pub surface_flux: bool,
    /// TKE boundary-layer mixing (MYNN level-2.5 class).
    pub boundary_layer: bool,
    /// Smagorinsky-type horizontal turbulence.
    pub turbulence: bool,
}

impl Default for PhysicsSwitches {
    fn default() -> Self {
        Self {
            microphysics: true,
            radiation: true,
            surface_flux: true,
            boundary_layer: true,
            turbulence: true,
        }
    }
}

impl PhysicsSwitches {
    /// Dynamics-only configuration for dry idealized tests.
    pub fn dry() -> Self {
        Self {
            microphysics: false,
            radiation: false,
            surface_flux: false,
            boundary_layer: false,
            turbulence: true,
        }
    }
}

/// Full model configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    pub grid: GridSpec,
    /// Time-integration step, s (Table 3: 0.4 s for the 500-m inner domain).
    pub dt: f64,
    /// Effective sound speed, m/s. SCALE uses the true ~340 m/s; a reduced
    /// value (the standard quasi-compressible approximation) relaxes the
    /// horizontal acoustic CFL for reduced-scale runs without altering the
    /// convective dynamics. Full-scale default keeps 340.
    pub sound_speed: f64,
    /// Halo filling for the lateral boundaries.
    pub halo: HaloPolicy,
    /// f-plane Coriolis parameter, s^-1 (35 N for the Kanto domain).
    pub coriolis_f: f64,
    /// Davies relaxation rim width in cells (0 disables the rim).
    pub davies_width: usize,
    /// Relaxation e-folding time for the Davies rim, s.
    pub davies_tau: f64,
    /// Smagorinsky constant.
    pub smagorinsky_cs: f64,
    /// Divergence damping coefficient (fraction of cs^2 dt), stabilizing the
    /// forward-backward horizontal acoustics.
    pub divergence_damping: f64,
    /// 4th-order horizontal hyperdiffusion coefficient (nondimensional,
    /// ~1e-3; applied to momentum and theta for grid-noise control).
    pub hyperdiffusion: f64,
    pub physics: PhysicsSwitches,
    /// Prescribed sea/land surface temperature, K.
    pub surface_temperature: f64,
}

impl ModelConfig {
    /// The paper's inner-domain configuration (Table 3): 500 m grid,
    /// 256 x 256 x 60, dt = 0.4 s, full physics.
    pub fn inner_bda2021() -> Self {
        Self {
            grid: GridSpec::inner_bda2021(),
            dt: 0.4,
            sound_speed: 340.0,
            halo: HaloPolicy::Clamp,
            coriolis_f: 2.0 * 7.2921e-5 * (35.0_f64).to_radians().sin(),
            davies_width: 10,
            davies_tau: 60.0,
            smagorinsky_cs: 0.18,
            divergence_damping: 0.05,
            hyperdiffusion: 1e-3,
            physics: PhysicsSwitches::default(),
            surface_temperature: 300.0,
        }
    }

    /// The paper's outer-domain configuration: 1.5 km grid driven by the
    /// JMA-style forcing, dt scaled with the grid spacing.
    pub fn outer_bda2021() -> Self {
        let mut c = Self::inner_bda2021();
        c.grid = GridSpec::outer_bda2021();
        c.dt = 1.2;
        c
    }

    /// A reduced configuration preserving the physical setup on a small grid
    /// for tests and live examples. Uses a moderately reduced sound speed so
    /// a larger `dt` stays acoustically stable.
    pub fn reduced(nx: usize, ny: usize, nz: usize) -> Self {
        let mut c = Self::inner_bda2021();
        c.grid = GridSpec::reduced(nx, ny, nz);
        c.sound_speed = 150.0;
        c.dt = 1.0;
        c.davies_width = if nx >= 16 { 3 } else { 0 };
        c
    }

    /// Largest stable dt for the forward-backward horizontal acoustics,
    /// `dx / (cs * sqrt(2))`, with a 0.9 safety factor.
    pub fn acoustic_dt_limit(&self) -> f64 {
        0.9 * self.grid.dx / (self.sound_speed * std::f64::consts::SQRT_2)
    }

    /// Panics if the configured dt violates the acoustic CFL.
    pub fn validate(&self) {
        assert!(
            self.dt <= self.acoustic_dt_limit(),
            "dt = {} exceeds horizontal acoustic limit {:.3} (dx = {}, cs = {})",
            self.dt,
            self.acoustic_dt_limit(),
            self.grid.dx,
            self.sound_speed
        );
        assert!(self.davies_width * 2 <= self.grid.nx.min(self.grid.ny));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let c = ModelConfig::inner_bda2021();
        assert_eq!(c.dt, 0.4);
        assert_eq!((c.grid.nx, c.grid.ny, c.grid.nz()), (256, 256, 60));
        assert_eq!(c.grid.dx, 500.0);
        assert!(c.physics.microphysics);
        assert!(c.physics.radiation);
        assert!(c.physics.surface_flux);
        assert!(c.physics.boundary_layer);
        assert!(c.physics.turbulence);
        c.validate();
    }

    #[test]
    fn inner_dt_within_acoustic_limit() {
        let c = ModelConfig::inner_bda2021();
        // 500 / (340 * 1.414) ~ 1.04 s > 0.4 s: the paper's dt is comfortably
        // stable under forward-backward acoustics.
        assert!(c.acoustic_dt_limit() > 0.4);
    }

    #[test]
    fn reduced_config_is_valid() {
        ModelConfig::reduced(24, 24, 20).validate();
        ModelConfig::reduced(8, 8, 10).validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_acoustically_unstable_dt() {
        let mut c = ModelConfig::reduced(16, 16, 10);
        c.dt = 100.0;
        c.validate();
    }

    #[test]
    fn dry_switches() {
        let p = PhysicsSwitches::dry();
        assert!(!p.microphysics && !p.radiation && !p.surface_flux && !p.boundary_layer);
        assert!(p.turbulence);
    }

    #[test]
    fn coriolis_at_35n_magnitude() {
        let c = ModelConfig::inner_bda2021();
        assert!((c.coriolis_f - 8.365e-5).abs() < 2e-6, "{}", c.coriolis_f);
    }
}
