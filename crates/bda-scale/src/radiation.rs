//! Two-band radiation stand-in for MSTRN-X (Sekiguchi & Nakajima 2008).
//!
//! The full k-distribution transfer code is far beyond what the 30-minute
//! convective forecasts of the paper are sensitive to; what matters for the
//! reproduced experiments is (a) a realistic clear-sky tropospheric cooling
//! that destabilizes the column on multi-hour timescales and (b) cloud-top
//! longwave cooling / in-cloud shortwave warming that modulates convection.
//! This module provides exactly those two bands. The substitution is recorded
//! in DESIGN.md.

use serde::{Deserialize, Serialize};

/// Radiation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RadiationParams {
    /// Clear-sky longwave cooling at the surface, K/day (negative = cooling).
    pub clear_sky_cooling: f64,
    /// Height where clear-sky cooling fades out, m.
    pub cooling_top: f64,
    /// Cloud-top additional longwave cooling, K/day.
    pub cloud_top_cooling: f64,
    /// In-cloud shortwave heating, K/day (daytime average).
    pub cloud_sw_heating: f64,
    /// Condensate threshold defining "cloudy", kg/kg.
    pub cloud_threshold: f64,
}

impl Default for RadiationParams {
    fn default() -> Self {
        Self {
            clear_sky_cooling: -1.5,
            cooling_top: 12_000.0,
            cloud_top_cooling: -3.0,
            cloud_sw_heating: 0.8,
            cloud_threshold: 1e-5,
        }
    }
}

const SECONDS_PER_DAY: f64 = 86_400.0;

/// Compute the radiative theta tendency (K/s) for one column given the total
/// cloud condensate profile (qc + qi, kg/kg) and cell-center heights.
pub fn column_heating(params: &RadiationParams, cloud: &[f64], z_center: &[f64], out: &mut [f64]) {
    let nz = cloud.len();
    debug_assert_eq!(z_center.len(), nz);
    debug_assert_eq!(out.len(), nz);

    // Find the cloud top (highest cloudy level), if any.
    let cloud_top = (0..nz).rev().find(|&k| cloud[k] > params.cloud_threshold);

    for k in 0..nz {
        // Band 1: clear-sky longwave cooling, fading with height.
        let fade = (1.0 - z_center[k] / params.cooling_top).max(0.0);
        let mut rate = params.clear_sky_cooling * fade;

        if cloud[k] > params.cloud_threshold {
            // Band 2: in-cloud shortwave warming...
            rate += params.cloud_sw_heating;
            // ...plus concentrated longwave cooling at the cloud top layer.
            if Some(k) == cloud_top {
                rate += params.cloud_top_cooling;
            }
        }
        out[k] = rate / SECONDS_PER_DAY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z_levels(nz: usize, top: f64) -> Vec<f64> {
        (0..nz)
            .map(|k| (k as f64 + 0.5) * top / nz as f64)
            .collect()
    }

    #[test]
    fn clear_sky_cools_troposphere_not_above() {
        let p = RadiationParams::default();
        let z = z_levels(20, 16_000.0);
        let cloud = vec![0.0; 20];
        let mut out = vec![0.0; 20];
        column_heating(&p, &cloud, &z, &mut out);
        assert!(out[0] < 0.0);
        // Cooling magnitude is ~1.5 K/day at the surface.
        assert!((out[0] * SECONDS_PER_DAY + 1.5).abs() < 0.2);
        // Above cooling_top (12 km): zero.
        let high = z.iter().position(|&zz| zz > 12_000.0).unwrap();
        assert_eq!(out[high], 0.0);
    }

    #[test]
    fn cloud_top_gets_extra_cooling() {
        let p = RadiationParams::default();
        let z = z_levels(20, 16_000.0);
        let mut cloud = vec![0.0; 20];
        for item in cloud.iter_mut().take(9).skip(5) {
            *item = 1e-3;
        }
        let mut out = vec![0.0; 20];
        column_heating(&p, &cloud, &z, &mut out);
        // Cloud top = level 8: more cooling than in-cloud levels below.
        assert!(
            out[8] < out[6],
            "cloud top {} vs in-cloud {}",
            out[8],
            out[6]
        );
    }

    #[test]
    fn in_cloud_levels_are_warmed_relative_to_clear() {
        let p = RadiationParams::default();
        let z = z_levels(20, 16_000.0);
        let clear = vec![0.0; 20];
        let mut cloudy = vec![0.0; 20];
        cloudy[5] = 1e-3;
        cloudy[6] = 1e-3;
        let mut out_clear = vec![0.0; 20];
        let mut out_cloudy = vec![0.0; 20];
        column_heating(&p, &clear, &z, &mut out_clear);
        column_heating(&p, &cloudy, &z, &mut out_cloudy);
        // Level 5 is in-cloud but below cloud top: SW warming applies.
        assert!(out_cloudy[5] > out_clear[5]);
    }

    #[test]
    fn rates_are_order_kelvin_per_day() {
        let p = RadiationParams::default();
        let z = z_levels(30, 16_000.0);
        let mut cloud = vec![0.0; 30];
        cloud[10] = 5e-3;
        let mut out = vec![0.0; 30];
        column_heating(&p, &cloud, &z, &mut out);
        for &r in &out {
            assert!(r.abs() < 10.0 / SECONDS_PER_DAY, "rate {r} K/s too large");
        }
    }
}
