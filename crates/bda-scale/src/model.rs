//! The model driver: one SCALE-analogue integration engine.
//!
//! [`Model`] owns the configuration, base state, reusable workspaces and one
//! prognostic state, and advances it with the HEVI dynamics plus the physics
//! suite in the same sequence SCALE-RM uses (dynamics → turbulence → surface
//! → boundary layer → microphysics → radiation → boundary relaxation).

use crate::advect::{scalar_advection_upwind, Metrics};
use crate::base::{BaseState, Sounding};
use crate::config::ModelConfig;
use crate::dynamics::{step_dynamics, DynWorkspace};
use crate::forcing::{LargeScaleForcing, TriggerSchedule};
use crate::microphys::{column_microphysics, ColumnView, MicrophysParams};
use crate::nesting::BoundaryFields;
use crate::radiation::{column_heating, RadiationParams};
use crate::state::{ModelState, PrognosticVar};
use crate::surface::{bulk_fluxes, SurfaceFluxes, SurfaceParams};
use crate::turbulence::{horizontal_diffusion, smagorinsky_viscosity, ColumnPbl};
use bda_grid::boundary::DaviesWeights;
use bda_grid::Field3;
use bda_num::Real;

/// Lateral boundary condition source.
pub enum Boundary<T> {
    /// Relax the rim toward the base-state profiles (idealized runs).
    BaseState,
    /// Relax toward synthetic large-scale forcing profiles (outer domain).
    Profiles(LargeScaleForcing),
    /// Relax toward interpolated outer-domain fields (inner domain,
    /// Fig. 3b's one-way nesting).
    Fields(Box<BoundaryFields<T>>),
}

/// Model blow-up error (non-finite values detected).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlowUp {
    pub step: usize,
}

impl std::fmt::Display for BlowUp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model state became non-finite at step {}", self.step)
    }
}

impl std::error::Error for BlowUp {}

/// One integration engine (config + base + workspaces + state).
pub struct Model<T> {
    pub cfg: ModelConfig,
    pub base: BaseState<T>,
    pub state: ModelState<T>,
    pub boundary: Boundary<T>,
    pub triggers: TriggerSchedule,
    pub mp_params: MicrophysParams,
    pub sfc_params: SurfaceParams,
    pub rad_params: RadiationParams,
    /// Latest instantaneous surface rain rate per column, mm/h (i-major).
    pub precip_rate: Vec<f64>,
    /// Accumulated surface precipitation per column, mm.
    pub precip_accum: Vec<f64>,
    metrics: Metrics<T>,
    dynws: DynWorkspace<T>,
    pbl: ColumnPbl<T>,
    kh: Field3<T>,
    tend: Field3<T>,
    rad_buf: Vec<f64>,
    cloud_buf: Vec<f64>,
    mp_flux: Vec<f64>,
    dz: Vec<T>,
    davies: Option<DaviesWeights>,
}

/// The scalars advanced by the upwind advection pass.
const ADVECTED: [PrognosticVar; 8] = [
    PrognosticVar::Theta,
    PrognosticVar::Qv,
    PrognosticVar::Qc,
    PrognosticVar::Qr,
    PrognosticVar::Qi,
    PrognosticVar::Qs,
    PrognosticVar::Qg,
    PrognosticVar::Tke,
];

impl<T: Real> Model<T> {
    /// Build a model from a configuration and sounding; the initial state
    /// carries the base-state wind and moisture.
    pub fn new(cfg: ModelConfig, sounding: &Sounding) -> Self {
        cfg.validate();
        let base = BaseState::from_sounding(sounding, &cfg.grid.vertical, cfg.sound_speed);
        Self::from_parts(cfg, base)
    }

    /// Build from an existing base state (ensemble members share one).
    pub fn from_parts(cfg: ModelConfig, base: BaseState<T>) -> Self {
        let grid = cfg.grid.clone();
        let state = ModelState::init_from_base(&grid, &base);
        let metrics = Metrics::new(&grid);
        let dynws = DynWorkspace::new(&cfg);
        let nz = grid.nz();
        let davies = if cfg.davies_width > 0 {
            Some(DaviesWeights::new(grid.nx, grid.ny, cfg.davies_width))
        } else {
            None
        };
        Self {
            pbl: ColumnPbl::new(nz),
            kh: Field3::zeros(grid.nx, grid.ny, nz, crate::state::HALO),
            tend: Field3::zeros(grid.nx, grid.ny, nz, crate::state::HALO),
            rad_buf: vec![0.0; nz],
            cloud_buf: vec![0.0; nz],
            mp_flux: vec![0.0; nz],
            dz: (0..nz).map(|k| T::of(grid.vertical.dz(k))).collect(),
            precip_rate: vec![0.0; grid.nx * grid.ny],
            precip_accum: vec![0.0; grid.nx * grid.ny],
            davies,
            boundary: Boundary::BaseState,
            triggers: TriggerSchedule::empty(),
            mp_params: MicrophysParams::default(),
            sfc_params: SurfaceParams::default(),
            rad_params: RadiationParams::default(),
            cfg,
            base,
            state,
            metrics,
            dynws,
        }
    }

    /// Swap in another prognostic state (ensemble stepping), returning the
    /// previous one.
    pub fn swap_state(&mut self, s: ModelState<T>) -> ModelState<T> {
        std::mem::replace(&mut self.state, s)
    }

    /// Advance one `dt`.
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        let t_prev = self.state.time;
        let t_now = t_prev + dt;
        let grid = self.cfg.grid.clone();
        let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz());

        // --- scheduled convection triggers ---
        let due: Vec<_> = self.triggers.due(t_prev, t_now).copied().collect();
        for e in due {
            self.state
                .add_warm_bubble(&grid, e.x, e.y, e.z, e.radius_h, e.radius_v, e.amplitude);
        }

        // --- dynamics (HEVI) ---
        self.state.fill_halos(self.cfg.halo);
        step_dynamics(
            &mut self.state,
            &self.base,
            &self.cfg,
            &self.metrics,
            &mut self.dynws,
        );
        self.state.fill_halos(self.cfg.halo);

        // --- scalar advection ---
        let dt_t = T::of(dt);
        for var in ADVECTED {
            scalar_advection_upwind(
                self.state.field(var),
                &self.state.u,
                &self.state.v,
                &self.state.w,
                &self.base.rho0,
                &self.base.rho0_face,
                &self.metrics,
                &mut self.tend,
            );
            let tend = &self.tend;
            let f = self.state.field_mut(var);
            for i in 0..nx as isize {
                for j in 0..ny as isize {
                    let tc = tend.column(i, j);
                    let fc = f.column_mut(i, j);
                    for k in 0..nz {
                        fc[k] += dt_t * tc[k];
                    }
                }
            }
        }

        // --- Smagorinsky horizontal mixing ---
        if self.cfg.physics.turbulence {
            smagorinsky_viscosity(
                &self.state.u,
                &self.state.v,
                self.cfg.smagorinsky_cs,
                grid.dx,
                &mut self.kh,
            );
            self.cfg.halo.fill(&mut self.kh);
            self.state.fill_halos(self.cfg.halo);
            for var in [
                PrognosticVar::U,
                PrognosticVar::V,
                PrognosticVar::W,
                PrognosticVar::Theta,
                PrognosticVar::Qv,
            ] {
                let kh = &self.kh;
                horizontal_diffusion(
                    self.state.field_mut(var),
                    kh,
                    &self.metrics,
                    dt_t,
                    &mut self.tend,
                );
            }
        }

        // --- column physics ---
        let zc = grid.vertical.z_center.clone();
        let p_sfc = self.base.p0[0].f64();
        for i in 0..nx {
            for j in 0..ny {
                let ii = i as isize;
                let jj = j as isize;

                // Surface fluxes from the lowest-level state.
                let fluxes = if self.cfg.physics.surface_flux {
                    let th1 = (self.base.theta0[0] + self.state.theta.at(ii, jj, 0)).f64();
                    bulk_fluxes(
                        &self.sfc_params,
                        self.state.u.at(ii, jj, 0).f64(),
                        self.state.v.at(ii, jj, 0).f64(),
                        th1,
                        self.state.qv.at(ii, jj, 0).f64(),
                        zc[0],
                        self.cfg.surface_temperature,
                        p_sfc,
                    )
                } else {
                    SurfaceFluxes::default()
                };

                if self.cfg.physics.boundary_layer {
                    self.pbl.step_column(
                        self.state.u.column_mut(ii, jj),
                        self.state.v.column_mut(ii, jj),
                        self.state.theta.column_mut(ii, jj),
                        self.state.qv.column_mut(ii, jj),
                        self.state.tke.column_mut(ii, jj),
                        &self.base,
                        &zc,
                        &self.dz,
                        dt,
                        T::of(fluxes.theta_flux),
                        T::of(fluxes.qv_flux),
                        T::of(fluxes.drag),
                    );
                } else if self.cfg.physics.surface_flux {
                    // Without a PBL scheme, deposit the fluxes into level 0.
                    let dz0 = self.dz[0];
                    self.state
                        .theta
                        .add_at(ii, jj, 0, dt_t * T::of(fluxes.theta_flux) / dz0);
                    self.state
                        .qv
                        .add_at(ii, jj, 0, dt_t * T::of(fluxes.qv_flux) / dz0);
                }

                if self.cfg.physics.microphysics {
                    let _timer = bda_num::timing::guard(bda_num::timing::Kernel::Microphysics);
                    let mut col = ColumnView {
                        theta: self.state.theta.column_mut(ii, jj),
                        pi: self.state.pi.column(ii, jj),
                        qv: self.state.qv.column_mut(ii, jj),
                        qc: self.state.qc.column_mut(ii, jj),
                        qr: self.state.qr.column_mut(ii, jj),
                        qi: self.state.qi.column_mut(ii, jj),
                        qs: self.state.qs.column_mut(ii, jj),
                        qg: self.state.qg.column_mut(ii, jj),
                    };
                    let res = column_microphysics(
                        &mut col,
                        &self.base,
                        &self.mp_params,
                        &self.dz,
                        dt,
                        &mut self.mp_flux,
                    );
                    let idx = i * ny + j;
                    self.precip_rate[idx] = res.rain_rate_mmh;
                    self.precip_accum[idx] += res.rain_rate_mmh * dt / 3600.0;
                }

                if self.cfg.physics.radiation {
                    let qcc = self.state.qc.column(ii, jj);
                    let qic = self.state.qi.column(ii, jj);
                    for k in 0..nz {
                        self.cloud_buf[k] = (qcc[k] + qic[k]).f64();
                    }
                    column_heating(&self.rad_params, &self.cloud_buf, &zc, &mut self.rad_buf);
                    let th = self.state.theta.column_mut(ii, jj);
                    for (t, h) in th.iter_mut().zip(&self.rad_buf) {
                        *t += T::of(h * dt);
                    }
                }
            }
        }

        // --- lateral boundary relaxation (Davies rim) ---
        if let Some(dw) = &self.davies {
            let alpha = T::of(dt / self.cfg.davies_tau);
            let zeros = vec![T::zero(); nz];
            match &self.boundary {
                Boundary::BaseState => {
                    dw.relax_to_profile(&mut self.state.u, &self.base.u0, alpha);
                    dw.relax_to_profile(&mut self.state.v, &self.base.v0, alpha);
                    dw.relax_to_profile(&mut self.state.theta, &zeros, alpha);
                    dw.relax_to_profile(&mut self.state.qv, &self.base.qv0, alpha);
                }
                Boundary::Profiles(forcing) => {
                    let p = forcing.profiles_at(t_now);
                    let conv = |v: &[f64]| -> Vec<T> { v.iter().map(|&x| T::of(x)).collect() };
                    dw.relax_to_profile(&mut self.state.u, &conv(&p.u), alpha);
                    dw.relax_to_profile(&mut self.state.v, &conv(&p.v), alpha);
                    dw.relax_to_profile(&mut self.state.theta, &conv(&p.theta_pert), alpha);
                    dw.relax_to_profile(&mut self.state.qv, &conv(&p.qv), alpha);
                }
                Boundary::Fields(bf) => {
                    dw.relax(&mut self.state.u, &bf.u, alpha);
                    dw.relax(&mut self.state.v, &bf.v, alpha);
                    dw.relax(&mut self.state.theta, &bf.theta, alpha);
                    dw.relax(&mut self.state.qv, &bf.qv, alpha);
                }
            }
            // Vertical velocity, pressure and hydrometeors relax to zero in
            // the rim to suppress boundary reflections and inflow artifacts.
            dw.relax_to_profile(&mut self.state.w, &zeros, alpha);
            dw.relax_to_profile(&mut self.state.pi, &zeros, alpha);
            for var in [
                PrognosticVar::Qc,
                PrognosticVar::Qr,
                PrognosticVar::Qi,
                PrognosticVar::Qs,
                PrognosticVar::Qg,
            ] {
                dw.relax_to_profile(self.state.field_mut(var), &zeros, alpha);
            }
        }

        self.state.clamp_physical();
        self.state.time = t_now;
    }

    /// Integrate for `duration` seconds, checking for blow-up periodically.
    pub fn integrate(&mut self, duration: f64) -> Result<(), BlowUp> {
        let nsteps = (duration / self.cfg.dt).round() as usize;
        for n in 0..nsteps {
            self.step();
            if n % 50 == 49 && !self.state.all_finite() {
                return Err(BlowUp { step: n });
            }
        }
        if self.state.all_finite() {
            Ok(())
        } else {
            Err(BlowUp { step: nsteps })
        }
    }

    /// Maximum instantaneous rain rate over the domain, mm/h.
    pub fn max_rain_rate(&self) -> f64 {
        self.precip_rate.iter().copied().fold(0.0, f64::max)
    }

    /// Area (number of columns) with rain rate at or above `threshold` mm/h —
    /// the statistic Fig. 5 plots against time-to-solution.
    pub fn rain_area(&self, threshold: f64) -> usize {
        self.precip_rate.iter().filter(|&&r| r >= threshold).count()
    }

    pub fn metrics(&self) -> &Metrics<T> {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PhysicsSwitches;

    fn reduced_model(nx: usize, nz: usize) -> Model<f32> {
        let mut cfg = ModelConfig::reduced(nx, nx, nz);
        cfg.halo = bda_grid::halo::HaloPolicy::Periodic;
        cfg.davies_width = 0;
        Model::new(cfg, &Sounding::convective())
    }

    #[test]
    fn full_physics_integration_stays_finite() {
        let mut m = reduced_model(12, 16);
        let g = m.cfg.grid.clone();
        m.state
            .add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 2500.0, 1200.0, 2.5);
        m.integrate(120.0).expect("model blew up");
        assert!(m.state.all_finite());
    }

    #[test]
    fn warm_bubble_in_moist_environment_forms_cloud() {
        let mut m = reduced_model(12, 20);
        let g = m.cfg.grid.clone();
        m.state
            .add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1200.0, 2500.0, 1200.0, 3.0);
        m.integrate(600.0).expect("model blew up");
        let mut qc_max = 0.0f32;
        for i in 0..g.nx as isize {
            for j in 0..g.ny as isize {
                for k in 0..g.nz() {
                    qc_max = qc_max.max(m.state.qc.at(i, j, k) + m.state.qi.at(i, j, k));
                }
            }
        }
        assert!(qc_max > 1e-5, "no cloud formed: qc_max = {qc_max}");
    }

    #[test]
    fn triggers_fire_once_at_the_right_time() {
        let mut m = reduced_model(10, 10);
        m.triggers = TriggerSchedule::new(vec![crate::forcing::TriggerEvent {
            time: 2.5,
            x: 2500.0,
            y: 2500.0,
            z: 1000.0,
            radius_h: 1500.0,
            radius_v: 800.0,
            amplitude: 2.0,
        }]);
        m.step(); // t: 0 -> 1, no trigger
        m.step(); // 1 -> 2, no trigger
        let before = m.state.theta.interior_max_abs();
        m.step(); // 2 -> 3: trigger fires
        let after = m.state.theta.interior_max_abs();
        assert!(
            after > before + 0.5,
            "trigger did not fire: {before} -> {after}"
        );
    }

    #[test]
    fn davies_rim_keeps_boundary_close_to_base() {
        let mut cfg = ModelConfig::reduced(16, 16, 10);
        cfg.davies_width = 3;
        cfg.physics = PhysicsSwitches::dry();
        let mut m = Model::<f64>::new(cfg, &Sounding::dry_stable());
        let g = m.cfg.grid.clone();
        // Kick the whole domain.
        m.state
            .add_warm_bubble(&g, g.lx() / 2.0, g.ly() / 2.0, 1500.0, 6000.0, 1500.0, 3.0);
        m.integrate(120.0).unwrap();
        // Boundary theta' relaxed toward zero: much smaller than the center.
        let edge = m.state.theta.at(0, 8, 2).abs();
        assert!(edge < 1.0, "rim theta' = {edge}");
    }

    #[test]
    fn precipitation_statistics_update() {
        let mut m = reduced_model(10, 16);
        let g = m.cfg.grid.clone();
        // Seed rain directly to exercise the accounting.
        for i in 3..6 {
            for j in 3..6 {
                for k in 0..5 {
                    m.state.qr.set(i, j, k, 3e-3);
                }
            }
        }
        let _ = g;
        m.integrate(60.0).unwrap();
        assert!(m.max_rain_rate() > 0.0, "no rain reached the surface");
        assert!(m.rain_area(0.1) > 0);
        assert!(m.precip_accum.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn swap_state_roundtrip() {
        let mut m = reduced_model(8, 8);
        let mut other = ModelState::<f32>::zeros(&m.cfg.grid);
        other.time = 42.0;
        let orig = m.swap_state(other);
        assert_eq!(orig.time, 0.0);
        assert_eq!(m.state.time, 42.0);
    }

    #[test]
    fn profile_boundary_pulls_rim_toward_forcing() {
        let mut cfg = ModelConfig::reduced(16, 16, 8);
        cfg.davies_width = 3;
        cfg.physics = PhysicsSwitches::dry();
        cfg.davies_tau = 10.0;
        let mut m = Model::<f64>::new(cfg, &Sounding::dry_stable());
        let vc = m.cfg.grid.vertical.clone();
        // Forcing with zero modulation = the sounding itself; bump u_surface
        // to make the target distinguishable.
        let mut snd = Sounding::dry_stable();
        snd.u_surface = 10.0;
        let mut forcing = LargeScaleForcing::new(snd, vc.z_center, 11);
        forcing.wind_amplitude = 0.0;
        forcing.moisture_amplitude = 0.0;
        forcing.theta_amplitude = 0.0;
        m.boundary = Boundary::Profiles(forcing);
        m.integrate(60.0).unwrap();
        // Rim u pulled toward 10 m/s while the interior stays near 0.
        assert!(
            m.state.u.at(0, 8, 0) > 3.0,
            "rim u = {}",
            m.state.u.at(0, 8, 0)
        );
    }
}
